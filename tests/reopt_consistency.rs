//! Integration test: bookkeeping stays exact through re-optimization
//! batteries — and, since the executor grew a control plane, that a
//! *live* reconfiguration applied to a running execution is
//! count-identical to the simulator replaying the same pre/post plans.
//!
//! Applies long randomized sequences of §3.5 events (add/remove sources
//! and workers, rate changes, capacity changes, coordinate drift) and
//! validates after every step that the optimizer's availability tracking
//! matches a from-scratch recomputation and that every live pair remains
//! placed. The exec-side tests then pin the §3.5 sim/exec contract: a
//! mid-run `PlanSwitch` through `ExecHandle::apply` yields
//! `emitted`/`matched`/`delivered` identical to
//! `simulate_reconfigured`, on all three backends.

use nova::core::baselines::host_based;
use nova::core::{Nova, NovaConfig, ReoptStep, Side};
use nova::netcoord::{Vivaldi, VivaldiConfig};
use nova::runtime::{simulate_reconfigured, Dataflow, SimConfig};
use nova::topology::{LatencyProvider, NodeId, SyntheticParams, SyntheticTopology};
use nova::workloads::{synthetic_opp, OppParams};
use nova::{
    launch, BackendKind, ExecConfig, JoinQuery, NodeRole, PlanSwitch, StreamSpec, Topology,
};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Provider covering up to 64 nodes beyond the base topology (events add
/// sources/workers); new nodes reuse an anchor's latency profile.
struct Grown<'a, P> {
    inner: &'a P,
    base: usize,
    anchor: NodeId,
}

impl<P: LatencyProvider> LatencyProvider for Grown<'_, P> {
    fn len(&self) -> usize {
        self.base + 64
    }
    fn rtt(&self, a: NodeId, b: NodeId) -> f64 {
        let map = |x: NodeId| if x.idx() >= self.base { self.anchor } else { x };
        let (a, b) = (map(a), map(b));
        if a == b {
            0.9
        } else {
            self.inner.rtt(a, b)
        }
    }
}

#[test]
fn random_event_battery_keeps_accounting_exact() {
    let n = 400;
    let syn = SyntheticTopology::generate(&SyntheticParams {
        n,
        seed: 13,
        ..Default::default()
    });
    let w = synthetic_opp(
        &syn.topology,
        &OppParams {
            seed: 13,
            ..OppParams::default()
        },
    );
    let vivaldi_cfg = VivaldiConfig {
        neighbors: 16,
        rounds: 24,
        ..VivaldiConfig::default()
    };
    let space = Vivaldi::embed(&syn.rtt, vivaldi_cfg).into_cost_space();
    let mut nova = Nova::with_cost_space(
        w.topology.clone(),
        space,
        NovaConfig {
            vivaldi: vivaldi_cfg,
            ..NovaConfig::default()
        },
    );
    nova.optimize(w.query.clone());
    nova.validate_accounting()
        .expect("fresh placement consistent");

    let grown = Grown {
        inner: &syn.rtt,
        base: n,
        anchor: w.query.left[0].node,
    };
    let mut rng = StdRng::seed_from_u64(99);
    let mut added_sources = 0u32;

    for step in 0..40 {
        match rng.gen_range(0..5) {
            0 if added_sources < 30 => {
                let key = rng.gen_range(0..w.query.left.len() as u32);
                nova.add_source(&grown, Side::Right, 40.0, key, 150.0, format!("s{step}"))
                    .expect("add source");
                added_sources += 1;
            }
            1 => {
                let hosts = nova.placement().nodes_used();
                if !hosts.is_empty() {
                    let victim = hosts[rng.gen_range(0..hosts.len())];
                    nova.remove_node(victim).expect("remove host");
                }
            }
            2 => {
                let _ = nova.add_worker(&grown, rng.gen_range(50.0..400.0), format!("w{step}"));
            }
            3 => {
                let idx = rng.gen_range(0..w.query.left.len() as u32);
                let _ = nova.change_rate(Side::Left, idx, rng.gen_range(5.0..150.0));
            }
            _ => {
                let hosts = nova.placement().nodes_used();
                if !hosts.is_empty() {
                    let target = hosts[rng.gen_range(0..hosts.len())];
                    nova.change_capacity(target, rng.gen_range(50.0..500.0))
                        .expect("capacity change");
                }
            }
        }
        nova.validate_accounting()
            .unwrap_or_else(|e| panic!("accounting drifted after step {step}: {e}"));
    }
}

/// sink(0), hot l/r, cold l/r sources, two join-host workers. Rates
/// divide 1000 exactly so both engines produce identical float
/// event-time sequences.
fn exec_world() -> (Topology, JoinQuery, NodeId, NodeId) {
    let mut t = Topology::new();
    let sink = t.add_node(NodeRole::Sink, 1000.0, "sink");
    let w1 = t.add_node(NodeRole::Worker, 1000.0, "w1");
    let w2 = t.add_node(NodeRole::Worker, 1000.0, "w2");
    let hot_l = t.add_node(NodeRole::Source, 1000.0, "hot_l");
    let hot_r = t.add_node(NodeRole::Source, 1000.0, "hot_r");
    let cold_l = t.add_node(NodeRole::Source, 1000.0, "cold_l");
    let cold_r = t.add_node(NodeRole::Source, 1000.0, "cold_r");
    let q = JoinQuery::by_key(
        vec![
            StreamSpec::keyed(hot_l, 50.0, 0),
            StreamSpec::keyed(cold_l, 10.0, 1),
        ],
        vec![
            StreamSpec::keyed(hot_r, 50.0, 0),
            StreamSpec::keyed(cold_r, 10.0, 1),
        ],
        sink,
    );
    (t, q, w1, w2)
}

fn flat_dist(a: NodeId, b: NodeId) -> f64 {
    if a == b {
        0.0
    } else {
        10.0
    }
}

/// The §3.5 acceptance bar (exec side): a mid-run `PlanSwitch` —
/// a *rate shift plus node removal*, the churn scenario's event pair —
/// applied through `ExecHandle::apply` yields counts identical to the
/// simulator replaying the same pre/post plans, on all three backends,
/// with the epoch deliberately mid-window so live state crosses the
/// handoff. Keyed + skewed so the bucket routing path is exercised.
#[test]
fn mid_run_reconfiguration_matches_simulator_replay_on_all_backends() {
    let (t, q_pre, w1, w2) = exec_world();
    // Post plan: w1 leaves, pairs re-place onto w2, hot rate shifts
    // 50 -> 40 t/s (both intervals divide 1000 exactly).
    let mut q_post = q_pre.clone();
    q_post.left[0].rate = 40.0;
    q_post.right[0].rate = 40.0;
    let p_pre = host_based(&q_pre, &q_pre.resolve(), w1);
    let p_post = host_based(&q_post, &q_post.resolve(), w2);
    let df = Dataflow::from_baseline(&q_pre, &p_pre);
    let sim_cfg = SimConfig {
        duration_ms: 2400.0,
        window_ms: 200.0,
        selectivity: 0.8,
        key_space: 8,
        // Structurally drop-free: count identity holds only without
        // shedding (see tests/exec_vs_sim.rs for the full rationale).
        max_queue_ms: f64::INFINITY,
        ..SimConfig::default()
    };
    // Epoch 1050 straddles the [1000, 1200) window: pre- and
    // post-epoch tuples of that window must still match each other
    // through the state handoff.
    let switch =
        PlanSwitch::between(1050.0, &q_post, &p_pre, &p_post, 1.0).with_capacities(vec![(w1, 0.0)]);

    let sim = simulate_reconfigured(&t, flat_dist, &df, std::slice::from_ref(&switch), &sim_cfg);
    assert_eq!(sim.dropped, 0, "replay must stay drop-free");
    assert!(sim.delivered > 0, "replay must deliver");

    // Batch sizes chosen adversarially: 1 (every tuple its own frame),
    // 7 (co-prime with the emission grid, so the epoch lands mid-batch
    // and the barrier must bisect a partially filled frame) and 64
    // (whole windows per frame).
    for (backend, shards, workers, key_buckets, batch_size) in [
        (BackendKind::Threaded, 1usize, 0usize, 1usize, 7usize),
        (BackendKind::Sharded, 4, 0, 4, 1),
        (BackendKind::Sharded, 4, 0, 4, 7),
        (BackendKind::Async, 4, 2, 4, 7),
        (BackendKind::Async, 4, 2, 4, 64),
    ] {
        let cfg = ExecConfig {
            backend,
            shards,
            workers,
            key_buckets,
            batch_size,
            ..ExecConfig::from_sim(&sim_cfg, 8.0)
        };
        let mut handle = launch(&t, flat_dist, &df, &cfg).expect("valid exec config");
        let stats = handle.apply(&switch, flat_dist).expect("reconfigure");
        assert!(
            stats.migrated_tuples > 0,
            "{backend:?}: live window state must cross the epoch"
        );
        let res = handle.join();
        let tag = format!("{backend:?}(shards={shards}, workers={workers}, batch={batch_size})");
        assert!(stats.clean_split, "{tag}: epoch must bisect the batch");
        assert_eq!(res.dropped, 0, "{tag}: must stay drop-free");
        assert_eq!(res.emitted, sim.emitted, "{tag}: emitted diverged");
        assert_eq!(res.matched, sim.matched, "{tag}: matched diverged");
        assert_eq!(res.delivered, sim.delivered, "{tag}: delivered diverged");
    }
}

/// The closed-loop acceptance gate: a controller-shaped switch
/// sequence — a mid-run **source admission** (`ExecHandle::add_source`)
/// followed by a **shard scale-up** (`ExecHandle::apply_scaled`) — is
/// count-identical to the simulator replaying the same recorded
/// switches on all three backends. The appended stream keys against
/// `cold_l`, which appends a *new pair* (row-major pair ids keep the
/// existing ones stable) and a new join instance; the scale override
/// does not exist in the simulator at all, pinning that shard layout
/// is an executor concept that never changes counts.
#[test]
fn recorded_admission_and_scale_sequence_matches_simulator_replay() {
    let (mut t, q_pre, w1, w2) = exec_world();
    let late_r = t.add_node(NodeRole::Source, 1000.0, "late_r");
    let mut right = q_pre.right.clone();
    // 10 t/s, equal to its join partner `cold_l`: `p_max = σ·½·(10+10)
    // = 10` keeps the admitted pair single-partition, the regime where
    // neither engine draws partition randomness and counts are exact
    // (an unequal rate would split the stream into phantom partitions
    // the host placement never routes).
    right.push(StreamSpec::keyed(late_r, 10.0, 1));
    let q_post = JoinQuery::by_key(q_pre.left.clone(), right, NodeId(0));

    let p_pre = host_based(&q_pre, &q_pre.resolve(), w1);
    let p_post = host_based(&q_post, &q_post.resolve(), w2);
    let df = Dataflow::from_baseline(&q_pre, &p_pre);
    let sim_cfg = SimConfig {
        duration_ms: 2400.0,
        window_ms: 200.0,
        selectivity: 0.8,
        key_space: 8,
        max_queue_ms: f64::INFINITY,
        ..SimConfig::default()
    };
    // Epoch 1050 straddles [1000, 1200): the admitted stream's first
    // window overlaps state migrated from the old generation.
    let admit = PlanSwitch::between(1050.0, &q_post, &p_pre, &p_post, 1.0);
    assert_eq!(admit.dataflow.sources.len(), df.sources.len() + 1);
    // Identity switch at 1700 carrying only the executor-side scale.
    let rescale = PlanSwitch::between(1700.0, &q_post, &p_post, &p_post, 1.0);
    let switches = [admit.clone(), rescale.clone()];

    let sim = simulate_reconfigured(&t, flat_dist, &df, &switches, &sim_cfg);
    assert_eq!(sim.dropped, 0, "replay must stay drop-free");
    assert!(sim.delivered > 0, "replay must deliver");

    // The admission epoch (1050) is co-prime with batch 7's frame
    // boundaries, so the late stream's admission — and the rescale at
    // 1700 — both land mid-batch; batch 64 crosses whole windows.
    for (backend, shards, workers, key_buckets, batch_size) in [
        (BackendKind::Threaded, 1usize, 0usize, 1usize, 7usize),
        (BackendKind::Sharded, 4, 0, 4, 64),
        (BackendKind::Async, 4, 2, 4, 7),
    ] {
        let cfg = ExecConfig {
            backend,
            shards,
            workers,
            key_buckets,
            batch_size,
            ..ExecConfig::from_sim(&sim_cfg, 8.0)
        };
        let tag = format!("{backend:?}(shards={shards}, workers={workers}, batch={batch_size})");
        let mut handle = launch(&t, flat_dist, &df, &cfg).expect("valid exec config");
        let stats = handle.apply(&admit, flat_dist);
        assert!(
            matches!(
                stats,
                Err(nova::exec::ReconfigError::SourceCountMismatch { .. })
            ),
            "{tag}: apply must refuse a source-set change (admission is add_source's job)"
        );
        let stats = handle.add_source(&admit, flat_dist).expect("admission");
        assert!(stats.clean_split, "{tag}: admission epoch armed late");
        assert!(
            stats.migrated_tuples > 0,
            "{tag}: live window state must cross the admission epoch"
        );
        let stats = handle
            .apply_scaled(
                &rescale,
                flat_dist,
                nova::exec::ShardScale {
                    shards: shards * 2,
                    key_buckets: (key_buckets * 2).max(2),
                },
            )
            .expect("scale-up");
        assert!(stats.clean_split, "{tag}: scale epoch armed late");
        assert_eq!(handle.shards(), shards * 2, "{tag}: scale not adopted");
        let res = handle.join();
        assert_eq!(res.dropped, 0, "{tag}: must stay drop-free");
        assert_eq!(res.emitted, sim.emitted, "{tag}: emitted diverged");
        assert_eq!(res.matched, sim.matched, "{tag}: matched diverged");
        assert_eq!(res.delivered, sim.delivered, "{tag}: delivered diverged");
    }
}

/// The full §3.5 loop: a topology/workload event expressed as a
/// `core::ReoptStep` drives the optimizer's incremental re-placement
/// (`Nova::apply_step`), the resulting pre/post placements become a
/// `PlanSwitch`, and the *running executor* absorbs it — with counts
/// identical to the simulator replaying the same plans.
#[test]
fn nova_reopt_steps_drive_live_executor_reconfiguration() {
    // A controlled world (same layout as the reopt unit tests): ground
    // truth coordinates, RTT = coordinate distance. sigma = 1.0 keeps
    // every pair single-partition, which is the regime where simulator
    // and executor draw no partition randomness and counts are exact.
    use nova::geom::Coord;
    use nova::netcoord::CostSpace;
    let mut t = Topology::new();
    let mut coords = Vec::new();
    let sink = t.add_node(NodeRole::Sink, 1000.0, "sink");
    coords.push(Coord::xy(0.0, 0.0));
    let l1 = t.add_node(NodeRole::Source, 1000.0, "l1");
    coords.push(Coord::xy(20.0, 10.0));
    let r1 = t.add_node(NodeRole::Source, 1000.0, "r1");
    coords.push(Coord::xy(20.0, -10.0));
    let l2 = t.add_node(NodeRole::Source, 1000.0, "l2");
    coords.push(Coord::xy(-20.0, 10.0));
    let r2 = t.add_node(NodeRole::Source, 1000.0, "r2");
    coords.push(Coord::xy(-20.0, -10.0));
    for i in 0..6 {
        t.add_node(NodeRole::Worker, 500.0, format!("w{i}"));
        let x = if i % 2 == 0 { 12.0 } else { -12.0 };
        coords.push(Coord::xy(x, (i as f64 - 2.5) * 2.0));
    }
    let rtt =
        nova::topology::DenseRtt::from_fn(coords.len(), |i, j| coords[i].dist(&coords[j]).max(0.1));
    let space = CostSpace::new(coords);
    let mut nova = Nova::with_cost_space(
        t.clone(),
        space,
        NovaConfig {
            sigma: 1.0,
            ..NovaConfig::default()
        },
    );
    let query = JoinQuery::by_key(
        vec![
            StreamSpec::keyed(l1, 25.0, 1),
            StreamSpec::keyed(l2, 25.0, 2),
        ],
        vec![
            StreamSpec::keyed(r1, 25.0, 1),
            StreamSpec::keyed(r2, 25.0, 2),
        ],
        sink,
    );
    nova.optimize(query.clone());
    let pre_placement = nova.placement().clone();
    let df = Dataflow::build(&query, &pre_placement, |_| 1.0);

    // The churn events, as data: the hot stream's rate shifts and a
    // join host leaves the cluster. Phase III re-runs only for the
    // affected pairs; the executor absorbs the result live.
    let victim = pre_placement.nodes_used()[0];
    nova.apply_step(
        &rtt,
        &ReoptStep::ChangeRate {
            side: Side::Left,
            stream: 0,
            new_rate: 50.0,
        },
    )
    .expect("rate step");
    nova.apply_step(&rtt, &ReoptStep::RemoveNode { node: victim })
        .expect("removal step");
    nova.validate_accounting().expect("optimizer stays exact");
    let post_query = nova.query().expect("query present").clone();
    let post_placement = nova.placement().clone();
    assert!(
        post_placement.replicas.iter().all(|r| r.node != victim),
        "victim must be evacuated"
    );

    let switch = PlanSwitch::between(1050.0, &post_query, &pre_placement, &post_placement, 1.0)
        .with_capacities(vec![(victim, 0.0)]);
    let sim_cfg = SimConfig {
        duration_ms: 2400.0,
        window_ms: 200.0,
        selectivity: 0.7,
        max_queue_ms: f64::INFINITY,
        ..SimConfig::default()
    };
    let mut dist = |a: NodeId, b: NodeId| rtt.rtt(a, b);
    let sim = simulate_reconfigured(&t, &mut dist, &df, std::slice::from_ref(&switch), &sim_cfg);
    assert_eq!(sim.dropped, 0);
    assert!(sim.delivered > 0);

    for backend in [
        BackendKind::Threaded,
        BackendKind::Sharded,
        BackendKind::Async,
    ] {
        let cfg = ExecConfig {
            backend,
            shards: if backend == BackendKind::Threaded {
                1
            } else {
                2
            },
            workers: 2,
            ..ExecConfig::from_sim(&sim_cfg, 8.0)
        };
        let mut handle = launch(&t, |a, b| rtt.rtt(a, b), &df, &cfg).expect("valid exec config");
        handle
            .apply(&switch, |a, b| rtt.rtt(a, b))
            .expect("reconfigure");
        let res = handle.join();
        let tag = format!("{backend:?}");
        assert_eq!(res.dropped, 0, "{tag}");
        assert_eq!(res.emitted, sim.emitted, "{tag}: emitted diverged");
        assert_eq!(res.matched, sim.matched, "{tag}: matched diverged");
        assert_eq!(res.delivered, sim.delivered, "{tag}: delivered diverged");
    }
}

#[test]
fn full_reoptimize_after_battery_matches_fresh_run() {
    // After churn, a full re-optimize from the mutated topology must
    // still produce a consistent, fully-placed result.
    let n = 300;
    let syn = SyntheticTopology::generate(&SyntheticParams {
        n,
        seed: 21,
        ..Default::default()
    });
    let w = synthetic_opp(
        &syn.topology,
        &OppParams {
            seed: 21,
            ..OppParams::default()
        },
    );
    let vivaldi_cfg = VivaldiConfig {
        neighbors: 16,
        rounds: 24,
        ..VivaldiConfig::default()
    };
    let space = Vivaldi::embed(&syn.rtt, vivaldi_cfg).into_cost_space();
    let mut nova = Nova::with_cost_space(
        w.topology.clone(),
        space,
        NovaConfig {
            vivaldi: vivaldi_cfg,
            ..NovaConfig::default()
        },
    );
    nova.optimize(w.query.clone());
    let grown = Grown {
        inner: &syn.rtt,
        base: n,
        anchor: w.query.left[0].node,
    };
    for i in 0..5 {
        let _ = nova.add_worker(&grown, 200.0, format!("late{i}"));
    }
    let query_now = nova.query().expect("query present").clone();
    nova.optimize(query_now);
    nova.validate_accounting()
        .expect("re-optimized placement consistent");
}
