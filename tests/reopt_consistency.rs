//! Integration test: bookkeeping stays exact through re-optimization
//! batteries.
//!
//! Applies long randomized sequences of §3.5 events (add/remove sources
//! and workers, rate changes, capacity changes, coordinate drift) and
//! validates after every step that the optimizer's availability tracking
//! matches a from-scratch recomputation and that every live pair remains
//! placed.

use nova::core::{Nova, NovaConfig, Side};
use nova::netcoord::{Vivaldi, VivaldiConfig};
use nova::topology::{LatencyProvider, NodeId, SyntheticParams, SyntheticTopology};
use nova::workloads::{synthetic_opp, OppParams};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Provider covering up to 64 nodes beyond the base topology (events add
/// sources/workers); new nodes reuse an anchor's latency profile.
struct Grown<'a, P> {
    inner: &'a P,
    base: usize,
    anchor: NodeId,
}

impl<P: LatencyProvider> LatencyProvider for Grown<'_, P> {
    fn len(&self) -> usize {
        self.base + 64
    }
    fn rtt(&self, a: NodeId, b: NodeId) -> f64 {
        let map = |x: NodeId| if x.idx() >= self.base { self.anchor } else { x };
        let (a, b) = (map(a), map(b));
        if a == b {
            0.9
        } else {
            self.inner.rtt(a, b)
        }
    }
}

#[test]
fn random_event_battery_keeps_accounting_exact() {
    let n = 400;
    let syn = SyntheticTopology::generate(&SyntheticParams {
        n,
        seed: 13,
        ..Default::default()
    });
    let w = synthetic_opp(
        &syn.topology,
        &OppParams {
            seed: 13,
            ..OppParams::default()
        },
    );
    let vivaldi_cfg = VivaldiConfig {
        neighbors: 16,
        rounds: 24,
        ..VivaldiConfig::default()
    };
    let space = Vivaldi::embed(&syn.rtt, vivaldi_cfg).into_cost_space();
    let mut nova = Nova::with_cost_space(
        w.topology.clone(),
        space,
        NovaConfig {
            vivaldi: vivaldi_cfg,
            ..NovaConfig::default()
        },
    );
    nova.optimize(w.query.clone());
    nova.validate_accounting()
        .expect("fresh placement consistent");

    let grown = Grown {
        inner: &syn.rtt,
        base: n,
        anchor: w.query.left[0].node,
    };
    let mut rng = StdRng::seed_from_u64(99);
    let mut added_sources = 0u32;

    for step in 0..40 {
        match rng.gen_range(0..5) {
            0 if added_sources < 30 => {
                let key = rng.gen_range(0..w.query.left.len() as u32);
                nova.add_source(&grown, Side::Right, 40.0, key, 150.0, format!("s{step}"))
                    .expect("add source");
                added_sources += 1;
            }
            1 => {
                let hosts = nova.placement().nodes_used();
                if !hosts.is_empty() {
                    let victim = hosts[rng.gen_range(0..hosts.len())];
                    nova.remove_node(victim).expect("remove host");
                }
            }
            2 => {
                let _ = nova.add_worker(&grown, rng.gen_range(50.0..400.0), format!("w{step}"));
            }
            3 => {
                let idx = rng.gen_range(0..w.query.left.len() as u32);
                let _ = nova.change_rate(Side::Left, idx, rng.gen_range(5.0..150.0));
            }
            _ => {
                let hosts = nova.placement().nodes_used();
                if !hosts.is_empty() {
                    let target = hosts[rng.gen_range(0..hosts.len())];
                    nova.change_capacity(target, rng.gen_range(50.0..500.0))
                        .expect("capacity change");
                }
            }
        }
        nova.validate_accounting()
            .unwrap_or_else(|e| panic!("accounting drifted after step {step}: {e}"));
    }
}

#[test]
fn full_reoptimize_after_battery_matches_fresh_run() {
    // After churn, a full re-optimize from the mutated topology must
    // still produce a consistent, fully-placed result.
    let n = 300;
    let syn = SyntheticTopology::generate(&SyntheticParams {
        n,
        seed: 21,
        ..Default::default()
    });
    let w = synthetic_opp(
        &syn.topology,
        &OppParams {
            seed: 21,
            ..OppParams::default()
        },
    );
    let vivaldi_cfg = VivaldiConfig {
        neighbors: 16,
        rounds: 24,
        ..VivaldiConfig::default()
    };
    let space = Vivaldi::embed(&syn.rtt, vivaldi_cfg).into_cost_space();
    let mut nova = Nova::with_cost_space(
        w.topology.clone(),
        space,
        NovaConfig {
            vivaldi: vivaldi_cfg,
            ..NovaConfig::default()
        },
    );
    nova.optimize(w.query.clone());
    let grown = Grown {
        inner: &syn.rtt,
        base: n,
        anchor: w.query.left[0].node,
    };
    for i in 0..5 {
        let _ = nova.add_worker(&grown, 200.0, format!("late{i}"));
    }
    let query_now = nova.query().expect("query present").clone();
    nova.optimize(query_now);
    nova.validate_accounting()
        .expect("re-optimized placement consistent");
}
