//! Integration test: the §4.7 end-to-end claims, in shape.
//!
//! Runs the DEBS-style workload on the simulated Pi cluster for every
//! approach group and asserts the paper's qualitative results: Nova
//! delivers multiples of every baseline's throughput at a fraction of
//! the latency, the sink-based default is the worst, and stress widens
//! the gap. Scaled to 10 s runs to stay fast in CI.

use nova::core::baselines::sink_based;
use nova::core::{Nova, NovaConfig};
use nova::netcoord::{classical_mds, CostSpace};
use nova::runtime::{run_placement, with_stress, SimConfig};
use nova::workloads::{environmental_scenario, EnvironmentalParams};

fn sim(duration_ms: f64) -> SimConfig {
    SimConfig {
        duration_ms,
        window_ms: 100.0,
        selectivity: 0.002,
        seed: 3,
        ..SimConfig::default()
    }
}

#[test]
fn nova_outperforms_sink_on_throughput_and_latency() {
    let scenario = environmental_scenario(&EnvironmentalParams::default());
    let topology = &scenario.cluster.topology;
    let space = CostSpace::new(classical_mds(scenario.cluster.rtt.dense(), 2, 1));
    let mut nova = Nova::with_cost_space(topology.clone(), space, NovaConfig::default());
    nova.optimize(scenario.query.clone());
    let plan = scenario.query.resolve();
    let cfg = sim(10_000.0);

    let nova_run = run_placement(
        topology,
        &scenario.cluster.rtt,
        &scenario.query,
        nova.placement(),
        0.4,
        &cfg,
    );
    let sink_run = run_placement(
        topology,
        &scenario.cluster.rtt,
        &scenario.query,
        &sink_based(&scenario.query, &plan),
        1.0,
        &cfg,
    );

    // Paper: 13.4× throughput, 14.4× mean latency. Shape: ≥ 3× both.
    assert!(
        nova_run.delivered as f64 >= 3.0 * sink_run.delivered as f64,
        "nova {} vs sink {}",
        nova_run.delivered,
        sink_run.delivered
    );
    assert!(
        sink_run.mean_latency() >= 2.0 * nova_run.mean_latency(),
        "sink {} ms vs nova {} ms",
        sink_run.mean_latency(),
        nova_run.mean_latency()
    );
}

#[test]
fn stress_degrades_baselines_more_than_nova() {
    let scenario = environmental_scenario(&EnvironmentalParams::default());
    let topology = &scenario.cluster.topology;
    let space = CostSpace::new(classical_mds(scenario.cluster.rtt.dense(), 2, 2));
    let mut nova = Nova::with_cost_space(topology.clone(), space, NovaConfig::default());
    nova.optimize(scenario.query.clone());
    let plan = scenario.query.resolve();
    let cfg = sim(10_000.0);

    let sources: Vec<_> = scenario
        .cluster
        .sources_by_region
        .iter()
        .flatten()
        .copied()
        .collect();
    let stressed = with_stress(topology, &sources, 0.3);

    let nova_normal = run_placement(
        topology,
        &scenario.cluster.rtt,
        &scenario.query,
        nova.placement(),
        0.4,
        &cfg,
    );
    let nova_stress = run_placement(
        &stressed,
        &scenario.cluster.rtt,
        &scenario.query,
        nova.placement(),
        0.4,
        &cfg,
    );
    let src_placement = nova::core::baselines::source_based(&scenario.query, &plan);
    let src_normal = run_placement(
        topology,
        &scenario.cluster.rtt,
        &scenario.query,
        &src_placement,
        1.0,
        &cfg,
    );
    let src_stress = run_placement(
        &stressed,
        &scenario.cluster.rtt,
        &scenario.query,
        &src_placement,
        1.0,
        &cfg,
    );

    // Stress throttles everyone's sources, but source-colocated joins
    // lose *relatively* more throughput than Nova's worker-hosted joins.
    let nova_keep = nova_stress.delivered as f64 / nova_normal.delivered.max(1) as f64;
    let src_keep = src_stress.delivered as f64 / src_normal.delivered.max(1) as f64;
    assert!(
        nova_keep > src_keep,
        "nova keeps {nova_keep:.2} of its throughput, source-based {src_keep:.2}"
    );
}

#[test]
fn window_size_sweep_preserves_nova_advantage() {
    // The paper sweeps 1 ms – 1 s tumbling windows; Nova must beat the
    // sink default across the sweep.
    let scenario = environmental_scenario(&EnvironmentalParams::default());
    let topology = &scenario.cluster.topology;
    let space = CostSpace::new(classical_mds(scenario.cluster.rtt.dense(), 2, 4));
    let mut nova = Nova::with_cost_space(topology.clone(), space, NovaConfig::default());
    nova.optimize(scenario.query.clone());
    let plan = scenario.query.resolve();
    let sink_placement = sink_based(&scenario.query, &plan);

    for window_ms in [1.0, 10.0, 1000.0] {
        let cfg = SimConfig {
            window_ms,
            ..sim(6_000.0)
        };
        let nova_run = run_placement(
            topology,
            &scenario.cluster.rtt,
            &scenario.query,
            nova.placement(),
            0.4,
            &cfg,
        );
        let sink_run = run_placement(
            topology,
            &scenario.cluster.rtt,
            &scenario.query,
            &sink_placement,
            1.0,
            &cfg,
        );
        assert!(
            nova_run.delivered > sink_run.delivered,
            "window {window_ms} ms: nova {} vs sink {}",
            nova_run.delivered,
            sink_run.delivered
        );
    }
}
