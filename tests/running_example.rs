//! Integration test: the paper's running example (§3.1, Fig. 2–4, §3.4).
//!
//! Reproduces the numbers the paper states in prose: the baseline path
//! delays, the decomposition into four region sub-joins, Nova's placement
//! on the region-local fog nodes, zero overload, and the end-to-end
//! latency advantage over the cloud strategy.

use nova::core::{evaluate, EvalOptions, JoinQuery, Nova, NovaConfig, StreamSpec};
use nova::netcoord::{classical_mds, CostSpace};
use nova::topology::{running_example, LatencyProvider, RUNNING_EXAMPLE_RATE};

fn example_query(ex: &nova::topology::RunningExample) -> JoinQuery {
    let stream = |id| {
        let region = ex.topology.node(id).region.expect("sensor region");
        StreamSpec::keyed(id, RUNNING_EXAMPLE_RATE, region)
    };
    JoinQuery::by_key(
        ex.pressure.iter().copied().map(stream).collect(),
        ex.humidity.iter().copied().map(stream).collect(),
        ex.sink,
    )
}

#[test]
fn stated_latencies_hold() {
    let ex = running_example();
    let t1 = ex.pressure[0];
    let c = ex.topology.by_label("C").unwrap();
    let e = ex.topology.by_label("E").unwrap();
    assert_eq!(ex.rtt.rtt(t1, c), 60.0, "A[t1, C] = 60 ms");
    assert_eq!(ex.rtt.rtt(t1, ex.sink), 110.0, "A[t1, sink] = 110 ms");
    assert_eq!(ex.rtt.rtt(t1, e), 130.0, "region-1 cloud path ≈ 130 ms");
    assert_eq!(
        ex.rtt.rtt(ex.pressure[2], e),
        155.0,
        "region-2 cloud path ≈ 155 ms"
    );
    assert_eq!(ex.rtt.rtt(e, ex.sink), 100.0, "cloud → sink ≈ 100 ms");
}

#[test]
fn join_decomposes_into_four_region_subjoins() {
    let ex = running_example();
    let query = example_query(&ex);
    let plan = query.resolve();
    // T ⋈ W = (t1⋈w1) ∪ (t2⋈w1) ∪ (t3⋈w2) ∪ (t4⋈w2) — §2.1/Fig. 1.
    assert_eq!(plan.len(), 4);
    for pair in &plan.pairs {
        assert_eq!(
            query.left_stream(pair).key,
            query.right_stream(pair).key,
            "pairs are region-aligned"
        );
    }
}

#[test]
fn nova_places_region_locally_without_overload() {
    let ex = running_example();
    let query = example_query(&ex);
    let space = CostSpace::new(classical_mds(ex.rtt.dense(), 2, 7));
    let mut nova = Nova::with_cost_space(
        ex.topology.clone(),
        space,
        NovaConfig {
            c_min: 15.0,
            ..NovaConfig::default()
        },
    );
    nova.optimize(query);

    // Region-2 sub-joins land on G (capacity 200, next to the region-2
    // sensors) as in the §3.4 walk-through.
    let g = ex.topology.by_label("G").unwrap();
    let region2_pairs: Vec<_> = nova
        .placement()
        .replicas
        .iter()
        .filter(|r| r.pair.0 >= 2)
        .collect();
    assert!(!region2_pairs.is_empty());
    assert!(
        region2_pairs.iter().all(|r| r.node == g),
        "region-2 joins on G: {region2_pairs:?}"
    );
    // Region-1 sub-joins use the region-1 fog nodes (A, B, C, D — never
    // the distant cloud E, never base stations, never sources).
    for rep in nova.placement().replicas.iter().filter(|r| r.pair.0 < 2) {
        let label = &ex.topology.node(rep.node).label;
        assert!(
            ["A", "B", "C", "D"].contains(&label.as_str()),
            "region-1 join on {label}"
        );
    }
    // No overload under real latencies/capacities.
    let eval = evaluate(
        nova.placement(),
        nova.topology(),
        |a, b| ex.rtt.rtt(a, b),
        EvalOptions::default(),
    );
    assert_eq!(eval.overloaded_nodes, 0);
}

#[test]
fn nova_end_to_end_beats_cloud_and_respects_paper_bounds() {
    let ex = running_example();
    let query = example_query(&ex);
    let space = CostSpace::new(classical_mds(ex.rtt.dense(), 2, 7));
    let mut nova = Nova::with_cost_space(
        ex.topology.clone(),
        space,
        NovaConfig {
            c_min: 15.0,
            ..NovaConfig::default()
        },
    );
    nova.optimize(query);
    let eval = evaluate(
        nova.placement(),
        nova.topology(),
        |a, b| ex.rtt.rtt(a, b),
        EvalOptions::default(),
    );
    // Paper: Nova ≈ 150 ms (region 1) / 175 ms (region 2) vs cloud ≈
    // 275 ms. Our reconstruction: ≤ 180 ms vs 255 ms.
    assert!(
        eval.max_latency() <= 180.0,
        "nova max latency {} above the paper's ~175 ms band",
        eval.max_latency()
    );
    let e = ex.topology.by_label("E").unwrap();
    let cloud_worst = ex
        .pressure
        .iter()
        .map(|&s| ex.rtt.rtt(s, e) + ex.rtt.rtt(e, ex.sink))
        .fold(0.0f64, f64::max);
    assert!(eval.max_latency() < cloud_worst);
}

#[test]
fn sink_and_source_strategies_overload_here() {
    use nova::core::baselines::{sink_based, source_based};
    let ex = running_example();
    let query = example_query(&ex);
    let plan = query.resolve();
    // Sink capacity 20 < 150 tuples/s total: always overloaded.
    let sink_eval = evaluate(
        &sink_based(&query, &plan),
        &ex.topology,
        |a, b| ex.rtt.rtt(a, b),
        EvalOptions::default(),
    );
    assert_eq!(sink_eval.overload_percent(), 100.0);
    // Sources have capacity 10 < 50 per pair: every used source drowns.
    let source_eval = evaluate(
        &source_based(&query, &plan),
        &ex.topology,
        |a, b| ex.rtt.rtt(a, b),
        EvalOptions::default(),
    );
    assert_eq!(source_eval.overload_percent(), 100.0);
}
