//! Integration test: cross-crate pipeline invariants on testbed-scale
//! topologies — the qualitative claims of Figs. 6–8 as assertions.

use nova::core::baselines::{sink_based, tree_based};
use nova::core::{evaluate, EvalOptions, Nova, NovaConfig};
use nova::netcoord::{EmbeddingError, Vivaldi, VivaldiConfig};
use nova::topology::{LatencyProvider, Testbed};
use nova::workloads::{synthetic_opp, OppParams};

#[test]
fn fit_testbed_full_pipeline_avoids_overload_near_bound() {
    let data = Testbed::FitIotLab.generate(5);
    let w = synthetic_opp(
        &data.topology,
        &OppParams {
            seed: 5,
            ..OppParams::default()
        },
    );
    let vivaldi_cfg = VivaldiConfig {
        neighbors: Testbed::FitIotLab.vivaldi_neighbors(),
        rounds: 48,
        ..VivaldiConfig::default()
    };
    let vivaldi = Vivaldi::embed(&data.rtt, vivaldi_cfg);
    // Fig. 5 claim: the embedding is accurate at the paper's m.
    let err = EmbeddingError::evaluate(vivaldi.coords(), &data.rtt, 30_000, 1);
    assert!(
        err.median_relative < 0.35,
        "median rel err {}",
        err.median_relative
    );

    let space = vivaldi.into_cost_space();
    let mut nova = Nova::with_cost_space(
        w.topology.clone(),
        space.clone(),
        NovaConfig {
            vivaldi: vivaldi_cfg,
            ..NovaConfig::default()
        },
    );
    nova.optimize(w.query.clone());
    let nova_eval = evaluate(
        nova.placement(),
        &w.topology,
        |a, b| data.rtt.rtt(a, b),
        EvalOptions::default(),
    );
    // Fig. 6 claim: zero overload.
    assert_eq!(
        nova_eval.overloaded_nodes, 0,
        "loads {:?}",
        nova_eval.node_loads
    );

    // Fig. 7 claim: within a bounded delta of the sink-based bound.
    let plan = w.query.resolve();
    let sink_eval = evaluate(
        &sink_based(&w.query, &plan),
        &w.topology,
        |a, b| data.rtt.rtt(a, b),
        EvalOptions::default(),
    );
    let bound = sink_eval.latency_percentile(0.9);
    let delta = nova_eval.latency_percentile(0.9) - bound;
    assert!(delta < bound.max(5.0), "90P delta {delta} vs bound {bound}");

    // Fig. 8 claim: Nova's estimates are accurate; the tree overlay
    // underestimates badly under multi-hop accumulation.
    let nova_est = evaluate(
        nova.placement(),
        &w.topology,
        |a, b| space.distance(a, b).unwrap_or(f64::INFINITY),
        EvalOptions::default(),
    );
    let nova_ratio = nova_eval.mean_latency() / nova_est.mean_latency().max(1e-9);
    let tree = tree_based(&w.query, &plan, &w.topology, &space);
    let tree_real = evaluate(
        &tree,
        &w.topology,
        |a, b| data.rtt.rtt(a, b),
        EvalOptions::default(),
    );
    let tree_est = evaluate(
        &tree,
        &w.topology,
        |a, b| space.distance(a, b).unwrap_or(f64::INFINITY),
        EvalOptions::default(),
    );
    let tree_ratio = tree_real.mean_latency() / tree_est.mean_latency().max(1e-9);
    assert!(
        tree_ratio > nova_ratio,
        "tree must underestimate more: tree {tree_ratio:.2}× vs nova {nova_ratio:.2}×"
    );
    assert!(nova_ratio < 2.0, "nova estimate ratio {nova_ratio:.2}");
}

#[test]
fn drift_leaves_placement_quality_stable() {
    // Fig. 9 in miniature: a fixed placement re-measured across drifted
    // hours varies by less than 25 % around its mean.
    use nova::topology::DriftModel;
    let data = Testbed::RipeAtlas418.generate(8);
    let w = synthetic_opp(
        &data.topology,
        &OppParams {
            seed: 8,
            ..OppParams::default()
        },
    );
    let vivaldi_cfg = VivaldiConfig {
        neighbors: 20,
        rounds: 32,
        ..VivaldiConfig::default()
    };
    let space = Vivaldi::embed(&data.rtt, vivaldi_cfg).into_cost_space();
    let mut nova = Nova::with_cost_space(
        w.topology.clone(),
        space,
        NovaConfig {
            vivaldi: vivaldi_cfg,
            ..NovaConfig::default()
        },
    );
    nova.optimize(w.query.clone());
    let drift = DriftModel::new(data.rtt.clone(), 8);
    let mut means = Vec::new();
    for hour in [0.0, 6.0, 12.0, 18.0, 23.0] {
        let m = drift.at_hour(hour);
        let eval = evaluate(
            nova.placement(),
            &w.topology,
            |a, b| m.rtt(a, b),
            EvalOptions::default(),
        );
        means.push(eval.mean_latency());
    }
    let avg = means.iter().sum::<f64>() / means.len() as f64;
    for m in &means {
        assert!(
            (m - avg).abs() < 0.25 * avg,
            "hourly mean {m} strays from {avg} (all: {means:?})"
        );
    }
}
