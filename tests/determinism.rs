//! Determinism across the simulator/executor seam.
//!
//! Same seed + same [`Dataflow`] must give (a) *byte-identical*
//! simulator results — the event loop is single-threaded and every
//! random draw is seeded — and (b) *count-identical* executor results —
//! OS scheduling may reorder work between threads, but windows,
//! partition choices and the selectivity hash are pure functions of the
//! seed and the scheduled event times, so what is matched and delivered
//! cannot change between runs (only per-output timestamps can).

use nova::core::{Nova, NovaConfig, StreamSpec};
use nova::geom::Coord;
use nova::netcoord::CostSpace;
use nova::runtime::{simulate, Dataflow, SimConfig, SimResult};
use nova::{execute, ExecConfig, JoinQuery, NodeId, NodeRole, Topology};

fn flat_dist(a: NodeId, b: NodeId) -> f64 {
    if a == b {
        0.0
    } else {
        10.0
    }
}

/// A world with enough workers that Nova produces a *partitioned*
/// placement, exercising the seeded weighted partition assignment.
fn partitioned_world() -> (Topology, Dataflow, f64) {
    let mut t = Topology::new();
    let mut coords = Vec::new();
    let sink = t.add_node(NodeRole::Sink, 200.0, "sink");
    coords.push(Coord::xy(0.0, 0.0));
    let l = t.add_node(NodeRole::Source, 50.0, "l");
    coords.push(Coord::xy(10.0, 5.0));
    let r = t.add_node(NodeRole::Source, 50.0, "r");
    coords.push(Coord::xy(10.0, -5.0));
    for i in 0..4 {
        t.add_node(NodeRole::Worker, 60.0, format!("w{i}"));
        coords.push(Coord::xy(8.0 + 0.1 * i as f64, 0.0));
    }
    let q = JoinQuery::by_key(
        vec![StreamSpec::keyed(l, 40.0, 1)],
        vec![StreamSpec::keyed(r, 40.0, 1)],
        sink,
    );
    let cfg = NovaConfig::default();
    let mut nova = Nova::with_cost_space(t.clone(), CostSpace::new(coords), cfg);
    nova.optimize(q.clone());
    let df = Dataflow::build(&q, nova.placement(), |_| cfg.sigma);
    (t, df, cfg.sigma)
}

/// Render every observable field of a sim run into one string.
fn fingerprint(res: &SimResult) -> String {
    let mut s = format!(
        "emitted={} matched={} delivered={} dropped={} truncated={} busy={:?}\n",
        res.emitted, res.matched, res.delivered, res.dropped, res.truncated, res.node_busy_ms
    );
    for o in &res.outputs {
        s.push_str(&format!(
            "{:?} {:.9} {:.9}\n",
            o.pair, o.arrival_ms, o.latency_ms
        ));
    }
    s
}

#[test]
fn simulator_is_byte_identical_across_runs() {
    let (t, df, _) = partitioned_world();
    let cfg = SimConfig {
        duration_ms: 4000.0,
        window_ms: 100.0,
        selectivity: 0.7,
        ..SimConfig::default()
    };
    let a = simulate(&t, flat_dist, &df, &cfg);
    let b = simulate(&t, flat_dist, &df, &cfg);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert!(
        a.delivered > 0,
        "the comparison must be about something: {a:?}"
    );
}

#[test]
fn simulator_seed_changes_partitioned_runs() {
    // Sanity check that the fingerprint is sensitive at all: a
    // different seed reroutes partitions, changing the output stream.
    let (t, df, _) = partitioned_world();
    let base = SimConfig {
        duration_ms: 4000.0,
        window_ms: 100.0,
        selectivity: 0.7,
        ..SimConfig::default()
    };
    let a = simulate(&t, flat_dist, &df, &base);
    let b = simulate(
        &t,
        flat_dist,
        &df,
        &SimConfig {
            seed: base.seed ^ 0xDEAD,
            ..base
        },
    );
    assert_ne!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn executor_is_count_identical_across_runs() {
    let (t, df, _) = partitioned_world();
    let cfg = ExecConfig {
        duration_ms: 3000.0,
        window_ms: 100.0,
        selectivity: 0.7,
        time_scale: 8.0,
        // Unbounded queues make the drop-free precondition structural:
        // with a bounded queue an OS-stalled source thread (~30 ms on a
        // loaded 1-core host ≈ 250 virtual ms at time_scale 8) can shed
        // a tuple spuriously even in this uncongested scenario.
        max_queue_ms: f64::INFINITY,
        ..ExecConfig::default()
    };
    let a = execute(&t, flat_dist, &df, &cfg).expect("valid exec config");
    let b = execute(&t, flat_dist, &df, &cfg).expect("valid exec config");
    assert!(
        a.delivered > 0,
        "the comparison must be about something: {a:?}"
    );
    // Count-determinism is only guaranteed drop-free: pacer shedding
    // depends on cross-thread reservation order. Pin the precondition.
    assert_eq!(a.dropped, 0, "scenario must stay uncongested: {a:?}");
    assert_eq!(b.dropped, 0);
    assert_eq!(a.emitted, b.emitted, "emission schedule is seeded");
    assert_eq!(a.matched, b.matched, "match decisions are seeded");
    assert_eq!(a.delivered, b.delivered, "delivery counts are seeded");
    // Per-pair delivery histograms agree too, not just the totals.
    let histogram = |r: &nova::ExecResult| {
        let mut counts = std::collections::BTreeMap::new();
        for o in &r.outputs {
            *counts.entry(o.pair).or_insert(0u64) += 1;
        }
        counts
    };
    assert_eq!(histogram(&a), histogram(&b));
}

#[test]
fn async_executor_is_count_identical_across_runs() {
    // The event loop adds two sources of schedule variance on top of
    // the sharded backend — which worker polls a task, and where its
    // run budget pauses it — neither of which may leak into counts:
    // routing, windows, sub-keys and match decisions stay pure
    // functions of the seed, and a paused task resumes exactly where
    // its cursor stopped.
    let (t, df, _) = partitioned_world();
    let cfg = nova::ExecConfig {
        duration_ms: 3000.0,
        window_ms: 200.0,
        selectivity: 0.7,
        time_scale: 8.0,
        backend: nova::BackendKind::Async,
        shards: 8,
        workers: 2,
        key_space: 8,
        key_buckets: 8,
        run_budget: 128,
        // Drop-free by construction — see above.
        max_queue_ms: f64::INFINITY,
        ..nova::ExecConfig::default()
    };
    let a = execute(&t, flat_dist, &df, &cfg).expect("valid exec config");
    let b = execute(&t, flat_dist, &df, &cfg).expect("valid exec config");
    assert!(a.delivered > 0, "async run must deliver: {a:?}");
    assert_eq!(a.dropped, 0, "scenario must stay uncongested: {a:?}");
    assert_eq!(b.dropped, 0);
    assert_eq!(a.emitted, b.emitted, "emission schedule is seeded");
    assert_eq!(a.matched, b.matched, "match decisions are seeded");
    assert_eq!(a.delivered, b.delivered, "delivery counts are seeded");
    // Per-pair delivery histograms agree too, not just the totals.
    let histogram = |r: &nova::ExecResult| {
        let mut counts = std::collections::BTreeMap::new();
        for o in &r.outputs {
            *counts.entry(o.pair).or_insert(0u64) += 1;
        }
        counts
    };
    assert_eq!(histogram(&a), histogram(&b));
}

#[test]
fn keyed_sharded_executor_is_count_identical_across_runs() {
    // The keyed path adds two pure functions to the hot path — the
    // per-tuple sub-key and its routing bucket — so a keyed sharded run
    // must stay count-deterministic exactly like the unkeyed one.
    let (t, df, _) = partitioned_world();
    let cfg = ExecConfig {
        duration_ms: 3000.0,
        window_ms: 200.0,
        selectivity: 0.7,
        time_scale: 8.0,
        shards: 4,
        key_space: 8,
        key_buckets: 8,
        // Drop-free by construction — see above.
        max_queue_ms: f64::INFINITY,
        ..ExecConfig::default()
    };
    let a = execute(&t, flat_dist, &df, &cfg).expect("valid exec config");
    let b = execute(&t, flat_dist, &df, &cfg).expect("valid exec config");
    assert!(a.delivered > 0, "keyed run must deliver: {a:?}");
    assert_eq!(a.dropped, 0, "scenario must stay uncongested: {a:?}");
    assert_eq!(b.dropped, 0);
    assert_eq!(a.emitted, b.emitted, "emission schedule is seeded");
    assert_eq!(a.matched, b.matched, "keyed match decisions are seeded");
    assert_eq!(a.delivered, b.delivered, "delivery counts are seeded");
}
