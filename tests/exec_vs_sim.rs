//! Cross-validation: the threaded executor against the discrete-event
//! simulator, on identical dataflows.
//!
//! The executor replaces the simulator's global event heap with real
//! threads and channels, but both enforce the same resource model, so
//! on an uncongested topology they must agree on *what* is delivered
//! (counts within a tight tolerance; here ≤ 15 %) and on *how
//! placements rank* (latency ordering across the source/sink/worker
//! baselines).

use nova::core::baselines::{sink_based, source_based};
use nova::core::placement::direct_path;
use nova::core::{PlacedReplica, Placement};
use nova::runtime::{simulate, Dataflow, SimConfig, SimResult};
use nova::{
    execute, AsyncBackend, Backend, BackendKind, ExecConfig, ExecResult, JoinQuery, NodeId,
    NodeRole, ShardedBackend, StreamSpec, Topology,
};

/// Uncongested 4-node world: sink(0), left(1), right(2), worker(3).
/// Rates divide 1000 exactly so both engines produce identical float
/// event-time sequences.
fn world() -> (Topology, JoinQuery) {
    let mut t = Topology::new();
    let sink = t.add_node(NodeRole::Sink, 1000.0, "sink");
    let l = t.add_node(NodeRole::Source, 1000.0, "l");
    let r = t.add_node(NodeRole::Source, 1000.0, "r");
    t.add_node(NodeRole::Worker, 1000.0, "w");
    let q = JoinQuery::by_key(
        vec![StreamSpec::keyed(l, 40.0, 1)],
        vec![StreamSpec::keyed(r, 40.0, 1)],
        sink,
    );
    (t, q)
}

/// Link latencies that separate the three placements cleanly: the
/// worker sits far from everything, so detouring over it is clearly
/// worst; joining at a source beats that; the sink is closest.
fn dist(a: NodeId, b: NodeId) -> f64 {
    if a == b {
        return 0.0;
    }
    let worker = 3;
    if a.idx() == worker || b.idx() == worker {
        80.0
    } else if a.idx() == 0 || b.idx() == 0 {
        40.0
    } else {
        30.0
    }
}

/// All joins on the worker node (the "cluster head" style baseline).
fn worker_based(query: &JoinQuery, topology: &Topology) -> Placement {
    let head = topology
        .nodes()
        .iter()
        .find(|n| n.role == NodeRole::Worker)
        .map(|n| n.id)
        .expect("world has a worker");
    let plan = query.resolve();
    let mut placement = Placement::new("worker-based");
    for pair in &plan.pairs {
        let left = query.left_stream(pair);
        let right = query.right_stream(pair);
        placement.replicas.push(PlacedReplica {
            pair: pair.id,
            node: head,
            left_rate: left.rate,
            right_rate: right.rate,
            left_partitions: vec![0],
            right_partitions: vec![0],
            merged_replicas: 1,
            left_path: direct_path(left.node, head),
            right_path: direct_path(right.node, head),
            out_path: direct_path(head, query.sink),
            output_rate: query.output_rate(pair),
            overflowed: false,
        });
    }
    placement
}

fn run_both(t: &Topology, df: &Dataflow, sim_cfg: &SimConfig) -> (SimResult, ExecResult) {
    let sim = simulate(t, dist, df, sim_cfg);
    let exec_cfg = ExecConfig::from_sim(sim_cfg, 8.0);
    let exec = execute(t, dist, df, &exec_cfg).expect("valid exec config");
    (sim, exec)
}

#[test]
fn delivered_counts_agree_within_tolerance() {
    let (t, q) = world();
    let plan = q.resolve();
    let sim_cfg = SimConfig {
        duration_ms: 2000.0,
        window_ms: 100.0,
        // Unbounded queues (a no-op for the uncongested simulator run)
        // keep the executor structurally drop-free: with a bounded
        // queue, an OS-stalled source thread — ~30 ms on a loaded
        // 1-core host ≈ 250 virtual ms at time_scale 8 — can shed a
        // tuple spuriously and void the dropped == 0 precondition.
        max_queue_ms: f64::INFINITY,
        ..SimConfig::default()
    };
    for (name, placement) in [
        ("sink", sink_based(&q, &plan)),
        ("source", source_based(&q, &plan)),
        ("worker", worker_based(&q, &t)),
    ] {
        let df = Dataflow::from_baseline(&q, &placement);
        let (sim, exec) = run_both(&t, &df, &sim_cfg);
        assert!(sim.delivered > 0, "{name}: simulator delivered nothing");
        assert_eq!(exec.dropped, 0, "{name}: uncongested run must not shed");
        let within = exec.delivered_by(sim_cfg.duration_ms);
        let drift = (within as f64 - sim.delivered as f64).abs() / sim.delivered as f64;
        assert!(
            drift <= 0.15,
            "{name}: exec {within} vs sim {} ({:.1}% apart)",
            sim.delivered,
            drift * 100.0
        );
    }
}

#[test]
fn latency_ordering_matches_across_placements() {
    let (t, q) = world();
    let plan = q.resolve();
    let sim_cfg = SimConfig {
        duration_ms: 2000.0,
        window_ms: 100.0,
        ..SimConfig::default()
    };
    let mut sim_means = Vec::new();
    let mut exec_means = Vec::new();
    for placement in [
        sink_based(&q, &plan),
        source_based(&q, &plan),
        worker_based(&q, &t),
    ] {
        let df = Dataflow::from_baseline(&q, &placement);
        let (sim, exec) = run_both(&t, &df, &sim_cfg);
        sim_means.push(sim.mean_latency());
        exec_means.push(exec.mean_latency());
    }
    // The simulator must rank sink < source < worker with clear gaps
    // (that is what the link design above guarantees)...
    assert!(sim_means[0] * 1.2 < sim_means[1], "sim means {sim_means:?}");
    assert!(sim_means[1] * 1.2 < sim_means[2], "sim means {sim_means:?}");
    // ...and the executor must reproduce the ordering.
    assert!(
        exec_means[0] < exec_means[1] && exec_means[1] < exec_means[2],
        "executor broke the placement ordering: sim {sim_means:?} exec {exec_means:?}"
    );
    // Per-placement mean latency agrees within 25 % (the executor adds
    // real scheduling jitter on top of the model latencies).
    for (s, e) in sim_means.iter().zip(&exec_means) {
        assert!(
            (s - e).abs() / s <= 0.25,
            "latency drift too large: sim {sim_means:?} exec {exec_means:?}"
        );
    }
}

/// Congested-regime cross-validation: deliberately overload the sink
/// (2 × 40 t/s into a 15 t/s server) and characterize how far the two
/// engines may drift. Shedding *order* is genuinely different — the
/// simulator sheds from a global event heap, the executor from
/// per-node pacers raced by real threads — so exact counts are not
/// pinned. What both engines must agree on:
///
/// * that the run sheds at all, with drop counts in the same ballpark
///   (≤ 25 % apart; measured ≈ 3 %),
/// * the amount of useful work that survives (delivered within the
///   horizon, ≤ 25 % apart),
/// * the latency *ordering*: the overloaded sink is pegged near the
///   bounded-queue cap, far above the uncongested run, in both engines.
#[test]
fn congested_runs_bound_divergence_and_preserve_ordering() {
    fn overload_world(sink_cap: f64) -> (Topology, JoinQuery) {
        let mut t = Topology::new();
        let sink = t.add_node(NodeRole::Sink, sink_cap, "sink");
        let l = t.add_node(NodeRole::Source, 1000.0, "l");
        let r = t.add_node(NodeRole::Source, 1000.0, "r");
        t.add_node(NodeRole::Worker, 1000.0, "w");
        let q = JoinQuery::by_key(
            vec![StreamSpec::keyed(l, 40.0, 1)],
            vec![StreamSpec::keyed(r, 40.0, 1)],
            sink,
        );
        (t, q)
    }
    let sim_cfg = SimConfig {
        duration_ms: 10_000.0,
        window_ms: 100.0,
        ..SimConfig::default()
    };
    let run = |sink_cap: f64, cfg: &SimConfig| -> (SimResult, ExecResult) {
        let (t, q) = overload_world(sink_cap);
        let p = sink_based(&q, &q.resolve());
        let df = Dataflow::from_baseline(&q, &p);
        run_both(&t, &df, cfg)
    };
    let (sim_slow, exec_slow) = run(15.0, &sim_cfg);
    // The uncongested control runs with unbounded queues so its
    // dropped == 0 assert is structural — a scheduler-stalled source
    // thread could otherwise trip the bounded queue spuriously (see
    // delivered_counts_agree_within_tolerance). The overloaded run
    // keeps the bounded queue: shedding there is the point.
    let fast_cfg = SimConfig {
        max_queue_ms: f64::INFINITY,
        ..sim_cfg
    };
    let (sim_fast, exec_fast) = run(1000.0, &fast_cfg);

    // Both engines shed on the overloaded sink and not on the fast one.
    assert!(sim_slow.dropped > 0, "simulator must shed: {sim_slow:?}");
    assert!(exec_slow.dropped > 0, "executor must shed");
    assert_eq!(sim_fast.dropped, 0);
    assert_eq!(exec_fast.dropped, 0);

    // Drop counts agree within the stated tolerance.
    let drop_drift =
        (exec_slow.dropped as f64 - sim_slow.dropped as f64).abs() / sim_slow.dropped as f64;
    assert!(
        drop_drift <= 0.25,
        "drop divergence too large: exec {} vs sim {} ({:.1}% apart)",
        exec_slow.dropped,
        sim_slow.dropped,
        drop_drift * 100.0
    );

    // Survivor counts agree within the same tolerance.
    let within = exec_slow.delivered_by(sim_cfg.duration_ms);
    let deliver_drift =
        (within as f64 - sim_slow.delivered as f64).abs() / (sim_slow.delivered as f64).max(1.0);
    assert!(
        deliver_drift <= 0.25,
        "delivered divergence too large: exec {within} vs sim {} ({:.1}% apart)",
        sim_slow.delivered,
        deliver_drift * 100.0
    );

    // Latency ordering: congested ≫ uncongested in both engines, and
    // the congested tail is pegged at the bounded-queue cap (±1 service
    // slot + scheduling slack) rather than unbounded.
    for (label, slow_p90, fast_p90) in [
        (
            "sim",
            sim_slow.latency_percentile(0.9),
            sim_fast.latency_percentile(0.9),
        ),
        (
            "exec",
            exec_slow.latency_percentile(0.9),
            exec_fast.latency_percentile(0.9),
        ),
    ] {
        assert!(
            slow_p90 > 4.0 * fast_p90,
            "{label}: overload must dominate latency ({slow_p90} vs {fast_p90})"
        );
    }
    // Structural tail bound: queue cap + one sink service slot
    // (1000/15 ≈ 67 ms) + the 40 ms final hop + slack.
    let tail_cap = sim_cfg.max_queue_ms + 1000.0 / 15.0 + 40.0 + 50.0;
    assert!(
        exec_slow.latency_percentile(1.0) <= tail_cap,
        "executor queue cap violated: {}",
        exec_slow.latency_percentile(1.0)
    );
    assert!(
        sim_slow.latency_percentile(1.0) <= tail_cap,
        "simulator queue cap violated: {}",
        sim_slow.latency_percentile(1.0)
    );
}

/// The sharded backend must agree with the simulator and the threaded
/// backend *exactly* on what matches — the acceptance bar for the
/// `(window, pair)` shard partitioning. Uses the cross-validation
/// world (uncongested, drop-free) at several shard counts.
#[test]
fn sharded_backend_match_counts_identical_to_sim_and_threaded() {
    let (t, q) = world();
    let plan = q.resolve();
    let p = sink_based(&q, &plan);
    let df = Dataflow::from_baseline(&q, &p);
    let sim_cfg = SimConfig {
        duration_ms: 2000.0,
        window_ms: 100.0,
        selectivity: 0.4,
        // Structurally drop-free so the exact-count asserts hold under
        // any OS schedule (see delivered_counts_agree_within_tolerance).
        max_queue_ms: f64::INFINITY,
        ..SimConfig::default()
    };
    let sim = simulate(&t, dist, &df, &sim_cfg);
    let threaded =
        execute(&t, dist, &df, &ExecConfig::from_sim(&sim_cfg, 8.0)).expect("valid exec config");
    assert_eq!(threaded.dropped, 0);
    for shards in [2usize, 4, 8] {
        let cfg = ExecConfig {
            shards,
            ..ExecConfig::from_sim(&sim_cfg, 8.0)
        };
        let mut d = dist;
        let sharded = ShardedBackend.run(&t, &mut d, &df, &cfg);
        assert_eq!(sharded.dropped, 0, "{shards} shards: must stay drop-free");
        assert_eq!(
            sharded.matched, threaded.matched,
            "{shards} shards changed the match set vs threaded"
        );
        assert_eq!(sharded.delivered, threaded.delivered);
        // Same engine-vs-sim relationship the threaded backend holds:
        // never fewer matches than the simulator, tail-bounded extras.
        assert!(
            sharded.matched >= sim.matched,
            "{shards} shards lost matches: {} vs sim {}",
            sharded.matched,
            sim.matched
        );
        let extra = (sharded.matched - sim.matched) as f64;
        assert!(extra <= (sim.matched as f64 * 0.10).max(8.0));
    }
}

/// Keyed workloads under pair skew: the acceptance bar for
/// `(window, pair, key bucket)` routing. A hot pair (5× the cold
/// pair's rate) with windows spanning many emission intervals and
/// sub-keys drawn from [0, 8) — the regime keyed sub-pair sharding
/// exists for — must keep `matched` / `delivered` *identical* across
/// the simulator relationship, the threaded baseline and the sharded
/// backend at every (shards × key-buckets) combination.
#[test]
fn keyed_skewed_counts_identical_at_every_bucket_count() {
    // Rates divide 1000 exactly (20 ms / 100 ms intervals) so both
    // engines produce identical float event-time sequences; pair 0
    // carries 5× the traffic of pair 1.
    let mut t = Topology::new();
    let sink = t.add_node(NodeRole::Sink, 1000.0, "sink");
    let hot_l = t.add_node(NodeRole::Source, 1000.0, "hot_l");
    let hot_r = t.add_node(NodeRole::Source, 1000.0, "hot_r");
    let cold_l = t.add_node(NodeRole::Source, 1000.0, "cold_l");
    let cold_r = t.add_node(NodeRole::Source, 1000.0, "cold_r");
    let q = JoinQuery::by_key(
        vec![
            StreamSpec::keyed(hot_l, 50.0, 0),
            StreamSpec::keyed(cold_l, 10.0, 1),
        ],
        vec![
            StreamSpec::keyed(hot_r, 50.0, 0),
            StreamSpec::keyed(cold_r, 10.0, 1),
        ],
        sink,
    );
    let p = sink_based(&q, &q.resolve());
    let df = Dataflow::from_baseline(&q, &p);
    let sim_cfg = SimConfig {
        duration_ms: 2000.0,
        // Windows span ~10 hot-pair emission intervals, so the hot
        // pair's window state is where the matches (and the skew) live.
        window_ms: 200.0,
        selectivity: 0.8,
        key_space: 8,
        // Structurally drop-free so the exact-count asserts hold under
        // any OS schedule (see delivered_counts_agree_within_tolerance).
        max_queue_ms: f64::INFINITY,
        ..SimConfig::default()
    };
    let sim = simulate(&t, dist, &df, &sim_cfg);
    assert!(sim.delivered > 0, "keyed skewed workload must match");
    let threaded =
        execute(&t, dist, &df, &ExecConfig::from_sim(&sim_cfg, 8.0)).expect("valid exec config");
    assert_eq!(threaded.dropped, 0);
    // Engine-vs-sim relationship (same as the unkeyed tests): never
    // fewer matches than the simulator, tail-bounded extras.
    assert!(
        threaded.matched >= sim.matched,
        "threaded lost keyed matches: {} vs sim {}",
        threaded.matched,
        sim.matched
    );
    let extra = (threaded.matched - sim.matched) as f64;
    assert!(extra <= (sim.matched as f64 * 0.10).max(8.0));
    for shards in [2usize, 4] {
        for key_buckets in [1usize, 2, 8, 32] {
            let cfg = ExecConfig {
                shards,
                key_buckets,
                ..ExecConfig::from_sim(&sim_cfg, 8.0)
            };
            let mut d = dist;
            let sharded = ShardedBackend.run(&t, &mut d, &df, &cfg);
            let tag = format!("shards={shards} buckets={key_buckets}");
            assert_eq!(sharded.dropped, 0, "{tag}: must stay drop-free");
            assert_eq!(
                sharded.matched, threaded.matched,
                "{tag}: changed the keyed match set vs threaded"
            );
            assert_eq!(
                sharded.delivered, threaded.delivered,
                "{tag}: changed the keyed delivery count vs threaded"
            );
        }
    }
}

/// The M:N cooperative backend against all three references — the
/// simulator, the threaded baseline and the sharded backend — at every
/// tested (workers × shards × key-buckets) combination, on the keyed
/// skewed workload (hot pair at 5× the cold pair's rate, sub-keys from
/// [0, 8)). Multiplexing S shard tasks onto W worker threads must
/// change *when* tuples are processed, never *what* joins: counts are
/// pinned identical even at W = 1 (everything time-shares one thread)
/// and S ≫ W (32 tasks on 2 workers), with a starved run budget
/// forcing mid-window yields.
#[test]
fn async_backend_counts_identical_at_every_worker_shard_bucket_combination() {
    // Same keyed skewed world as
    // keyed_skewed_counts_identical_at_every_bucket_count.
    let mut t = Topology::new();
    let sink = t.add_node(NodeRole::Sink, 1000.0, "sink");
    let hot_l = t.add_node(NodeRole::Source, 1000.0, "hot_l");
    let hot_r = t.add_node(NodeRole::Source, 1000.0, "hot_r");
    let cold_l = t.add_node(NodeRole::Source, 1000.0, "cold_l");
    let cold_r = t.add_node(NodeRole::Source, 1000.0, "cold_r");
    let q = JoinQuery::by_key(
        vec![
            StreamSpec::keyed(hot_l, 50.0, 0),
            StreamSpec::keyed(cold_l, 10.0, 1),
        ],
        vec![
            StreamSpec::keyed(hot_r, 50.0, 0),
            StreamSpec::keyed(cold_r, 10.0, 1),
        ],
        sink,
    );
    let p = sink_based(&q, &q.resolve());
    let df = Dataflow::from_baseline(&q, &p);
    let sim_cfg = SimConfig {
        duration_ms: 2000.0,
        window_ms: 200.0,
        selectivity: 0.8,
        key_space: 8,
        // Structurally drop-free so the exact-count asserts hold under
        // any OS schedule (see delivered_counts_agree_within_tolerance).
        max_queue_ms: f64::INFINITY,
        ..SimConfig::default()
    };
    let sim = simulate(&t, dist, &df, &sim_cfg);
    assert!(sim.delivered > 0, "keyed skewed workload must match");
    let threaded =
        execute(&t, dist, &df, &ExecConfig::from_sim(&sim_cfg, 8.0)).expect("valid exec config");
    assert_eq!(threaded.dropped, 0);
    // Engine-vs-sim relationship: never fewer matches than the
    // simulator, tail-bounded extras (the executor drains in-flight
    // work past the simulator's cut-off).
    assert!(threaded.matched >= sim.matched);
    assert!((threaded.matched - sim.matched) as f64 <= (sim.matched as f64 * 0.10).max(8.0));
    for workers in [1usize, 2, 4] {
        for shards in [1usize, 4, 16] {
            for key_buckets in [1usize, 8] {
                let cfg = ExecConfig {
                    backend: BackendKind::Async,
                    workers,
                    shards,
                    key_buckets,
                    // Starved budget: tasks yield every 64 tuples, so
                    // the cursor resume path runs constantly.
                    run_budget: 64,
                    ..ExecConfig::from_sim(&sim_cfg, 8.0)
                };
                let mut d = dist;
                let res = AsyncBackend.run(&t, &mut d, &df, &cfg);
                let tag = format!("workers={workers} shards={shards} buckets={key_buckets}");
                assert_eq!(res.dropped, 0, "{tag}: must stay drop-free");
                assert_eq!(
                    res.matched, threaded.matched,
                    "{tag}: changed the match set vs threaded"
                );
                assert_eq!(
                    res.delivered, threaded.delivered,
                    "{tag}: changed the delivery count vs threaded"
                );
                assert_eq!(res.emitted, threaded.emitted, "{tag}");
                // The same config on the sharded backend (one thread
                // per shard) is the third reference — all backends
                // agree, so the event loop sits exactly on the seam.
                if workers == 2 {
                    let sharded_cfg = ExecConfig {
                        backend: BackendKind::Sharded,
                        ..cfg
                    };
                    let mut d = dist;
                    let sharded = ShardedBackend.run(&t, &mut d, &df, &sharded_cfg);
                    assert_eq!(sharded.matched, res.matched, "{tag}: async vs sharded");
                    assert_eq!(sharded.delivered, res.delivered, "{tag}: async vs sharded");
                }
            }
        }
    }
}

#[test]
fn matched_sets_are_identical_with_shared_selectivity() {
    // With the shared deterministic selectivity hash, the two engines
    // must agree on exactly which tuple pairs survive, so the match
    // counts are equal (not merely close) on a drop-free run.
    let (t, q) = world();
    let plan = q.resolve();
    let p = sink_based(&q, &plan);
    let df = Dataflow::from_baseline(&q, &p);
    let sim_cfg = SimConfig {
        duration_ms: 2000.0,
        window_ms: 100.0,
        selectivity: 0.4,
        // Structurally drop-free so the exact-count asserts hold under
        // any OS schedule (see delivered_counts_agree_within_tolerance).
        max_queue_ms: f64::INFINITY,
        ..SimConfig::default()
    };
    let sim = simulate(&t, dist, &df, &sim_cfg);
    let exec =
        execute(&t, dist, &df, &ExecConfig::from_sim(&sim_cfg, 8.0)).expect("valid exec config");
    assert_eq!(exec.dropped, 0);
    // Every pair the simulator matched is matched by the executor (same
    // windows, same selectivity hash). The executor additionally drains
    // the tuples in flight at the simulator's cut-off, so it may see a
    // small tail of extra matches — but never fewer, and never many.
    assert!(
        exec.matched >= sim.matched,
        "executor lost matches: exec {} vs sim {}",
        exec.matched,
        sim.matched
    );
    let extra = (exec.matched - sim.matched) as f64;
    assert!(
        extra <= (sim.matched as f64 * 0.10).max(8.0),
        "tail drift too large: exec {} vs sim {}",
        exec.matched,
        sim.matched
    );
}
