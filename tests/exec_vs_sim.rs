//! Cross-validation: the threaded executor against the discrete-event
//! simulator, on identical dataflows.
//!
//! The executor replaces the simulator's global event heap with real
//! threads and channels, but both enforce the same resource model, so
//! on an uncongested topology they must agree on *what* is delivered
//! (counts within a tight tolerance; here ≤ 15 %) and on *how
//! placements rank* (latency ordering across the source/sink/worker
//! baselines).

use nova::core::baselines::{sink_based, source_based};
use nova::core::placement::direct_path;
use nova::core::{PlacedReplica, Placement};
use nova::runtime::{simulate, Dataflow, SimConfig, SimResult};
use nova::{execute, ExecConfig, ExecResult, JoinQuery, NodeId, NodeRole, StreamSpec, Topology};

/// Uncongested 4-node world: sink(0), left(1), right(2), worker(3).
/// Rates divide 1000 exactly so both engines produce identical float
/// event-time sequences.
fn world() -> (Topology, JoinQuery) {
    let mut t = Topology::new();
    let sink = t.add_node(NodeRole::Sink, 1000.0, "sink");
    let l = t.add_node(NodeRole::Source, 1000.0, "l");
    let r = t.add_node(NodeRole::Source, 1000.0, "r");
    t.add_node(NodeRole::Worker, 1000.0, "w");
    let q = JoinQuery::by_key(
        vec![StreamSpec::keyed(l, 40.0, 1)],
        vec![StreamSpec::keyed(r, 40.0, 1)],
        sink,
    );
    (t, q)
}

/// Link latencies that separate the three placements cleanly: the
/// worker sits far from everything, so detouring over it is clearly
/// worst; joining at a source beats that; the sink is closest.
fn dist(a: NodeId, b: NodeId) -> f64 {
    if a == b {
        return 0.0;
    }
    let worker = 3;
    if a.idx() == worker || b.idx() == worker {
        80.0
    } else if a.idx() == 0 || b.idx() == 0 {
        40.0
    } else {
        30.0
    }
}

/// All joins on the worker node (the "cluster head" style baseline).
fn worker_based(query: &JoinQuery, topology: &Topology) -> Placement {
    let head = topology
        .nodes()
        .iter()
        .find(|n| n.role == NodeRole::Worker)
        .map(|n| n.id)
        .expect("world has a worker");
    let plan = query.resolve();
    let mut placement = Placement::new("worker-based");
    for pair in &plan.pairs {
        let left = query.left_stream(pair);
        let right = query.right_stream(pair);
        placement.replicas.push(PlacedReplica {
            pair: pair.id,
            node: head,
            left_rate: left.rate,
            right_rate: right.rate,
            left_partitions: vec![0],
            right_partitions: vec![0],
            merged_replicas: 1,
            left_path: direct_path(left.node, head),
            right_path: direct_path(right.node, head),
            out_path: direct_path(head, query.sink),
            output_rate: query.output_rate(pair),
            overflowed: false,
        });
    }
    placement
}

fn run_both(t: &Topology, df: &Dataflow, sim_cfg: &SimConfig) -> (SimResult, ExecResult) {
    let sim = simulate(t, dist, df, sim_cfg);
    let exec_cfg = ExecConfig::from_sim(sim_cfg, 8.0);
    let exec = execute(t, dist, df, &exec_cfg);
    (sim, exec)
}

#[test]
fn delivered_counts_agree_within_tolerance() {
    let (t, q) = world();
    let plan = q.resolve();
    let sim_cfg = SimConfig {
        duration_ms: 2000.0,
        window_ms: 100.0,
        ..SimConfig::default()
    };
    for (name, placement) in [
        ("sink", sink_based(&q, &plan)),
        ("source", source_based(&q, &plan)),
        ("worker", worker_based(&q, &t)),
    ] {
        let df = Dataflow::from_baseline(&q, &placement);
        let (sim, exec) = run_both(&t, &df, &sim_cfg);
        assert!(sim.delivered > 0, "{name}: simulator delivered nothing");
        assert_eq!(exec.dropped, 0, "{name}: uncongested run must not shed");
        let within = exec.delivered_by(sim_cfg.duration_ms);
        let drift = (within as f64 - sim.delivered as f64).abs() / sim.delivered as f64;
        assert!(
            drift <= 0.15,
            "{name}: exec {within} vs sim {} ({:.1}% apart)",
            sim.delivered,
            drift * 100.0
        );
    }
}

#[test]
fn latency_ordering_matches_across_placements() {
    let (t, q) = world();
    let plan = q.resolve();
    let sim_cfg = SimConfig {
        duration_ms: 2000.0,
        window_ms: 100.0,
        ..SimConfig::default()
    };
    let mut sim_means = Vec::new();
    let mut exec_means = Vec::new();
    for placement in [
        sink_based(&q, &plan),
        source_based(&q, &plan),
        worker_based(&q, &t),
    ] {
        let df = Dataflow::from_baseline(&q, &placement);
        let (sim, exec) = run_both(&t, &df, &sim_cfg);
        sim_means.push(sim.mean_latency());
        exec_means.push(exec.mean_latency());
    }
    // The simulator must rank sink < source < worker with clear gaps
    // (that is what the link design above guarantees)...
    assert!(sim_means[0] * 1.2 < sim_means[1], "sim means {sim_means:?}");
    assert!(sim_means[1] * 1.2 < sim_means[2], "sim means {sim_means:?}");
    // ...and the executor must reproduce the ordering.
    assert!(
        exec_means[0] < exec_means[1] && exec_means[1] < exec_means[2],
        "executor broke the placement ordering: sim {sim_means:?} exec {exec_means:?}"
    );
    // Per-placement mean latency agrees within 25 % (the executor adds
    // real scheduling jitter on top of the model latencies).
    for (s, e) in sim_means.iter().zip(&exec_means) {
        assert!(
            (s - e).abs() / s <= 0.25,
            "latency drift too large: sim {sim_means:?} exec {exec_means:?}"
        );
    }
}

#[test]
fn matched_sets_are_identical_with_shared_selectivity() {
    // With the shared deterministic selectivity hash, the two engines
    // must agree on exactly which tuple pairs survive, so the match
    // counts are equal (not merely close) on a drop-free run.
    let (t, q) = world();
    let plan = q.resolve();
    let p = sink_based(&q, &plan);
    let df = Dataflow::from_baseline(&q, &p);
    let sim_cfg = SimConfig {
        duration_ms: 2000.0,
        window_ms: 100.0,
        selectivity: 0.4,
        ..SimConfig::default()
    };
    let sim = simulate(&t, dist, &df, &sim_cfg);
    let exec = execute(&t, dist, &df, &ExecConfig::from_sim(&sim_cfg, 8.0));
    assert_eq!(exec.dropped, 0);
    // Every pair the simulator matched is matched by the executor (same
    // windows, same selectivity hash). The executor additionally drains
    // the tuples in flight at the simulator's cut-off, so it may see a
    // small tail of extra matches — but never fewer, and never many.
    assert!(
        exec.matched >= sim.matched,
        "executor lost matches: exec {} vs sim {}",
        exec.matched,
        sim.matched
    );
    let extra = (exec.matched - sim.matched) as f64;
    assert!(
        extra <= (sim.matched as f64 * 0.10).max(8.0),
        "tail drift too large: exec {} vs sim {}",
        exec.matched,
        sim.matched
    );
}
