//! End-to-end environmental monitoring (the paper's §4.7 scenario).
//!
//! Pressure ⋈ humidity per region at 1 kHz on a simulated 14-node
//! Raspberry-Pi cluster: places the query with Nova and with the
//! sink-based default, deploys both on the discrete-event engine, and
//! compares delivered throughput and latency percentiles.
//!
//! Run with: `cargo run --release --example environmental_monitoring`

use nova::core::baselines::sink_based;
use nova::core::{Nova, NovaConfig};
use nova::netcoord::{classical_mds, CostSpace};
use nova::runtime::{run_placement, SimConfig};
use nova::workloads::{environmental_scenario, EnvironmentalParams};

fn main() {
    let scenario = environmental_scenario(&EnvironmentalParams::default());
    let topology = &scenario.cluster.topology;
    println!(
        "cluster: {} nodes ({} sources in {} regions, {} workers, 1 sink)",
        topology.len(),
        scenario.query.left.len() + scenario.query.right.len(),
        scenario.query.left.len(),
        scenario.cluster.workers.len(),
    );

    // Exact cost space for the small cluster.
    let space = CostSpace::new(classical_mds(scenario.cluster.rtt.dense(), 2, 7));
    let mut nova = Nova::with_cost_space(topology.clone(), space, NovaConfig::default());
    nova.optimize(scenario.query.clone());

    let plan = scenario.query.resolve();
    let sink_placement = sink_based(&scenario.query, &plan);

    let sim = SimConfig {
        duration_ms: 20_000.0,
        window_ms: 100.0,
        selectivity: 0.002,
        ..SimConfig::default()
    };
    println!("\nsimulating 20 s of 8 kHz aggregate sensor traffic...\n");
    let nova_run = run_placement(
        topology,
        &scenario.cluster.rtt,
        &scenario.query,
        nova.placement(),
        NovaConfig::default().sigma,
        &sim,
    );
    let sink_run = run_placement(
        topology,
        &scenario.cluster.rtt,
        &scenario.query,
        &sink_placement,
        1.0,
        &sim,
    );

    for (name, r) in [("nova", &nova_run), ("sink", &sink_run)] {
        println!(
            "{name:>5}: delivered {:>6}  mean {:>6.1} ms  90P {:>6.1} ms  99.99P {:>6.1} ms  dropped {:>7}",
            r.delivered,
            r.mean_latency(),
            r.latency_percentile(0.9),
            r.latency_percentile(0.9999),
            r.dropped,
        );
    }
    let speedup = nova_run.delivered as f64 / sink_run.delivered.max(1) as f64;
    println!("\nNova delivers {speedup:.1}× the sink-based throughput (paper: 13.4× on real Pis).");
    assert!(speedup > 2.0);
}
