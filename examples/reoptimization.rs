//! Re-optimization under churn (§3.5): sensors joining, nodes failing,
//! rates shifting — without ever recomputing the full placement.
//!
//! Run with: `cargo run --release --example reoptimization`

use std::time::Instant;

use nova::core::{Nova, NovaConfig, Side};
use nova::netcoord::{Vivaldi, VivaldiConfig};
use nova::topology::{LatencyProvider, NodeId, SyntheticParams, SyntheticTopology};
use nova::workloads::{synthetic_opp, OppParams};

/// Provider view that maps ids beyond the base population onto an anchor
/// node (new sensors join near existing infrastructure).
struct Grown<'a, P> {
    inner: &'a P,
    base: usize,
    anchor: NodeId,
}

impl<P: LatencyProvider> LatencyProvider for Grown<'_, P> {
    fn len(&self) -> usize {
        self.base + 8
    }
    fn rtt(&self, a: NodeId, b: NodeId) -> f64 {
        let map = |x: NodeId| if x.idx() >= self.base { self.anchor } else { x };
        let (a, b) = (map(a), map(b));
        if a == b {
            0.7
        } else {
            self.inner.rtt(a, b)
        }
    }
}

fn main() {
    let n = 2_000;
    let syn = SyntheticTopology::generate(&SyntheticParams {
        n,
        seed: 42,
        ..Default::default()
    });
    let w = synthetic_opp(
        &syn.topology,
        &OppParams {
            seed: 42,
            ..OppParams::default()
        },
    );
    println!(
        "topology: {n} nodes, query: {} join pairs",
        w.query.resolve().len()
    );

    let vivaldi_cfg = VivaldiConfig {
        neighbors: 20,
        rounds: 32,
        ..VivaldiConfig::default()
    };
    let space = Vivaldi::embed(&syn.rtt, vivaldi_cfg).into_cost_space();
    let mut nova = Nova::with_cost_space(
        w.topology.clone(),
        space,
        NovaConfig {
            vivaldi: vivaldi_cfg,
            ..NovaConfig::default()
        },
    );

    let t = Instant::now();
    nova.optimize(w.query.clone());
    println!(
        "full optimization: {:?} ({} instances)\n",
        t.elapsed(),
        nova.placement().instance_count()
    );

    let grown = Grown {
        inner: &syn.rtt,
        base: n,
        anchor: w.query.left[0].node,
    };
    let show = |label: &str, t: Instant, touched: usize| {
        println!(
            "{label:<28} {:>10.3?}  pairs touched: {touched}",
            t.elapsed()
        );
    };

    // 1. A new sensor joins region 0.
    let t = Instant::now();
    let out = nova
        .add_source(&grown, Side::Left, 60.0, 0, 120.0, "new-sensor")
        .expect("add source");
    show("add source", t, out.replaced_pairs.len());

    // 2. A join host fails.
    let victim = nova.placement().nodes_used()[0];
    let t = Instant::now();
    let out = nova.remove_node(victim).expect("remove worker");
    show("remove join host", t, out.replaced_pairs.len());

    // 3. An idle worker is added.
    let t = Instant::now();
    let _ = nova.add_worker(&grown, 300.0, "fresh-worker");
    show("add worker", t, 0);

    // 4. A sensor's rate doubles.
    let t = Instant::now();
    let out = nova
        .change_rate(Side::Right, 1, 180.0)
        .expect("rate change");
    show("rate change", t, out.replaced_pairs.len());

    // 5. A node's latency profile drifts. (The provider must cover the
    // grown population — nodes added in steps 1 and 3 may be sampled as
    // embedding neighbors.)
    let host = nova.placement().nodes_used()[0];
    let t = Instant::now();
    let out = nova.update_coordinates(&grown, host).expect("coord update");
    show("coordinate update", t, out.replaced_pairs.len());

    println!(
        "\nplacement still covers {} pairs; no global recomputation performed.",
        nova.placement()
            .replicas
            .iter()
            .map(|r| r.pair)
            .collect::<std::collections::HashSet<_>>()
            .len()
    );
}
