//! Real execution: the same placement, simulated and then *run*.
//!
//! Builds a small edge topology (two regions × two sensor streams, four
//! workers, one sink), places the join with the sink-based baseline,
//! and executes the deployed dataflow four times: on the discrete-event
//! simulator, on the `nova-exec` threaded executor (one OS thread per
//! source task, join instance and sink — 7 threads here), on the
//! sharded backend with 4 join shards per instance (`cfg.shards = 4`,
//! 13 threads), and on the async event loop (the same 4-shard layout as
//! 8 cooperative tasks multiplexed onto 2 worker threads — 7 threads
//! total). Prints delivered throughput and p50/p99 latency from all
//! engines side by side, plus the executors' hardware throughput —
//! note every backend matches the threaded run count for count.
//!
//! Run with: `cargo run --release --example real_execution`

use nova::core::baselines::sink_based;
use nova::runtime::{simulate, Dataflow, SimConfig};
use nova::{execute, BackendKind, ExecConfig, JoinQuery, NodeId, NodeRole, StreamSpec, Topology};

fn main() {
    // Topology: sink(0), 2×2 sources, four workers.
    let mut t = Topology::new();
    let sink = t.add_node(NodeRole::Sink, 5000.0, "sink");
    let mut left = Vec::new();
    let mut right = Vec::new();
    for region in 0..2u32 {
        let l = t.add_node(NodeRole::Source, 2000.0, format!("pressure-{region}"));
        let r = t.add_node(NodeRole::Source, 2000.0, format!("humidity-{region}"));
        left.push(StreamSpec::keyed(l, 400.0, region));
        right.push(StreamSpec::keyed(r, 400.0, region));
    }
    for i in 0..4 {
        t.add_node(NodeRole::Worker, 3000.0, format!("w{i}"));
    }
    let query = JoinQuery::by_key(left, right, sink);

    // Flat 8 ms links (tc-style injected delay).
    let dist = |a: NodeId, b: NodeId| if a == b { 0.0 } else { 8.0 };

    let placement = sink_based(&query, &query.resolve());
    let dataflow = Dataflow::from_baseline(&query, &placement);

    let sim_cfg = SimConfig {
        duration_ms: 5_000.0,
        window_ms: 50.0,
        selectivity: 0.05,
        ..SimConfig::default()
    };
    let sim = simulate(&t, dist, &dataflow, &sim_cfg);

    // Same experiment on real threads, dilated 4× (5 s virtual ≈ 1.25 s wall),
    // then once more with 4 join shards per instance.
    let exec_cfg = ExecConfig::from_sim(&sim_cfg, 4.0);
    let exec = execute(&t, dist, &dataflow, &exec_cfg).expect("valid exec config");
    let sharded_cfg = ExecConfig {
        shards: 4,
        ..exec_cfg
    };
    let sharded = execute(&t, dist, &dataflow, &sharded_cfg).expect("valid exec config");
    // And once more on the M:N event loop: the same 4-shard layout, but
    // as cooperative tasks on 2 worker threads instead of 8 OS threads.
    let async_cfg = ExecConfig {
        backend: BackendKind::Async,
        workers: 2,
        ..sharded_cfg
    };
    let evloop = execute(&t, dist, &dataflow, &async_cfg).expect("valid exec config");

    println!(
        "sink-based placement: {} threads threaded (4 sources + 2 joins + sink), \
         {} threads sharded (4 shards per join), {} threads async \
         (8 shard tasks on 2 workers)\n",
        exec.threads, sharded.threads, evloop.threads
    );
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "engine", "delivered", "out/s", "p50 ms", "p99 ms", "dropped"
    );
    println!(
        "{:<12} {:>12} {:>12.1} {:>10.2} {:>10.2} {:>10}",
        "simulator",
        sim.delivered,
        sim.throughput_per_s(sim_cfg.duration_ms),
        sim.latency_percentile(0.5),
        sim.latency_percentile(0.99),
        sim.dropped,
    );
    for (name, r) in [
        ("exec", &exec),
        ("exec-4shard", &sharded),
        ("exec-async", &evloop),
    ] {
        println!(
            "{:<12} {:>12} {:>12.1} {:>10.2} {:>10.2} {:>10}",
            name,
            r.delivered,
            r.throughput_per_s(exec_cfg.duration_ms),
            r.latency_percentile(0.5),
            r.latency_percentile(0.99),
            r.dropped,
        );
    }
    println!(
        "\nexecutor: {} tuples in {:.0} ms wall → {:.0} tuples/s through real threads",
        exec.emitted,
        exec.wall_ms,
        exec.input_tuples_per_wall_s(),
    );
    // Count identity between backends is guaranteed only on drop-free
    // runs; on a heavily loaded host a stalled thread can trip the
    // bounded queue and shed a tuple, so gate the exact asserts.
    if exec.dropped == 0 && sharded.dropped == 0 && evloop.dropped == 0 {
        assert_eq!(
            sharded.matched, exec.matched,
            "sharding must not change what matches"
        );
        assert_eq!(sharded.delivered, exec.delivered);
        assert_eq!(
            evloop.matched, exec.matched,
            "cooperative scheduling must not change what matches"
        );
        assert_eq!(evloop.delivered, exec.delivered);
    } else {
        println!("note: shedding occurred; exact count identity not checked");
    }
    let within = exec.delivered_by(exec_cfg.duration_ms);
    let drift = (within as f64 - sim.delivered as f64).abs() / sim.delivered.max(1) as f64;
    println!(
        "cross-check: exec delivered {within} within the simulated horizon vs sim {} ({:.1}% apart)",
        sim.delivered,
        drift * 100.0
    );
    assert!(exec.threads >= 4, "expected at least 4 worker threads");

    // ---- Live reconfiguration (exec-side §3.5) -----------------------
    // Re-place the joins onto a worker *while the stream is running*:
    // launch a reconfigurable run, apply a PlanSwitch mid-stream (epoch
    // at 2.5 s, deliberately mid-window), and verify the counts moved
    // nowhere — the epoch barrier + state handoff make a pure
    // re-placement invisible to what is matched and delivered.
    use nova::core::baselines::source_based;
    use nova::{launch, PlanSwitch};
    let post = source_based(&query, &query.resolve());
    let switch = PlanSwitch::between(2_525.0, &query, &placement, &post, 1.0);
    let mut handle = launch(&t, dist, &dataflow, &sharded_cfg).expect("valid exec config");
    let stats = handle.apply(&switch, dist).expect("live reconfiguration");
    let churned = handle.join();
    println!(
        "\nlive reconfiguration at t = {:.0} ms: {} window groups ({} tuples) handed off \
         in {:.2} ms of stop-the-world time; counts unchanged: {} delivered",
        stats.epoch_ms,
        stats.migrated_groups,
        stats.migrated_tuples,
        stats.handoff_wall_ms,
        churned.delivered,
    );
    if churned.dropped == 0 && sharded.dropped == 0 {
        assert_eq!(
            churned.matched, sharded.matched,
            "a pure re-placement must not change what matches"
        );
        assert_eq!(churned.delivered, sharded.delivered);
    }
}
