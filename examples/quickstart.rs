//! Quickstart: Nova on the paper's running example (§3.1, Fig. 2).
//!
//! Builds the two-region environmental topology, runs Algorithm 1, and
//! compares the resulting placement against the cloud strategy the paper
//! uses as its motivating contrast (~275 ms end-to-end vs ~150/175 ms).
//!
//! Run with: `cargo run --release --example quickstart`

use nova::core::{evaluate, EvalOptions, JoinQuery, Nova, NovaConfig, StreamSpec};
use nova::topology::{running_example, LatencyProvider, RUNNING_EXAMPLE_RATE};

fn main() {
    // 1. The topology: 6 sensors in two regions, fog nodes A–G, a cloud
    //    node E and a local sink, with the paper's latencies.
    let ex = running_example();
    println!(
        "topology: {} nodes, {} links",
        ex.topology.len(),
        ex.topology.links().len()
    );

    // 2. The query: pressure (T) ⋈ humidity (W) by region id. Source
    //    expansion yields 4 pressure + 2 humidity physical streams; the
    //    join matrix pairs them within regions.
    let stream = |id| {
        let region = ex.topology.node(id).region.expect("sensors carry regions");
        StreamSpec::keyed(id, RUNNING_EXAMPLE_RATE, region)
    };
    let query = JoinQuery::by_key(
        ex.pressure.iter().copied().map(stream).collect(),
        ex.humidity.iter().copied().map(stream).collect(),
        ex.sink,
    );
    println!(
        "query: {} join pairs after resolution",
        query.resolve().len()
    );

    // 3. Optimize. Phase I embeds the measured latencies via Vivaldi;
    //    C_min = 15 reproduces the §3.4 walk-through's availability
    //    threshold.
    let mut nova = Nova::from_provider(
        ex.topology.clone(),
        ex.rtt.dense(),
        NovaConfig {
            c_min: 15.0,
            ..NovaConfig::default()
        },
    );
    nova.optimize(query.clone());

    println!("\nplacement:");
    for rep in &nova.placement().replicas {
        println!(
            "  {}: node {:>4}  left {:>5.1} t/s  right {:>5.1} t/s  (merged {} sub-replicas)",
            rep.pair,
            nova.topology().node(rep.node).label,
            rep.left_rate,
            rep.right_rate,
            rep.merged_replicas,
        );
    }

    // 4. Measure under the real latencies and compare with the
    //    cloud-node strategy from the paper's introduction.
    let eval = evaluate(
        nova.placement(),
        nova.topology(),
        |a, b| ex.rtt.rtt(a, b),
        EvalOptions::default(),
    );
    let cloud = ex.topology.by_label("E").expect("cloud node");
    let worst_cloud = ex
        .pressure
        .iter()
        .chain(&ex.humidity)
        .map(|&s| ex.rtt.rtt(s, cloud) + ex.rtt.rtt(cloud, ex.sink))
        .fold(0.0f64, f64::max);
    println!(
        "\nnova:  max end-to-end {:.0} ms, overloaded nodes: {}",
        eval.max_latency(),
        eval.overloaded_nodes
    );
    println!("cloud: max end-to-end {worst_cloud:.0} ms (the paper's ~275 ms contrast)");
    assert!(eval.max_latency() < worst_cloud);
    assert_eq!(eval.overloaded_nodes, 0);
    println!("\nNova beats the cloud placement while overloading nothing. ✓");
}
