//! Smart city: joining high-rate traffic streams with low-rate weather
//! streams to adjust speed limits (the paper's introduction scenario).
//!
//! Highlights the bandwidth-aware partitioning trade-off (§3.4): the
//! strongly asymmetric rates make the joint p_max weighting leave the
//! small weather stream whole while splitting only the traffic stream —
//! less duplicated traffic and smaller replicas than independent
//! per-stream partitioning.
//!
//! Run with: `cargo run --release --example smart_city`

use nova::core::{evaluate, EvalOptions, Nova, NovaConfig, PartitionedJoin};
use nova::netcoord::{classical_mds, CostSpace};
use nova::topology::LatencyProvider;
use nova::workloads::{smart_city_scenario, SmartCityParams};

fn main() {
    let params = SmartCityParams::default();
    let scenario = smart_city_scenario(&params);
    println!(
        "city: {} districts, traffic {} t/s vs weather {} t/s per district\n",
        params.districts, params.traffic_rate, params.weather_rate
    );

    // The §3.4 design choice, concretely: joint vs independent split for
    // one district's pair.
    let sigma = 0.4;
    let joint = PartitionedJoin::decompose(params.traffic_rate, params.weather_rate, sigma);
    println!(
        "joint weighting (Eq. 7):   traffic → {} partitions, weather → {} partition(s)",
        joint.left.len(),
        joint.right.len()
    );
    println!(
        "  max replica demand {:.0} t/s, total transfer {:.0} t/s",
        joint.max_replica_capacity(),
        joint.total_transfer()
    );
    // Independent σ-partitioning splits both streams 1/σ ways.
    let splits = (1.0 / sigma).ceil() as usize;
    let ind_transfer = params.traffic_rate * splits as f64 + params.weather_rate * splits as f64;
    println!(
        "independent σ splits:      both → {splits} partitions, transfer {ind_transfer:.0} t/s\n"
    );

    // Place the whole city query.
    let space = CostSpace::new(classical_mds(scenario.cluster.rtt.dense(), 2, 3));
    let mut nova = Nova::with_cost_space(
        scenario.cluster.topology.clone(),
        space,
        NovaConfig {
            sigma,
            ..NovaConfig::default()
        },
    );
    nova.optimize(scenario.query.clone());

    println!(
        "placement ({} merged instances):",
        nova.placement().instance_count()
    );
    for rep in &nova.placement().replicas {
        println!(
            "  district-join {} on {:<8} traffic {:>5.0} t/s + weather {:>3.0} t/s",
            rep.pair,
            nova.topology().node(rep.node).label,
            rep.left_rate,
            rep.right_rate,
        );
    }
    let eval = evaluate(
        nova.placement(),
        nova.topology(),
        |a, b| scenario.cluster.rtt.rtt(a, b),
        EvalOptions::default(),
    );
    println!(
        "\nmean control-room latency {:.1} ms, 90P {:.1} ms, overloaded nodes {}",
        eval.mean_latency(),
        eval.latency_percentile(0.9),
        eval.overloaded_nodes
    );
    assert_eq!(eval.overloaded_nodes, 0);
}
