//! Latency providers: where pairwise RTTs come from.
//!
//! The paper conceptually works with a symmetric latency matrix `A` whose
//! entry `A_ij` is the end-to-end latency between nodes ν_i and ν_j
//! (§3.2). Depending on the topology source we materialize it differently:
//!
//! * [`DenseRtt`] — a fully materialized symmetric matrix, used for the
//!   testbed-scale topologies (hundreds to ~2000 nodes) and for the
//!   24-hour drift replay,
//! * [`GeoRtt`] — an *on-demand* model for synthetic scalability
//!   topologies (up to 10⁶ nodes, where a dense matrix would need ~8 TB):
//!   RTT is derived from ground-truth geographic positions plus
//!   deterministic per-pair jitter and optional triangle-inequality
//!   violations,
//! * [`GraphRtt`] — all-pairs shortest paths over explicit links, used
//!   for hand-built topologies like the paper's running example.

use nova_geom::Coord;

use crate::graph::{NodeId, Topology};
use crate::routing::dijkstra;

/// Source of pairwise round-trip latencies (milliseconds).
pub trait LatencyProvider {
    /// Number of nodes covered by this provider.
    fn len(&self) -> usize;

    /// Whether the provider covers no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Round-trip latency between `a` and `b` in milliseconds. Must be
    /// symmetric and zero on the diagonal.
    fn rtt(&self, a: NodeId, b: NodeId) -> f64;
}

/// Fully materialized symmetric latency matrix.
#[derive(Debug, Clone)]
pub struct DenseRtt {
    n: usize,
    /// Row-major `n × n` storage. Kept dense (rather than triangular) for
    /// simple indexing; testbed sizes make this at most ~24 MB.
    data: Vec<f64>,
}

impl DenseRtt {
    /// A zero matrix over `n` nodes.
    pub fn zeros(n: usize) -> Self {
        DenseRtt {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Build from a function of node pairs; `f` is called once per
    /// unordered pair and mirrored.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = DenseRtt::zeros(n);
        for i in 0..n {
            for j in (i + 1)..n {
                let v = f(i, j);
                m.data[i * n + j] = v;
                m.data[j * n + i] = v;
            }
        }
        m
    }

    /// Materialize any provider into a dense matrix.
    pub fn from_provider(p: &impl LatencyProvider) -> Self {
        DenseRtt::from_fn(p.len(), |i, j| p.rtt(NodeId(i as u32), NodeId(j as u32)))
    }

    /// Number of nodes covered (inherent mirror of the trait method, so
    /// callers need not import [`LatencyProvider`]).
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix covers no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Set the symmetric entry `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
        self.data[j * self.n + i] = v;
    }

    /// Entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Iterate over all strictly-upper-triangle entries `(i, j, rtt)`.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n).flat_map(move |i| ((i + 1)..self.n).map(move |j| (i, j, self.get(i, j))))
    }

    /// Number of pairs `(i, j)` (i < j) for which the latency differs from
    /// `other` by more than `threshold` ms, plus the median absolute
    /// change among those. Used by the drift experiment (Fig. 9).
    pub fn diff_stats(&self, other: &DenseRtt, threshold: f64) -> (usize, f64) {
        assert_eq!(self.n, other.n, "matrix size mismatch");
        let mut changes: Vec<f64> = self
            .pairs()
            .filter_map(|(i, j, v)| {
                let d = (v - other.get(i, j)).abs();
                (d > threshold).then_some(d)
            })
            .collect();
        if changes.is_empty() {
            return (0, 0.0);
        }
        changes.sort_unstable_by(f64::total_cmp);
        let median = changes[changes.len() / 2];
        (changes.len(), median)
    }

    /// Fraction of node triples (sampled) violating the triangle
    /// inequality, i.e. `rtt(a,c) > rtt(a,b) + rtt(b,c)`. Real-world
    /// latency datasets exhibit such TIVs (§3.2 limitations).
    pub fn tiv_rate(&self, samples: usize, seed: u64) -> f64 {
        if self.n < 3 {
            return 0.0;
        }
        let mut violations = 0usize;
        let mut state = seed | 1;
        let mut next = move || {
            // xorshift64* — cheap deterministic sampling.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..samples {
            let a = (next() % self.n as u64) as usize;
            let b = (next() % self.n as u64) as usize;
            let c = (next() % self.n as u64) as usize;
            if a == b || b == c || a == c {
                continue;
            }
            if self.get(a, c) > self.get(a, b) + self.get(b, c) + 1e-9 {
                violations += 1;
            }
        }
        violations as f64 / samples as f64
    }
}

impl LatencyProvider for DenseRtt {
    fn len(&self) -> usize {
        DenseRtt::len(self)
    }

    #[inline]
    fn rtt(&self, a: NodeId, b: NodeId) -> f64 {
        self.get(a.idx(), b.idx())
    }
}

/// SplitMix64 — deterministic per-pair hash used for reproducible jitter.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Uniform f64 in [0, 1) from a hash.
#[inline]
pub(crate) fn hash_unit(x: u64) -> f64 {
    (splitmix64(x) >> 11) as f64 / (1u64 << 53) as f64
}

/// On-demand geographic latency model for very large synthetic topologies.
///
/// `rtt(a, b) = access(a) + access(b) + dist(a, b) · ms_per_unit · jitter`,
/// where `jitter` is a deterministic per-pair factor in
/// `[1 − jitter_frac, 1 + jitter_frac]`, optionally inflated by a detour
/// factor with probability `tiv_prob` to create triangle-inequality
/// violations.
#[derive(Debug, Clone)]
pub struct GeoRtt {
    positions: Vec<Coord>,
    access_ms: Vec<f64>,
    /// Propagation cost per unit of geographic distance.
    pub ms_per_unit: f64,
    /// Relative jitter amplitude (0 = deterministic distances).
    pub jitter_frac: f64,
    /// Probability that a pair receives a detour inflation.
    pub tiv_prob: f64,
    /// Maximum detour multiplication factor (≥ 1).
    pub tiv_factor: f64,
    /// Seed mixed into every per-pair hash.
    pub seed: u64,
}

impl GeoRtt {
    /// Build a model over ground-truth positions with per-node access
    /// latencies (e.g. last-mile delays of edge devices).
    pub fn new(positions: Vec<Coord>, access_ms: Vec<f64>, ms_per_unit: f64, seed: u64) -> Self {
        assert_eq!(
            positions.len(),
            access_ms.len(),
            "positions/access length mismatch"
        );
        GeoRtt {
            positions,
            access_ms,
            ms_per_unit,
            jitter_frac: 0.1,
            tiv_prob: 0.0,
            tiv_factor: 1.0,
            seed,
        }
    }

    /// Enable TIV injection: with probability `prob` a pair's latency is
    /// multiplied by a factor drawn uniformly from `[1.2, factor]`.
    pub fn with_tivs(mut self, prob: f64, factor: f64) -> Self {
        self.tiv_prob = prob;
        self.tiv_factor = factor.max(1.2);
        self
    }

    /// Set the relative jitter amplitude.
    pub fn with_jitter(mut self, frac: f64) -> Self {
        self.jitter_frac = frac;
        self
    }

    /// Ground-truth positions (used by tests and by generators that also
    /// need the geometry).
    pub fn positions(&self) -> &[Coord] {
        &self.positions
    }

    #[inline]
    fn pair_hash(&self, a: usize, b: usize) -> u64 {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        splitmix64(self.seed ^ ((lo as u64) << 32 | hi as u64))
    }
}

impl LatencyProvider for GeoRtt {
    fn len(&self) -> usize {
        self.positions.len()
    }

    fn rtt(&self, a: NodeId, b: NodeId) -> f64 {
        if a == b {
            return 0.0;
        }
        let (i, j) = (a.idx(), b.idx());
        let base = self.positions[i].dist(&self.positions[j]) * self.ms_per_unit;
        let h = self.pair_hash(i, j);
        let jitter = 1.0 + self.jitter_frac * (2.0 * hash_unit(h) - 1.0);
        let mut v = self.access_ms[i] + self.access_ms[j] + base * jitter;
        if self.tiv_prob > 0.0 {
            let h2 = splitmix64(h ^ 0xD1F7);
            if hash_unit(h2) < self.tiv_prob {
                let detour = 1.2 + (self.tiv_factor - 1.2) * hash_unit(splitmix64(h2 ^ 0xBEEF));
                v *= detour;
            }
        }
        v
    }
}

/// All-pairs shortest-path latencies over explicit links.
///
/// Materializes the APSP matrix at construction; intended for small
/// hand-built topologies (running example, edge–fog–cloud testbeds).
#[derive(Debug, Clone)]
pub struct GraphRtt {
    dense: DenseRtt,
}

impl GraphRtt {
    /// Run Dijkstra from every node of `topology`.
    pub fn new(topology: &Topology) -> Self {
        let n = topology.len();
        let mut dense = DenseRtt::zeros(n);
        for i in 0..n {
            let r = dijkstra(topology, NodeId(i as u32));
            for j in 0..n {
                dense.data[i * n + j] = r.dist[j];
            }
        }
        GraphRtt { dense }
    }

    /// Access the underlying dense matrix.
    pub fn dense(&self) -> &DenseRtt {
        &self.dense
    }
}

impl LatencyProvider for GraphRtt {
    fn len(&self) -> usize {
        self.dense.len()
    }

    #[inline]
    fn rtt(&self, a: NodeId, b: NodeId) -> f64 {
        self.dense.rtt(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeRole;

    #[test]
    fn dense_is_symmetric_with_zero_diagonal() {
        let m = DenseRtt::from_fn(4, |i, j| (i + j) as f64);
        for i in 0..4 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..4 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
    }

    #[test]
    fn dense_pairs_covers_upper_triangle() {
        let m = DenseRtt::from_fn(4, |i, j| (i * 10 + j) as f64);
        let pairs: Vec<_> = m.pairs().collect();
        assert_eq!(pairs.len(), 6);
        assert!(pairs.iter().all(|&(i, j, _)| i < j));
    }

    #[test]
    fn diff_stats_counts_changes_over_threshold() {
        let a = DenseRtt::from_fn(3, |_, _| 100.0);
        let mut b = a.clone();
        b.set(0, 1, 130.0);
        b.set(1, 2, 105.0);
        let (count, median) = b.diff_stats(&a, 10.0);
        assert_eq!(count, 1);
        assert_eq!(median, 30.0);
    }

    #[test]
    fn geo_rtt_is_symmetric_and_deterministic() {
        let pos = vec![
            Coord::xy(0.0, 0.0),
            Coord::xy(30.0, 40.0),
            Coord::xy(-5.0, 2.0),
        ];
        let acc = vec![1.0, 2.0, 3.0];
        let g = GeoRtt::new(pos, acc, 1.0, 7).with_jitter(0.2);
        for i in 0..3u32 {
            for j in 0..3u32 {
                assert_eq!(g.rtt(NodeId(i), NodeId(j)), g.rtt(NodeId(j), NodeId(i)));
            }
        }
        assert_eq!(g.rtt(NodeId(0), NodeId(0)), 0.0);
        // Distance 50 with ±20% jitter and 3ms access: within [43, 63].
        let r = g.rtt(NodeId(0), NodeId(1));
        assert!(r > 43.0 && r < 63.0, "rtt {r}");
    }

    #[test]
    fn geo_rtt_tivs_create_triangle_violations() {
        // A long chain of points: without TIVs the straight-line geometry
        // is (nearly) metric; with heavy TIV injection violations appear.
        let n = 60;
        let pos: Vec<Coord> = (0..n).map(|i| Coord::xy(i as f64 * 10.0, 0.0)).collect();
        let acc = vec![0.0; n];
        let clean = GeoRtt::new(pos.clone(), acc.clone(), 1.0, 3).with_jitter(0.0);
        let dirty = GeoRtt::new(pos, acc, 1.0, 3)
            .with_jitter(0.0)
            .with_tivs(0.4, 3.0);
        let clean_rate = DenseRtt::from_provider(&clean).tiv_rate(20_000, 1);
        let dirty_rate = DenseRtt::from_provider(&dirty).tiv_rate(20_000, 1);
        assert!(clean_rate < 0.01, "clean rate {clean_rate}");
        assert!(dirty_rate > 0.05, "dirty rate {dirty_rate}");
    }

    #[test]
    fn graph_rtt_matches_dijkstra() {
        let mut t = Topology::new();
        let a = t.add_node(NodeRole::Source, 1.0, "a");
        let b = t.add_node(NodeRole::Worker, 1.0, "b");
        let c = t.add_node(NodeRole::Sink, 1.0, "c");
        t.add_link(a, b, 3.0, None);
        t.add_link(b, c, 4.0, None);
        let g = GraphRtt::new(&t);
        assert_eq!(g.rtt(a, c), 7.0);
        assert_eq!(g.rtt(c, a), 7.0);
        assert_eq!(g.rtt(a, a), 0.0);
    }

    #[test]
    fn from_provider_materializes_geo_model() {
        let pos = vec![Coord::xy(0.0, 0.0), Coord::xy(10.0, 0.0)];
        let g = GeoRtt::new(pos, vec![0.0, 0.0], 2.0, 5).with_jitter(0.0);
        let d = DenseRtt::from_provider(&g);
        assert_eq!(d.get(0, 1), 20.0);
    }
}
