//! Node-capacity heterogeneity control.
//!
//! The paper quantifies resource imbalance by the coefficient of variation
//! (CV) of node capacities and sweeps from a near-uniform distribution
//! (capacities between 1 and 200) to increasingly skewed distributions
//! (exponential, capacities between 1 and 1000, median ≈ 28) while keeping
//! the total capacity approximately constant (§4.1). This module provides
//! that family of distributions plus the CV metric used on the x-axis of
//! Fig. 6.

use rand::prelude::*;
use serde::{Deserialize, Serialize};

/// A capacity distribution with bounded support.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CapacityDistribution {
    /// All nodes share one capacity — CV 0, the homogeneity extreme.
    Constant {
        /// The shared capacity value.
        value: f64,
    },
    /// Uniform on `[min, max]`.
    Uniform {
        /// Lower bound of the support.
        min: f64,
        /// Upper bound of the support.
        max: f64,
    },
    /// Truncated normal: Gaussian(mean, std) clamped to `[min, max]`.
    Normal {
        /// Mean of the underlying Gaussian.
        mean: f64,
        /// Standard deviation of the underlying Gaussian.
        std: f64,
        /// Lower clamp.
        min: f64,
        /// Upper clamp.
        max: f64,
    },
    /// Truncated exponential with the given scale (mean before
    /// truncation), shifted to `min` and capped at `max`. Produces the
    /// strongly skewed high-CV regime of the paper's sweep.
    Exponential {
        /// Scale (mean) of the exponential.
        scale: f64,
        /// Shift / lower bound.
        min: f64,
        /// Upper cap.
        max: f64,
    },
}

impl CapacityDistribution {
    /// Draw one capacity.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        match *self {
            CapacityDistribution::Constant { value } => value,
            CapacityDistribution::Uniform { min, max } => rng.gen_range(min..=max),
            CapacityDistribution::Normal {
                mean,
                std,
                min,
                max,
            } => {
                // Box–Muller; two uniforms, one normal draw.
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (mean + std * z).clamp(min, max)
            }
            CapacityDistribution::Exponential { scale, min, max } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                (min - scale * u.ln()).min(max)
            }
        }
    }

    /// Draw `n` capacities and rescale them so their mean equals
    /// `target_mean` — the paper keeps total capacity approximately
    /// constant across heterogeneity levels so that only the *imbalance*
    /// changes, not the aggregate compute.
    pub fn sample_normalized(&self, n: usize, target_mean: f64, rng: &mut impl Rng) -> Vec<f64> {
        let mut v: Vec<f64> = (0..n).map(|_| self.sample(rng)).collect();
        let mean = v.iter().sum::<f64>() / n.max(1) as f64;
        if mean > 0.0 {
            let k = target_mean / mean;
            for x in &mut v {
                *x *= k;
            }
        }
        v
    }

    /// The paper's heterogeneity sweep: distributions of increasing CV,
    /// from near-homogeneous to strongly skewed, labelled for reporting.
    ///
    /// A fully constant distribution is deliberately absent: with σ = 0.4
    /// the largest join pairs have an indivisible replica quantum of
    /// 0.4·C_r, so a topology where *every* node has exactly the mean
    /// capacity cannot host them without overload regardless of the
    /// optimizer — the paper's sweep likewise starts at "near-uniform",
    /// not identical, capacities.
    pub fn paper_sweep() -> Vec<(&'static str, CapacityDistribution)> {
        vec![
            (
                "normal-tight",
                CapacityDistribution::Normal {
                    mean: 100.0,
                    std: 15.0,
                    min: 1.0,
                    max: 200.0,
                },
            ),
            (
                "normal-wide",
                CapacityDistribution::Normal {
                    mean: 100.0,
                    std: 35.0,
                    min: 1.0,
                    max: 200.0,
                },
            ),
            (
                "uniform",
                CapacityDistribution::Uniform {
                    min: 1.0,
                    max: 200.0,
                },
            ),
            (
                "exp-mild",
                CapacityDistribution::Exponential {
                    scale: 60.0,
                    min: 1.0,
                    max: 600.0,
                },
            ),
            (
                "exp-heavy",
                CapacityDistribution::Exponential {
                    scale: 120.0,
                    min: 1.0,
                    max: 1000.0,
                },
            ),
        ]
    }
}

/// Coefficient of variation: standard deviation divided by mean.
/// Returns 0 for empty input or zero mean.
pub fn coefficient_of_variation(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    #[test]
    fn cv_of_constant_is_zero() {
        assert_eq!(coefficient_of_variation(&[5.0, 5.0, 5.0]), 0.0);
        assert_eq!(coefficient_of_variation(&[]), 0.0);
    }

    #[test]
    fn cv_known_value() {
        // Values {2, 4}: mean 3, population std 1, CV = 1/3.
        let cv = coefficient_of_variation(&[2.0, 4.0]);
        assert!((cv - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn samples_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let dists = [
            CapacityDistribution::Uniform {
                min: 1.0,
                max: 200.0,
            },
            CapacityDistribution::Normal {
                mean: 100.0,
                std: 50.0,
                min: 1.0,
                max: 200.0,
            },
            CapacityDistribution::Exponential {
                scale: 100.0,
                min: 1.0,
                max: 1000.0,
            },
        ];
        for d in dists {
            for _ in 0..2000 {
                let v = d.sample(&mut rng);
                assert!(v >= 1.0, "{d:?} produced {v}");
                assert!(v <= 1000.0, "{d:?} produced {v}");
            }
        }
    }

    #[test]
    fn normalized_samples_hit_target_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = CapacityDistribution::Exponential {
            scale: 120.0,
            min: 1.0,
            max: 1000.0,
        };
        let v = d.sample_normalized(500, 80.0, &mut rng);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        assert!((mean - 80.0).abs() < 1e-9);
    }

    #[test]
    fn paper_sweep_has_increasing_cv() {
        let mut rng = StdRng::seed_from_u64(3);
        let cvs: Vec<f64> = CapacityDistribution::paper_sweep()
            .into_iter()
            .map(|(_, d)| {
                let v = d.sample_normalized(4000, 100.0, &mut rng);
                coefficient_of_variation(&v)
            })
            .collect();
        for w in cvs.windows(2) {
            assert!(
                w[1] > w[0] - 0.03,
                "sweep CVs should be (weakly) increasing: {cvs:?}"
            );
        }
        assert!(
            cvs[0] < 0.2,
            "tight normal must be near-homogeneous: {cvs:?}"
        );
        assert!(
            *cvs.last().unwrap() > 0.8,
            "heavy tail must have high CV: {cvs:?}"
        );
    }

    #[test]
    fn normalization_preserves_cv() {
        // Rescaling by a constant must not change the CV.
        let mut rng = StdRng::seed_from_u64(4);
        let d = CapacityDistribution::Uniform {
            min: 1.0,
            max: 200.0,
        };
        let raw: Vec<f64> = (0..3000).map(|_| d.sample(&mut rng)).collect();
        let mut rng2 = StdRng::seed_from_u64(4);
        let norm = d.sample_normalized(3000, 42.0, &mut rng2);
        let cv_raw = coefficient_of_variation(&raw);
        let cv_norm = coefficient_of_variation(&norm);
        assert!((cv_raw - cv_norm).abs() < 1e-9);
    }
}
