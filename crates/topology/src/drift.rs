//! 24-hour latency drift replay (the Fig. 9 resilience experiment).
//!
//! The paper measures a fixed Nova placement on a 418-node RIPE Atlas
//! subset over 24 hours: "the number of changed latency entries between
//! successive measurements over a 10 ms threshold ranged from 7k to 14k,
//! with a median change magnitude of 24 ms" (§4.5). This module generates
//! an hourly sequence of latency matrices with exactly that character:
//!
//! * a diurnal congestion component (day/night sinusoid with a per-pair
//!   random phase and amplitude),
//! * per-hour transient perturbations on a random subset of pairs, with
//!   log-uniform magnitudes (median ≈ 24 ms for the default settings),
//! * everything deterministic per seed, so an experiment can re-derive
//!   the matrix of any hour independently.

use crate::rtt::{hash_unit, splitmix64, DenseRtt};

/// Deterministic 24-hour latency drift over a base matrix.
#[derive(Debug, Clone)]
pub struct DriftModel {
    base: DenseRtt,
    /// Relative amplitude of the diurnal congestion sinusoid.
    pub diurnal_amp: f64,
    /// Per-hour probability that a pair receives a transient perturbation.
    pub perturb_prob: f64,
    /// Transient magnitude range (ms); drawn log-uniformly, so the median
    /// is the geometric mean of the bounds (√(10·60) ≈ 24.5 ms for the
    /// default 10–60 ms, matching the paper's reported median of 24 ms).
    pub perturb_ms: (f64, f64),
    /// Seed for all per-(pair, hour) hashes.
    pub seed: u64,
}

/// Summary of one drift step (hour-over-hour comparison).
#[derive(Debug, Clone, Copy)]
pub struct DriftReport {
    /// Hour index of the later matrix.
    pub hour: u32,
    /// Number of pairs whose latency changed by more than 10 ms.
    pub changed_entries: usize,
    /// Median absolute change among those pairs (ms).
    pub median_change_ms: f64,
}

impl DriftModel {
    /// Wrap a base matrix with the paper-calibrated default parameters.
    pub fn new(base: DenseRtt, seed: u64) -> Self {
        DriftModel {
            base,
            diurnal_amp: 0.06,
            perturb_prob: 0.08,
            perturb_ms: (10.0, 60.0),
            seed,
        }
    }

    /// The unmodified base matrix.
    pub fn base(&self) -> &DenseRtt {
        &self.base
    }

    /// Materialize the latency matrix at hour `hour` (fractional hours are
    /// allowed; the diurnal term is continuous, transients change on whole
    /// hours).
    pub fn at_hour(&self, hour: f64) -> DenseRtt {
        let n = self.base.len();
        let hour_idx = hour.floor() as i64;
        let mut out = DenseRtt::zeros(n);
        for (i, j, base) in self.base.pairs() {
            let pair_key = self.seed ^ ((i as u64) << 32 | j as u64);
            // Diurnal congestion: per-pair phase and amplitude weight.
            let phase = hash_unit(splitmix64(pair_key ^ 0xD1)) * 24.0;
            let weight = hash_unit(splitmix64(pair_key ^ 0xD2));
            let diurnal = 1.0
                + self.diurnal_amp
                    * weight
                    * (2.0 * std::f64::consts::PI * (hour - phase) / 24.0).sin();
            // Transient perturbation for this (pair, hour).
            let hkey = splitmix64(pair_key ^ (hour_idx as u64).wrapping_mul(0x9E37));
            let mut v = base * diurnal;
            if hash_unit(hkey) < self.perturb_prob {
                let (lo, hi) = self.perturb_ms;
                let mag = lo * (hi / lo).powf(hash_unit(splitmix64(hkey ^ 0xF00D)));
                let sign = if hash_unit(splitmix64(hkey ^ 0x5160)) < 0.5 {
                    -1.0
                } else {
                    1.0
                };
                v = (v + sign * mag).max(0.1);
            }
            out.set(i, j, v);
        }
        out
    }

    /// Replay `hours` successive hours and report hour-over-hour change
    /// statistics (the paper's 10 ms change threshold is fixed).
    pub fn replay(&self, hours: u32) -> Vec<DriftReport> {
        let mut reports = Vec::with_capacity(hours as usize);
        let mut prev = self.at_hour(0.0);
        for h in 1..=hours {
            let cur = self.at_hour(h as f64);
            let (changed_entries, median_change_ms) = cur.diff_stats(&prev, 10.0);
            reports.push(DriftReport {
                hour: h,
                changed_entries,
                median_change_ms,
            });
            prev = cur;
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_matrix(n: usize) -> DenseRtt {
        // Latencies spread over 40..240 ms, RIPE-like magnitude.
        DenseRtt::from_fn(n, |i, j| 40.0 + ((i * 31 + j * 17) % 200) as f64)
    }

    #[test]
    fn drift_is_deterministic() {
        let m = DriftModel::new(base_matrix(50), 7);
        let a = m.at_hour(5.0);
        let b = m.at_hour(5.0);
        for (i, j, v) in a.pairs() {
            assert_eq!(v, b.get(i, j));
        }
    }

    #[test]
    fn different_hours_differ() {
        let m = DriftModel::new(base_matrix(50), 7);
        let a = m.at_hour(3.0);
        let b = m.at_hour(15.0);
        let (changed, _) = a.diff_stats(&b, 10.0);
        assert!(changed > 0, "hours 3 and 15 should differ");
    }

    #[test]
    fn latencies_stay_positive() {
        let mut model = DriftModel::new(base_matrix(40), 3);
        model.perturb_prob = 0.5;
        for h in 0..24 {
            let m = model.at_hour(h as f64);
            for (_, _, v) in m.pairs() {
                assert!(v > 0.0);
            }
        }
    }

    #[test]
    fn replay_statistics_match_paper_character() {
        // 418 nodes like the paper's RIPE subset: 87 153 pairs. The paper
        // reports 7k–14k changed entries (>10 ms) per hour with a median
        // magnitude of ~24 ms.
        let m = DriftModel::new(base_matrix(418), 42);
        let reports = m.replay(6);
        for r in &reports {
            assert!(
                (5_000..=20_000).contains(&r.changed_entries),
                "hour {}: {} changed entries",
                r.hour,
                r.changed_entries
            );
            assert!(
                (15.0..=40.0).contains(&r.median_change_ms),
                "hour {}: median change {}",
                r.hour,
                r.median_change_ms
            );
        }
    }

    #[test]
    fn diurnal_component_is_smooth() {
        let mut model = DriftModel::new(base_matrix(30), 9);
        model.perturb_prob = 0.0; // isolate the sinusoid
        let a = model.at_hour(6.0);
        let b = model.at_hour(6.25);
        // Quarter-hour apart with no transients: changes must be tiny.
        let (changed, _) = a.diff_stats(&b, 10.0);
        assert_eq!(changed, 0);
    }
}
