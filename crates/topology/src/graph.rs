//! The topology graph: nodes, roles, capacities and links.
//!
//! Matches the paper's resource model (§2.2): each node ν has an available
//! compute capacity `C_a(ν)` expressed in tuples/second (capacity is
//! benchmarked per node type and operator class in advance, so a single
//! scalar per node suffices), and each link carries a latency in
//! milliseconds plus an optional bandwidth budget in tuples/second.

use nova_geom::Coord;
use serde::{Deserialize, Serialize};

/// Identifier of a node in a [`Topology`], a dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's dense index as `usize`.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Role a node plays in the deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeRole {
    /// Data-producing node (sensor); pinned, hosts a physical stream.
    Source,
    /// General-purpose worker available for operator placement.
    Worker,
    /// Result-consuming node; pinned.
    Sink,
}

/// A node of the topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// Dense identifier.
    pub id: NodeId,
    /// Role in the deployment.
    pub role: NodeRole,
    /// Available compute capacity `C_a` in tuples/second.
    pub capacity: f64,
    /// Human-readable label (testbed site, running-example name, ...).
    pub label: String,
    /// Ground-truth geographic position used by generators to derive
    /// latencies. `None` for topologies defined purely by explicit links.
    pub geo: Option<Coord>,
    /// Region identifier for region-partitioned workloads (e.g. the
    /// environmental-monitoring join key). `None` when not applicable.
    pub region: Option<u32>,
}

/// An undirected link between two nodes.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// Other endpoint.
    pub b: NodeId,
    /// One-way latency in milliseconds.
    pub latency_ms: f64,
    /// Bandwidth budget in tuples/second; `None` = unconstrained.
    pub bandwidth: Option<f64>,
}

/// A topology of nodes and (optional) explicit links.
///
/// Topologies generated from latency matrices (testbeds) or geographic
/// models (synthetic scalability topologies) typically carry no explicit
/// links; their latencies come from an [`crate::rtt::LatencyProvider`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// Adjacency: for each node, `(neighbor, link index)` pairs.
    #[serde(skip)]
    adjacency: Vec<Vec<(NodeId, u32)>>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node and return its id.
    pub fn add_node(&mut self, role: NodeRole, capacity: f64, label: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            role,
            capacity,
            label: label.into(),
            geo: None,
            region: None,
        });
        self.adjacency.push(Vec::new());
        id
    }

    /// Add a node with a geographic position and region tag.
    pub fn add_node_at(
        &mut self,
        role: NodeRole,
        capacity: f64,
        label: impl Into<String>,
        geo: Coord,
        region: Option<u32>,
    ) -> NodeId {
        let id = self.add_node(role, capacity, label);
        let n = &mut self.nodes[id.idx()];
        n.geo = Some(geo);
        n.region = region;
        id
    }

    /// Add an undirected link.
    ///
    /// # Panics
    /// Panics if either endpoint does not exist, the endpoints coincide,
    /// or the latency is negative/non-finite.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, latency_ms: f64, bandwidth: Option<f64>) {
        assert!(a.idx() < self.nodes.len(), "unknown node {a}");
        assert!(b.idx() < self.nodes.len(), "unknown node {b}");
        assert_ne!(a, b, "self-links are not allowed");
        assert!(
            latency_ms.is_finite() && latency_ms >= 0.0,
            "invalid latency {latency_ms}"
        );
        let link_idx = self.links.len() as u32;
        self.links.push(Link {
            a,
            b,
            latency_ms,
            bandwidth,
        });
        self.adjacency[a.idx()].push((b, link_idx));
        self.adjacency[b.idx()].push((a, link_idx));
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the topology has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes in id order.
    #[inline]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node by id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.idx()]
    }

    /// Mutable node access (used by re-optimization when capacities or
    /// rates change at runtime).
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.idx()]
    }

    /// All links.
    #[inline]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Neighbors of `id` with the connecting link.
    #[inline]
    pub fn neighbors(&self, id: NodeId) -> impl Iterator<Item = (NodeId, &Link)> + '_ {
        self.adjacency[id.idx()]
            .iter()
            .map(move |&(n, l)| (n, &self.links[l as usize]))
    }

    /// Ids of all nodes with the given role.
    pub fn nodes_with_role(&self, role: NodeRole) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.role == role)
            .map(|n| n.id)
            .collect()
    }

    /// The first sink in the topology, if any.
    pub fn sink(&self) -> Option<NodeId> {
        self.nodes
            .iter()
            .find(|n| n.role == NodeRole::Sink)
            .map(|n| n.id)
    }

    /// Rebuild the adjacency lists (needed after deserialization, which
    /// skips the derived adjacency field).
    pub fn rebuild_adjacency(&mut self) {
        self.adjacency = vec![Vec::new(); self.nodes.len()];
        for (i, link) in self.links.iter().enumerate() {
            self.adjacency[link.a.idx()].push((link.b, i as u32));
            self.adjacency[link.b.idx()].push((link.a, i as u32));
        }
    }

    /// Look up a node by label (linear scan; intended for tests and small
    /// hand-built topologies such as the running example).
    pub fn by_label(&self, label: &str) -> Option<NodeId> {
        self.nodes.iter().find(|n| n.label == label).map(|n| n.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Topology {
        let mut t = Topology::new();
        let a = t.add_node(NodeRole::Source, 10.0, "a");
        let b = t.add_node(NodeRole::Worker, 50.0, "b");
        let c = t.add_node(NodeRole::Sink, 20.0, "c");
        t.add_link(a, b, 5.0, None);
        t.add_link(b, c, 7.0, Some(100.0));
        t
    }

    #[test]
    fn node_ids_are_dense() {
        let t = tiny();
        assert_eq!(t.len(), 3);
        for (i, n) in t.nodes().iter().enumerate() {
            assert_eq!(n.id.idx(), i);
        }
    }

    #[test]
    fn neighbors_are_symmetric() {
        let t = tiny();
        let a = t.by_label("a").unwrap();
        let b = t.by_label("b").unwrap();
        let a_nbrs: Vec<NodeId> = t.neighbors(a).map(|(n, _)| n).collect();
        let b_nbrs: Vec<NodeId> = t.neighbors(b).map(|(n, _)| n).collect();
        assert_eq!(a_nbrs, vec![b]);
        assert!(b_nbrs.contains(&a));
        assert_eq!(b_nbrs.len(), 2);
    }

    #[test]
    fn roles_are_queryable() {
        let t = tiny();
        assert_eq!(t.nodes_with_role(NodeRole::Source).len(), 1);
        assert_eq!(t.nodes_with_role(NodeRole::Worker).len(), 1);
        assert_eq!(t.sink(), t.by_label("c"));
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_rejected() {
        let mut t = tiny();
        t.add_link(NodeId(0), NodeId(0), 1.0, None);
    }

    #[test]
    #[should_panic(expected = "invalid latency")]
    fn negative_latency_rejected() {
        let mut t = tiny();
        t.add_link(NodeId(0), NodeId(2), -1.0, None);
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn out_of_range_link_rejected() {
        let mut t = tiny();
        t.add_link(NodeId(0), NodeId(99), 1.0, None);
    }

    #[test]
    fn rebuild_adjacency_restores_neighbor_lists() {
        // Deserialization skips the derived adjacency field; rebuilding it
        // must reproduce the original neighbor structure.
        let t = tiny();
        let mut copy = Topology {
            nodes: t.nodes.clone(),
            links: t.links.clone(),
            adjacency: Vec::new(),
        };
        copy.rebuild_adjacency();
        assert_eq!(copy.neighbors(NodeId(1)).count(), 2);
        assert_eq!(copy.neighbors(NodeId(0)).count(), 1);
    }
}
