//! Geo-distributed network topology model for the Nova reproduction.
//!
//! The paper models the infrastructure as a directed graph `G_T = (V, E)`
//! of heterogeneous nodes (sensors, Raspberry-Pi-class edge devices, fog
//! servers, cloud machines) connected by links with millisecond-scale
//! latencies (§2.2). This crate provides:
//!
//! * [`Topology`] — nodes with roles, compute capacities and optional
//!   explicit links ([`graph`]),
//! * shortest-path routing and all-pairs helpers ([`routing`]),
//! * minimum spanning trees for the WSN-style baselines ([`mst`]),
//! * latency providers ([`rtt`]): dense measured matrices for
//!   testbed-scale topologies, on-demand geographic models for synthetic
//!   million-node topologies, and Dijkstra-backed providers for explicit
//!   link graphs,
//! * generators: Gaussian-cluster synthetic topologies ([`synthetic`]),
//!   the paper's running example and parametric edge–fog–cloud layouts
//!   ([`edge_fog_cloud`]), and synthetic stand-ins for the four real-world
//!   testbeds used in the evaluation ([`testbeds`]),
//! * capacity heterogeneity control with measurable coefficient of
//!   variation ([`heterogeneity`]),
//! * a 24-hour latency drift replay ([`drift`]) for the Fig. 9 resilience
//!   experiment.

#![forbid(unsafe_code)]

pub mod drift;
pub mod edge_fog_cloud;
pub mod graph;
pub mod heterogeneity;
pub mod mst;
pub mod routing;
pub mod rtt;
pub mod synthetic;
pub mod testbeds;

pub use drift::{DriftModel, DriftReport};
pub use edge_fog_cloud::{
    running_example, EdgeFogCloud, EdgeFogCloudParams, RunningExample, RUNNING_EXAMPLE_RATE,
};
pub use graph::{Link, Node, NodeId, NodeRole, Topology};
pub use heterogeneity::{coefficient_of_variation, CapacityDistribution};
pub use mst::{minimum_spanning_tree, RootedTree};
pub use routing::{dijkstra, shortest_path, PathResult};
pub use rtt::{DenseRtt, GeoRtt, GraphRtt, LatencyProvider};
pub use synthetic::{SyntheticParams, SyntheticTopology};
pub use testbeds::{Testbed, TestbedTopology};
