//! Shortest-path routing over explicit topology links.
//!
//! Path delay in the paper is "approximated by the sum of link latencies
//! along the route" (§2.2). For topologies built from explicit links (the
//! running example, edge–fog–cloud layouts, MST overlays of the tree
//! baselines) this module computes those sums with Dijkstra's algorithm.

use std::collections::BinaryHeap;

use crate::graph::{NodeId, Topology};

/// Result of a single-source shortest-path computation.
#[derive(Debug, Clone)]
pub struct PathResult {
    /// Distance (ms) from the source to every node; `f64::INFINITY` for
    /// unreachable nodes.
    pub dist: Vec<f64>,
    /// Predecessor of every node on its shortest path; `None` for the
    /// source itself and unreachable nodes.
    pub prev: Vec<Option<NodeId>>,
}

impl PathResult {
    /// Reconstruct the path from the source to `target`, inclusive of both
    /// endpoints. Empty when `target` is unreachable.
    pub fn path_to(&self, target: NodeId) -> Vec<NodeId> {
        if !self.dist[target.idx()].is_finite() {
            return Vec::new();
        }
        let mut path = vec![target];
        let mut cur = target;
        while let Some(p) = self.prev[cur.idx()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct QueueEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for QueueEntry {}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we need the smallest first.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Dijkstra single-source shortest paths from `source` over the explicit
/// links of `topology`, using link latency as the edge weight.
pub fn dijkstra(topology: &Topology, source: NodeId) -> PathResult {
    let n = topology.len();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source.idx()] = 0.0;
    heap.push(QueueEntry {
        dist: 0.0,
        node: source,
    });
    while let Some(QueueEntry { dist: d, node }) = heap.pop() {
        if visited[node.idx()] {
            continue;
        }
        visited[node.idx()] = true;
        for (nbr, link) in topology.neighbors(node) {
            let nd = d + link.latency_ms;
            if nd < dist[nbr.idx()] {
                dist[nbr.idx()] = nd;
                prev[nbr.idx()] = Some(node);
                heap.push(QueueEntry {
                    dist: nd,
                    node: nbr,
                });
            }
        }
    }
    PathResult { dist, prev }
}

/// Shortest-path latency between two nodes, or `f64::INFINITY` when
/// disconnected.
pub fn shortest_path(topology: &Topology, a: NodeId, b: NodeId) -> f64 {
    if a == b {
        return 0.0;
    }
    dijkstra(topology, a).dist[b.idx()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeRole;

    /// Diamond: a -1- b -1- d, a -5- c -1- d. Shortest a→d is via b (2ms).
    fn diamond() -> (Topology, [NodeId; 4]) {
        let mut t = Topology::new();
        let a = t.add_node(NodeRole::Source, 1.0, "a");
        let b = t.add_node(NodeRole::Worker, 1.0, "b");
        let c = t.add_node(NodeRole::Worker, 1.0, "c");
        let d = t.add_node(NodeRole::Sink, 1.0, "d");
        t.add_link(a, b, 1.0, None);
        t.add_link(b, d, 1.0, None);
        t.add_link(a, c, 5.0, None);
        t.add_link(c, d, 1.0, None);
        (t, [a, b, c, d])
    }

    #[test]
    fn shortest_route_is_taken() {
        let (t, [a, _, _, d]) = diamond();
        assert_eq!(shortest_path(&t, a, d), 2.0);
    }

    #[test]
    fn path_reconstruction_follows_predecessors() {
        let (t, [a, b, _, d]) = diamond();
        let r = dijkstra(&t, a);
        assert_eq!(r.path_to(d), vec![a, b, d]);
        assert_eq!(r.path_to(a), vec![a]);
    }

    #[test]
    fn unreachable_nodes_are_infinite() {
        let mut t = Topology::new();
        let a = t.add_node(NodeRole::Source, 1.0, "a");
        let b = t.add_node(NodeRole::Sink, 1.0, "b");
        assert_eq!(shortest_path(&t, a, b), f64::INFINITY);
        let r = dijkstra(&t, a);
        assert!(r.path_to(b).is_empty());
    }

    #[test]
    fn self_distance_is_zero() {
        let (t, [a, ..]) = diamond();
        assert_eq!(shortest_path(&t, a, a), 0.0);
    }

    #[test]
    fn zero_latency_links_are_valid() {
        let mut t = Topology::new();
        let a = t.add_node(NodeRole::Source, 1.0, "a");
        let b = t.add_node(NodeRole::Sink, 1.0, "b");
        t.add_link(a, b, 0.0, None);
        assert_eq!(shortest_path(&t, a, b), 0.0);
    }

    #[test]
    fn distances_satisfy_triangle_inequality_over_graph() {
        let (t, ids) = diamond();
        for &x in &ids {
            let rx = dijkstra(&t, x);
            for &y in &ids {
                let ry = dijkstra(&t, y);
                for &z in &ids {
                    assert!(rx.dist[z.idx()] <= rx.dist[y.idx()] + ry.dist[z.idx()] + 1e-12);
                }
            }
        }
    }
}
