//! Edge–fog–cloud topologies, including the paper's running example.
//!
//! The running example (Fig. 2, §3.1) joins a pressure stream
//! `T = {t1..t4}` with a humidity stream `W = {w1, w2}` across two
//! regions. Sources emit at 25 tuples/s and have capacity 10; the sink has
//! capacity 20; fog nodes A–G carry the capacities used in the §3.4
//! walk-through (A=55, B=40, C=40, F=20, G=200); E is a high-capacity
//! cloud node. The figure's exact link latencies are not all printed in
//! the text, so this reconstruction anchors every latency the paper does
//! state:
//!
//! * `A[t1, C] = 60 ms` (10 ms to the base station + 50 ms to C),
//! * `A[t1, sink] = 110 ms`,
//! * cloud path delays ≈ 130 ms (region 1 via C, D) and ≈ 155 ms
//!   (region 2 via F, D), plus ≈ 100 ms back to the sink,
//! * Nova's decomposed placement ends up ≈ 150 ms (region 1 on A/B/C) and
//!   ≈ 175 ms (region 2 on G).
//!
//! Base stations are modelled as zero-capacity relay workers so they can
//! never host operators.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::graph::{NodeId, NodeRole, Topology};
use crate::rtt::GraphRtt;

/// The running-example topology with handles to its named nodes.
#[derive(Debug, Clone)]
pub struct RunningExample {
    /// The topology: 6 sources, 2 base stations, 7 fog/cloud workers, sink.
    pub topology: Topology,
    /// All-pairs latencies over the explicit links.
    pub rtt: GraphRtt,
    /// Pressure sources `t1..t4` (regions 1, 1, 2, 2).
    pub pressure: [NodeId; 4],
    /// Humidity sources `w1, w2` (regions 1, 2).
    pub humidity: [NodeId; 2],
    /// Fog/cloud workers `A..G` in order.
    pub workers: [NodeId; 7],
    /// The sink node.
    pub sink: NodeId,
}

/// Data rate of every source in the running example (tuples/s).
pub const RUNNING_EXAMPLE_RATE: f64 = 25.0;

/// Build the running example of the paper's §3.1 (Fig. 2).
pub fn running_example() -> RunningExample {
    let mut t = Topology::new();
    // Region-1 sensors.
    let t1 = t.add_node(NodeRole::Source, 10.0, "t1");
    let t2 = t.add_node(NodeRole::Source, 10.0, "t2");
    let w1 = t.add_node(NodeRole::Source, 10.0, "w1");
    // Region-2 sensors.
    let t3 = t.add_node(NodeRole::Source, 10.0, "t3");
    let t4 = t.add_node(NodeRole::Source, 10.0, "t4");
    let w2 = t.add_node(NodeRole::Source, 10.0, "w2");
    for (id, region) in [(t1, 1), (t2, 1), (w1, 1), (t3, 2), (t4, 2), (w2, 2)] {
        t.node_mut(id).region = Some(region);
    }
    // Base stations: pure relays (capacity 0 ⇒ never placement targets).
    let bs1 = t.add_node(NodeRole::Worker, 0.0, "BS1");
    let bs2 = t.add_node(NodeRole::Worker, 0.0, "BS2");
    // Fog and cloud nodes with the §3.4 capacities.
    let a = t.add_node(NodeRole::Worker, 55.0, "A");
    let b = t.add_node(NodeRole::Worker, 40.0, "B");
    let c = t.add_node(NodeRole::Worker, 40.0, "C");
    let d = t.add_node(NodeRole::Worker, 35.0, "D");
    let e = t.add_node(NodeRole::Worker, 1000.0, "E"); // cloud
    let f = t.add_node(NodeRole::Worker, 20.0, "F");
    let g = t.add_node(NodeRole::Worker, 200.0, "G");
    let sink = t.add_node(NodeRole::Sink, 20.0, "sink");

    // Region-1 access links: 10 ms sensor → base station.
    for s in [t1, t2, w1] {
        t.add_link(s, bs1, 10.0, None);
    }
    for s in [t3, t4, w2] {
        t.add_link(s, bs2, 10.0, None);
    }
    // Region-1 fog fabric. BS1→C = 50 gives A[t1, C] = 60 as in the text.
    t.add_link(bs1, a, 45.0, None);
    t.add_link(bs1, b, 40.0, None);
    t.add_link(bs1, c, 50.0, None);
    t.add_link(a, b, 5.0, None);
    t.add_link(b, c, 20.0, None);
    // Sink hangs off B: t1 → sink = 10 + 40 + 60 = 110 ms as in the text.
    t.add_link(b, sink, 60.0, None);
    // Cloud backbone: region-1 traffic reaches E via C and D (≈130 ms),
    // and E returns results to the sink in ≈100 ms via D.
    t.add_link(c, d, 40.0, None);
    t.add_link(d, e, 30.0, None);
    t.add_link(d, sink, 70.0, None);
    // Region-2 fabric: cloud path via F and D (≈155 ms); Nova's target G
    // sits close to the region-2 sensors and has its own sink uplink.
    t.add_link(bs2, g, 40.0, None);
    t.add_link(bs2, f, 80.0, None);
    t.add_link(g, sink, 115.0, None);
    t.add_link(f, d, 35.0, None);

    let rtt = GraphRtt::new(&t);
    RunningExample {
        topology: t,
        rtt,
        pressure: [t1, t2, t3, t4],
        humidity: [w1, w2],
        workers: [a, b, c, d, e, f, g],
        sink,
    }
}

/// Parameters for a parametric edge–fog–cloud topology, used e.g. to model
/// the 14-node Raspberry-Pi testbed of the end-to-end evaluation (§4.7).
#[derive(Debug, Clone)]
pub struct EdgeFogCloudParams {
    /// Number of regions; each region gets its own sensor group.
    pub regions: usize,
    /// Sources per region.
    pub sources_per_region: usize,
    /// Worker (fog) nodes, shared across regions.
    pub workers: usize,
    /// Capacity of each source node (sources share compute with
    /// ingestion, hence small).
    pub source_capacity: f64,
    /// Capacity of each worker node.
    pub worker_capacity: f64,
    /// Capacity of the sink/coordinator node.
    pub sink_capacity: f64,
    /// Latency range (ms) of sensor → fog access links.
    pub access_latency: (f64, f64),
    /// Latency range (ms) of fog ↔ fog links.
    pub fabric_latency: (f64, f64),
    /// Latency range (ms) of fog → sink links.
    pub sink_latency: (f64, f64),
    /// RNG seed for the latency draws.
    pub seed: u64,
}

impl Default for EdgeFogCloudParams {
    fn default() -> Self {
        // Mirrors the paper's testbed: 14 Raspberry Pis — 8 sources, 5
        // workers, 1 coordinator/sink — with RIPE-Atlas-like injected
        // latencies (§4.1, "End-to-end Deployment").
        EdgeFogCloudParams {
            regions: 4,
            sources_per_region: 2,
            workers: 5,
            // Capacities calibrated so that the total join load (8 kHz for
            // the default DEBS workload) exceeds any single node but fits
            // the worker pool: sources can barely ingest their own 1 kHz
            // stream plus a little, one worker handles ~a third of the
            // total, the coordinator/sink the least — matching the
            // relative strengths in the paper's testbed (§4.7).
            source_capacity: 2200.0,
            worker_capacity: 2600.0,
            sink_capacity: 1200.0,
            access_latency: (5.0, 25.0),
            fabric_latency: (10.0, 40.0),
            sink_latency: (20.0, 60.0),
            seed: 0x14,
        }
    }
}

/// A parametric edge–fog–cloud topology.
#[derive(Debug, Clone)]
pub struct EdgeFogCloud {
    /// The generated topology.
    pub topology: Topology,
    /// All-pairs latencies over the explicit links.
    pub rtt: GraphRtt,
    /// Source ids grouped by region.
    pub sources_by_region: Vec<Vec<NodeId>>,
    /// Worker ids.
    pub workers: Vec<NodeId>,
    /// The sink.
    pub sink: NodeId,
}

impl EdgeFogCloud {
    /// Generate a topology from the parameters; deterministic per seed.
    pub fn generate(p: &EdgeFogCloudParams) -> Self {
        assert!(p.regions >= 1 && p.sources_per_region >= 1 && p.workers >= 1);
        let mut rng = StdRng::seed_from_u64(p.seed);
        let mut t = Topology::new();
        let mut sources_by_region = Vec::with_capacity(p.regions);
        let workers: Vec<NodeId> = (0..p.workers)
            .map(|i| t.add_node(NodeRole::Worker, p.worker_capacity, format!("worker{i}")))
            .collect();
        let sink = t.add_node(NodeRole::Sink, p.sink_capacity, "sink");
        for r in 0..p.regions {
            let mut region_sources = Vec::with_capacity(p.sources_per_region);
            for s in 0..p.sources_per_region {
                let id = t.add_node(NodeRole::Source, p.source_capacity, format!("src{r}_{s}"));
                t.node_mut(id).region = Some(r as u32);
                region_sources.push(id);
            }
            sources_by_region.push(region_sources);
        }
        // Each source connects to its two nearest (by index hash) workers.
        for region in &sources_by_region {
            for &s in region {
                let w1 = workers[rng.gen_range(0..workers.len())];
                let lat1 = rng.gen_range(p.access_latency.0..=p.access_latency.1);
                t.add_link(s, w1, lat1, None);
                let w2 = workers[rng.gen_range(0..workers.len())];
                if w2 != w1 {
                    let lat2 = rng.gen_range(p.access_latency.0..=p.access_latency.1);
                    t.add_link(s, w2, lat2, None);
                }
            }
        }
        // Fog fabric: ring plus random chords so the graph is connected
        // and has route diversity.
        for i in 0..workers.len() {
            let j = (i + 1) % workers.len();
            if workers.len() > 1 {
                let lat = rng.gen_range(p.fabric_latency.0..=p.fabric_latency.1);
                t.add_link(workers[i], workers[j], lat, None);
            }
        }
        if workers.len() > 3 {
            for _ in 0..workers.len() / 2 {
                let i = rng.gen_range(0..workers.len());
                let j = rng.gen_range(0..workers.len());
                if i != j {
                    let lat = rng.gen_range(p.fabric_latency.0..=p.fabric_latency.1);
                    t.add_link(workers[i], workers[j], lat, None);
                }
            }
        }
        // Sink uplinks from two workers.
        let lat = rng.gen_range(p.sink_latency.0..=p.sink_latency.1);
        t.add_link(workers[0], sink, lat, None);
        if workers.len() > 1 {
            let lat = rng.gen_range(p.sink_latency.0..=p.sink_latency.1);
            t.add_link(workers[workers.len() / 2], sink, lat, None);
        }
        let rtt = GraphRtt::new(&t);
        EdgeFogCloud {
            topology: t,
            rtt,
            sources_by_region,
            workers,
            sink,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtt::LatencyProvider;

    #[test]
    fn running_example_matches_stated_latencies() {
        let ex = running_example();
        let t1 = ex.pressure[0];
        let c = ex.topology.by_label("C").unwrap();
        // A[t1, C] = 60 ms (10 to base station + 50 to C).
        assert_eq!(ex.rtt.rtt(t1, c), 60.0);
        // A[t1, sink] = 110 ms.
        assert_eq!(ex.rtt.rtt(t1, ex.sink), 110.0);
    }

    #[test]
    fn cloud_paths_match_stated_magnitudes() {
        let ex = running_example();
        let e = ex.topology.by_label("E").unwrap();
        // Region 1 → cloud ≈ 130 ms.
        assert_eq!(ex.rtt.rtt(ex.pressure[0], e), 130.0);
        // Region 2 → cloud ≈ 155 ms.
        assert_eq!(ex.rtt.rtt(ex.pressure[2], e), 155.0);
        // Cloud → sink ≈ 100 ms.
        assert_eq!(ex.rtt.rtt(e, ex.sink), 100.0);
    }

    #[test]
    fn nova_region_targets_beat_cloud() {
        let ex = running_example();
        let e = ex.topology.by_label("E").unwrap();
        let g = ex.topology.by_label("G").unwrap();
        let a = ex.topology.by_label("A").unwrap();
        // End-to-end via cloud for region 2: source → E → sink = 255 ms.
        let cloud_r2 = ex.rtt.rtt(ex.pressure[2], e) + ex.rtt.rtt(e, ex.sink);
        // Nova's region-2 placement on G.
        let nova_r2 = ex.rtt.rtt(ex.pressure[2], g) + ex.rtt.rtt(g, ex.sink);
        assert!(nova_r2 < cloud_r2, "nova {nova_r2} vs cloud {cloud_r2}");
        assert!(nova_r2 <= 180.0, "paper states ≈175 ms, got {nova_r2}");
        // Nova's region-1 placement on A.
        let cloud_r1 = ex.rtt.rtt(ex.pressure[0], e) + ex.rtt.rtt(e, ex.sink);
        let nova_r1 = ex.rtt.rtt(ex.pressure[0], a) + ex.rtt.rtt(a, ex.sink);
        assert!(nova_r1 < cloud_r1, "nova {nova_r1} vs cloud {cloud_r1}");
        assert!(nova_r1 <= 155.0, "paper states ≈150 ms, got {nova_r1}");
    }

    #[test]
    fn running_example_capacities_match_walkthrough() {
        let ex = running_example();
        let cap = |l: &str| ex.topology.node(ex.topology.by_label(l).unwrap()).capacity;
        assert_eq!(cap("A"), 55.0);
        assert_eq!(cap("B"), 40.0);
        assert_eq!(cap("C"), 40.0);
        assert_eq!(cap("F"), 20.0);
        assert_eq!(cap("G"), 200.0);
        assert_eq!(cap("sink"), 20.0);
        assert_eq!(cap("t1"), 10.0);
    }

    #[test]
    fn base_stations_cannot_host_operators() {
        let ex = running_example();
        assert_eq!(
            ex.topology
                .node(ex.topology.by_label("BS1").unwrap())
                .capacity,
            0.0
        );
        assert_eq!(
            ex.topology
                .node(ex.topology.by_label("BS2").unwrap())
                .capacity,
            0.0
        );
    }

    #[test]
    fn parametric_generator_is_connected() {
        let efc = EdgeFogCloud::generate(&EdgeFogCloudParams::default());
        assert_eq!(efc.topology.len(), 4 * 2 + 5 + 1);
        // Every source must reach the sink.
        for region in &efc.sources_by_region {
            for &s in region {
                assert!(efc.rtt.rtt(s, efc.sink).is_finite());
            }
        }
    }

    #[test]
    fn parametric_generator_is_deterministic() {
        let a = EdgeFogCloud::generate(&EdgeFogCloudParams::default());
        let b = EdgeFogCloud::generate(&EdgeFogCloudParams::default());
        assert_eq!(
            a.rtt.rtt(a.sink, a.workers[0]),
            b.rtt.rtt(b.sink, b.workers[0])
        );
    }
}
