//! Synthetic Gaussian-cluster topologies for scalability experiments.
//!
//! The paper generates synthetic network coordinate systems "with varying
//! latency distributions and sizes from 10³ to 10⁶ nodes. Nodes are
//! positioned within [0, 100] (x-axis) and [−50, 50] (y-axis), using
//! Gaussian clusters to emulate heterogeneous, geo-distributed networks"
//! (§4.1). This module reproduces that: node positions come from a
//! mixture of Gaussian clusters, latencies from the on-demand [`GeoRtt`]
//! model (a dense matrix at 10⁶ nodes is infeasible), roles follow the
//! paper's 60 % source / 40 % worker split, and capacities come from a
//! configurable [`CapacityDistribution`].

use nova_geom::Coord;
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::graph::{NodeRole, Topology};
use crate::heterogeneity::CapacityDistribution;
use crate::rtt::GeoRtt;

/// Parameters for [`SyntheticTopology::generate`].
#[derive(Debug, Clone)]
pub struct SyntheticParams {
    /// Total number of nodes (sources + workers + one sink).
    pub n: usize,
    /// Number of Gaussian clusters.
    pub clusters: usize,
    /// Standard deviation of each cluster.
    pub cluster_std: f64,
    /// Fraction of nodes designated as sources (paper: 0.6, mirroring the
    /// FIT IoT Lab hardware distribution).
    pub source_frac: f64,
    /// Capacity distribution for all nodes.
    pub capacity: CapacityDistribution,
    /// Mean capacity after normalization (total capacity is held
    /// approximately constant across heterogeneity levels).
    pub capacity_mean: f64,
    /// Milliseconds of latency per unit of Euclidean distance in the
    /// \[0,100\]×\[−50,50\] plane.
    pub ms_per_unit: f64,
    /// Per-node access latency range in milliseconds.
    pub access_ms: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticParams {
    fn default() -> Self {
        SyntheticParams {
            n: 1000,
            clusters: 12,
            cluster_std: 4.0,
            source_frac: 0.6,
            capacity: CapacityDistribution::Uniform {
                min: 1.0,
                max: 200.0,
            },
            capacity_mean: 100.0,
            ms_per_unit: 1.0,
            access_ms: (0.5, 3.0),
            seed: 0x0A0BA,
        }
    }
}

/// A generated synthetic topology plus its latency model.
#[derive(Debug, Clone)]
pub struct SyntheticTopology {
    /// Node set with roles and capacities. No explicit links — latencies
    /// come from `rtt`.
    pub topology: Topology,
    /// On-demand latency model over the ground-truth positions.
    pub rtt: GeoRtt,
}

impl SyntheticTopology {
    /// Generate a topology from the given parameters. Deterministic for a
    /// fixed parameter set.
    pub fn generate(params: &SyntheticParams) -> Self {
        assert!(
            params.n >= 3,
            "need at least one source, one worker and a sink"
        );
        let mut rng = StdRng::seed_from_u64(params.seed);
        // Cluster centers inside the paper's [0,100]×[−50,50] area.
        let centers: Vec<Coord> = (0..params.clusters.max(1))
            .map(|_| Coord::xy(rng.gen_range(0.0..100.0), rng.gen_range(-50.0..50.0)))
            .collect();
        let mut positions = Vec::with_capacity(params.n);
        let mut access = Vec::with_capacity(params.n);
        for _ in 0..params.n {
            let c = centers[rng.gen_range(0..centers.len())];
            positions.push(Coord::xy(
                (c[0] + gaussian(&mut rng) * params.cluster_std).clamp(0.0, 100.0),
                (c[1] + gaussian(&mut rng) * params.cluster_std).clamp(-50.0, 50.0),
            ));
            access.push(rng.gen_range(params.access_ms.0..=params.access_ms.1));
        }
        let capacities =
            params
                .capacity
                .sample_normalized(params.n, params.capacity_mean, &mut rng);

        // Role assignment: one random sink, then `source_frac` of the rest
        // as sources, remainder workers (paper §4.1).
        let sink_idx = rng.gen_range(0..params.n);
        let mut order: Vec<usize> = (0..params.n).filter(|&i| i != sink_idx).collect();
        order.shuffle(&mut rng);
        let n_sources = ((params.n - 1) as f64 * params.source_frac).round() as usize;
        let mut roles = vec![NodeRole::Worker; params.n];
        roles[sink_idx] = NodeRole::Sink;
        for &i in order.iter().take(n_sources) {
            roles[i] = NodeRole::Source;
        }

        let mut topology = Topology::new();
        for i in 0..params.n {
            topology.add_node_at(
                roles[i],
                capacities[i],
                format!("syn{i}"),
                positions[i],
                None,
            );
        }
        let rtt = GeoRtt::new(positions, access, params.ms_per_unit, params.seed ^ 0xA11CE)
            .with_jitter(0.1);
        SyntheticTopology { topology, rtt }
    }
}

/// One standard normal draw via Box–Muller.
fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heterogeneity::coefficient_of_variation;
    use crate::rtt::LatencyProvider;
    use crate::NodeId;

    fn small() -> SyntheticParams {
        SyntheticParams {
            n: 200,
            seed: 11,
            ..Default::default()
        }
    }

    #[test]
    fn generates_requested_node_count_and_roles() {
        let t = SyntheticTopology::generate(&small());
        assert_eq!(t.topology.len(), 200);
        let sources = t.topology.nodes_with_role(NodeRole::Source).len();
        let workers = t.topology.nodes_with_role(NodeRole::Worker).len();
        let sinks = t.topology.nodes_with_role(NodeRole::Sink).len();
        assert_eq!(sinks, 1);
        assert_eq!(sources + workers + sinks, 200);
        // 60/40 split of the 199 non-sink nodes.
        assert_eq!(sources, 119);
    }

    #[test]
    fn positions_stay_in_paper_area() {
        let t = SyntheticTopology::generate(&small());
        for n in t.topology.nodes() {
            let g = n.geo.expect("synthetic nodes have positions");
            assert!((0.0..=100.0).contains(&g[0]), "x {g:?}");
            assert!((-50.0..=50.0).contains(&g[1]), "y {g:?}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticTopology::generate(&small());
        let b = SyntheticTopology::generate(&small());
        for (x, y) in a.topology.nodes().iter().zip(b.topology.nodes()) {
            assert_eq!(x.capacity, y.capacity);
            assert_eq!(x.role, y.role);
        }
        assert_eq!(
            a.rtt.rtt(NodeId(0), NodeId(1)),
            b.rtt.rtt(NodeId(0), NodeId(1))
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticTopology::generate(&small());
        let b = SyntheticTopology::generate(&SyntheticParams {
            seed: 12,
            ..small()
        });
        let same = a
            .topology
            .nodes()
            .iter()
            .zip(b.topology.nodes())
            .filter(|(x, y)| x.capacity == y.capacity)
            .count();
        assert!(
            same < 50,
            "seeds should decorrelate capacities, {same} identical"
        );
    }

    #[test]
    fn capacity_mean_is_normalized() {
        let t = SyntheticTopology::generate(&small());
        let caps: Vec<f64> = t.topology.nodes().iter().map(|n| n.capacity).collect();
        let mean = caps.iter().sum::<f64>() / caps.len() as f64;
        assert!((mean - 100.0).abs() < 1e-9);
    }

    #[test]
    fn heterogeneity_sweep_changes_cv_not_total() {
        let mut totals = Vec::new();
        let mut cvs = Vec::new();
        for (_, dist) in CapacityDistribution::paper_sweep() {
            let t = SyntheticTopology::generate(&SyntheticParams {
                capacity: dist,
                ..small()
            });
            let caps: Vec<f64> = t.topology.nodes().iter().map(|n| n.capacity).collect();
            totals.push(caps.iter().sum::<f64>());
            cvs.push(coefficient_of_variation(&caps));
        }
        for t in &totals {
            assert!((t - totals[0]).abs() < 1e-6, "totals {totals:?}");
        }
        assert!(cvs.last().unwrap() > &0.8);
        assert!(
            cvs[0] < 0.2,
            "first sweep entry is near-homogeneous: {cvs:?}"
        );
    }

    #[test]
    fn rtt_magnitudes_are_millisecond_scale() {
        let t = SyntheticTopology::generate(&small());
        let mut max = 0.0f64;
        for i in 0..50u32 {
            for j in (i + 1)..50 {
                let r = t.rtt.rtt(NodeId(i), NodeId(j));
                assert!(r >= 0.0 && r.is_finite());
                max = max.max(r);
            }
        }
        // Diagonal of the area is ~141 units -> latencies must stay within
        // a few hundred ms.
        assert!(max < 400.0, "max rtt {max}");
        assert!(max > 5.0, "latencies suspiciously small: {max}");
    }
}
