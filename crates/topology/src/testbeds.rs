//! Synthetic stand-ins for the four real-world measurement testbeds.
//!
//! The paper evaluates on latency datasets from FIT IoT Lab (433 nodes),
//! RIPE Atlas (723 anchors, plus a fixed 418-node subset), PlanetLab
//! (335 nodes) and King (1740 DNS servers). Those raw RTT datasets are not
//! bundled with this reproduction, so each testbed is *synthesized*
//! (cf. DESIGN.md §3): nodes are placed around cluster centers that mirror
//! the platform's geography, RTTs combine distance-proportional
//! propagation, per-node access delays, lognormal-ish jitter and injected
//! triangle-inequality violations (TIVs). Node counts match the paper
//! exactly and every dataset is deterministic per seed.
//!
//! What the downstream experiments need from these datasets — metric-space
//! structure with realistic violations, millisecond magnitudes, distinct
//! geographic regimes (LAN-scale FIT vs. intercontinental King) — is
//! preserved; absolute values are not claimed to match the originals.

use nova_geom::Coord;
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::graph::{NodeRole, Topology};
use crate::rtt::{DenseRtt, GeoRtt};

/// The real-world testbeds used in the paper's evaluation (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Testbed {
    /// FIT IoT Lab: 433 IoT nodes across 6 French sites — LAN/metro-scale
    /// latencies, 4 gateway servers.
    FitIotLab,
    /// RIPE Atlas: 723 globally distributed anchors.
    RipeAtlas,
    /// The fixed 418-node RIPE Atlas subset used in §4.4–4.5.
    RipeAtlas418,
    /// PlanetLab: 335 university/research nodes in Europe + North America.
    PlanetLab,
    /// King: 1740 Internet DNS servers, global, heavy-tailed latencies.
    King,
}

impl Testbed {
    /// Human-readable name matching the paper's figure labels.
    pub fn name(self) -> &'static str {
        match self {
            Testbed::FitIotLab => "FIT IoT Lab",
            Testbed::RipeAtlas => "RIPE Atlas",
            Testbed::RipeAtlas418 => "RIPE Atlas (418)",
            Testbed::PlanetLab => "PlanetLab",
            Testbed::King => "King",
        }
    }

    /// Number of nodes, matching the paper.
    pub fn node_count(self) -> usize {
        match self {
            Testbed::FitIotLab => 433,
            Testbed::RipeAtlas => 723,
            Testbed::RipeAtlas418 => 418,
            Testbed::PlanetLab => 335,
            Testbed::King => 1740,
        }
    }

    /// The Vivaldi neighbor-set size the paper selected per testbed
    /// (m = 20 for RIPE Atlas and FIT IoT Lab, m = 32 for PlanetLab and
    /// King, §4.1).
    pub fn vivaldi_neighbors(self) -> usize {
        match self {
            Testbed::FitIotLab | Testbed::RipeAtlas | Testbed::RipeAtlas418 => 20,
            Testbed::PlanetLab | Testbed::King => 32,
        }
    }

    /// All testbeds in the order the paper's Fig. 5 presents them.
    pub fn all() -> [Testbed; 4] {
        [
            Testbed::FitIotLab,
            Testbed::PlanetLab,
            Testbed::RipeAtlas,
            Testbed::King,
        ]
    }

    /// Generate the synthetic stand-in dataset.
    pub fn generate(self, seed: u64) -> TestbedTopology {
        let spec = self.spec();
        spec.generate(self, seed)
    }

    fn spec(self) -> TestbedSpec {
        match self {
            // 6 French sites (Grenoble, Lille, Paris/Saclay, Strasbourg,
            // Lyon, Toulouse); distances of a few hundred km ⇒ RTTs of a
            // few ms plus small access delays. Four gateway-class nodes.
            Testbed::FitIotLab => TestbedSpec {
                clusters: vec![
                    ClusterSpec {
                        center: (45.2, 5.7),
                        weight: 0.35,
                        spread: 0.05,
                    },
                    ClusterSpec {
                        center: (50.6, 3.1),
                        weight: 0.2,
                        spread: 0.05,
                    },
                    ClusterSpec {
                        center: (48.7, 2.2),
                        weight: 0.2,
                        spread: 0.05,
                    },
                    ClusterSpec {
                        center: (48.6, 7.8),
                        weight: 0.1,
                        spread: 0.05,
                    },
                    ClusterSpec {
                        center: (45.8, 4.8),
                        weight: 0.1,
                        spread: 0.05,
                    },
                    ClusterSpec {
                        center: (43.6, 1.4),
                        weight: 0.05,
                        spread: 0.05,
                    },
                ],
                ms_per_degree: 0.35,
                access_ms: (0.3, 2.5),
                jitter: 0.12,
                tiv_prob: 0.02,
                tiv_factor: 1.8,
            },
            // EU + North America institutions.
            Testbed::PlanetLab => TestbedSpec {
                clusters: vec![
                    ClusterSpec {
                        center: (48.0, 8.0),
                        weight: 0.4,
                        spread: 4.0,
                    },
                    ClusterSpec {
                        center: (52.0, -1.0),
                        weight: 0.12,
                        spread: 2.0,
                    },
                    ClusterSpec {
                        center: (40.0, -75.0),
                        weight: 0.25,
                        spread: 3.0,
                    },
                    ClusterSpec {
                        center: (37.5, -120.0),
                        weight: 0.15,
                        spread: 3.0,
                    },
                    ClusterSpec {
                        center: (45.0, -93.0),
                        weight: 0.08,
                        spread: 3.0,
                    },
                ],
                ms_per_degree: 0.9,
                access_ms: (0.5, 6.0),
                jitter: 0.15,
                tiv_prob: 0.05,
                tiv_factor: 2.2,
            },
            // Global anchor mesh.
            Testbed::RipeAtlas | Testbed::RipeAtlas418 => TestbedSpec {
                clusters: vec![
                    ClusterSpec {
                        center: (50.0, 8.0),
                        weight: 0.34,
                        spread: 6.0,
                    },
                    ClusterSpec {
                        center: (40.0, -78.0),
                        weight: 0.18,
                        spread: 6.0,
                    },
                    ClusterSpec {
                        center: (36.0, -118.0),
                        weight: 0.08,
                        spread: 4.0,
                    },
                    ClusterSpec {
                        center: (1.3, 103.8),
                        weight: 0.1,
                        spread: 5.0,
                    },
                    ClusterSpec {
                        center: (35.6, 139.7),
                        weight: 0.08,
                        spread: 4.0,
                    },
                    ClusterSpec {
                        center: (-23.5, -46.6),
                        weight: 0.07,
                        spread: 4.0,
                    },
                    ClusterSpec {
                        center: (-33.9, 151.2),
                        weight: 0.06,
                        spread: 4.0,
                    },
                    ClusterSpec {
                        center: (28.6, 77.2),
                        weight: 0.05,
                        spread: 4.0,
                    },
                    ClusterSpec {
                        center: (-1.3, 36.8),
                        weight: 0.04,
                        spread: 4.0,
                    },
                ],
                ms_per_degree: 1.05,
                access_ms: (1.0, 12.0),
                jitter: 0.15,
                tiv_prob: 0.08,
                tiv_factor: 2.5,
            },
            // DNS servers: similar global footprint, heavier tails and
            // more TIVs (King estimates pass through recursive resolvers).
            Testbed::King => TestbedSpec {
                clusters: vec![
                    ClusterSpec {
                        center: (40.0, -78.0),
                        weight: 0.3,
                        spread: 7.0,
                    },
                    ClusterSpec {
                        center: (37.0, -120.0),
                        weight: 0.12,
                        spread: 5.0,
                    },
                    ClusterSpec {
                        center: (50.0, 8.0),
                        weight: 0.28,
                        spread: 7.0,
                    },
                    ClusterSpec {
                        center: (35.6, 139.7),
                        weight: 0.1,
                        spread: 5.0,
                    },
                    ClusterSpec {
                        center: (31.0, 121.0),
                        weight: 0.08,
                        spread: 5.0,
                    },
                    ClusterSpec {
                        center: (-23.5, -46.6),
                        weight: 0.06,
                        spread: 5.0,
                    },
                    ClusterSpec {
                        center: (19.0, 72.8),
                        weight: 0.06,
                        spread: 5.0,
                    },
                ],
                ms_per_degree: 1.15,
                access_ms: (3.0, 30.0),
                jitter: 0.2,
                tiv_prob: 0.12,
                tiv_factor: 3.0,
            },
        }
    }
}

#[derive(Debug, Clone)]
struct ClusterSpec {
    /// (latitude-like y, longitude-like x) center, degrees.
    center: (f64, f64),
    /// Fraction of nodes drawn from this cluster.
    weight: f64,
    /// Standard deviation in degrees.
    spread: f64,
}

#[derive(Debug, Clone)]
struct TestbedSpec {
    clusters: Vec<ClusterSpec>,
    /// Propagation milliseconds per degree of (planar) distance.
    ms_per_degree: f64,
    /// Access latency range per node.
    access_ms: (f64, f64),
    /// Relative jitter amplitude.
    jitter: f64,
    /// TIV injection probability.
    tiv_prob: f64,
    /// TIV detour factor cap.
    tiv_factor: f64,
}

/// A generated testbed dataset: node set, materialized latency matrix and
/// metadata.
#[derive(Debug, Clone)]
pub struct TestbedTopology {
    /// Which testbed this models.
    pub testbed: Testbed,
    /// Nodes (all workers by default — experiment workloads assign
    /// source/sink roles and capacities).
    pub topology: Topology,
    /// The measured-RTT stand-in matrix.
    pub rtt: DenseRtt,
}

impl TestbedSpec {
    fn generate(&self, testbed: Testbed, seed: u64) -> TestbedTopology {
        let n = testbed.node_count();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7e57bed);
        // Cumulative cluster weights for sampling.
        let total_w: f64 = self.clusters.iter().map(|c| c.weight).sum();
        let mut positions = Vec::with_capacity(n);
        let mut access = Vec::with_capacity(n);
        for _ in 0..n {
            let mut pick = rng.gen_range(0.0..total_w);
            let mut chosen = &self.clusters[0];
            for c in &self.clusters {
                if pick < c.weight {
                    chosen = c;
                    break;
                }
                pick -= c.weight;
            }
            // Planar approximation: x = longitude scaled by cos(lat) so
            // east-west degrees shrink towards the poles, y = latitude.
            let lat = chosen.center.0 + gaussian(&mut rng) * chosen.spread;
            let lon = chosen.center.1 + gaussian(&mut rng) * chosen.spread;
            let x = lon * lat.to_radians().cos().abs().max(0.2);
            positions.push(Coord::xy(x, lat));
            access.push(rng.gen_range(self.access_ms.0..=self.access_ms.1));
        }
        let geo = GeoRtt::new(positions.clone(), access, self.ms_per_degree, seed ^ 0x9e0)
            .with_jitter(self.jitter)
            .with_tivs(self.tiv_prob, self.tiv_factor);
        let rtt = DenseRttBuilder::materialize(&geo);
        let mut topology = Topology::new();
        for (i, pos) in positions.into_iter().enumerate() {
            topology.add_node_at(
                NodeRole::Worker,
                0.0,
                format!("{}-{}", short_name(testbed), i),
                pos,
                None,
            );
        }
        TestbedTopology {
            testbed,
            topology,
            rtt,
        }
    }
}

fn short_name(t: Testbed) -> &'static str {
    match t {
        Testbed::FitIotLab => "fit",
        Testbed::RipeAtlas => "ripe",
        Testbed::RipeAtlas418 => "ripe418",
        Testbed::PlanetLab => "plab",
        Testbed::King => "king",
    }
}

/// Indirection so the dense materialization can be unit-tested.
struct DenseRttBuilder;

impl DenseRttBuilder {
    fn materialize(geo: &GeoRtt) -> DenseRtt {
        DenseRtt::from_provider(geo)
    }
}

fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_counts_match_paper() {
        assert_eq!(Testbed::FitIotLab.node_count(), 433);
        assert_eq!(Testbed::RipeAtlas.node_count(), 723);
        assert_eq!(Testbed::RipeAtlas418.node_count(), 418);
        assert_eq!(Testbed::PlanetLab.node_count(), 335);
        assert_eq!(Testbed::King.node_count(), 1740);
    }

    #[test]
    fn generated_matrix_is_symmetric_and_positive() {
        let t = Testbed::PlanetLab.generate(1);
        assert_eq!(t.rtt.len(), 335);
        for (i, j, v) in t.rtt.pairs().take(5000) {
            assert!(v > 0.0, "rtt({i},{j}) = {v}");
            assert_eq!(v, t.rtt.get(j, i));
        }
    }

    #[test]
    fn fit_is_lan_scale_king_is_wan_scale() {
        let fit = Testbed::FitIotLab.generate(2);
        let king = Testbed::King.generate(2);
        let mean = |m: &DenseRtt| -> f64 {
            let mut acc = 0.0;
            let mut cnt = 0usize;
            for (_, _, v) in m.pairs() {
                acc += v;
                cnt += 1;
            }
            acc / cnt as f64
        };
        let fit_mean = mean(&fit.rtt);
        let king_mean = mean(&king.rtt);
        assert!(
            fit_mean < 15.0,
            "FIT should be metro-scale, mean {fit_mean}"
        );
        assert!(
            king_mean > 60.0,
            "King should be WAN-scale, mean {king_mean}"
        );
        assert!(king_mean > 5.0 * fit_mean);
    }

    #[test]
    fn testbeds_exhibit_tivs() {
        let ripe = Testbed::RipeAtlas418.generate(3);
        let rate = ripe.rtt.tiv_rate(50_000, 9);
        assert!(
            rate > 0.01,
            "RIPE stand-in should violate triangles: {rate}"
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Testbed::PlanetLab.generate(5);
        let b = Testbed::PlanetLab.generate(5);
        let c = Testbed::PlanetLab.generate(6);
        assert_eq!(a.rtt.get(0, 1), b.rtt.get(0, 1));
        assert_ne!(a.rtt.get(0, 1), c.rtt.get(0, 1));
    }

    #[test]
    fn vivaldi_neighbor_sizes_match_paper() {
        assert_eq!(Testbed::FitIotLab.vivaldi_neighbors(), 20);
        assert_eq!(Testbed::RipeAtlas.vivaldi_neighbors(), 20);
        assert_eq!(Testbed::PlanetLab.vivaldi_neighbors(), 32);
        assert_eq!(Testbed::King.vivaldi_neighbors(), 32);
    }
}
