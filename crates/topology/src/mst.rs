//! Minimum spanning trees over the latency graph.
//!
//! The WSN-derived baselines route data over tree overlays: the *Tree*
//! baseline builds an MST over the whole topology and joins streams at
//! path intersections \[49\], while *Cl-Tree-SF* builds an MST over cluster
//! heads. Prim's algorithm in its O(n²) dense form is used because the
//! latency graph is complete (every node can reach every other); this is
//! also why these baselines blow past the paper's 10-minute timeout for
//! topologies beyond ~20 k nodes (Fig. 10) — the cost is inherent to the
//! approach, not to this implementation.

use std::collections::HashMap;

use crate::graph::NodeId;
use crate::rtt::LatencyProvider;

/// Minimum spanning tree over the complete latency graph restricted to
/// `members`, as `(a, b, latency)` edges. Uses Prim's algorithm in O(m²)
/// for m members.
pub fn minimum_spanning_tree(
    members: &[NodeId],
    provider: &impl LatencyProvider,
) -> Vec<(NodeId, NodeId, f64)> {
    let m = members.len();
    if m <= 1 {
        return Vec::new();
    }
    let mut in_tree = vec![false; m];
    // best[i] = (cost to connect member i, index of its tree-side parent)
    let mut best: Vec<(f64, usize)> = vec![(f64::INFINITY, usize::MAX); m];
    let mut edges = Vec::with_capacity(m - 1);
    in_tree[0] = true;
    for i in 1..m {
        best[i] = (provider.rtt(members[0], members[i]), 0);
    }
    for _ in 1..m {
        // Cheapest not-yet-connected member.
        let mut pick = usize::MAX;
        let mut pick_cost = f64::INFINITY;
        for i in 0..m {
            if !in_tree[i] && best[i].0 < pick_cost {
                pick_cost = best[i].0;
                pick = i;
            }
        }
        if pick == usize::MAX {
            break; // disconnected (infinite latencies)
        }
        in_tree[pick] = true;
        edges.push((members[best[pick].1], members[pick], pick_cost));
        for i in 0..m {
            if !in_tree[i] {
                let c = provider.rtt(members[pick], members[i]);
                if c < best[i].0 {
                    best[i] = (c, pick);
                }
            }
        }
    }
    edges
}

/// A tree overlay rooted at a chosen node, supporting lowest-common-
/// ancestor queries and path latencies — the primitives the Tree baseline
/// needs to decide where two streams "meet" on their way to the sink.
#[derive(Debug, Clone)]
pub struct RootedTree {
    /// Members in insertion order.
    nodes: Vec<NodeId>,
    index: HashMap<NodeId, usize>,
    parent: Vec<usize>,
    parent_latency: Vec<f64>,
    depth: Vec<u32>,
    root: usize,
}

impl RootedTree {
    /// Build a rooted overlay from MST edges.
    ///
    /// # Panics
    /// Panics if `root` does not appear in the edge set (unless the edge
    /// set is empty and `root` is the only node).
    pub fn from_edges(root: NodeId, edges: &[(NodeId, NodeId, f64)]) -> Self {
        let mut index: HashMap<NodeId, usize> = HashMap::new();
        let mut nodes = Vec::new();
        let touch = |id: NodeId, nodes: &mut Vec<NodeId>, index: &mut HashMap<NodeId, usize>| {
            *index.entry(id).or_insert_with(|| {
                nodes.push(id);
                nodes.len() - 1
            })
        };
        touch(root, &mut nodes, &mut index);
        let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new()];
        for &(a, b, w) in edges {
            let ia = touch(a, &mut nodes, &mut index);
            if adj.len() < nodes.len() {
                adj.resize(nodes.len(), Vec::new());
            }
            let ib = touch(b, &mut nodes, &mut index);
            if adj.len() < nodes.len() {
                adj.resize(nodes.len(), Vec::new());
            }
            adj[ia].push((ib, w));
            adj[ib].push((ia, w));
        }
        let n = nodes.len();
        let mut parent = vec![usize::MAX; n];
        let mut parent_latency = vec![0.0; n];
        let mut depth = vec![0u32; n];
        let mut visited = vec![false; n];
        let root_idx = index[&root];
        let mut stack = vec![root_idx];
        visited[root_idx] = true;
        parent[root_idx] = root_idx;
        while let Some(u) = stack.pop() {
            for &(v, w) in &adj[u] {
                if !visited[v] {
                    visited[v] = true;
                    parent[v] = u;
                    parent_latency[v] = w;
                    depth[v] = depth[u] + 1;
                    stack.push(v);
                }
            }
        }
        assert!(
            visited.iter().all(|&v| v),
            "tree edges do not form a single connected component containing the root"
        );
        RootedTree {
            nodes,
            index,
            parent,
            parent_latency,
            depth,
            root: root_idx,
        }
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.nodes[self.root]
    }

    /// Members of the tree.
    pub fn members(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Whether `id` is part of the overlay.
    pub fn contains(&self, id: NodeId) -> bool {
        self.index.contains_key(&id)
    }

    /// Lowest common ancestor of `a` and `b` with respect to the root —
    /// the node where the two streams' routes towards the root intersect.
    ///
    /// # Panics
    /// Panics if either node is not a member.
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let mut x = self.index[&a];
        let mut y = self.index[&b];
        while self.depth[x] > self.depth[y] {
            x = self.parent[x];
        }
        while self.depth[y] > self.depth[x] {
            y = self.parent[y];
        }
        while x != y {
            x = self.parent[x];
            y = self.parent[y];
        }
        self.nodes[x]
    }

    /// Latency of the tree path from `node` up to `ancestor`.
    ///
    /// # Panics
    /// Panics if `ancestor` is not actually on the root-path of `node`.
    pub fn latency_to_ancestor(&self, node: NodeId, ancestor: NodeId) -> f64 {
        let target = self.index[&ancestor];
        let mut x = self.index[&node];
        let mut acc = 0.0;
        while x != target {
            assert_ne!(x, self.root, "{ancestor} is not an ancestor of {node}");
            acc += self.parent_latency[x];
            x = self.parent[x];
        }
        acc
    }

    /// Latency of the unique tree path between two members (via their
    /// LCA).
    pub fn path_latency(&self, a: NodeId, b: NodeId) -> f64 {
        let l = self.lca(a, b);
        self.latency_to_ancestor(a, l) + self.latency_to_ancestor(b, l)
    }

    /// The node sequence from `node` up to `ancestor`, inclusive of both.
    ///
    /// # Panics
    /// Panics if `ancestor` is not on the root-path of `node`.
    pub fn path_to_ancestor(&self, node: NodeId, ancestor: NodeId) -> Vec<NodeId> {
        let target = self.index[&ancestor];
        let mut x = self.index[&node];
        let mut path = vec![node];
        while x != target {
            assert_ne!(x, self.root, "{ancestor} is not an ancestor of {node}");
            x = self.parent[x];
            path.push(self.nodes[x]);
        }
        path
    }

    /// The node sequence from `node` up to the root.
    pub fn path_to_root(&self, node: NodeId) -> Vec<NodeId> {
        self.path_to_ancestor(node, self.root())
    }

    /// The unique tree path between two members (through their LCA),
    /// inclusive of both endpoints.
    pub fn path_between(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        let l = self.lca(a, b);
        let mut path = self.path_to_ancestor(a, l);
        let mut down = self.path_to_ancestor(b, l);
        down.pop(); // drop the shared LCA
        down.reverse();
        path.extend(down);
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtt::DenseRtt;

    fn line_provider(n: usize) -> DenseRtt {
        // Points on a line at positions 0, 1, 2, ...: rtt = |i - j|.
        DenseRtt::from_fn(n, |i, j| (i as f64 - j as f64).abs())
    }

    fn ids(n: usize) -> Vec<NodeId> {
        (0..n as u32).map(NodeId).collect()
    }

    #[test]
    fn mst_of_line_is_the_line() {
        let p = line_provider(5);
        let edges = minimum_spanning_tree(&ids(5), &p);
        assert_eq!(edges.len(), 4);
        let total: f64 = edges.iter().map(|e| e.2).sum();
        assert_eq!(total, 4.0);
        // Every edge must be a unit edge between consecutive points.
        for (a, b, w) in edges {
            assert_eq!(w, 1.0);
            assert_eq!((a.0 as i64 - b.0 as i64).abs(), 1);
        }
    }

    #[test]
    fn mst_of_single_node_is_empty() {
        let p = line_provider(1);
        assert!(minimum_spanning_tree(&ids(1), &p).is_empty());
        assert!(minimum_spanning_tree(&[], &p).is_empty());
    }

    #[test]
    fn mst_total_weight_is_minimal_for_square() {
        // Unit square with diagonals sqrt(2): MST weight = 3.
        let pts = [(0.0f64, 0.0f64), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0)];
        let p = DenseRtt::from_fn(4, |i, j| {
            let (x1, y1) = pts[i];
            let (x2, y2) = pts[j];
            (x1 - x2).hypot(y1 - y2)
        });
        let edges = minimum_spanning_tree(&ids(4), &p);
        let total: f64 = edges.iter().map(|e| e.2).sum();
        assert!((total - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rooted_tree_lca_and_paths() {
        let p = line_provider(7);
        let edges = minimum_spanning_tree(&ids(7), &p);
        // Root at the middle of the line.
        let tree = RootedTree::from_edges(NodeId(3), &edges);
        // LCA of 0 and 6 with root 3 is 3 itself.
        assert_eq!(tree.lca(NodeId(0), NodeId(6)), NodeId(3));
        // LCA of 0 and 2 is 2 (2 lies on 0's path to the root).
        assert_eq!(tree.lca(NodeId(0), NodeId(2)), NodeId(2));
        assert_eq!(tree.path_latency(NodeId(0), NodeId(6)), 6.0);
        assert_eq!(tree.path_latency(NodeId(0), NodeId(2)), 2.0);
        assert_eq!(tree.latency_to_ancestor(NodeId(0), NodeId(3)), 3.0);
    }

    #[test]
    fn path_extraction_follows_the_tree() {
        let p = line_provider(7);
        let edges = minimum_spanning_tree(&ids(7), &p);
        let tree = RootedTree::from_edges(NodeId(3), &edges);
        assert_eq!(
            tree.path_to_ancestor(NodeId(0), NodeId(3)),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        assert_eq!(
            tree.path_to_root(NodeId(5)),
            vec![NodeId(5), NodeId(4), NodeId(3)]
        );
        assert_eq!(
            tree.path_between(NodeId(1), NodeId(5)),
            vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4), NodeId(5)]
        );
        assert_eq!(tree.path_between(NodeId(2), NodeId(2)), vec![NodeId(2)]);
    }

    #[test]
    fn lca_of_node_with_itself_is_itself() {
        let p = line_provider(4);
        let edges = minimum_spanning_tree(&ids(4), &p);
        let tree = RootedTree::from_edges(NodeId(0), &edges);
        assert_eq!(tree.lca(NodeId(2), NodeId(2)), NodeId(2));
        assert_eq!(tree.path_latency(NodeId(2), NodeId(2)), 0.0);
    }

    #[test]
    #[should_panic(expected = "single connected component")]
    fn disconnected_edges_rejected() {
        let edges = vec![(NodeId(1), NodeId(2), 1.0)];
        let _ = RootedTree::from_edges(NodeId(0), &edges);
    }
}
