//! Geometric primitives underpinning the Nova optimizer.
//!
//! Nova (EDBT 2026) relaxes the NP-hard operator placement and
//! parallelization problem by embedding the network topology into a
//! low-dimensional Euclidean *cost space* and solving placement there.
//! This crate provides the geometry that the optimizer relies on:
//!
//! * [`Coord`] — a fixed-capacity, copyable coordinate vector (up to
//!   [`MAX_DIM`] dimensions) used for every point in the cost space,
//! * [`median`] — solvers for the geometric median (Weiszfeld fixed point
//!   and plain gradient descent, the paper's Eq. 6) plus a min-max
//!   (smallest enclosing ball) alternative used for ablations,
//! * [`kdtree`] — an exact k-d tree for k-nearest-neighbour candidate
//!   search on small and medium topologies,
//! * [`annoy`] — an Annoy-style random-projection forest for approximate
//!   k-NN on very large topologies (the paper uses the Annoy library for
//!   topologies beyond a few thousand nodes).
//!
//! Everything in this crate is deterministic given a seed and free of
//! global state, which keeps the optimizer's simulations reproducible.

#![forbid(unsafe_code)]

pub mod annoy;
pub mod coord;
pub mod kdcap;
pub mod kdtree;
pub mod median;

pub use annoy::{AnnoyIndex, AnnoyParams};
pub use coord::{Coord, MAX_DIM};
pub use kdcap::CapacityKdTree;
pub use kdtree::KdTree;
pub use median::{
    geometric_median, geometric_median_gd, minmax_center, weighted_geometric_median, GdOptions,
    MedianOptions, MedianResult,
};

/// A neighbour returned by a k-NN query: index into the indexed point set
/// plus the Euclidean distance to the query point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the matched point in the order it was inserted.
    pub index: usize,
    /// Euclidean distance between the query and the matched point.
    pub dist: f64,
}

impl Eq for Neighbor {}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then_with(|| self.index.cmp(&other.index))
    }
}

/// Common interface over the exact ([`KdTree`]) and approximate
/// ([`AnnoyIndex`]) nearest-neighbour indexes so the optimizer can switch
/// between them based on topology size.
pub trait NnIndex {
    /// Number of indexed points.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Return up to `k` nearest neighbours of `query`, closest first.
    fn knn(&self, query: &Coord, k: usize) -> Vec<Neighbor>;
}
