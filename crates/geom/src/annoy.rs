//! Approximate k-NN via a random-projection forest (Annoy-style).
//!
//! For very large topologies (the paper scales to 10⁶ nodes) an exact
//! k-d tree query per operator becomes the bottleneck of Phase III, so the
//! paper switches to the Annoy library \[4\]. This module reimplements the
//! same idea: a forest of trees, each built by recursively splitting the
//! point set with a random hyperplane through the midpoint of two sampled
//! points. Queries run a best-first search across all trees, collect at
//! least `search_k` candidates, then rank them by exact distance.
//!
//! Recall is tunable via the number of trees and `search_k`; the
//! `bench/benches/knn.rs` ablation measures the recall/speed trade-off
//! against the exact [`crate::KdTree`].

use std::collections::BinaryHeap;

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::{Coord, Neighbor, NnIndex};

/// Tuning parameters for [`AnnoyIndex`].
#[derive(Debug, Clone, Copy)]
pub struct AnnoyParams {
    /// Number of independent random-projection trees.
    pub n_trees: usize,
    /// Maximum number of points in a leaf.
    pub leaf_size: usize,
    /// Minimum number of candidates inspected per query (before exact
    /// re-ranking). Larger values raise recall at the cost of latency.
    pub search_k: usize,
    /// Seed for the tree construction RNG.
    pub seed: u64,
}

impl Default for AnnoyParams {
    fn default() -> Self {
        AnnoyParams {
            n_trees: 12,
            leaf_size: 24,
            search_k: 400,
            seed: 0x5eed,
        }
    }
}

#[derive(Debug, Clone)]
enum TreeNode {
    Split {
        /// Hyperplane normal.
        normal: Coord,
        /// Offset such that the plane is `normal · x = offset`.
        offset: f64,
        left: u32,
        right: u32,
    },
    Leaf(Vec<u32>),
}

#[derive(Debug, Clone)]
struct Tree {
    nodes: Vec<TreeNode>,
    root: u32,
}

/// Approximate nearest-neighbour index over a fixed point set.
#[derive(Debug, Clone)]
pub struct AnnoyIndex {
    points: Vec<Coord>,
    trees: Vec<Tree>,
    params: AnnoyParams,
}

impl AnnoyIndex {
    /// Build the forest over `points` with the given parameters.
    pub fn build(points: &[Coord], params: AnnoyParams) -> Self {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let trees = (0..params.n_trees.max(1))
            .map(|_| Self::build_tree(points, params.leaf_size.max(2), &mut rng))
            .collect();
        AnnoyIndex {
            points: points.to_vec(),
            trees,
            params,
        }
    }

    /// The indexed points, in insertion order.
    pub fn points(&self) -> &[Coord] {
        &self.points
    }

    fn build_tree(points: &[Coord], leaf_size: usize, rng: &mut StdRng) -> Tree {
        let mut nodes = Vec::new();
        let ids: Vec<u32> = (0..points.len() as u32).collect();
        let root = Self::build_node(points, ids, leaf_size, rng, &mut nodes);
        Tree { nodes, root }
    }

    fn build_node(
        points: &[Coord],
        ids: Vec<u32>,
        leaf_size: usize,
        rng: &mut StdRng,
        nodes: &mut Vec<TreeNode>,
    ) -> u32 {
        if ids.len() <= leaf_size {
            nodes.push(TreeNode::Leaf(ids));
            return (nodes.len() - 1) as u32;
        }
        // Sample two distinct points to define the splitting hyperplane.
        // Retry a few times in case of coincident samples; fall back to a
        // balanced random split when the set is (nearly) degenerate.
        let mut split: Option<(Coord, f64)> = None;
        for _ in 0..8 {
            let a = ids[rng.gen_range(0..ids.len())] as usize;
            let b = ids[rng.gen_range(0..ids.len())] as usize;
            let (pa, pb) = (points[a], points[b]);
            let diff = pb - pa;
            let norm = diff.norm();
            if norm > 1e-12 {
                let normal = diff * (1.0 / norm);
                let mid = pa.lerp(&pb, 0.5);
                split = Some((normal, normal.dot(&mid)));
                break;
            }
        }
        let (left_ids, right_ids) = match split {
            Some((normal, offset)) => {
                let mut left = Vec::with_capacity(ids.len() / 2);
                let mut right = Vec::with_capacity(ids.len() / 2);
                for id in &ids {
                    if normal.dot(&points[*id as usize]) < offset {
                        left.push(*id);
                    } else {
                        right.push(*id);
                    }
                }
                // A pathologically unbalanced split (all points on one
                // side) would recurse forever; rebalance randomly.
                if left.is_empty() || right.is_empty() {
                    balanced_random_split(ids, rng)
                } else {
                    (left, right)
                }
            }
            None => balanced_random_split(ids, rng),
        };
        let (normal, offset) = split.unwrap_or_else(|| {
            // Degenerate set: any plane works; children were split randomly.
            (unit_axis(points.first().map_or(2, |p| p.dim())), 0.0)
        });
        let placeholder = nodes.len() as u32;
        nodes.push(TreeNode::Leaf(Vec::new()));
        let left = Self::build_node(points, left_ids, leaf_size, rng, nodes);
        let right = Self::build_node(points, right_ids, leaf_size, rng, nodes);
        nodes[placeholder as usize] = TreeNode::Split {
            normal,
            offset,
            left,
            right,
        };
        placeholder
    }
}

fn balanced_random_split(mut ids: Vec<u32>, rng: &mut StdRng) -> (Vec<u32>, Vec<u32>) {
    ids.shuffle(rng);
    let half = ids.len() / 2;
    let right = ids.split_off(half);
    (ids, right)
}

fn unit_axis(dim: usize) -> Coord {
    let mut c = Coord::zero(dim);
    c[0] = 1.0;
    c
}

/// f64 wrapper ordered by `total_cmp` for use in heaps.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl NnIndex for AnnoyIndex {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn knn(&self, query: &Coord, k: usize) -> Vec<Neighbor> {
        if k == 0 || self.points.is_empty() {
            return Vec::new();
        }
        let want = self.params.search_k.max(k);
        // Best-first search over all trees: priority = smallest margin on
        // the path (larger margin = more confidently on the near side).
        let mut heap: BinaryHeap<(OrdF64, u32, u32)> = BinaryHeap::new();
        for (ti, tree) in self.trees.iter().enumerate() {
            heap.push((OrdF64(f64::INFINITY), ti as u32, tree.root));
        }
        let mut seen = vec![false; self.points.len()];
        let mut candidates: Vec<u32> = Vec::with_capacity(want * 2);
        while let Some((OrdF64(margin), ti, ni)) = heap.pop() {
            if candidates.len() >= want {
                break;
            }
            match &self.trees[ti as usize].nodes[ni as usize] {
                TreeNode::Leaf(ids) => {
                    for &id in ids {
                        if !seen[id as usize] {
                            seen[id as usize] = true;
                            candidates.push(id);
                        }
                    }
                    if candidates.len() >= want {
                        break;
                    }
                }
                TreeNode::Split {
                    normal,
                    offset,
                    left,
                    right,
                } => {
                    let side = normal.dot(query) - offset;
                    let (near, far) = if side < 0.0 {
                        (*left, *right)
                    } else {
                        (*right, *left)
                    };
                    heap.push((OrdF64(margin.min(side.abs())), ti, near));
                    heap.push((OrdF64(margin.min(-side.abs())), ti, far));
                }
            }
        }
        // Exact re-ranking of the candidate pool.
        let mut ranked: Vec<Neighbor> = candidates
            .into_iter()
            .map(|id| Neighbor {
                index: id as usize,
                dist: self.points[id as usize].dist(query),
            })
            .collect();
        ranked.sort_unstable();
        ranked.truncate(k);
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KdTree;

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Coord> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let v: Vec<f64> = (0..dim).map(|_| rng.gen_range(-100.0..100.0)).collect();
                Coord::from_slice(&v)
            })
            .collect()
    }

    #[test]
    fn empty_index() {
        let idx = AnnoyIndex::build(&[], AnnoyParams::default());
        assert!(idx.is_empty());
        assert!(idx.knn(&Coord::xy(0.0, 0.0), 5).is_empty());
    }

    #[test]
    fn tiny_set_is_exact() {
        let points = random_points(10, 2, 1);
        let idx = AnnoyIndex::build(&points, AnnoyParams::default());
        let exact = KdTree::build(&points);
        let q = Coord::xy(5.0, 5.0);
        let got = idx.knn(&q, 3);
        let want = exact.knn(&q, 3);
        assert_eq!(got.len(), 3);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.index, w.index);
        }
    }

    #[test]
    fn recall_is_high_on_clustered_data() {
        // Gaussian clusters like the paper's synthetic topologies.
        let mut rng = StdRng::seed_from_u64(99);
        let mut points = Vec::new();
        for _ in 0..20 {
            let cx = rng.gen_range(0.0..100.0);
            let cy = rng.gen_range(-50.0..50.0);
            for _ in 0..100 {
                points.push(Coord::xy(
                    cx + rng.gen_range(-3.0..3.0),
                    cy + rng.gen_range(-3.0..3.0),
                ));
            }
        }
        let idx = AnnoyIndex::build(&points, AnnoyParams::default());
        let exact = KdTree::build(&points);
        let k = 10;
        let mut hits = 0usize;
        let mut total = 0usize;
        for _ in 0..50 {
            let q = Coord::xy(rng.gen_range(0.0..100.0), rng.gen_range(-50.0..50.0));
            let approx: std::collections::HashSet<usize> =
                idx.knn(&q, k).into_iter().map(|n| n.index).collect();
            for n in exact.knn(&q, k) {
                total += 1;
                if approx.contains(&n.index) {
                    hits += 1;
                }
            }
        }
        let recall = hits as f64 / total as f64;
        assert!(recall >= 0.9, "recall too low: {recall}");
    }

    #[test]
    fn duplicate_points_do_not_break_construction() {
        let p = Coord::xy(1.0, 1.0);
        let points = vec![p; 200];
        let idx = AnnoyIndex::build(
            &points,
            AnnoyParams {
                leaf_size: 8,
                ..Default::default()
            },
        );
        let got = idx.knn(&p, 5);
        assert_eq!(got.len(), 5);
        assert!(got.iter().all(|n| n.dist == 0.0));
    }

    #[test]
    fn results_are_sorted_and_deduplicated() {
        let points = random_points(1000, 3, 4);
        let idx = AnnoyIndex::build(&points, AnnoyParams::default());
        let got = idx.knn(&Coord::xyz(0.0, 0.0, 0.0), 20);
        assert_eq!(got.len(), 20);
        for w in got.windows(2) {
            assert!(w[0].dist <= w[1].dist);
            assert_ne!(w[0].index, w[1].index);
        }
    }

    #[test]
    fn k_exceeding_candidates_returns_at_most_n() {
        let points = random_points(15, 2, 8);
        let idx = AnnoyIndex::build(&points, AnnoyParams::default());
        let got = idx.knn(&Coord::xy(0.0, 0.0), 100);
        assert_eq!(got.len(), 15);
    }
}
