//! Exact k-nearest-neighbour search via a k-d tree.
//!
//! Nova's Phase III selects candidate nodes for each join replica with a
//! k-NN search around the replica's virtual coordinates (§3.4). For small
//! and medium topologies the paper uses an exact index; this module
//! provides it. Nodes are stored in a flat arena (no per-node boxing) and
//! the tree is built with median splits over the highest-spread axis,
//! giving `O(n log n)` construction and `O(log n)` expected query time.

use std::collections::BinaryHeap;

use crate::{Coord, Neighbor, NnIndex};

const NONE: i32 = -1;

#[derive(Debug, Clone, Copy)]
struct Node {
    /// Index into `points` of the splitting point stored at this node.
    point: u32,
    /// Split axis.
    axis: u8,
    /// Arena index of the left child (`< split`), or `NONE`.
    left: i32,
    /// Arena index of the right child (`>= split`), or `NONE`.
    right: i32,
}

/// An exact k-d tree over a fixed set of points.
#[derive(Debug, Clone)]
pub struct KdTree {
    points: Vec<Coord>,
    nodes: Vec<Node>,
    root: i32,
}

impl KdTree {
    /// Build a tree over `points`. The tree keeps its own copy; neighbour
    /// indices returned from queries refer to positions in this slice.
    pub fn build(points: &[Coord]) -> Self {
        let mut ids: Vec<u32> = (0..points.len() as u32).collect();
        let mut tree = KdTree {
            points: points.to_vec(),
            nodes: Vec::with_capacity(points.len()),
            root: NONE,
        };
        if !ids.is_empty() {
            let root = tree.build_rec(&mut ids);
            tree.root = root;
        }
        tree
    }

    /// The indexed points, in insertion order.
    pub fn points(&self) -> &[Coord] {
        &self.points
    }

    fn build_rec(&mut self, ids: &mut [u32]) -> i32 {
        if ids.is_empty() {
            return NONE;
        }
        let axis = self.widest_axis(ids);
        let mid = ids.len() / 2;
        ids.select_nth_unstable_by(mid, |&a, &b| {
            self.points[a as usize][axis].total_cmp(&self.points[b as usize][axis])
        });
        let point = ids[mid];
        let node_id = self.nodes.len() as i32;
        self.nodes.push(Node {
            point,
            axis: axis as u8,
            left: NONE,
            right: NONE,
        });
        // Split the slice around the median; recurse without the median
        // element itself.
        let (lo, hi) = ids.split_at_mut(mid);
        let hi = &mut hi[1..];
        let left = self.build_rec(lo);
        let right = self.build_rec(hi);
        self.nodes[node_id as usize].left = left;
        self.nodes[node_id as usize].right = right;
        node_id
    }

    /// Axis with the largest value spread over the given subset — a better
    /// splitting heuristic than depth-cycling for clustered geo data.
    fn widest_axis(&self, ids: &[u32]) -> usize {
        let dim = self.points[ids[0] as usize].dim();
        let mut best_axis = 0;
        let mut best_spread = f64::NEG_INFINITY;
        for axis in 0..dim {
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for &id in ids {
                let v = self.points[id as usize][axis];
                min = min.min(v);
                max = max.max(v);
            }
            let spread = max - min;
            if spread > best_spread {
                best_spread = spread;
                best_axis = axis;
            }
        }
        best_axis
    }

    /// Single nearest neighbour, or `None` when the tree is empty.
    pub fn nearest(&self, query: &Coord) -> Option<Neighbor> {
        self.knn(query, 1).into_iter().next()
    }

    /// All points within `radius` of `query`, closest first.
    pub fn within_radius(&self, query: &Coord, radius: f64) -> Vec<Neighbor> {
        let mut out = Vec::new();
        if self.root != NONE {
            self.range_rec(self.root, query, radius, &mut out);
        }
        out.sort_unstable();
        out
    }

    fn range_rec(&self, node_id: i32, query: &Coord, radius: f64, out: &mut Vec<Neighbor>) {
        let node = self.nodes[node_id as usize];
        let p = &self.points[node.point as usize];
        let dist = p.dist(query);
        if dist <= radius {
            out.push(Neighbor {
                index: node.point as usize,
                dist,
            });
        }
        let axis = node.axis as usize;
        let diff = query[axis] - p[axis];
        let (near, far) = if diff < 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if near != NONE {
            self.range_rec(near, query, radius, out);
        }
        if far != NONE && diff.abs() <= radius {
            self.range_rec(far, query, radius, out);
        }
    }

    fn knn_rec(&self, node_id: i32, query: &Coord, k: usize, heap: &mut BinaryHeap<Neighbor>) {
        let node = self.nodes[node_id as usize];
        let p = &self.points[node.point as usize];
        let dist = p.dist(query);
        if heap.len() < k {
            heap.push(Neighbor {
                index: node.point as usize,
                dist,
            });
        } else if let Some(worst) = heap.peek() {
            if dist < worst.dist {
                heap.pop();
                heap.push(Neighbor {
                    index: node.point as usize,
                    dist,
                });
            }
        }
        let axis = node.axis as usize;
        let diff = query[axis] - p[axis];
        let (near, far) = if diff < 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if near != NONE {
            self.knn_rec(near, query, k, heap);
        }
        if far != NONE {
            let prune =
                heap.len() == k && diff.abs() > heap.peek().map_or(f64::INFINITY, |w| w.dist);
            if !prune {
                self.knn_rec(far, query, k, heap);
            }
        }
    }
}

impl NnIndex for KdTree {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn knn(&self, query: &Coord, k: usize) -> Vec<Neighbor> {
        if k == 0 || self.root == NONE {
            return Vec::new();
        }
        let mut heap = BinaryHeap::with_capacity(k + 1);
        self.knn_rec(self.root, query, k, &mut heap);
        let mut out = heap.into_vec();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn brute_knn(points: &[Coord], query: &Coord, k: usize) -> Vec<Neighbor> {
        let mut all: Vec<Neighbor> = points
            .iter()
            .enumerate()
            .map(|(index, p)| Neighbor {
                index,
                dist: p.dist(query),
            })
            .collect();
        all.sort_unstable();
        all.truncate(k);
        all
    }

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Coord> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let v: Vec<f64> = (0..dim).map(|_| rng.gen_range(-100.0..100.0)).collect();
                Coord::from_slice(&v)
            })
            .collect()
    }

    #[test]
    fn empty_tree_returns_nothing() {
        let t = KdTree::build(&[]);
        assert!(t.is_empty());
        assert!(t.knn(&Coord::xy(0.0, 0.0), 3).is_empty());
        assert!(t.nearest(&Coord::xy(0.0, 0.0)).is_none());
    }

    #[test]
    fn k_zero_returns_nothing() {
        let t = KdTree::build(&[Coord::xy(1.0, 1.0)]);
        assert!(t.knn(&Coord::xy(0.0, 0.0), 0).is_empty());
    }

    #[test]
    fn single_point() {
        let t = KdTree::build(&[Coord::xy(1.0, 2.0)]);
        let n = t.nearest(&Coord::xy(0.0, 0.0)).unwrap();
        assert_eq!(n.index, 0);
        assert!((n.dist - 5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn knn_matches_brute_force_2d() {
        let points = random_points(500, 2, 42);
        let tree = KdTree::build(&points);
        let queries = random_points(50, 2, 7);
        for q in &queries {
            for k in [1, 3, 10, 25] {
                let got = tree.knn(q, k);
                let want = brute_knn(&points, q, k);
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    assert!((g.dist - w.dist).abs() < 1e-9, "k={k} got {g:?} want {w:?}");
                }
            }
        }
    }

    #[test]
    fn knn_matches_brute_force_4d() {
        let points = random_points(300, 4, 9);
        let tree = KdTree::build(&points);
        for q in &random_points(20, 4, 11) {
            let got = tree.knn(q, 7);
            let want = brute_knn(&points, q, 7);
            for (g, w) in got.iter().zip(&want) {
                assert!((g.dist - w.dist).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn k_larger_than_point_count_returns_all() {
        let points = random_points(10, 2, 3);
        let tree = KdTree::build(&points);
        let got = tree.knn(&Coord::xy(0.0, 0.0), 50);
        assert_eq!(got.len(), 10);
        // Results must be sorted ascending by distance.
        for w in got.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }

    #[test]
    fn duplicate_points_are_all_returned() {
        let p = Coord::xy(1.0, 1.0);
        let points = vec![p, p, p, Coord::xy(5.0, 5.0)];
        let tree = KdTree::build(&points);
        let got = tree.knn(&p, 3);
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|n| n.dist == 0.0));
    }

    #[test]
    fn within_radius_matches_filtered_brute_force() {
        let points = random_points(400, 2, 5);
        let tree = KdTree::build(&points);
        let q = Coord::xy(10.0, -20.0);
        let r = 35.0;
        let got = tree.within_radius(&q, r);
        let want: Vec<Neighbor> = brute_knn(&points, &q, points.len())
            .into_iter()
            .filter(|n| n.dist <= r)
            .collect();
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.index, w.index);
        }
    }

    #[test]
    fn collinear_points_are_handled() {
        let points: Vec<Coord> = (0..100).map(|i| Coord::xy(i as f64, 0.0)).collect();
        let tree = KdTree::build(&points);
        let got = tree.knn(&Coord::xy(50.2, 0.0), 3);
        assert_eq!(got[0].index, 50);
        assert_eq!(got.len(), 3);
    }
}
