//! Capacity-aware nearest-neighbour search.
//!
//! Phase III repeatedly needs "the nearest node whose remaining capacity
//! is at least x". A plain k-NN index answers this only by fetching ever
//! larger neighborhoods and filtering — which degenerates when thousands
//! of nearby nodes are drained (every join pair's virtual optimum is
//! pulled towards the shared sink, so the central region depletes first
//! and every later query wades through it).
//!
//! [`CapacityKdTree`] augments a k-d tree with a per-subtree *maximum
//! remaining capacity*: queries prune any subtree whose best node cannot
//! satisfy the demand, making `nearest_capable` logarithmic regardless of
//! how depleted the neighborhood is. Capacity updates bubble the maximum
//! up through parent pointers in O(depth).

use std::collections::BinaryHeap;

use crate::{Coord, Neighbor};

const NONE: i32 = -1;

#[derive(Debug, Clone, Copy)]
struct Node {
    point: u32,
    axis: u8,
    left: i32,
    right: i32,
    parent: i32,
    /// Maximum remaining capacity in this node's subtree (including the
    /// node's own point).
    max_cap: f64,
}

/// A k-d tree over points with mutable per-point capacities.
#[derive(Debug, Clone)]
pub struct CapacityKdTree {
    points: Vec<Coord>,
    caps: Vec<f64>,
    nodes: Vec<Node>,
    /// Arena index of the node storing each point.
    point_node: Vec<u32>,
    root: i32,
}

impl CapacityKdTree {
    /// Build over `points` with initial capacities (same length).
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn build(points: &[Coord], caps: &[f64]) -> Self {
        assert_eq!(points.len(), caps.len(), "points/caps length mismatch");
        let mut ids: Vec<u32> = (0..points.len() as u32).collect();
        let mut tree = CapacityKdTree {
            points: points.to_vec(),
            caps: caps.to_vec(),
            nodes: Vec::with_capacity(points.len()),
            point_node: vec![0; points.len()],
            root: NONE,
        };
        if !ids.is_empty() {
            let root = tree.build_rec(&mut ids, NONE);
            tree.root = root;
        }
        tree
    }

    fn build_rec(&mut self, ids: &mut [u32], parent: i32) -> i32 {
        if ids.is_empty() {
            return NONE;
        }
        let axis = self.widest_axis(ids);
        let mid = ids.len() / 2;
        ids.select_nth_unstable_by(mid, |&a, &b| {
            self.points[a as usize][axis].total_cmp(&self.points[b as usize][axis])
        });
        let point = ids[mid];
        let node_id = self.nodes.len() as i32;
        self.nodes.push(Node {
            point,
            axis: axis as u8,
            left: NONE,
            right: NONE,
            parent,
            max_cap: self.caps[point as usize],
        });
        self.point_node[point as usize] = node_id as u32;
        let (lo, hi) = ids.split_at_mut(mid);
        let hi = &mut hi[1..];
        let left = self.build_rec(lo, node_id);
        let right = self.build_rec(hi, node_id);
        let mut max_cap = self.caps[point as usize];
        if left != NONE {
            max_cap = max_cap.max(self.nodes[left as usize].max_cap);
        }
        if right != NONE {
            max_cap = max_cap.max(self.nodes[right as usize].max_cap);
        }
        let n = &mut self.nodes[node_id as usize];
        n.left = left;
        n.right = right;
        n.max_cap = max_cap;
        node_id
    }

    fn widest_axis(&self, ids: &[u32]) -> usize {
        let dim = self.points[ids[0] as usize].dim();
        let mut best_axis = 0;
        let mut best_spread = f64::NEG_INFINITY;
        for axis in 0..dim {
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for &id in ids {
                let v = self.points[id as usize][axis];
                min = min.min(v);
                max = max.max(v);
            }
            if max - min > best_spread {
                best_spread = max - min;
                best_axis = axis;
            }
        }
        best_axis
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Current capacity of a point.
    pub fn capacity(&self, point: usize) -> f64 {
        self.caps[point]
    }

    /// The indexed points, in insertion order.
    pub fn points(&self) -> &[Coord] {
        &self.points
    }

    /// All current capacities, in insertion order.
    pub fn capacities(&self) -> &[f64] {
        &self.caps
    }

    /// Update one point's remaining capacity; subtree maxima are repaired
    /// in O(depth).
    pub fn set_capacity(&mut self, point: usize, cap: f64) {
        self.caps[point] = cap;
        let mut cur = self.point_node[point] as i32;
        while cur != NONE {
            let node = self.nodes[cur as usize];
            let mut m = self.caps[node.point as usize];
            if node.left != NONE {
                m = m.max(self.nodes[node.left as usize].max_cap);
            }
            if node.right != NONE {
                m = m.max(self.nodes[node.right as usize].max_cap);
            }
            if (m - self.nodes[cur as usize].max_cap).abs() == 0.0 {
                // Unchanged aggregate: ancestors are already correct.
                self.nodes[cur as usize].max_cap = m;
                break;
            }
            self.nodes[cur as usize].max_cap = m;
            cur = node.parent;
        }
    }

    /// The nearest point (by Euclidean distance to `query`) whose
    /// capacity is at least `need`. Returns `(point index, distance)`.
    pub fn nearest_capable(&self, query: &Coord, need: f64) -> Option<(usize, f64)> {
        if self.root == NONE || self.nodes[self.root as usize].max_cap < need {
            return None;
        }
        let mut best: Option<(usize, f64)> = None;
        self.nearest_rec(self.root, query, need, &mut best);
        best
    }

    fn nearest_rec(&self, node_id: i32, query: &Coord, need: f64, best: &mut Option<(usize, f64)>) {
        let node = self.nodes[node_id as usize];
        // Prune: nothing in this subtree can satisfy the demand.
        if node.max_cap < need {
            return;
        }
        let p = &self.points[node.point as usize];
        if self.caps[node.point as usize] >= need {
            let d = p.dist(query);
            if best.is_none_or(|(_, bd)| d < bd) {
                *best = Some((node.point as usize, d));
            }
        }
        let axis = node.axis as usize;
        let diff = query[axis] - p[axis];
        let (near, far) = if diff < 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if near != NONE {
            self.nearest_rec(near, query, need, best);
        }
        if far != NONE {
            let prune = best.is_some_and(|(_, bd)| diff.abs() > bd);
            if !prune {
                self.nearest_rec(far, query, need, best);
            }
        }
    }

    /// The k nearest points with capacity ≥ `need`, closest first.
    pub fn knn_capable(&self, query: &Coord, k: usize, need: f64) -> Vec<Neighbor> {
        if k == 0 || self.root == NONE {
            return Vec::new();
        }
        let mut heap: BinaryHeap<Neighbor> = BinaryHeap::with_capacity(k + 1);
        self.knn_rec(self.root, query, k, need, &mut heap);
        let mut out = heap.into_vec();
        out.sort_unstable();
        out
    }

    fn knn_rec(
        &self,
        node_id: i32,
        query: &Coord,
        k: usize,
        need: f64,
        heap: &mut BinaryHeap<Neighbor>,
    ) {
        let node = self.nodes[node_id as usize];
        if node.max_cap < need {
            return;
        }
        let p = &self.points[node.point as usize];
        if self.caps[node.point as usize] >= need {
            let dist = p.dist(query);
            if heap.len() < k {
                heap.push(Neighbor {
                    index: node.point as usize,
                    dist,
                });
            } else if let Some(worst) = heap.peek() {
                if dist < worst.dist {
                    heap.pop();
                    heap.push(Neighbor {
                        index: node.point as usize,
                        dist,
                    });
                }
            }
        }
        let axis = node.axis as usize;
        let diff = query[axis] - p[axis];
        let (near, far) = if diff < 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if near != NONE {
            self.knn_rec(near, query, k, need, heap);
        }
        if far != NONE {
            let prune =
                heap.len() == k && diff.abs() > heap.peek().map_or(f64::INFINITY, |w| w.dist);
            if !prune {
                self.knn_rec(far, query, k, need, heap);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn grid(n: usize) -> (Vec<Coord>, Vec<f64>) {
        // Points on a line; capacity = index.
        let pts: Vec<Coord> = (0..n).map(|i| Coord::xy(i as f64, 0.0)).collect();
        let caps: Vec<f64> = (0..n).map(|i| i as f64).collect();
        (pts, caps)
    }

    #[test]
    fn nearest_capable_respects_demand() {
        let (pts, caps) = grid(100);
        let tree = CapacityKdTree::build(&pts, &caps);
        // From x=10: nearest point is 10 (cap 10), but demand 50 forces
        // the search out to point 50.
        let (idx, d) = tree.nearest_capable(&Coord::xy(10.0, 0.0), 50.0).unwrap();
        assert_eq!(idx, 50);
        assert_eq!(d, 40.0);
        // Demand 0 returns the nearest point itself.
        let (idx, _) = tree.nearest_capable(&Coord::xy(10.2, 0.0), 0.0).unwrap();
        assert_eq!(idx, 10);
    }

    #[test]
    fn unsatisfiable_demand_returns_none() {
        let (pts, caps) = grid(10);
        let tree = CapacityKdTree::build(&pts, &caps);
        assert!(tree.nearest_capable(&Coord::xy(0.0, 0.0), 100.0).is_none());
    }

    #[test]
    fn set_capacity_updates_results() {
        let (pts, caps) = grid(50);
        let mut tree = CapacityKdTree::build(&pts, &caps);
        let q = Coord::xy(0.0, 0.0);
        let (idx, _) = tree.nearest_capable(&q, 20.0).unwrap();
        assert_eq!(idx, 20);
        // Drain point 20; the next candidate is 21.
        tree.set_capacity(20, 0.0);
        let (idx, _) = tree.nearest_capable(&q, 20.0).unwrap();
        assert_eq!(idx, 21);
        // Give point 3 a huge capacity; it is now the nearest capable.
        tree.set_capacity(3, 1000.0);
        let (idx, _) = tree.nearest_capable(&q, 20.0).unwrap();
        assert_eq!(idx, 3);
        assert_eq!(tree.capacity(3), 1000.0);
    }

    #[test]
    fn knn_capable_filters_and_sorts() {
        let (pts, caps) = grid(30);
        let tree = CapacityKdTree::build(&pts, &caps);
        let got = tree.knn_capable(&Coord::xy(0.0, 0.0), 3, 25.0);
        let idx: Vec<usize> = got.iter().map(|n| n.index).collect();
        assert_eq!(idx, vec![25, 26, 27]);
    }

    #[test]
    fn matches_brute_force_on_random_input() {
        let mut rng = StdRng::seed_from_u64(9);
        let pts: Vec<Coord> = (0..400)
            .map(|_| Coord::xy(rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0)))
            .collect();
        let caps: Vec<f64> = (0..400).map(|_| rng.gen_range(0.0..100.0)).collect();
        let mut tree = CapacityKdTree::build(&pts, &caps);
        // Random capacity churn.
        let mut caps = caps;
        for _ in 0..300 {
            let i = rng.gen_range(0..400);
            let c = rng.gen_range(0.0..100.0);
            caps[i] = c;
            tree.set_capacity(i, c);
        }
        for _ in 0..60 {
            let q = Coord::xy(rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0));
            let need = rng.gen_range(0.0..90.0);
            let got = tree.nearest_capable(&q, need);
            let want = pts
                .iter()
                .enumerate()
                .filter(|(i, _)| caps[*i] >= need)
                .map(|(i, p)| (i, p.dist(&q)))
                .min_by(|a, b| a.1.total_cmp(&b.1));
            match (got, want) {
                (Some((gi, gd)), Some((_, wd))) => {
                    assert!(
                        (gd - wd).abs() < 1e-9,
                        "need {need}: got {gi}@{gd}, want dist {wd}"
                    );
                }
                (None, None) => {}
                other => panic!("mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn empty_tree_is_benign() {
        let tree = CapacityKdTree::build(&[], &[]);
        assert!(tree.is_empty());
        assert!(tree.nearest_capable(&Coord::xy(0.0, 0.0), 1.0).is_none());
        assert!(tree.knn_capable(&Coord::xy(0.0, 0.0), 3, 1.0).is_empty());
    }
}
