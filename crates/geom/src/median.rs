//! Geometric median solvers (the paper's Eq. 6).
//!
//! In Phase II Nova places every join replica at the point minimizing the
//! sum of Euclidean distances to its pinned endpoints (its two physical
//! sources and the sink) in the cost space. That point is the *geometric
//! median* (Fermat–Weber point), a convex problem with a unique optimum
//! whenever the anchors are not collinear.
//!
//! Two solvers are provided:
//!
//! * [`geometric_median`] — the Weiszfeld fixed-point iteration with the
//!   Ostresh modification so iterates that land exactly on an anchor do
//!   not stall,
//! * [`geometric_median_gd`] — plain (sub)gradient descent with a decaying
//!   step size, matching the paper's description ("we solve iteratively
//!   using gradient descent \[60\]").
//!
//! Both converge to the same optimum; the benchmark suite compares their
//! speed (`bench/benches/median.rs`). [`minmax_center`] additionally solves
//! the min–max (smallest enclosing ball) objective the paper discusses and
//! rejects in §2.3, so the trade-off can be reproduced.

use crate::Coord;

/// Options for [`geometric_median`] (Weiszfeld iteration).
#[derive(Debug, Clone, Copy)]
pub struct MedianOptions {
    /// Maximum number of fixed-point iterations.
    pub max_iters: usize,
    /// Convergence threshold on the movement of the iterate between
    /// successive steps.
    pub tolerance: f64,
}

impl Default for MedianOptions {
    fn default() -> Self {
        MedianOptions {
            max_iters: 1000,
            tolerance: 1e-10,
        }
    }
}

/// Options for [`geometric_median_gd`] (gradient descent).
#[derive(Debug, Clone, Copy)]
pub struct GdOptions {
    /// Maximum number of gradient steps.
    pub max_iters: usize,
    /// Convergence threshold on the iterate movement.
    pub tolerance: f64,
    /// Initial step size; decays as `step / (1 + decay * t)`.
    pub step: f64,
    /// Step-size decay rate.
    pub decay: f64,
}

impl Default for GdOptions {
    fn default() -> Self {
        GdOptions {
            max_iters: 2000,
            tolerance: 1e-9,
            step: 1.0,
            decay: 0.05,
        }
    }
}

/// Result of a median computation.
#[derive(Debug, Clone, Copy)]
pub struct MedianResult {
    /// The optimal (or best found) point.
    pub point: Coord,
    /// Objective value: sum of (weighted) distances from `point` to all
    /// anchors.
    pub cost: f64,
    /// Number of iterations performed.
    pub iterations: usize,
}

/// Sum of weighted distances from `y` to each anchor.
fn objective(anchors: &[Coord], weights: Option<&[f64]>, y: &Coord) -> f64 {
    match weights {
        None => anchors.iter().map(|a| a.dist(y)).sum(),
        Some(w) => anchors.iter().zip(w).map(|(a, w)| w * a.dist(y)).sum(),
    }
}

/// Unweighted geometric median of `anchors` via Weiszfeld iteration.
///
/// Returns `None` when `anchors` is empty. For a single anchor the anchor
/// itself is returned; for two anchors any point on the segment is optimal
/// and the midpoint is returned.
pub fn geometric_median(anchors: &[Coord], opts: MedianOptions) -> Option<MedianResult> {
    weighted_geometric_median(anchors, None, opts)
}

/// Weighted geometric median: minimizes `Σ w_i · ‖a_i − y‖`.
///
/// Weights let the optimizer bias a replica towards high-rate inputs.
/// `weights`, when provided, must have the same length as `anchors` and be
/// non-negative.
///
/// # Panics
/// Panics if `weights` is provided with a different length than `anchors`.
pub fn weighted_geometric_median(
    anchors: &[Coord],
    weights: Option<&[f64]>,
    opts: MedianOptions,
) -> Option<MedianResult> {
    if let Some(w) = weights {
        assert_eq!(w.len(), anchors.len(), "weights/anchors length mismatch");
    }
    let first = anchors.first()?;
    if anchors.len() == 1 {
        return Some(MedianResult {
            point: *first,
            cost: 0.0,
            iterations: 0,
        });
    }
    if anchors.len() == 2 {
        // Any point on the segment is optimal in the unweighted case; the
        // weighted optimum is the heavier anchor, but the midpoint remains
        // optimal for equal weights and we only shortcut that case.
        let equal = weights.is_none_or(|w| (w[0] - w[1]).abs() < f64::EPSILON);
        if equal {
            let mid = anchors[0].lerp(&anchors[1], 0.5);
            let cost = objective(anchors, weights, &mid);
            return Some(MedianResult {
                point: mid,
                cost,
                iterations: 0,
            });
        }
    }

    // Start from the (weighted) centroid — a good convex initializer.
    let mut y = weighted_centroid(anchors, weights);
    let mut iterations = 0;
    // Anchor-coincidence threshold: relative to the spread of the anchors.
    let scale = spread(anchors).max(f64::MIN_POSITIVE);
    let snap_eps = 1e-12 * scale;

    for it in 0..opts.max_iters {
        iterations = it + 1;
        let mut numer = Coord::zero(y.dim());
        let mut denom = 0.0;
        // Ostresh modification: when the iterate coincides with an anchor,
        // the pull of the remaining anchors is compared against that
        // anchor's weight; if the resulting direction cannot escape, the
        // anchor is the optimum.
        let mut at_anchor: Option<(usize, f64)> = None;
        for (i, a) in anchors.iter().enumerate() {
            let w = weights.map_or(1.0, |w| w[i]);
            let d = a.dist(&y);
            if d <= snap_eps {
                at_anchor = Some((i, w));
                continue;
            }
            let inv = w / d;
            numer += *a * inv;
            denom += inv;
        }
        let next = if let Some((ai, aw)) = at_anchor {
            if denom == 0.0 {
                // All anchors coincide.
                break;
            }
            // R = Σ_{i≠a} w_i (a_i − y)/‖a_i − y‖ — the pull away from the
            // anchor. If ‖R‖ ≤ w_a the anchor is optimal.
            let t = numer * (1.0 / denom);
            let pull = (t - y) * denom;
            let pull_norm = pull.norm();
            if pull_norm <= aw {
                y = anchors[ai];
                break;
            }
            // Step off the anchor in the pull direction.
            let shrink = (1.0 - aw / pull_norm).max(0.0);
            y.lerp(&t, shrink)
        } else {
            numer * (1.0 / denom)
        };
        let moved = next.dist(&y);
        y = next;
        if moved <= opts.tolerance * scale.max(1.0) {
            break;
        }
    }

    let mut cost = objective(anchors, weights, &y);
    // Weiszfeld converges only sublinearly when the optimum coincides with
    // an anchor (the iterate creeps towards it without reaching it). The
    // optimum-at-anchor case is common for join replicas whose sink
    // dominates, so explicitly evaluate anchors and snap to the best one
    // when it beats the iterate. Cap the quadratic check at 64 anchors and
    // fall back to the nearest anchor beyond that.
    if anchors.len() <= 64 {
        for a in anchors {
            let c = objective(anchors, weights, a);
            if c < cost {
                cost = c;
                y = *a;
            }
        }
    } else if let Some(nearest) = anchors
        .iter()
        .min_by(|a, b| a.dist2(&y).total_cmp(&b.dist2(&y)))
    {
        let c = objective(anchors, weights, nearest);
        if c < cost {
            cost = c;
            y = *nearest;
        }
    }
    Some(MedianResult {
        point: y,
        cost,
        iterations,
    })
}

/// Geometric median via plain sub-gradient descent with a decaying step,
/// as described in the paper (§3.3, citing Ruder's overview of gradient
/// descent methods). Slower than Weiszfeld but included for fidelity and
/// used as a cross-check in tests and ablation benches.
pub fn geometric_median_gd(anchors: &[Coord], opts: GdOptions) -> Option<MedianResult> {
    let first = anchors.first()?;
    if anchors.len() == 1 {
        return Some(MedianResult {
            point: *first,
            cost: 0.0,
            iterations: 0,
        });
    }
    let scale = spread(anchors).max(f64::MIN_POSITIVE);
    let mut y = weighted_centroid(anchors, None);
    let mut best = y;
    let mut best_cost = objective(anchors, None, &y);
    let mut iterations = 0;
    for t in 0..opts.max_iters {
        iterations = t + 1;
        // Sub-gradient of Σ ‖a_i − y‖: Σ (y − a_i)/‖y − a_i‖ over anchors
        // not coincident with y.
        let mut grad = Coord::zero(y.dim());
        for a in anchors {
            if let Some(dir) = a.direction_to(&y, 1e-12 * scale) {
                grad += dir;
            }
        }
        let gnorm = grad.norm();
        if gnorm <= 1e-12 {
            break;
        }
        let step = opts.step * scale / (1.0 + opts.decay * t as f64);
        let next = y - grad * (step / gnorm.max(1.0) / anchors.len() as f64);
        let moved = next.dist(&y);
        y = next;
        let cost = objective(anchors, None, &y);
        if cost < best_cost {
            best_cost = cost;
            best = y;
        }
        if moved <= opts.tolerance * scale {
            break;
        }
    }
    Some(MedianResult {
        point: best,
        cost: best_cost,
        iterations,
    })
}

/// Center of the min–max objective: the point minimizing the *maximum*
/// distance to any anchor (center of the smallest enclosing ball).
///
/// Implemented with the Bădoiu–Clarkson iteration: repeatedly step towards
/// the farthest anchor with a 1/(t+1) step. The paper (§2.3) rejects this
/// objective for placement because it is sensitive to single stale
/// measurements; it is provided so the min-sum vs min-max ablation can be
/// reproduced.
pub fn minmax_center(anchors: &[Coord], iters: usize) -> Option<MedianResult> {
    let first = anchors.first()?;
    let mut y = *first;
    let mut iterations = 0;
    for t in 0..iters.max(1) {
        iterations = t + 1;
        let (far, _) = farthest(anchors, &y)?;
        y = y.lerp(&far, 1.0 / (t as f64 + 2.0));
    }
    let (_, radius) = farthest(anchors, &y)?;
    Some(MedianResult {
        point: y,
        cost: radius,
        iterations,
    })
}

fn farthest(anchors: &[Coord], y: &Coord) -> Option<(Coord, f64)> {
    anchors
        .iter()
        .map(|a| (*a, a.dist(y)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

fn weighted_centroid(anchors: &[Coord], weights: Option<&[f64]>) -> Coord {
    let dim = anchors[0].dim();
    let mut acc = Coord::zero(dim);
    let mut total = 0.0;
    for (i, a) in anchors.iter().enumerate() {
        let w = weights.map_or(1.0, |w| w[i]);
        acc += *a * w;
        total += w;
    }
    if total > 0.0 {
        acc * (1.0 / total)
    } else {
        Coord::centroid(anchors).unwrap_or(acc)
    }
}

/// Rough spatial scale of the anchor set: max distance from the first
/// anchor. Used to make tolerances scale-invariant.
fn spread(anchors: &[Coord]) -> f64 {
    let first = anchors[0];
    anchors.iter().map(|a| a.dist(&first)).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &Coord, b: &Coord, tol: f64) {
        assert!(
            a.dist(b) <= tol,
            "expected {a:?} ≈ {b:?} within {tol}, got distance {}",
            a.dist(b)
        );
    }

    #[test]
    fn empty_input_returns_none() {
        assert!(geometric_median(&[], MedianOptions::default()).is_none());
        assert!(geometric_median_gd(&[], GdOptions::default()).is_none());
        assert!(minmax_center(&[], 10).is_none());
    }

    #[test]
    fn single_anchor_is_its_own_median() {
        let a = Coord::xy(3.0, -1.0);
        let r = geometric_median(&[a], MedianOptions::default()).unwrap();
        assert_eq!(r.point, a);
        assert_eq!(r.cost, 0.0);
    }

    #[test]
    fn two_anchors_median_is_midpoint() {
        let a = Coord::xy(0.0, 0.0);
        let b = Coord::xy(4.0, 0.0);
        let r = geometric_median(&[a, b], MedianOptions::default()).unwrap();
        assert_close(&r.point, &Coord::xy(2.0, 0.0), 1e-9);
        assert!((r.cost - 4.0).abs() < 1e-9);
    }

    #[test]
    fn equilateral_triangle_median_is_centroid() {
        // For an equilateral triangle the Fermat point is the centroid.
        let h = 3f64.sqrt() / 2.0;
        let anchors = [Coord::xy(0.0, 0.0), Coord::xy(1.0, 0.0), Coord::xy(0.5, h)];
        let r = geometric_median(&anchors, MedianOptions::default()).unwrap();
        let centroid = Coord::centroid(&anchors).unwrap();
        assert_close(&r.point, &centroid, 1e-6);
    }

    #[test]
    fn wide_angle_triangle_median_is_the_obtuse_vertex() {
        // When one vertex angle exceeds 120°, the Fermat point IS that
        // vertex. Vertex at origin with a ~170° angle.
        let anchors = [
            Coord::xy(0.0, 0.0),
            Coord::xy(10.0, 0.9),
            Coord::xy(-10.0, 0.9),
        ];
        let r = geometric_median(&anchors, MedianOptions::default()).unwrap();
        assert_close(&r.point, &anchors[0], 1e-5);
    }

    #[test]
    fn square_median_is_center() {
        let anchors = [
            Coord::xy(0.0, 0.0),
            Coord::xy(2.0, 0.0),
            Coord::xy(2.0, 2.0),
            Coord::xy(0.0, 2.0),
        ];
        let r = geometric_median(&anchors, MedianOptions::default()).unwrap();
        assert_close(&r.point, &Coord::xy(1.0, 1.0), 1e-7);
    }

    #[test]
    fn weiszfeld_and_gradient_descent_agree() {
        let anchors = [
            Coord::xy(0.0, 0.0),
            Coord::xy(10.0, 1.0),
            Coord::xy(4.0, 8.0),
            Coord::xy(-3.0, 5.0),
        ];
        let w = geometric_median(&anchors, MedianOptions::default()).unwrap();
        let g = geometric_median_gd(
            &anchors,
            GdOptions {
                max_iters: 20_000,
                ..GdOptions::default()
            },
        )
        .unwrap();
        assert!(
            (w.cost - g.cost).abs() < 1e-2 * w.cost.max(1.0),
            "weiszfeld cost {} vs gd cost {}",
            w.cost,
            g.cost
        );
    }

    #[test]
    fn weighted_median_pulls_towards_heavy_anchor() {
        let a = Coord::xy(0.0, 0.0);
        let b = Coord::xy(10.0, 0.0);
        let c = Coord::xy(5.0, 10.0);
        // Weight anchor `a` heavily: optimum must be (much) closer to `a`.
        let heavy = weighted_geometric_median(
            &[a, b, c],
            Some(&[10.0, 1.0, 1.0]),
            MedianOptions::default(),
        )
        .unwrap();
        assert!(heavy.point.dist(&a) < 1e-6, "heavy point {:?}", heavy.point);
    }

    #[test]
    fn median_on_anchor_start_does_not_stall() {
        // Centroid coincides with one anchor: Ostresh handling must still
        // find the true optimum.
        let anchors = [
            Coord::xy(0.0, 0.0),
            Coord::xy(4.0, 0.0),
            Coord::xy(-4.0, 0.0),
            Coord::xy(0.0, 4.0),
            Coord::xy(0.0, -4.0),
        ];
        let r = geometric_median(&anchors, MedianOptions::default()).unwrap();
        // The optimum of this symmetric cross is the origin itself.
        assert_close(&r.point, &Coord::xy(0.0, 0.0), 1e-9);
    }

    #[test]
    fn collinear_anchors_take_middle_point() {
        let anchors = [
            Coord::xy(0.0, 0.0),
            Coord::xy(1.0, 0.0),
            Coord::xy(5.0, 0.0),
        ];
        let r = geometric_median(&anchors, MedianOptions::default()).unwrap();
        // 1-D median of {0, 1, 5} is 1.
        assert_close(&r.point, &Coord::xy(1.0, 0.0), 1e-6);
    }

    #[test]
    fn all_identical_anchors() {
        let p = Coord::xy(2.0, 2.0);
        let r = geometric_median(&[p, p, p], MedianOptions::default()).unwrap();
        assert_close(&r.point, &p, 1e-12);
        assert!(r.cost < 1e-9);
    }

    #[test]
    fn minmax_center_of_two_points_is_midpoint() {
        let a = Coord::xy(0.0, 0.0);
        let b = Coord::xy(10.0, 0.0);
        let r = minmax_center(&[a, b], 5000).unwrap();
        assert_close(&r.point, &Coord::xy(5.0, 0.0), 0.1);
        assert!((r.cost - 5.0).abs() < 0.1);
    }

    #[test]
    fn minmax_differs_from_minsum_on_skewed_input() {
        // Cluster of anchors near origin plus one far outlier: the min-sum
        // median stays near the cluster, the min-max center moves halfway.
        let mut anchors = vec![
            Coord::xy(0.0, 0.0),
            Coord::xy(1.0, 0.0),
            Coord::xy(0.0, 1.0),
            Coord::xy(1.0, 1.0),
        ];
        anchors.push(Coord::xy(100.0, 0.0));
        let sum = geometric_median(&anchors, MedianOptions::default()).unwrap();
        let max = minmax_center(&anchors, 5000).unwrap();
        assert!(
            sum.point[0] < 5.0,
            "min-sum stays near cluster: {:?}",
            sum.point
        );
        assert!(
            max.point[0] > 40.0,
            "min-max moves to the middle: {:?}",
            max.point
        );
    }

    #[test]
    fn median_works_in_three_dimensions() {
        let anchors = [
            Coord::xyz(0.0, 0.0, 0.0),
            Coord::xyz(2.0, 0.0, 0.0),
            Coord::xyz(0.0, 2.0, 0.0),
            Coord::xyz(0.0, 0.0, 2.0),
        ];
        let r = geometric_median(&anchors, MedianOptions::default()).unwrap();
        assert!(r.point.is_finite());
        // Optimum is strictly inside the tetrahedron.
        for a in &anchors {
            assert!(r.point.dist(a) > 0.1);
        }
    }
}
