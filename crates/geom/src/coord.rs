//! Fixed-capacity coordinate vectors for the Nova cost space.
//!
//! The cost space is low-dimensional (the paper embeds latency into 2-D
//! Euclidean space; additional distance-based metrics such as energy or
//! monetary cost add further dimensions, cf. §3.6). A [`Coord`] therefore
//! stores its components inline in a fixed `[f64; MAX_DIM]` array, making
//! it `Copy` and allocation-free — important because the optimizer keeps
//! one coordinate per node for topologies of up to a million nodes.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub, SubAssign};

/// Maximum dimensionality of the cost space.
///
/// Latency alone needs 2–3 dimensions; every additional distance-based
/// metric (cf. paper §3.6) adds dimensions. Eight is far beyond anything
/// the paper evaluates while keeping `Coord` at 72 bytes.
pub const MAX_DIM: usize = 8;

/// A point in the Euclidean cost space with runtime-chosen dimensionality
/// of at most [`MAX_DIM`].
#[derive(Clone, Copy, PartialEq)]
pub struct Coord {
    data: [f64; MAX_DIM],
    dim: u8,
}

impl Coord {
    /// The origin of a `dim`-dimensional space.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `dim > MAX_DIM`.
    #[inline]
    pub fn zero(dim: usize) -> Self {
        assert!(
            (1..=MAX_DIM).contains(&dim),
            "dim {dim} out of range 1..={MAX_DIM}"
        );
        Coord {
            data: [0.0; MAX_DIM],
            dim: dim as u8,
        }
    }

    /// Build a coordinate from a slice of components.
    ///
    /// # Panics
    /// Panics if the slice is empty or longer than [`MAX_DIM`].
    #[inline]
    pub fn from_slice(components: &[f64]) -> Self {
        let mut c = Coord::zero(components.len());
        c.data[..components.len()].copy_from_slice(components);
        c
    }

    /// Convenience constructor for 2-D points (the paper's default space).
    #[inline]
    pub fn xy(x: f64, y: f64) -> Self {
        Coord::from_slice(&[x, y])
    }

    /// Convenience constructor for 3-D points.
    #[inline]
    pub fn xyz(x: f64, y: f64, z: f64) -> Self {
        Coord::from_slice(&[x, y, z])
    }

    /// Dimensionality of this coordinate.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim as usize
    }

    /// Components as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data[..self.dim as usize]
    }

    /// Components as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data[..self.dim as usize]
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// # Panics
    /// Panics in debug builds if dimensions differ.
    #[inline]
    pub fn dist2(&self, other: &Coord) -> f64 {
        debug_assert_eq!(self.dim, other.dim, "dimension mismatch");
        let mut acc = 0.0;
        for i in 0..self.dim as usize {
            let d = self.data[i] - other.data[i];
            acc += d * d;
        }
        acc
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Coord) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Euclidean norm (distance from the origin).
    #[inline]
    pub fn norm(&self) -> f64 {
        let mut acc = 0.0;
        for i in 0..self.dim as usize {
            acc += self.data[i] * self.data[i];
        }
        acc.sqrt()
    }

    /// Dot product with `other`.
    #[inline]
    pub fn dot(&self, other: &Coord) -> f64 {
        debug_assert_eq!(self.dim, other.dim, "dimension mismatch");
        let mut acc = 0.0;
        for i in 0..self.dim as usize {
            acc += self.data[i] * other.data[i];
        }
        acc
    }

    /// Unit vector pointing from `self` towards `other`.
    ///
    /// When the two points coincide (within `eps`), returns `None`;
    /// callers such as Vivaldi substitute a random direction in that case.
    #[inline]
    pub fn direction_to(&self, other: &Coord, eps: f64) -> Option<Coord> {
        let d = other.dist(self);
        if d <= eps {
            return None;
        }
        let mut out = *other;
        for i in 0..self.dim as usize {
            out.data[i] = (other.data[i] - self.data[i]) / d;
        }
        Some(out)
    }

    /// Linear interpolation: `self + t * (other - self)`.
    #[inline]
    pub fn lerp(&self, other: &Coord, t: f64) -> Coord {
        debug_assert_eq!(self.dim, other.dim, "dimension mismatch");
        let mut out = *self;
        for i in 0..self.dim as usize {
            out.data[i] += t * (other.data[i] - self.data[i]);
        }
        out
    }

    /// Component-wise mean of a non-empty set of points.
    ///
    /// Returns `None` for an empty input.
    pub fn centroid(points: &[Coord]) -> Option<Coord> {
        let first = points.first()?;
        let mut acc = Coord::zero(first.dim());
        for p in points {
            acc += *p;
        }
        Some(acc * (1.0 / points.len() as f64))
    }

    /// True if every component is finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.as_slice().iter().all(|v| v.is_finite())
    }
}

impl Index<usize> for Coord {
    type Output = f64;

    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.as_slice()[i]
    }
}

impl IndexMut<usize> for Coord {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.as_mut_slice()[i]
    }
}

impl Add for Coord {
    type Output = Coord;

    #[inline]
    fn add(mut self, rhs: Coord) -> Coord {
        self += rhs;
        self
    }
}

impl AddAssign for Coord {
    #[inline]
    fn add_assign(&mut self, rhs: Coord) {
        debug_assert_eq!(self.dim, rhs.dim, "dimension mismatch");
        for i in 0..self.dim as usize {
            self.data[i] += rhs.data[i];
        }
    }
}

impl Sub for Coord {
    type Output = Coord;

    #[inline]
    fn sub(mut self, rhs: Coord) -> Coord {
        self -= rhs;
        self
    }
}

impl SubAssign for Coord {
    #[inline]
    fn sub_assign(&mut self, rhs: Coord) {
        debug_assert_eq!(self.dim, rhs.dim, "dimension mismatch");
        for i in 0..self.dim as usize {
            self.data[i] -= rhs.data[i];
        }
    }
}

impl Mul<f64> for Coord {
    type Output = Coord;

    #[inline]
    fn mul(mut self, k: f64) -> Coord {
        for i in 0..self.dim as usize {
            self.data[i] *= k;
        }
        self
    }
}

impl fmt::Debug for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.3}")?;
        }
        write!(f, ")")
    }
}

impl serde::Serialize for Coord {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.as_slice())
    }
}

impl<'de> serde::Deserialize<'de> for Coord {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = Vec::<f64>::deserialize(deserializer)?;
        if v.is_empty() || v.len() > MAX_DIM {
            return Err(serde::de::Error::custom(format!(
                "coordinate must have 1..={MAX_DIM} components, got {}",
                v.len()
            )));
        }
        Ok(Coord::from_slice(&v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_has_requested_dim_and_zero_norm() {
        for d in 1..=MAX_DIM {
            let z = Coord::zero(d);
            assert_eq!(z.dim(), d);
            assert_eq!(z.norm(), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_rejects_dim_zero() {
        let _ = Coord::zero(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_rejects_oversized_dim() {
        let _ = Coord::zero(MAX_DIM + 1);
    }

    #[test]
    fn from_slice_round_trips() {
        let c = Coord::from_slice(&[1.0, -2.0, 3.5]);
        assert_eq!(c.dim(), 3);
        assert_eq!(c.as_slice(), &[1.0, -2.0, 3.5]);
    }

    #[test]
    fn distance_matches_pythagoras() {
        let a = Coord::xy(0.0, 0.0);
        let b = Coord::xy(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist2(&b), 25.0);
        assert_eq!(b.dist(&a), 5.0);
    }

    #[test]
    fn arithmetic_is_componentwise() {
        let a = Coord::xy(1.0, 2.0);
        let b = Coord::xy(10.0, 20.0);
        assert_eq!((a + b).as_slice(), &[11.0, 22.0]);
        assert_eq!((b - a).as_slice(), &[9.0, 18.0]);
        assert_eq!((a * 3.0).as_slice(), &[3.0, 6.0]);
    }

    #[test]
    fn direction_to_is_unit_length() {
        let a = Coord::xy(1.0, 1.0);
        let b = Coord::xy(4.0, 5.0);
        let u = a.direction_to(&b, 1e-12).expect("distinct points");
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert!((u[0] - 0.6).abs() < 1e-12);
        assert!((u[1] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn direction_to_self_is_none() {
        let a = Coord::xy(1.0, 1.0);
        assert!(a.direction_to(&a, 1e-12).is_none());
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Coord::xy(0.0, 0.0);
        let b = Coord::xy(2.0, 4.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Coord::xy(1.0, 2.0));
    }

    #[test]
    fn centroid_of_square_is_center() {
        let pts = [
            Coord::xy(0.0, 0.0),
            Coord::xy(2.0, 0.0),
            Coord::xy(2.0, 2.0),
            Coord::xy(0.0, 2.0),
        ];
        assert_eq!(Coord::centroid(&pts), Some(Coord::xy(1.0, 1.0)));
        assert_eq!(Coord::centroid(&[]), None);
    }

    #[test]
    fn dot_product() {
        let a = Coord::xyz(1.0, 2.0, 3.0);
        let b = Coord::xyz(4.0, -5.0, 6.0);
        assert_eq!(a.dot(&b), 4.0 - 10.0 + 18.0);
    }

    #[test]
    fn is_finite_detects_nan_and_inf() {
        assert!(Coord::xy(1.0, 2.0).is_finite());
        assert!(!Coord::xy(f64::NAN, 0.0).is_finite());
        assert!(!Coord::xy(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn display_formats_components() {
        let c = Coord::xy(1.0, 2.5);
        assert_eq!(format!("{c}"), "(1.000, 2.500)");
    }
}
