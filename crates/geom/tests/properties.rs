//! Property-based tests for the geometric primitives.

use nova_geom::{geometric_median, minmax_center, Coord, KdTree, MedianOptions, Neighbor, NnIndex};
use proptest::prelude::*;

fn coord2_strategy() -> impl Strategy<Value = Coord> {
    (-1000.0..1000.0f64, -1000.0..1000.0f64).prop_map(|(x, y)| Coord::xy(x, y))
}

fn coords_strategy(max: usize) -> impl Strategy<Value = Vec<Coord>> {
    proptest::collection::vec(coord2_strategy(), 1..max)
}

proptest! {
    /// The Euclidean distance is a metric: symmetric, non-negative, zero on
    /// identity, and satisfies the triangle inequality.
    #[test]
    fn distance_is_a_metric(a in coord2_strategy(), b in coord2_strategy(), c in coord2_strategy()) {
        prop_assert!((a.dist(&b) - b.dist(&a)).abs() < 1e-9);
        prop_assert!(a.dist(&b) >= 0.0);
        prop_assert_eq!(a.dist(&a), 0.0);
        prop_assert!(a.dist(&c) <= a.dist(&b) + b.dist(&c) + 1e-9);
    }

    /// The geometric median's objective is no worse than the objective at
    /// the centroid and at every anchor (it is the argmin of a convex
    /// function, so it must beat any other candidate point).
    #[test]
    fn median_beats_centroid_and_anchors(anchors in coords_strategy(12)) {
        let result = geometric_median(&anchors, MedianOptions::default()).unwrap();
        let cost_at = |y: &Coord| -> f64 { anchors.iter().map(|a| a.dist(y)).sum() };
        let tol = 1e-6 * (1.0 + result.cost);
        let centroid = Coord::centroid(&anchors).unwrap();
        prop_assert!(result.cost <= cost_at(&centroid) + tol,
            "median cost {} > centroid cost {}", result.cost, cost_at(&centroid));
        for a in &anchors {
            prop_assert!(result.cost <= cost_at(a) + tol,
                "median cost {} > anchor cost {}", result.cost, cost_at(a));
        }
    }

    /// Perturbing the median's point in any of four axis directions must
    /// not decrease the objective (first-order optimality check).
    #[test]
    fn median_is_locally_optimal(anchors in coords_strategy(10)) {
        let result = geometric_median(&anchors, MedianOptions::default()).unwrap();
        let cost_at = |y: &Coord| -> f64 { anchors.iter().map(|a| a.dist(y)).sum() };
        let scale = anchors.iter().map(|a| a.dist(&anchors[0])).fold(0.0, f64::max).max(1.0);
        let step = 1e-3 * scale;
        let tol = 1e-6 * scale;
        for dir in [Coord::xy(step, 0.0), Coord::xy(-step, 0.0), Coord::xy(0.0, step), Coord::xy(0.0, -step)] {
            let moved = result.point + dir;
            prop_assert!(cost_at(&moved) + tol >= result.cost,
                "moving by {dir:?} improved cost from {} to {}", result.cost, cost_at(&moved));
        }
    }

    /// k-d tree k-NN results always match a brute-force scan.
    #[test]
    fn kdtree_matches_brute_force(points in coords_strategy(120), q in coord2_strategy(), k in 1usize..20) {
        let tree = KdTree::build(&points);
        let got = tree.knn(&q, k);
        let mut want: Vec<Neighbor> = points
            .iter()
            .enumerate()
            .map(|(index, p)| Neighbor { index, dist: p.dist(&q) })
            .collect();
        want.sort_unstable();
        want.truncate(k);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g.dist - w.dist).abs() < 1e-9);
        }
    }

    /// The min-max radius is at least half the diameter of the point set
    /// and no more than the full diameter.
    #[test]
    fn minmax_radius_bounds(points in coords_strategy(30)) {
        let result = minmax_center(&points, 2000).unwrap();
        let mut diameter = 0.0f64;
        for a in &points {
            for b in &points {
                diameter = diameter.max(a.dist(b));
            }
        }
        prop_assert!(result.cost >= diameter / 2.0 - 1e-6);
        prop_assert!(result.cost <= diameter + 1e-6 || diameter == 0.0);
    }
}
