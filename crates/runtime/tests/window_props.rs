//! Property tests for the `WindowBuffers` keyed probe API.
//!
//! The zero-copy visitor path (`insert_and_probe_with`) and the
//! clone-based compatibility path (`insert_and_probe`) must observe the
//! same partner sets under any interleaving of inserts and garbage
//! collection — the visitor API replaced the Vec-returning one in both
//! engines' hot paths, so any divergence here is a correctness bug in
//! the join itself. The storage is keyed by `(window, sub-key)`: probes
//! must only ever see same-key partners, and GC must evict a window's
//! key groups together.

use nova_core::Side;
use nova_runtime::{BufferedTuple, VecWindowBuffers, WindowBuffers};
use proptest::prelude::*;

const WINDOW_MS: f64 = 100.0;

/// One scripted operation on a buffer pair.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Insert on (window, key, side) — seq/event_time filled from the
    /// index.
    Insert { window: u64, key: u32, left: bool },
    /// Garbage-collect with the given watermark.
    Gc { watermark: f64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // kind 0..4 insert (3:1 insert:gc mix), window 0..6, key 0..3, side
    // by watermark parity.
    (0u8..4, 0u64..6, 0u32..3, 0f64..600.0).prop_map(|(kind, window, key, wm)| {
        if kind < 3 {
            Op::Insert {
                window,
                key,
                left: wm < 300.0,
            }
        } else {
            Op::Gc { watermark: wm }
        }
    })
}

fn ops_strategy(max: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(op_strategy(), 0..max)
}

proptest! {
    /// Replaying any script against two buffers — one driven through the
    /// visitor API, one through the clone-based API — yields identical
    /// partner sequences, identical eviction counts and identical state.
    #[test]
    fn visitor_and_clone_paths_agree(ops in ops_strategy(80)) {
        let mut via_visitor = WindowBuffers::new();
        let mut via_clone = WindowBuffers::new();
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Insert { window, key, left } => {
                    let side = if left { Side::Left } else { Side::Right };
                    let tuple = BufferedTuple { seq: i as u64, event_time: window as f64 * WINDOW_MS };
                    let want = via_clone.insert_and_probe(window, key, side, tuple);
                    let mut got = Vec::new();
                    let n = via_visitor.insert_and_probe_with(window, key, side, tuple, |p| got.push(*p));
                    prop_assert_eq!(&got, &want, "partner mismatch at op {}", i);
                    prop_assert_eq!(n, want.len());
                }
                Op::Gc { watermark } => {
                    let a = via_visitor.gc(watermark, WINDOW_MS);
                    let b = via_clone.gc(watermark, WINDOW_MS);
                    prop_assert_eq!(a, b, "eviction mismatch at op {}", i);
                }
            }
            prop_assert_eq!(via_visitor.buffered(), via_clone.buffered());
            prop_assert_eq!(via_visitor.live_windows(), via_clone.live_windows());
        }
    }

    /// Partners visited are exactly the live opposite-side tuples of the
    /// probed `(window, key)` group — checked against an independent
    /// model that also replays GC (a window GC'd mid-script must probe
    /// empty afterwards until refilled). Tuples of other keys in the
    /// same window must never surface.
    #[test]
    fn visitor_matches_keyed_reference_model(ops in ops_strategy(80)) {
        let mut buffers = WindowBuffers::new();
        // Model: per (window, key), the two sides' live tuples.
        let mut model: std::collections::HashMap<(u64, u32), (Vec<BufferedTuple>, Vec<BufferedTuple>)> =
            std::collections::HashMap::new();
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Insert { window, key, left } => {
                    let side = if left { Side::Left } else { Side::Right };
                    let tuple = BufferedTuple { seq: i as u64, event_time: window as f64 * WINDOW_MS };
                    let mut got = Vec::new();
                    buffers.insert_and_probe_with(window, key, side, tuple, |p| got.push(*p));
                    let entry = model.entry((window, key)).or_default();
                    let (own, other) = if left {
                        (&mut entry.0, &entry.1)
                    } else {
                        (&mut entry.1, &entry.0)
                    };
                    prop_assert_eq!(&got, other, "group ({}, {}) partners diverge at op {}", window, key, i);
                    own.push(tuple);
                }
                Op::Gc { watermark } => {
                    let keep_from = WindowBuffers::window_of(watermark, WINDOW_MS);
                    let evicted_model: usize = model
                        .iter()
                        .filter(|((w, _), _)| *w < keep_from)
                        .map(|(_, b)| b.0.len() + b.1.len())
                        .sum();
                    model.retain(|(w, _), _| *w >= keep_from);
                    let evicted = buffers.gc(watermark, WINDOW_MS);
                    prop_assert_eq!(evicted, evicted_model);
                }
            }
        }
        let model_total: usize = model.values().map(|b| b.0.len() + b.1.len()).sum();
        prop_assert_eq!(buffers.buffered(), model_total);
    }

    /// One-sided streams never produce partners, through either API,
    /// regardless of GC interleaving.
    #[test]
    fn one_sided_windows_never_match(windows in proptest::collection::vec((0u64..4, 0u32..3), 0..40)) {
        let mut b = WindowBuffers::new();
        for (i, (w, k)) in windows.iter().enumerate() {
            let tuple = BufferedTuple { seq: i as u64, event_time: *w as f64 * WINDOW_MS };
            let n = b.insert_and_probe_with(*w, *k, Side::Left, tuple, |_| {
                panic!("one-sided window produced a partner")
            });
            prop_assert_eq!(n, 0);
            if i % 5 == 4 {
                b.gc((i as f64) * 20.0, WINDOW_MS);
            }
        }
    }

    /// Key isolation: two-sided traffic on every key of a window, probed
    /// with a key no other tuple carries, visits nothing — the keyed
    /// storage can never leak cross-key partners.
    #[test]
    fn foreign_keys_probe_empty(keys in proptest::collection::vec(0u32..4, 1..40)) {
        let mut b = WindowBuffers::new();
        for (i, k) in keys.iter().enumerate() {
            let side = if i % 2 == 0 { Side::Left } else { Side::Right };
            let tuple = BufferedTuple { seq: i as u64, event_time: 10.0 };
            b.insert_and_probe_with(0, *k, side, tuple, |_| {});
        }
        let probe = BufferedTuple { seq: 1_000_000, event_time: 20.0 };
        let n = b.insert_and_probe_with(0, u32::MAX, Side::Right, probe, |_| {
            panic!("foreign key must have no partners")
        });
        prop_assert_eq!(n, 0);
    }
}

/// One scripted operation for the arena-vs-Vec differential suite: the
/// probe/GC mix above plus the state handoff (`export_groups` →
/// `import_groups` into a *fresh* buffer), which is how window state
/// crosses an epoch barrier in both engines.
#[derive(Debug, Clone, Copy)]
enum ArenaOp {
    Insert { window: u64, key: u32, left: bool },
    Gc { watermark: f64 },
    Handoff,
}

fn arena_ops_strategy(max: usize) -> impl Strategy<Value = Vec<ArenaOp>> {
    // 6:2:1 insert:gc:handoff mix over enough windows and keys to keep
    // many groups and multi-chunk chains live at once.
    let op = (0u8..9, 0u64..6, 0u32..3, 0f64..600.0).prop_map(|(kind, window, key, wm)| {
        if kind < 6 {
            ArenaOp::Insert {
                window,
                key,
                left: wm < 300.0,
            }
        } else if kind < 8 {
            ArenaOp::Gc { watermark: wm }
        } else {
            ArenaOp::Handoff
        }
    });
    proptest::collection::vec(op, 0..120).prop_map(move |v| v.into_iter().take(max).collect())
}

proptest! {
    /// The arena-backed [`WindowBuffers`] against the `Vec`-backed
    /// reference ([`VecWindowBuffers`]), replaying the same script
    /// through both: every probe must visit the same partner sequence
    /// (same tuples, same order), every GC must evict the same count,
    /// and every handoff must export *equal* `WindowGroup` payloads —
    /// the chunk chains are invisible at the API.
    #[test]
    fn arena_and_vec_reference_agree_on_any_script(ops in arena_ops_strategy(120)) {
        let mut arena = WindowBuffers::new();
        let mut reference = VecWindowBuffers::new();
        for (i, op) in ops.iter().enumerate() {
            match *op {
                ArenaOp::Insert { window, key, left } => {
                    let side = if left { Side::Left } else { Side::Right };
                    let tuple = BufferedTuple {
                        seq: i as u64,
                        event_time: window as f64 * WINDOW_MS,
                    };
                    let want = reference.insert_and_probe(window, key, side, tuple);
                    let mut got = Vec::new();
                    let n = arena.insert_and_probe_with(window, key, side, tuple, |p| got.push(*p));
                    prop_assert_eq!(&got, &want, "partner mismatch at op {}", i);
                    prop_assert_eq!(n, want.len());
                }
                ArenaOp::Gc { watermark } => {
                    let a = arena.gc(watermark, WINDOW_MS);
                    let b = reference.gc(watermark, WINDOW_MS);
                    prop_assert_eq!(a, b, "eviction mismatch at op {}", i);
                }
                ArenaOp::Handoff => {
                    // Drain both, hand the state to fresh buffers — the
                    // epoch-barrier migration path. The exported groups
                    // must already be equal; after the import both
                    // sides continue from identical state.
                    let a = arena.export_groups();
                    let b = reference.export_groups();
                    prop_assert_eq!(&a, &b, "export mismatch at op {}", i);
                    prop_assert_eq!(arena.buffered(), 0);
                    arena = WindowBuffers::new();
                    arena.import_groups(a);
                    reference = VecWindowBuffers::new();
                    reference.import_groups(b);
                }
            }
            prop_assert_eq!(arena.buffered(), reference.buffered());
            prop_assert_eq!(arena.live_windows(), reference.live_windows());
        }
        // Terminal drain: whatever survived the script exports equal.
        prop_assert_eq!(arena.export_groups(), reference.export_groups());
    }

    /// Export → import → export is the identity on the *payload*: the
    /// round trip through a fresh arena (fresh chunk layout, fresh slot
    /// and free-list state) reproduces the exported `WindowGroup`s
    /// exactly, and probes after the round trip see the imported tuples
    /// as partners in their original insertion order.
    #[test]
    fn export_import_round_trip_is_payload_identity(ops in arena_ops_strategy(100)) {
        let mut buffers = WindowBuffers::new();
        for (i, op) in ops.iter().enumerate() {
            if let ArenaOp::Insert { window, key, left } = *op {
                let side = if left { Side::Left } else { Side::Right };
                let tuple = BufferedTuple {
                    seq: i as u64,
                    event_time: window as f64 * WINDOW_MS,
                };
                buffers.insert_and_probe_with(window, key, side, tuple, |_| {});
            }
        }
        let exported = buffers.export_groups();
        let mut fresh = WindowBuffers::new();
        fresh.import_groups(exported.clone());
        prop_assert_eq!(
            fresh.export_groups(),
            exported.clone(),
            "round trip must reproduce the export"
        );
        // And importing again leaves a buffer that probes exactly like
        // the original: the left side of every group partners a fresh
        // right-side probe, in insertion order.
        let mut probed = WindowBuffers::new();
        probed.import_groups(exported.clone());
        for g in &exported {
            let mut got = Vec::new();
            let probe = BufferedTuple {
                seq: u64::MAX,
                event_time: g.window as f64 * WINDOW_MS,
            };
            probed.insert_and_probe_with(g.window, g.key, Side::Right, probe, |p| got.push(*p));
            prop_assert_eq!(&got, &g.left, "group ({}, {}) lost order", g.window, g.key);
        }
    }

    /// GC after a handoff behaves as if the handoff never happened: the
    /// same watermark evicts the same tuple count from a round-tripped
    /// buffer as from the original.
    #[test]
    fn gc_is_handoff_invariant(
        ops in arena_ops_strategy(80),
        watermark in 0f64..700.0,
    ) {
        let mut original = WindowBuffers::new();
        for (i, op) in ops.iter().enumerate() {
            if let ArenaOp::Insert { window, key, left } = *op {
                let side = if left { Side::Left } else { Side::Right };
                let tuple = BufferedTuple {
                    seq: i as u64,
                    event_time: window as f64 * WINDOW_MS,
                };
                original.insert_and_probe_with(window, key, side, tuple, |_| {});
            }
        }
        let mut round_tripped = WindowBuffers::new();
        round_tripped.import_groups(original.clone().export_groups());
        let a = original.gc(watermark, WINDOW_MS);
        let b = round_tripped.gc(watermark, WINDOW_MS);
        prop_assert_eq!(a, b);
        prop_assert_eq!(original.buffered(), round_tripped.buffered());
    }
}

/// A window fully evicted by GC probes empty, then refills from scratch
/// — the executor's GC runs between probes on the same thread, so this
/// is exactly the interleaving the join worker exercises.
#[test]
fn gc_between_probes_resets_the_window() {
    let mut b = WindowBuffers::new();
    let bt = |seq, et| BufferedTuple {
        seq,
        event_time: et,
    };
    b.insert_and_probe(0, 0, Side::Left, bt(1, 10.0));
    b.insert_and_probe(0, 0, Side::Left, bt(2, 20.0));
    assert_eq!(b.insert_and_probe(0, 0, Side::Right, bt(3, 30.0)).len(), 2);
    // Watermark passes window 0: all three tuples evicted.
    assert_eq!(b.gc(150.0, 100.0), 3);
    // A late probe of the dead window sees nothing…
    let n = b.insert_and_probe_with(0, 0, Side::Right, bt(4, 40.0), |_| {
        panic!("GC'd window must probe empty")
    });
    assert_eq!(n, 0);
    // …and the window state rebuilds cleanly from there.
    assert_eq!(b.insert_and_probe(0, 0, Side::Left, bt(5, 50.0)).len(), 1);
    assert_eq!(b.live_windows(), 1);
}

/// Probing an entirely empty buffer is a no-op visit.
#[test]
fn empty_buffer_probe_visits_nothing() {
    let mut b = WindowBuffers::new();
    let n = b.insert_and_probe_with(
        7,
        0,
        Side::Right,
        BufferedTuple {
            seq: 1,
            event_time: 700.0,
        },
        |_| panic!("empty buffer has no partners"),
    );
    assert_eq!(n, 0);
    assert_eq!(b.buffered(), 1);
}
