//! Tumbling-window join buffers.
//!
//! The end-to-end workload joins streams on (region, tumbling window)
//! (§4.1): region matching is already encoded in the join matrix / pair
//! structure, so at runtime an instance only needs to match *windows*
//! and — for keyed workloads (`key_space > 1`) — the per-tuple sub-key.
//! Each instance keeps a symmetric hash join state per `(window, key)`
//! group and garbage-collects whole windows once the watermark passes
//! them — exactly the state/buffer management whose overhead the
//! paper's small-window configurations stress.
//!
//! The storage is *keyed*: tuples of the same window but different
//! sub-keys live in disjoint groups, so a probe only ever visits
//! partners it could actually join with. Unkeyed workloads put every
//! tuple in key group 0 and behave exactly like the flat per-window
//! buffers they replaced.

use std::collections::HashMap;

use nova_core::Side;

/// One buffered input tuple: enough to produce outputs and latencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferedTuple {
    /// Per-stream sequence number (for deterministic match sampling).
    pub seq: u64,
    /// Event time in ms.
    pub event_time: f64,
}

/// One exported `(window, key)` group of buffered state — the portable
/// unit of window-state handoff during live reconfiguration. Produced
/// by [`WindowBuffers::export_groups`], absorbed by
/// [`WindowBuffers::import_groups`].
#[derive(Debug, Clone, PartialEq)]
pub struct WindowGroup {
    /// Tumbling window id ([`WindowBuffers::window_of`]).
    pub window: u64,
    /// Join sub-key of the group (0 for unkeyed workloads).
    pub key: u32,
    /// Buffered left-side tuples, in insertion order.
    pub left: Vec<BufferedTuple>,
    /// Buffered right-side tuples, in insertion order.
    pub right: Vec<BufferedTuple>,
}

/// Symmetric per-`(window, key)` hash join state of one instance.
#[derive(Debug, Clone, Default)]
pub struct WindowBuffers {
    groups: HashMap<(u64, u32), (Vec<BufferedTuple>, Vec<BufferedTuple>)>,
}

impl WindowBuffers {
    /// Fresh empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Window id of an event time under tumbling windows of `window_ms`.
    pub fn window_of(event_time: f64, window_ms: f64) -> u64 {
        debug_assert!(window_ms > 0.0);
        (event_time / window_ms).floor().max(0.0) as u64
    }

    /// Insert a tuple on `side` of key group `(window, key)` and visit
    /// every opposite-side tuple it can join with (same window, same
    /// key), in insertion order. Returns the number of partners visited.
    ///
    /// This is the hot-path probe API: no allocation, no copy of the
    /// opposite buffer — the visitor borrows each partner in place. Both
    /// engines (the simulator's `InputReady` handler and the executor's
    /// join workers) go through here. Unkeyed workloads pass `key = 0`
    /// everywhere, collapsing to the classic flat per-window probe.
    pub fn insert_and_probe_with<F>(
        &mut self,
        window: u64,
        key: u32,
        side: Side,
        tuple: BufferedTuple,
        mut visit: F,
    ) -> usize
    where
        F: FnMut(&BufferedTuple),
    {
        let entry = self.groups.entry((window, key)).or_default();
        let (own, other) = match side {
            Side::Left => (&mut entry.0, &entry.1),
            Side::Right => (&mut entry.1, &entry.0),
        };
        own.push(tuple);
        for partner in other.iter() {
            visit(partner);
        }
        other.len()
    }

    /// Insert a tuple on `side` of key group `(window, key)` and return
    /// the opposite-side tuples it can join with.
    ///
    /// Convenience wrapper over [`Self::insert_and_probe_with`] that
    /// materializes the partner set. It allocates a `Vec` per probe, so
    /// it is kept for tests and one-off inspection only — hot paths use
    /// the visitor API.
    pub fn insert_and_probe(
        &mut self,
        window: u64,
        key: u32,
        side: Side,
        tuple: BufferedTuple,
    ) -> Vec<BufferedTuple> {
        let mut partners = Vec::new();
        self.insert_and_probe_with(window, key, side, tuple, |p| partners.push(*p));
        partners
    }

    /// Drop every window that ends strictly before `watermark_ms`
    /// (tumbling windows of `window_ms`), across all key groups.
    /// Returns the number of evicted tuples.
    pub fn gc(&mut self, watermark_ms: f64, window_ms: f64) -> usize {
        let keep_from = Self::window_of(watermark_ms, window_ms);
        let mut evicted = 0;
        self.groups.retain(|(w, _), bufs| {
            // Window w covers [w·len, (w+1)·len); it is complete once the
            // watermark reaches its end.
            if *w < keep_from {
                evicted += bufs.0.len() + bufs.1.len();
                false
            } else {
                true
            }
        });
        evicted
    }

    /// Drain the entire state into portable [`WindowGroup`]s, sorted by
    /// `(window, key)` so the export is deterministic regardless of hash
    /// iteration order — the state-handoff half of live reconfiguration
    /// (`nova-exec` ships these groups to a migrating group's new
    /// shard; the simulator's plan-switch replay moves them between
    /// instance buffers).
    pub fn export_groups(&mut self) -> Vec<WindowGroup> {
        let mut groups: Vec<WindowGroup> = self
            .groups
            .drain()
            .map(|((window, key), (left, right))| WindowGroup {
                window,
                key,
                left,
                right,
            })
            .collect();
        groups.sort_unstable_by_key(|g| (g.window, g.key));
        groups
    }

    /// Import previously exported groups, appending to any state already
    /// present for the same `(window, key)` — several migrating shards
    /// may fold into one. Imported tuples are *not* probed against each
    /// other: every match among them was already produced where they
    /// lived before the handoff. They become visible as partners to
    /// tuples inserted afterwards.
    pub fn import_groups(&mut self, groups: Vec<WindowGroup>) {
        for g in groups {
            let entry = self.groups.entry((g.window, g.key)).or_default();
            entry.0.extend(g.left);
            entry.1.extend(g.right);
        }
    }

    /// Number of currently buffered tuples (both sides, all windows and
    /// key groups).
    pub fn buffered(&self) -> usize {
        self.groups.values().map(|(l, r)| l.len() + r.len()).sum()
    }

    /// Number of live windows (distinct window ids over all key groups).
    pub fn live_windows(&self) -> usize {
        let mut seen: Vec<u64> = self.groups.keys().map(|(w, _)| *w).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bt(seq: u64, et: f64) -> BufferedTuple {
        BufferedTuple {
            seq,
            event_time: et,
        }
    }

    #[test]
    fn window_assignment_is_tumbling() {
        assert_eq!(WindowBuffers::window_of(0.0, 100.0), 0);
        assert_eq!(WindowBuffers::window_of(99.9, 100.0), 0);
        assert_eq!(WindowBuffers::window_of(100.0, 100.0), 1);
        assert_eq!(WindowBuffers::window_of(250.0, 100.0), 2);
    }

    #[test]
    fn same_window_tuples_match() {
        let mut b = WindowBuffers::new();
        assert!(b.insert_and_probe(0, 0, Side::Left, bt(1, 10.0)).is_empty());
        let matches = b.insert_and_probe(0, 0, Side::Right, bt(2, 20.0));
        assert_eq!(matches, vec![bt(1, 10.0)]);
        // A second right tuple matches the same left tuple again.
        let matches = b.insert_and_probe(0, 0, Side::Right, bt(3, 30.0));
        assert_eq!(matches.len(), 1);
        // A second left tuple now matches both right tuples.
        let matches = b.insert_and_probe(0, 0, Side::Left, bt(4, 40.0));
        assert_eq!(matches.len(), 2);
    }

    #[test]
    fn different_windows_do_not_match() {
        let mut b = WindowBuffers::new();
        b.insert_and_probe(0, 0, Side::Left, bt(1, 10.0));
        let matches = b.insert_and_probe(1, 0, Side::Right, bt(2, 110.0));
        assert!(matches.is_empty());
        assert_eq!(b.live_windows(), 2);
    }

    #[test]
    fn different_keys_do_not_match_within_a_window() {
        let mut b = WindowBuffers::new();
        b.insert_and_probe(0, 1, Side::Left, bt(1, 10.0));
        b.insert_and_probe(0, 2, Side::Left, bt(2, 20.0));
        // A right tuple of key 1 sees only the key-1 left tuple.
        let matches = b.insert_and_probe(0, 1, Side::Right, bt(3, 30.0));
        assert_eq!(matches, vec![bt(1, 10.0)]);
        // Key 3 has no partners at all.
        assert!(b
            .insert_and_probe(0, 3, Side::Right, bt(4, 40.0))
            .is_empty());
        // Three key groups, one window.
        assert_eq!(b.live_windows(), 1);
        assert_eq!(b.buffered(), 4);
    }

    #[test]
    fn gc_evicts_every_key_group_of_a_window() {
        let mut b = WindowBuffers::new();
        b.insert_and_probe(0, 1, Side::Left, bt(1, 10.0));
        b.insert_and_probe(0, 2, Side::Right, bt(2, 20.0));
        b.insert_and_probe(1, 1, Side::Left, bt(3, 110.0));
        // Watermark past window 0: both its key groups evict together.
        assert_eq!(b.gc(150.0, 100.0), 2);
        assert_eq!(b.live_windows(), 1);
        assert_eq!(b.buffered(), 1);
    }

    #[test]
    fn visitor_probe_matches_vec_probe_and_counts() {
        let mut a = WindowBuffers::new();
        let mut b = WindowBuffers::new();
        for (w, k, side, t) in [
            (0, 0, Side::Left, bt(1, 10.0)),
            (0, 0, Side::Right, bt(2, 20.0)),
            (0, 1, Side::Right, bt(3, 30.0)),
            (1, 0, Side::Left, bt(4, 140.0)),
            (0, 0, Side::Left, bt(5, 40.0)),
        ] {
            let want = a.insert_and_probe(w, k, side, t);
            let mut got = Vec::new();
            let n = b.insert_and_probe_with(w, k, side, t, |p| got.push(*p));
            assert_eq!(got, want);
            assert_eq!(n, want.len());
        }
        assert_eq!(a.buffered(), b.buffered());
    }

    #[test]
    fn visitor_probe_visits_nothing_on_one_sided_windows() {
        let mut b = WindowBuffers::new();
        for i in 0..5 {
            let n = b.insert_and_probe_with(0, 0, Side::Left, bt(i, i as f64), |_| {
                panic!("one-sided window must have no partners")
            });
            assert_eq!(n, 0);
        }
    }

    #[test]
    fn export_import_round_trips_state_without_self_probing() {
        let mut a = WindowBuffers::new();
        a.insert_and_probe(3, 1, Side::Left, bt(1, 310.0));
        a.insert_and_probe(3, 1, Side::Right, bt(2, 320.0));
        a.insert_and_probe(0, 0, Side::Left, bt(3, 10.0));
        let groups = a.export_groups();
        assert_eq!(a.buffered(), 0, "export drains the source");
        // Deterministic (window, key) order.
        assert_eq!(groups[0].window, 0);
        assert_eq!(groups[1].window, 3);
        let mut b = WindowBuffers::new();
        b.import_groups(groups);
        assert_eq!(b.buffered(), 3);
        // Migrated partners are visible to post-handoff probes...
        let matches = b.insert_and_probe(3, 1, Side::Left, bt(4, 330.0));
        assert_eq!(matches, vec![bt(2, 320.0)]);
        // ...and imports merge with pre-existing state.
        let mut extra = WindowBuffers::new();
        extra.insert_and_probe(3, 1, Side::Right, bt(5, 340.0));
        b.import_groups(extra.export_groups());
        let matches = b.insert_and_probe(3, 1, Side::Left, bt(6, 350.0));
        assert_eq!(matches.len(), 2);
    }

    #[test]
    fn gc_drops_completed_windows_only() {
        let mut b = WindowBuffers::new();
        b.insert_and_probe(0, 0, Side::Left, bt(1, 10.0));
        b.insert_and_probe(1, 0, Side::Left, bt(2, 110.0));
        b.insert_and_probe(2, 0, Side::Right, bt(3, 210.0));
        // Watermark at 150 ms with 100 ms windows: window 0 is complete.
        let evicted = b.gc(150.0, 100.0);
        assert_eq!(evicted, 1);
        assert_eq!(b.live_windows(), 2);
        assert_eq!(b.buffered(), 2);
        // Watermark at 10 000: everything gone.
        let evicted = b.gc(10_000.0, 100.0);
        assert_eq!(evicted, 2);
        assert_eq!(b.buffered(), 0);
    }
}
