//! Tumbling-window join buffers.
//!
//! The end-to-end workload joins streams on (region, tumbling window)
//! (§4.1): region matching is already encoded in the join matrix / pair
//! structure, so at runtime an instance only needs to match *windows*
//! and — for keyed workloads (`key_space > 1`) — the per-tuple sub-key.
//! Each instance keeps a symmetric hash join state per `(window, key)`
//! group and garbage-collects whole windows once the watermark passes
//! them — exactly the state/buffer management whose overhead the
//! paper's small-window configurations stress.
//!
//! The storage is *keyed*: tuples of the same window but different
//! sub-keys live in disjoint groups, so a probe only ever visits
//! partners it could actually join with. Unkeyed workloads put every
//! tuple in key group 0 and behave exactly like the flat per-window
//! buffers they replaced.
//!
//! ## Arena layout
//!
//! [`WindowBuffers`] stores tuples in fixed-size chunks drawn from one
//! shared arena (a `Vec<Chunk>` plus a free list), with each `(window,
//! key)` side holding a chunk *chain* instead of its own `Vec`. Probes
//! walk 32-tuple blocks that sit contiguously in one allocation, GC
//! recycles whole chains onto the free list without returning memory
//! to the allocator, and steady-state insertion allocates nothing once
//! the arena has grown to the live-window footprint — the per-group
//! `Vec` churn (grow, reallocate, free every window) that the flat
//! layout paid is gone. The original `Vec`-backed implementation
//! survives as [`VecWindowBuffers`], the reference model the
//! differential property suite in
//! `crates/runtime/tests/window_props.rs` pins the arena against.

use std::collections::HashMap;

use nova_core::Side;

/// One buffered input tuple: enough to produce outputs and latencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferedTuple {
    /// Per-stream sequence number (for deterministic match sampling).
    pub seq: u64,
    /// Event time in ms.
    pub event_time: f64,
}

const ZERO_TUPLE: BufferedTuple = BufferedTuple {
    seq: 0,
    event_time: 0.0,
};

/// One exported `(window, key)` group of buffered state — the portable
/// unit of window-state handoff during live reconfiguration. Produced
/// by [`WindowBuffers::export_groups`], absorbed by
/// [`WindowBuffers::import_groups`].
#[derive(Debug, Clone, PartialEq)]
pub struct WindowGroup {
    /// Tumbling window id ([`WindowBuffers::window_of`]).
    pub window: u64,
    /// Join sub-key of the group (0 for unkeyed workloads).
    pub key: u32,
    /// Buffered left-side tuples, in insertion order.
    pub left: Vec<BufferedTuple>,
    /// Buffered right-side tuples, in insertion order.
    pub right: Vec<BufferedTuple>,
}

/// Tuples per arena chunk. 32 × 16 B = 512 B per block: large enough
/// that probe loops stride contiguous memory, small enough that sparse
/// workloads (many near-empty key groups) waste little.
const CHUNK_TUPLES: usize = 32;

/// Chain terminator / "no chunk" sentinel for the `u32` indices.
const NONE: u32 = u32::MAX;

/// One fixed-size tuple block in the shared arena.
#[derive(Debug, Clone)]
struct Chunk {
    tuples: [BufferedTuple; CHUNK_TUPLES],
    len: u32,
    /// Next chunk of the same side chain (`NONE` terminates).
    next: u32,
}

impl Chunk {
    fn fresh() -> Chunk {
        Chunk {
            tuples: [ZERO_TUPLE; CHUNK_TUPLES],
            len: 0,
            next: NONE,
        }
    }
}

/// One side of a group: a chunk chain plus its cached tuple count.
#[derive(Debug, Clone, Copy)]
struct SideChain {
    head: u32,
    tail: u32,
    len: u32,
}

impl SideChain {
    const EMPTY: SideChain = SideChain {
        head: NONE,
        tail: NONE,
        len: 0,
    };
}

/// One `(window, key)` group's slot in the slab.
#[derive(Debug, Clone, Copy)]
struct GroupSlot {
    left: SideChain,
    right: SideChain,
}

impl GroupSlot {
    const EMPTY: GroupSlot = GroupSlot {
        left: SideChain::EMPTY,
        right: SideChain::EMPTY,
    };
}

/// Append one tuple to a side chain, growing it from the free list (or
/// the arena's tail) when the tail chunk is full.
// lint: no_alloc — arena append; `chunks.push` only grows the arena
// until the free list covers steady state.
fn push_tuple(
    chunks: &mut Vec<Chunk>,
    free_chunks: &mut Vec<u32>,
    chain: &mut SideChain,
    tuple: BufferedTuple,
) {
    let need_chunk = chain.tail == NONE || chunks[chain.tail as usize].len as usize == CHUNK_TUPLES;
    if need_chunk {
        let idx = match free_chunks.pop() {
            Some(i) => {
                let c = &mut chunks[i as usize];
                c.len = 0;
                c.next = NONE;
                i
            }
            None => {
                chunks.push(Chunk::fresh());
                (chunks.len() - 1) as u32
            }
        };
        if chain.tail == NONE {
            chain.head = idx;
        } else {
            chunks[chain.tail as usize].next = idx;
        }
        chain.tail = idx;
    }
    let c = &mut chunks[chain.tail as usize];
    c.tuples[c.len as usize] = tuple;
    c.len += 1;
    chain.len += 1;
}

/// Visit every tuple of a side chain in insertion order.
fn visit_chain<F: FnMut(&BufferedTuple)>(chunks: &[Chunk], head: u32, visit: &mut F) {
    let mut idx = head;
    while idx != NONE {
        let c = &chunks[idx as usize];
        for t in &c.tuples[..c.len as usize] {
            visit(t);
        }
        idx = c.next;
    }
}

/// Symmetric per-`(window, key)` hash join state of one instance,
/// backed by a slab of group slots and a chunked tuple arena (see the
/// module docs for the layout, [`VecWindowBuffers`] for the reference
/// semantics it must match).
#[derive(Debug, Clone, Default)]
pub struct WindowBuffers {
    /// `(window, key)` → slot index into `slots`.
    groups: HashMap<(u64, u32), u32>,
    slots: Vec<GroupSlot>,
    free_slots: Vec<u32>,
    chunks: Vec<Chunk>,
    free_chunks: Vec<u32>,
}

impl WindowBuffers {
    /// Fresh empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Window id of an event time under tumbling windows of `window_ms`.
    pub fn window_of(event_time: f64, window_ms: f64) -> u64 {
        debug_assert!(window_ms > 0.0);
        (event_time / window_ms).floor().max(0.0) as u64
    }

    /// Slot index of `(window, key)`, allocating slab-style (free list
    /// first) when the group is new.
    fn slot_of(&mut self, window: u64, key: u32) -> u32 {
        if let Some(&idx) = self.groups.get(&(window, key)) {
            return idx;
        }
        let idx = match self.free_slots.pop() {
            Some(i) => {
                self.slots[i as usize] = GroupSlot::EMPTY;
                i
            }
            None => {
                self.slots.push(GroupSlot::EMPTY);
                (self.slots.len() - 1) as u32
            }
        };
        self.groups.insert((window, key), idx);
        idx
    }

    /// Insert a tuple on `side` of key group `(window, key)` and visit
    /// every opposite-side tuple it can join with (same window, same
    /// key), in insertion order. Returns the number of partners visited.
    ///
    /// This is the hot-path probe API: no allocation in steady state
    /// (chunks recycle through the free list), no copy of the opposite
    /// buffer — the visitor borrows each partner in place, one
    /// contiguous chunk at a time. Both engines (the simulator's
    /// `InputReady` handler and the executor's join workers) go through
    /// here. Unkeyed workloads pass `key = 0` everywhere, collapsing to
    /// the classic flat per-window probe.
    // lint: no_alloc — the probe API both engines sit on; a new
    // allocation here shows up at every tuple of every backend.
    pub fn insert_and_probe_with<F>(
        &mut self,
        window: u64,
        key: u32,
        side: Side,
        tuple: BufferedTuple,
        mut visit: F,
    ) -> usize
    where
        F: FnMut(&BufferedTuple),
    {
        let slot_idx = self.slot_of(window, key) as usize;
        let mut own = match side {
            Side::Left => self.slots[slot_idx].left,
            Side::Right => self.slots[slot_idx].right,
        };
        push_tuple(&mut self.chunks, &mut self.free_chunks, &mut own, tuple);
        let slot = &mut self.slots[slot_idx];
        let other = match side {
            Side::Left => {
                slot.left = own;
                slot.right
            }
            Side::Right => {
                slot.right = own;
                slot.left
            }
        };
        visit_chain(&self.chunks, other.head, &mut visit);
        other.len as usize
    }

    /// Insert a tuple on `side` of key group `(window, key)` and return
    /// the opposite-side tuples it can join with.
    ///
    /// Convenience wrapper over [`Self::insert_and_probe_with`] that
    /// materializes the partner set. It allocates a `Vec` per probe, so
    /// it is kept for tests and one-off inspection only — hot paths use
    /// the visitor API.
    pub fn insert_and_probe(
        &mut self,
        window: u64,
        key: u32,
        side: Side,
        tuple: BufferedTuple,
    ) -> Vec<BufferedTuple> {
        let mut partners = Vec::new();
        self.insert_and_probe_with(window, key, side, tuple, |p| partners.push(*p));
        partners
    }

    /// Recycle a chain's chunks onto the free list; returns its length.
    fn recycle_chain(&mut self, chain: SideChain) -> usize {
        let mut idx = chain.head;
        while idx != NONE {
            self.free_chunks.push(idx);
            idx = self.chunks[idx as usize].next;
        }
        chain.len as usize
    }

    /// Drop every window that ends strictly before `watermark_ms`
    /// (tumbling windows of `window_ms`), across all key groups.
    /// Returns the number of evicted tuples. Evicted chunks and slots
    /// go onto the free lists — the arena never shrinks, so a stream in
    /// steady state stops allocating entirely.
    pub fn gc(&mut self, watermark_ms: f64, window_ms: f64) -> usize {
        // Window w covers [w·len, (w+1)·len); it is complete once the
        // watermark reaches its end.
        let keep_from = Self::window_of(watermark_ms, window_ms);
        let dead: Vec<(u64, u32)> = self
            .groups
            .keys()
            .filter(|(w, _)| *w < keep_from)
            .copied()
            .collect();
        let mut evicted = 0;
        for k in dead {
            // The key was collected from `groups` just above, but a
            // dead key is not worth a shard: skip rather than expect.
            let Some(slot_idx) = self.groups.remove(&k) else {
                continue;
            };
            let slot = self.slots[slot_idx as usize];
            evicted += self.recycle_chain(slot.left);
            evicted += self.recycle_chain(slot.right);
            self.free_slots.push(slot_idx);
        }
        evicted
    }

    /// Materialize one chain into a `Vec`, insertion order.
    fn collect_chain(&self, chain: SideChain) -> Vec<BufferedTuple> {
        let mut out = Vec::with_capacity(chain.len as usize);
        visit_chain(&self.chunks, chain.head, &mut |t| out.push(*t));
        out
    }

    /// Drain the entire state into portable [`WindowGroup`]s, sorted by
    /// `(window, key)` so the export is deterministic regardless of hash
    /// iteration order — the state-handoff half of live reconfiguration
    /// (`nova-exec` ships these groups to a migrating group's new
    /// shard; the simulator's plan-switch replay moves them between
    /// instance buffers). Chunk chains preserve insertion order, so the
    /// export is byte-for-byte what the `Vec`-backed reference produces.
    pub fn export_groups(&mut self) -> Vec<WindowGroup> {
        let mut groups: Vec<WindowGroup> = self
            .groups
            .iter()
            .map(|(&(window, key), &slot_idx)| {
                let slot = self.slots[slot_idx as usize];
                WindowGroup {
                    window,
                    key,
                    left: self.collect_chain(slot.left),
                    right: self.collect_chain(slot.right),
                }
            })
            .collect();
        groups.sort_unstable_by_key(|g| (g.window, g.key));
        // Export drains: resetting slab and arena wholesale is cheaper
        // than (and equivalent to) recycling every chain one by one.
        self.groups.clear();
        self.slots.clear();
        self.free_slots.clear();
        self.chunks.clear();
        self.free_chunks.clear();
        groups
    }

    /// Import previously exported groups, appending to any state already
    /// present for the same `(window, key)` — several migrating shards
    /// may fold into one. Imported tuples are *not* probed against each
    /// other: every match among them was already produced where they
    /// lived before the handoff. They become visible as partners to
    /// tuples inserted afterwards.
    pub fn import_groups(&mut self, groups: Vec<WindowGroup>) {
        for g in groups {
            let slot_idx = self.slot_of(g.window, g.key) as usize;
            let mut left = self.slots[slot_idx].left;
            for t in g.left {
                push_tuple(&mut self.chunks, &mut self.free_chunks, &mut left, t);
            }
            self.slots[slot_idx].left = left;
            let mut right = self.slots[slot_idx].right;
            for t in g.right {
                push_tuple(&mut self.chunks, &mut self.free_chunks, &mut right, t);
            }
            self.slots[slot_idx].right = right;
        }
    }

    /// Number of currently buffered tuples (both sides, all windows and
    /// key groups).
    pub fn buffered(&self) -> usize {
        self.groups
            .values()
            .map(|&s| {
                let slot = &self.slots[s as usize];
                (slot.left.len + slot.right.len) as usize
            })
            .sum()
    }

    /// Number of live windows (distinct window ids over all key groups).
    pub fn live_windows(&self) -> usize {
        let mut seen: Vec<u64> = self.groups.keys().map(|(w, _)| *w).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Chunks currently allocated in the arena (live + free) — the
    /// arena's high-water footprint, exposed for the reuse tests.
    pub fn arena_chunks(&self) -> usize {
        self.chunks.len()
    }
}

/// The original `Vec`-per-group window state — same public API and
/// observable behavior as the arena-backed [`WindowBuffers`], kept as
/// the executable reference model: the differential property suite
/// (`crates/runtime/tests/window_props.rs`) drives both under random
/// operation sequences and requires identical probe results, GC counts
/// and `export_groups` output.
#[derive(Debug, Clone, Default)]
pub struct VecWindowBuffers {
    groups: HashMap<(u64, u32), (Vec<BufferedTuple>, Vec<BufferedTuple>)>,
}

impl VecWindowBuffers {
    /// Fresh empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// See [`WindowBuffers::insert_and_probe_with`].
    pub fn insert_and_probe_with<F>(
        &mut self,
        window: u64,
        key: u32,
        side: Side,
        tuple: BufferedTuple,
        mut visit: F,
    ) -> usize
    where
        F: FnMut(&BufferedTuple),
    {
        let entry = self.groups.entry((window, key)).or_default();
        let (own, other) = match side {
            Side::Left => (&mut entry.0, &entry.1),
            Side::Right => (&mut entry.1, &entry.0),
        };
        own.push(tuple);
        for partner in other.iter() {
            visit(partner);
        }
        other.len()
    }

    /// See [`WindowBuffers::insert_and_probe`].
    pub fn insert_and_probe(
        &mut self,
        window: u64,
        key: u32,
        side: Side,
        tuple: BufferedTuple,
    ) -> Vec<BufferedTuple> {
        let mut partners = Vec::new();
        self.insert_and_probe_with(window, key, side, tuple, |p| partners.push(*p));
        partners
    }

    /// See [`WindowBuffers::gc`].
    pub fn gc(&mut self, watermark_ms: f64, window_ms: f64) -> usize {
        let keep_from = WindowBuffers::window_of(watermark_ms, window_ms);
        let mut evicted = 0;
        self.groups.retain(|(w, _), bufs| {
            if *w < keep_from {
                evicted += bufs.0.len() + bufs.1.len();
                false
            } else {
                true
            }
        });
        evicted
    }

    /// See [`WindowBuffers::export_groups`].
    pub fn export_groups(&mut self) -> Vec<WindowGroup> {
        let mut groups: Vec<WindowGroup> = self
            .groups
            .drain()
            .map(|((window, key), (left, right))| WindowGroup {
                window,
                key,
                left,
                right,
            })
            .collect();
        groups.sort_unstable_by_key(|g| (g.window, g.key));
        groups
    }

    /// See [`WindowBuffers::import_groups`].
    pub fn import_groups(&mut self, groups: Vec<WindowGroup>) {
        for g in groups {
            let entry = self.groups.entry((g.window, g.key)).or_default();
            entry.0.extend(g.left);
            entry.1.extend(g.right);
        }
    }

    /// See [`WindowBuffers::buffered`].
    pub fn buffered(&self) -> usize {
        self.groups.values().map(|(l, r)| l.len() + r.len()).sum()
    }

    /// See [`WindowBuffers::live_windows`].
    pub fn live_windows(&self) -> usize {
        let mut seen: Vec<u64> = self.groups.keys().map(|(w, _)| *w).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bt(seq: u64, et: f64) -> BufferedTuple {
        BufferedTuple {
            seq,
            event_time: et,
        }
    }

    #[test]
    fn window_assignment_is_tumbling() {
        assert_eq!(WindowBuffers::window_of(0.0, 100.0), 0);
        assert_eq!(WindowBuffers::window_of(99.9, 100.0), 0);
        assert_eq!(WindowBuffers::window_of(100.0, 100.0), 1);
        assert_eq!(WindowBuffers::window_of(250.0, 100.0), 2);
    }

    #[test]
    fn same_window_tuples_match() {
        let mut b = WindowBuffers::new();
        assert!(b.insert_and_probe(0, 0, Side::Left, bt(1, 10.0)).is_empty());
        let matches = b.insert_and_probe(0, 0, Side::Right, bt(2, 20.0));
        assert_eq!(matches, vec![bt(1, 10.0)]);
        // A second right tuple matches the same left tuple again.
        let matches = b.insert_and_probe(0, 0, Side::Right, bt(3, 30.0));
        assert_eq!(matches.len(), 1);
        // A second left tuple now matches both right tuples.
        let matches = b.insert_and_probe(0, 0, Side::Left, bt(4, 40.0));
        assert_eq!(matches.len(), 2);
    }

    #[test]
    fn different_windows_do_not_match() {
        let mut b = WindowBuffers::new();
        b.insert_and_probe(0, 0, Side::Left, bt(1, 10.0));
        let matches = b.insert_and_probe(1, 0, Side::Right, bt(2, 110.0));
        assert!(matches.is_empty());
        assert_eq!(b.live_windows(), 2);
    }

    #[test]
    fn different_keys_do_not_match_within_a_window() {
        let mut b = WindowBuffers::new();
        b.insert_and_probe(0, 1, Side::Left, bt(1, 10.0));
        b.insert_and_probe(0, 2, Side::Left, bt(2, 20.0));
        // A right tuple of key 1 sees only the key-1 left tuple.
        let matches = b.insert_and_probe(0, 1, Side::Right, bt(3, 30.0));
        assert_eq!(matches, vec![bt(1, 10.0)]);
        // Key 3 has no partners at all.
        assert!(b
            .insert_and_probe(0, 3, Side::Right, bt(4, 40.0))
            .is_empty());
        // Three key groups, one window.
        assert_eq!(b.live_windows(), 1);
        assert_eq!(b.buffered(), 4);
    }

    #[test]
    fn gc_evicts_every_key_group_of_a_window() {
        let mut b = WindowBuffers::new();
        b.insert_and_probe(0, 1, Side::Left, bt(1, 10.0));
        b.insert_and_probe(0, 2, Side::Right, bt(2, 20.0));
        b.insert_and_probe(1, 1, Side::Left, bt(3, 110.0));
        // Watermark past window 0: both its key groups evict together.
        assert_eq!(b.gc(150.0, 100.0), 2);
        assert_eq!(b.live_windows(), 1);
        assert_eq!(b.buffered(), 1);
    }

    #[test]
    fn visitor_probe_matches_vec_probe_and_counts() {
        let mut a = WindowBuffers::new();
        let mut b = WindowBuffers::new();
        for (w, k, side, t) in [
            (0, 0, Side::Left, bt(1, 10.0)),
            (0, 0, Side::Right, bt(2, 20.0)),
            (0, 1, Side::Right, bt(3, 30.0)),
            (1, 0, Side::Left, bt(4, 140.0)),
            (0, 0, Side::Left, bt(5, 40.0)),
        ] {
            let want = a.insert_and_probe(w, k, side, t);
            let mut got = Vec::new();
            let n = b.insert_and_probe_with(w, k, side, t, |p| got.push(*p));
            assert_eq!(got, want);
            assert_eq!(n, want.len());
        }
        assert_eq!(a.buffered(), b.buffered());
    }

    #[test]
    fn visitor_probe_visits_nothing_on_one_sided_windows() {
        let mut b = WindowBuffers::new();
        for i in 0..5 {
            let n = b.insert_and_probe_with(0, 0, Side::Left, bt(i, i as f64), |_| {
                panic!("one-sided window must have no partners")
            });
            assert_eq!(n, 0);
        }
    }

    #[test]
    fn export_import_round_trips_state_without_self_probing() {
        let mut a = WindowBuffers::new();
        a.insert_and_probe(3, 1, Side::Left, bt(1, 310.0));
        a.insert_and_probe(3, 1, Side::Right, bt(2, 320.0));
        a.insert_and_probe(0, 0, Side::Left, bt(3, 10.0));
        let groups = a.export_groups();
        assert_eq!(a.buffered(), 0, "export drains the source");
        // Deterministic (window, key) order.
        assert_eq!(groups[0].window, 0);
        assert_eq!(groups[1].window, 3);
        let mut b = WindowBuffers::new();
        b.import_groups(groups);
        assert_eq!(b.buffered(), 3);
        // Migrated partners are visible to post-handoff probes...
        let matches = b.insert_and_probe(3, 1, Side::Left, bt(4, 330.0));
        assert_eq!(matches, vec![bt(2, 320.0)]);
        // ...and imports merge with pre-existing state.
        let mut extra = WindowBuffers::new();
        extra.insert_and_probe(3, 1, Side::Right, bt(5, 340.0));
        b.import_groups(extra.export_groups());
        let matches = b.insert_and_probe(3, 1, Side::Left, bt(6, 350.0));
        assert_eq!(matches.len(), 2);
    }

    #[test]
    fn gc_drops_completed_windows_only() {
        let mut b = WindowBuffers::new();
        b.insert_and_probe(0, 0, Side::Left, bt(1, 10.0));
        b.insert_and_probe(1, 0, Side::Left, bt(2, 110.0));
        b.insert_and_probe(2, 0, Side::Right, bt(3, 210.0));
        // Watermark at 150 ms with 100 ms windows: window 0 is complete.
        let evicted = b.gc(150.0, 100.0);
        assert_eq!(evicted, 1);
        assert_eq!(b.live_windows(), 2);
        assert_eq!(b.buffered(), 2);
        // Watermark at 10 000: everything gone.
        let evicted = b.gc(10_000.0, 100.0);
        assert_eq!(evicted, 2);
        assert_eq!(b.buffered(), 0);
    }

    #[test]
    fn probes_span_chunk_boundaries_in_insertion_order() {
        // 100 left tuples cross four 32-tuple chunks; the probing right
        // tuple must visit all of them in insertion order.
        let mut b = WindowBuffers::new();
        for i in 0..100u64 {
            b.insert_and_probe(0, 0, Side::Left, bt(i, i as f64));
        }
        let partners = b.insert_and_probe(0, 0, Side::Right, bt(999, 50.0));
        assert_eq!(partners.len(), 100);
        let seqs: Vec<u64> = partners.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn gc_recycles_chunks_instead_of_growing_the_arena() {
        // A stream in steady state: after the first few windows the
        // arena's high-water mark must stop moving — every GC'd
        // window's chunks come back through the free list.
        let mut b = WindowBuffers::new();
        let mut high_water = 0;
        for window in 0..50u64 {
            for i in 0..70u64 {
                let et = window as f64 * 100.0 + i as f64;
                b.insert_and_probe(window, (i % 3) as u32, Side::Left, bt(i, et));
                b.insert_and_probe(window, (i % 3) as u32, Side::Right, bt(i, et));
            }
            b.gc((window as f64 + 1.0) * 100.0, 100.0);
            if window == 2 {
                high_water = b.arena_chunks();
            }
            if window > 2 {
                assert_eq!(
                    b.arena_chunks(),
                    high_water,
                    "arena grew after steady state (window {window})"
                );
            }
        }
    }

    #[test]
    fn vec_reference_and_arena_agree_on_a_mixed_sequence() {
        let mut arena = WindowBuffers::new();
        let mut vecs = VecWindowBuffers::new();
        for (w, k, side, t) in [
            (0u64, 0u32, Side::Left, bt(1, 10.0)),
            (0, 0, Side::Right, bt(2, 20.0)),
            (0, 1, Side::Right, bt(3, 30.0)),
            (1, 0, Side::Left, bt(4, 140.0)),
            (0, 0, Side::Left, bt(5, 40.0)),
            (2, 2, Side::Right, bt(6, 250.0)),
        ] {
            assert_eq!(
                arena.insert_and_probe(w, k, side, t),
                vecs.insert_and_probe(w, k, side, t)
            );
        }
        assert_eq!(arena.buffered(), vecs.buffered());
        assert_eq!(arena.live_windows(), vecs.live_windows());
        assert_eq!(arena.gc(150.0, 100.0), vecs.gc(150.0, 100.0));
        assert_eq!(arena.export_groups(), vecs.export_groups());
    }
}
