//! High-level testbed runs: place → deploy → simulate → measure.
//!
//! Convenience layer used by the end-to-end experiments (Figs. 11–12)
//! and the examples: it wires a placement into a [`Dataflow`], runs the
//! engine against a latency provider, and supports the paper's *stress*
//! condition (§4.1: `stress` pins source CPUs, which the simulator
//! models by scaling node capacity down).

use nova_core::{JoinQuery, Placement};
use nova_topology::{LatencyProvider, NodeId, Topology};

use crate::dataflow::Dataflow;
use crate::engine::{simulate, SimConfig, SimResult};

/// Scale the capacity of `nodes` by `factor` (e.g. 0.3 under CPU
/// stress), returning the modified topology.
pub fn with_stress(topology: &Topology, nodes: &[NodeId], factor: f64) -> Topology {
    let mut t = topology.clone();
    for &id in nodes {
        let cap = t.node(id).capacity;
        t.node_mut(id).capacity = cap * factor;
    }
    t
}

/// Deploy `placement` for `query` and simulate it.
///
/// `sigma` must be the σ the placement was computed with (1.0 for the
/// unpartitioned baselines).
pub fn run_placement(
    topology: &Topology,
    provider: &impl LatencyProvider,
    query: &JoinQuery,
    placement: &Placement,
    sigma: f64,
    cfg: &SimConfig,
) -> SimResult {
    let df = Dataflow::build(query, placement, |_| sigma);
    simulate(topology, |a, b| provider.rtt(a, b), &df, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_core::baselines::sink_based;
    use nova_core::StreamSpec;
    use nova_topology::{DenseRtt, NodeRole};

    #[test]
    fn stress_scales_capacities() {
        let mut t = Topology::new();
        let a = t.add_node(NodeRole::Worker, 100.0, "a");
        let b = t.add_node(NodeRole::Worker, 100.0, "b");
        let stressed = with_stress(&t, &[a], 0.25);
        assert_eq!(stressed.node(a).capacity, 25.0);
        assert_eq!(stressed.node(b).capacity, 100.0);
    }

    #[test]
    fn run_placement_executes_end_to_end() {
        let mut t = Topology::new();
        let sink = t.add_node(NodeRole::Sink, 500.0, "sink");
        let l = t.add_node(NodeRole::Source, 500.0, "l");
        let r = t.add_node(NodeRole::Source, 500.0, "r");
        let rtt = DenseRtt::from_fn(3, |_, _| 5.0);
        let q = JoinQuery::by_key(
            vec![StreamSpec::keyed(l, 10.0, 1)],
            vec![StreamSpec::keyed(r, 10.0, 1)],
            sink,
        );
        let plan = q.resolve();
        let p = sink_based(&q, &plan);
        let cfg = SimConfig {
            duration_ms: 3000.0,
            window_ms: 200.0,
            ..Default::default()
        };
        let res = run_placement(&t, &rtt, &q, &p, 1.0, &cfg);
        assert!(res.delivered > 0);
    }
}
