//! The discrete-event stream-processing engine.
//!
//! Stands in for the paper's 14-Raspberry-Pi NebulaStream testbed
//! (§4.7): nodes are single servers with a tuple/s service capacity and
//! FIFO queues (an overloaded node's queue — and therefore its latency —
//! grows without bound, which is exactly the backpressure collapse the
//! end-to-end figures show), links add latency per hop, and operators
//! pay one service slot per tuple they ingest, forward or process.
//!
//! The engine executes a [`Dataflow`] for a fixed wall-clock duration and
//! records every join result delivered to the sink with its end-to-end
//! latency — the raw series behind Fig. 11 (throughput) and Fig. 12
//! (latency percentiles).

use std::collections::BinaryHeap;
use std::sync::Arc;

use nova_core::{PairId, Side};
use nova_topology::{NodeId, Topology};
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::dataflow::Dataflow;
use crate::tuple::{OutputTuple, Tuple};
use crate::window::{BufferedTuple, WindowBuffers};

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Total simulated time in ms (the paper runs 2-minute = 120 000 ms
    /// experiments).
    pub duration_ms: f64,
    /// Tumbling window length in ms (paper sweeps 1 ms – 1 s).
    pub window_ms: f64,
    /// Probability that a window-matched tuple pair emits an output
    /// (models the join predicate's selectivity beyond the window/region
    /// condition; keeps output volume bounded).
    pub selectivity: f64,
    /// Garbage-collection cadence for window state.
    pub gc_interval_ms: f64,
    /// RNG seed (partition assignment).
    pub seed: u64,
    /// Safety valve on total processed events.
    pub max_events: u64,
    /// Bounded per-node queue: a tuple arriving at a node whose backlog
    /// already exceeds this many milliseconds is dropped (load shedding /
    /// backpressure — real engines bound their buffers; the paper's
    /// overloaded baselines shed rather than queue forever).
    pub max_queue_ms: f64,
    /// Cardinality of the per-tuple join sub-key space. `1` (the
    /// default) reproduces the classic workload: every tuple carries
    /// sub-key 0 and a window's tuples form one cross-product. `> 1`
    /// draws each tuple's sub-key from `[0, key_space)` via
    /// [`subkey_of`] and restricts matching to equal sub-keys — the
    /// keyed equi-join that key-partitioned sharding
    /// (`nova-exec`'s key buckets) relies on.
    pub key_space: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            duration_ms: 10_000.0,
            window_ms: 100.0,
            selectivity: 1.0,
            gc_interval_ms: 500.0,
            seed: 0x51,
            max_events: 200_000_000,
            max_queue_ms: 250.0,
            key_space: 1,
        }
    }
}

/// One join result delivered to the sink.
#[derive(Debug, Clone, Copy)]
pub struct OutputRecord {
    /// Simulation time of delivery (ms).
    pub arrival_ms: f64,
    /// End-to-end latency: delivery − event time of the later input.
    pub latency_ms: f64,
    /// Producing pair.
    pub pair: PairId,
}

/// Results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Delivered join results in arrival order.
    pub outputs: Vec<OutputRecord>,
    /// Tuples emitted by all sources.
    pub emitted: u64,
    /// Join matches produced (before selectivity-surviving outputs reach
    /// the sink; includes in-flight results the run cut off).
    pub matched: u64,
    /// Outputs delivered to the sink within the run (= `outputs.len()`).
    pub delivered: u64,
    /// Busy milliseconds accumulated per node (service time).
    pub node_busy_ms: Vec<f64>,
    /// Tuples dropped by bounded node queues (load shedding).
    pub dropped: u64,
    /// Whether the run hit the `max_events` safety valve.
    pub truncated: bool,
}

impl SimResult {
    /// Delivered outputs per second of simulated time.
    pub fn throughput_per_s(&self, duration_ms: f64) -> f64 {
        self.delivered as f64 / (duration_ms / 1000.0)
    }

    /// Mean end-to-end latency of delivered outputs.
    pub fn mean_latency(&self) -> f64 {
        if self.outputs.is_empty() {
            return 0.0;
        }
        self.outputs.iter().map(|o| o.latency_ms).sum::<f64>() / self.outputs.len() as f64
    }

    /// Latency percentile (q in [0, 1], e.g. 0.9999 for the paper's
    /// 99.99th percentile), nearest-rank semantics — see [`percentile`].
    pub fn latency_percentile(&self, q: f64) -> f64 {
        let v: Vec<f64> = self.outputs.iter().map(|o| o.latency_ms).collect();
        percentile(&v, q)
    }

    /// Utilization of a node over the run: busy time / duration.
    pub fn utilization(&self, node: NodeId, duration_ms: f64) -> f64 {
        self.node_busy_ms.get(node.idx()).copied().unwrap_or(0.0) / duration_ms
    }
}

#[derive(Debug, Clone)]
enum EventKind {
    /// A source produces its next tuple.
    Emit { source: u32 },
    /// An input tuple arrives at `path[hop]` (service then continue).
    InputArrive {
        path: Arc<Vec<NodeId>>,
        hop: u32,
        instance: u32,
        tuple: Tuple,
    },
    /// Service at the instance node completed: run the join logic.
    InputReady { instance: u32, tuple: Tuple },
    /// A join output arrives at `path[hop]`.
    OutputArrive {
        path: Arc<Vec<NodeId>>,
        hop: u32,
        out: OutputTuple,
    },
    /// Periodic window-state garbage collection.
    Gc,
}

struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed for a min-heap on (time, seq).
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Run the dataflow on the simulated cluster.
///
/// `dist(a, b)` is the one-hop network latency oracle in ms.
pub fn simulate(
    topology: &Topology,
    mut dist: impl FnMut(NodeId, NodeId) -> f64,
    dataflow: &Dataflow,
    cfg: &SimConfig,
) -> SimResult {
    let n = topology.len();
    let mut busy_until = vec![0.0f64; n];
    let mut busy_ms = vec![0.0f64; n];
    // Per-node service time in ms/tuple; capacity ≤ 0 ⇒ pure relay.
    let service_ms: Vec<f64> = topology
        .nodes()
        .iter()
        .map(|nd| {
            if nd.capacity > 0.0 {
                1000.0 / nd.capacity
            } else {
                0.0
            }
        })
        .collect();
    let max_queue_ms = cfg.max_queue_ms;
    let serve =
        move |node: NodeId, now: f64, busy_until: &mut [f64], busy_ms: &mut [f64]| -> Option<f64> {
            let s = service_ms[node.idx()];
            if s == 0.0 {
                return Some(now);
            }
            // Bounded queue: shed load once the backlog exceeds the cap.
            if busy_until[node.idx()] - now > max_queue_ms {
                return None;
            }
            let start = busy_until[node.idx()].max(now);
            let done = start + s;
            busy_until[node.idx()] = done;
            busy_ms[node.idx()] += s;
            Some(done)
        };

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut heap: BinaryHeap<Event> = BinaryHeap::new();
    let mut seq = 0u64;
    let push = |heap: &mut BinaryHeap<Event>, seq: &mut u64, time: f64, kind: EventKind| {
        *seq += 1;
        heap.push(Event {
            time,
            seq: *seq,
            kind,
        });
    };

    // Stagger the sources' first emissions to avoid phase artifacts.
    for (i, s) in dataflow.sources.iter().enumerate() {
        let interval = 1000.0 / s.rate;
        push(
            &mut heap,
            &mut seq,
            interval * (i as f64 / dataflow.sources.len() as f64),
            EventKind::Emit { source: i as u32 },
        );
    }
    push(&mut heap, &mut seq, cfg.gc_interval_ms, EventKind::Gc);

    let mut buffers: Vec<WindowBuffers> = (0..dataflow.instances.len())
        .map(|_| WindowBuffers::new())
        .collect();
    let mut per_stream_seq: Vec<u64> = vec![0; dataflow.sources.len()];

    let mut outputs = Vec::new();
    let mut emitted = 0u64;
    let mut matched = 0u64;
    let mut dropped = 0u64;
    let mut processed_events = 0u64;
    let mut truncated = false;

    while let Some(ev) = heap.pop() {
        if ev.time > cfg.duration_ms {
            break;
        }
        processed_events += 1;
        if processed_events > cfg.max_events {
            truncated = true;
            break;
        }
        let now = ev.time;
        match ev.kind {
            EventKind::Emit { source } => {
                let s = &dataflow.sources[source as usize];
                emitted += 1;
                per_stream_seq[source as usize] += 1;
                let tuple_seq = per_stream_seq[source as usize];
                // Ingestion costs one service slot on the source node; a
                // saturated source sheds the sample.
                let Some(ingest_done) = serve(s.node, now, &mut busy_until, &mut busy_ms) else {
                    dropped += 1;
                    let next = now + 1000.0 / s.rate;
                    if next <= cfg.duration_ms {
                        push(&mut heap, &mut seq, next, EventKind::Emit { source });
                    }
                    continue;
                };
                let subkey = subkey_of(cfg.seed, source, tuple_seq, cfg.key_space);
                for feed in &s.feeds {
                    // Weighted partition assignment.
                    let partition = pick_partition(&feed.partition_rates, &mut rng);
                    let tuple = Tuple {
                        pair: feed.pair,
                        side: s.side,
                        partition: partition as u32,
                        key: s.key,
                        subkey,
                        seq: tuple_seq,
                        event_time: now,
                    };
                    for route in &feed.routes[partition] {
                        if route.path.len() >= 2 {
                            let t_arr = ingest_done + dist(route.path[0], route.path[1]);
                            push(
                                &mut heap,
                                &mut seq,
                                t_arr,
                                EventKind::InputArrive {
                                    path: Arc::clone(&route.path),
                                    hop: 1,
                                    instance: route.instance,
                                    tuple,
                                },
                            );
                        } else {
                            // Join co-located with the source: the join
                            // work still needs its own service slot.
                            match serve(s.node, ingest_done, &mut busy_until, &mut busy_ms) {
                                Some(done) => push(
                                    &mut heap,
                                    &mut seq,
                                    done,
                                    EventKind::InputReady {
                                        instance: route.instance,
                                        tuple,
                                    },
                                ),
                                None => dropped += 1,
                            }
                        }
                    }
                }
                let next = now + 1000.0 / s.rate;
                if next <= cfg.duration_ms {
                    push(&mut heap, &mut seq, next, EventKind::Emit { source });
                }
            }
            EventKind::InputArrive {
                path,
                hop,
                instance,
                tuple,
            } => {
                let node = path[hop as usize];
                let Some(done) = serve(node, now, &mut busy_until, &mut busy_ms) else {
                    dropped += 1;
                    continue;
                };
                if hop as usize == path.len() - 1 {
                    push(
                        &mut heap,
                        &mut seq,
                        done,
                        EventKind::InputReady { instance, tuple },
                    );
                } else {
                    let next = path[hop as usize + 1];
                    let t_arr = done + dist(node, next);
                    push(
                        &mut heap,
                        &mut seq,
                        t_arr,
                        EventKind::InputArrive {
                            path,
                            hop: hop + 1,
                            instance,
                            tuple,
                        },
                    );
                }
            }
            EventKind::InputReady { instance, tuple } => {
                let inst = &dataflow.instances[instance as usize];
                let window = WindowBuffers::window_of(tuple.event_time, cfg.window_ms);
                // Zero-copy keyed probe: partners are visited in place,
                // in insertion order, restricted to the tuple's
                // `(window, subkey)` group — for unkeyed workloads
                // (key_space 1, subkey 0) this is the classic flat
                // per-window probe.
                buffers[instance as usize].insert_and_probe_with(
                    window,
                    tuple.subkey,
                    tuple.side,
                    BufferedTuple {
                        seq: tuple.seq,
                        event_time: tuple.event_time,
                    },
                    |partner| {
                        if !match_survives(
                            tuple.seq,
                            partner.seq,
                            tuple.side,
                            cfg.selectivity,
                            cfg.seed,
                        ) {
                            return;
                        }
                        matched += 1;
                        let out = OutputTuple {
                            pair: inst.pair,
                            key: tuple.key,
                            event_time: tuple.event_time.max(partner.event_time),
                        };
                        if inst.out_path.len() <= 1 {
                            // Join runs on the sink itself.
                            outputs.push(OutputRecord {
                                arrival_ms: now,
                                latency_ms: now - out.event_time,
                                pair: out.pair,
                            });
                        } else {
                            let t_arr = now + dist(inst.out_path[0], inst.out_path[1]);
                            push(
                                &mut heap,
                                &mut seq,
                                t_arr,
                                EventKind::OutputArrive {
                                    path: Arc::clone(&inst.out_path),
                                    hop: 1,
                                    out,
                                },
                            );
                        }
                    },
                );
            }
            EventKind::OutputArrive { path, hop, out } => {
                let node = path[hop as usize];
                let Some(done) = serve(node, now, &mut busy_until, &mut busy_ms) else {
                    dropped += 1;
                    continue;
                };
                if hop as usize == path.len() - 1 {
                    if done <= cfg.duration_ms {
                        outputs.push(OutputRecord {
                            arrival_ms: done,
                            latency_ms: done - out.event_time,
                            pair: out.pair,
                        });
                    }
                } else {
                    let next = path[hop as usize + 1];
                    let t_arr = done + dist(node, next);
                    push(
                        &mut heap,
                        &mut seq,
                        t_arr,
                        EventKind::OutputArrive {
                            path,
                            hop: hop + 1,
                            out,
                        },
                    );
                }
            }
            EventKind::Gc => {
                // Watermark = now minus one window of allowed lateness.
                let watermark = now - cfg.window_ms;
                for b in &mut buffers {
                    b.gc(watermark, cfg.window_ms);
                }
                let next = now + cfg.gc_interval_ms;
                if next <= cfg.duration_ms {
                    push(&mut heap, &mut seq, next, EventKind::Gc);
                }
            }
        }
    }

    outputs.sort_unstable_by(|a, b| a.arrival_ms.total_cmp(&b.arrival_ms));
    let delivered = outputs.len() as u64;
    SimResult {
        outputs,
        emitted,
        matched,
        delivered,
        node_busy_ms: busy_ms,
        dropped,
        truncated,
    }
}

/// First post-epoch emission time of a source — the emission-grid
/// continuation rule shared verbatim by the executor's sources and the
/// simulator's plan-switch replay (one definition, so the two engines
/// cannot disagree on the post-epoch workload):
///
/// * an **unchanged** rate continues the old grid — the emission the
///   barrier pre-empted (`pending_ms`) fires as scheduled, so a
///   route-only reconfiguration is count-transparent;
/// * a **changed** rate starts a fresh grid at the epoch, staggered by
///   source index exactly like the initial grid (`epoch + interval ·
///   i/n`).
///
/// Interval equality is exact (`f64 ==`): both engines derive intervals
/// as `1000.0 / rate` from the same plan values, so equal rates give
/// bit-equal intervals.
pub fn resume_time(
    pending_ms: f64,
    old_interval_ms: f64,
    new_interval_ms: f64,
    epoch_ms: f64,
    source: usize,
    n_sources: usize,
) -> f64 {
    if new_interval_ms == old_interval_ms {
        pending_ms
    } else {
        admission_time(epoch_ms, new_interval_ms, source, n_sources)
    }
}

/// First emission time of a source joining (or re-gridding) at an
/// epoch: the initial stagger formula re-anchored at the boundary,
/// `epoch + interval · i/n`. Shared by three call sites that must
/// agree bit-for-bit for the count-identity contract to hold:
///
/// * [`resume_time`]'s changed-rate branch (both engines);
/// * the executor's `ExecHandle::add_source`, which parks the admitted
///   source until the epoch and starts it here;
/// * [`simulate_reconfigured`]'s replay of a mid-run source admission
///   (a [`PlanSwitch`](crate::dataflow::PlanSwitch) whose post plan
///   *appends* sources).
///
/// `n_sources` is the **post-epoch** source count — admission changes
/// the stagger denominator for every re-gridded source, so both
/// engines must derive it from the same (post) plan.
pub fn admission_time(epoch_ms: f64, interval_ms: f64, source: usize, n_sources: usize) -> f64 {
    epoch_ms + interval_ms * (source as f64 / n_sources.max(1) as f64)
}

/// Replay a dataflow through a sequence of live
/// [`PlanSwitch`](crate::dataflow::PlanSwitch)es — the
/// simulator half of the reconfiguration count-identity contract.
///
/// Differences from [`simulate`], all chosen to mirror the executor's
/// epoch-barrier semantics exactly:
///
/// * emissions of phase *k* satisfy `t < epoch_{k+1}` (and
///   `t <= duration_ms`); the post-epoch grid per source follows
///   [`resume_time`];
/// * a switch whose post plan **appends** sources replays a mid-run
///   stream admission (the executor's `ExecHandle::add_source`): the
///   new sources start on the [`admission_time`] grid of their first
///   phase and emit nothing before it. Removing sources is not
///   replayed (the source set may only grow);
/// * each phase's event heap is **drained completely** before the
///   switch — every pre-epoch tuple probes and lands in pre-epoch
///   window state, exactly as the executor's shards quiesce at the
///   barrier after consuming their FIFO backlog — and outputs are
///   recorded without the duration cut-off (the executor drains
///   in-flight work too, so on drop-free runs
///   `emitted`/`matched`/`delivered` are *identical* between this
///   replay and a reconfigured executor run);
/// * at the switch, every live `(window, key)` group migrates from its
///   old instance to `succ[old]`'s buffers (dropped when `None`)
///   without re-probing — pre/pre matches were already counted; post
///   tuples probe the migrated state;
/// * node capacity updates take effect at the switch (backlogs carry
///   over at their old service charge, as in the executor's pacers).
///
/// With `switches` empty this is [`simulate`] minus the duration
/// truncation (it drains), which is exactly the executor's semantics.
pub fn simulate_reconfigured(
    topology: &Topology,
    mut dist: impl FnMut(NodeId, NodeId) -> f64,
    dataflow: &Dataflow,
    switches: &[crate::dataflow::PlanSwitch],
    cfg: &SimConfig,
) -> SimResult {
    fn serve_at(
        service_ms: &[f64],
        busy_until: &mut [f64],
        busy_ms: &mut [f64],
        max_queue_ms: f64,
        node: usize,
        now: f64,
    ) -> Option<f64> {
        let s = service_ms[node];
        if s == 0.0 {
            return Some(now);
        }
        if busy_until[node] - now > max_queue_ms {
            return None;
        }
        let start = busy_until[node].max(now);
        let done = start + s;
        busy_until[node] = done;
        busy_ms[node] += s;
        Some(done)
    }

    let n = topology.len();
    let mut busy_until = vec![0.0f64; n];
    let mut busy_ms = vec![0.0f64; n];
    let mut capacities: Vec<f64> = topology.nodes().iter().map(|nd| nd.capacity).collect();
    let service_of = |caps: &[f64]| -> Vec<f64> {
        caps.iter()
            .map(|&c| if c > 0.0 { 1000.0 / c } else { 0.0 })
            .collect()
    };
    let mut service_ms = service_of(&capacities);

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut heap: BinaryHeap<Event> = BinaryHeap::new();
    let mut seq = 0u64;
    let push = |heap: &mut BinaryHeap<Event>, seq: &mut u64, time: f64, kind: EventKind| {
        *seq += 1;
        heap.push(Event {
            time,
            seq: *seq,
            kind,
        });
    };

    let n_sources = dataflow.sources.len();
    let mut per_stream_seq: Vec<u64> = vec![0; n_sources];
    let mut buffers: Vec<WindowBuffers> = (0..dataflow.instances.len())
        .map(|_| WindowBuffers::new())
        .collect();
    // Per source: the next emission time the previous phase stashed
    // (pre-empted by an epoch boundary or the duration horizon).
    let mut pending: Vec<f64> = Vec::new();

    let mut outputs = Vec::new();
    let mut emitted = 0u64;
    let mut matched = 0u64;
    let mut dropped = 0u64;
    let mut processed_events = 0u64;
    let mut truncated = false;

    'phases: for phase in 0..=switches.len() {
        let df: &Dataflow = if phase == 0 {
            dataflow
        } else {
            &switches[phase - 1].dataflow
        };
        let phase_end = switches
            .get(phase)
            .map(|s| s.epoch_ms)
            .unwrap_or(f64::INFINITY);
        // Seed this phase's emission grid. The source set may only
        // grow, and only by appending: index i keeps naming the same
        // stream across every phase (its per-stream sequence — and
        // therefore its sub-keys — carries over).
        let n_now = df.sources.len();
        per_stream_seq.resize(n_now, 0);
        if phase == 0 {
            pending = df
                .sources
                .iter()
                .enumerate()
                .map(|(i, s)| (1000.0 / s.rate) * (i as f64 / n_sources as f64))
                .collect();
        } else {
            let epoch = switches[phase - 1].epoch_ms;
            let prev_df: &Dataflow = if phase == 1 {
                dataflow
            } else {
                &switches[phase - 2].dataflow
            };
            let n_prev = prev_df.sources.len();
            assert!(
                n_now >= n_prev,
                "plan switches may append sources (mid-run admission) but never remove them \
                 ({n_prev} -> {n_now})"
            );
            for (i, p) in pending.iter_mut().enumerate() {
                *p = resume_time(
                    *p,
                    1000.0 / prev_df.sources[i].rate,
                    1000.0 / df.sources[i].rate,
                    epoch,
                    i,
                    n_now,
                );
            }
            // Admitted sources join the post-epoch grid, staggered by
            // the post-plan source count — the same grid the executor's
            // `add_source` parks its new source threads on.
            for i in pending.len()..n_now {
                pending.push(admission_time(epoch, 1000.0 / df.sources[i].rate, i, n_now));
            }
        }
        for (i, &t0) in pending.iter().enumerate() {
            if t0 < phase_end && t0 <= cfg.duration_ms && df.sources[i].rate > 0.0 {
                push(
                    &mut heap,
                    &mut seq,
                    t0,
                    EventKind::Emit { source: i as u32 },
                );
            }
        }
        let gc0 = if phase == 0 {
            cfg.gc_interval_ms
        } else {
            switches[phase - 1].epoch_ms + cfg.gc_interval_ms
        };
        if gc0 < phase_end && gc0 <= cfg.duration_ms {
            push(&mut heap, &mut seq, gc0, EventKind::Gc);
        }

        // Drain the phase completely (no duration cut-off: the executor
        // drains in-flight work too). The per-event handling below must
        // stay in lockstep with `simulate`'s match arms — it is kept as
        // a separate loop because the reference engine's truncation
        // semantics are pinned by many tests, and the zero-switch
        // equivalence test (`reconfigured_replay_without_switches_…`)
        // trips if the two drift on emissions or matching.
        while let Some(ev) = heap.pop() {
            processed_events += 1;
            if processed_events > cfg.max_events {
                truncated = true;
                break 'phases;
            }
            let now = ev.time;
            match ev.kind {
                EventKind::Emit { source } => {
                    let s = &df.sources[source as usize];
                    let interval = 1000.0 / s.rate;
                    let next = now + interval;
                    if next < phase_end && next <= cfg.duration_ms {
                        push(&mut heap, &mut seq, next, EventKind::Emit { source });
                    } else {
                        pending[source as usize] = next;
                    }
                    emitted += 1;
                    per_stream_seq[source as usize] += 1;
                    let tuple_seq = per_stream_seq[source as usize];
                    let Some(ingest_done) = serve_at(
                        &service_ms,
                        &mut busy_until,
                        &mut busy_ms,
                        cfg.max_queue_ms,
                        s.node.idx(),
                        now,
                    ) else {
                        dropped += 1;
                        continue;
                    };
                    let subkey = subkey_of(cfg.seed, source, tuple_seq, cfg.key_space);
                    for feed in &s.feeds {
                        let partition = pick_partition(&feed.partition_rates, &mut rng);
                        let tuple = Tuple {
                            pair: feed.pair,
                            side: s.side,
                            partition: partition as u32,
                            key: s.key,
                            subkey,
                            seq: tuple_seq,
                            event_time: now,
                        };
                        for route in &feed.routes[partition] {
                            if route.path.len() >= 2 {
                                let t_arr = ingest_done + dist(route.path[0], route.path[1]);
                                push(
                                    &mut heap,
                                    &mut seq,
                                    t_arr,
                                    EventKind::InputArrive {
                                        path: Arc::clone(&route.path),
                                        hop: 1,
                                        instance: route.instance,
                                        tuple,
                                    },
                                );
                            } else {
                                match serve_at(
                                    &service_ms,
                                    &mut busy_until,
                                    &mut busy_ms,
                                    cfg.max_queue_ms,
                                    s.node.idx(),
                                    ingest_done,
                                ) {
                                    Some(done) => push(
                                        &mut heap,
                                        &mut seq,
                                        done,
                                        EventKind::InputReady {
                                            instance: route.instance,
                                            tuple,
                                        },
                                    ),
                                    None => dropped += 1,
                                }
                            }
                        }
                    }
                }
                EventKind::InputArrive {
                    path,
                    hop,
                    instance,
                    tuple,
                } => {
                    let node = path[hop as usize];
                    let Some(done) = serve_at(
                        &service_ms,
                        &mut busy_until,
                        &mut busy_ms,
                        cfg.max_queue_ms,
                        node.idx(),
                        now,
                    ) else {
                        dropped += 1;
                        continue;
                    };
                    if hop as usize == path.len() - 1 {
                        push(
                            &mut heap,
                            &mut seq,
                            done,
                            EventKind::InputReady { instance, tuple },
                        );
                    } else {
                        let next = path[hop as usize + 1];
                        let t_arr = done + dist(node, next);
                        push(
                            &mut heap,
                            &mut seq,
                            t_arr,
                            EventKind::InputArrive {
                                path,
                                hop: hop + 1,
                                instance,
                                tuple,
                            },
                        );
                    }
                }
                EventKind::InputReady { instance, tuple } => {
                    let inst = &df.instances[instance as usize];
                    let window = WindowBuffers::window_of(tuple.event_time, cfg.window_ms);
                    buffers[instance as usize].insert_and_probe_with(
                        window,
                        tuple.subkey,
                        tuple.side,
                        BufferedTuple {
                            seq: tuple.seq,
                            event_time: tuple.event_time,
                        },
                        |partner| {
                            if !match_survives(
                                tuple.seq,
                                partner.seq,
                                tuple.side,
                                cfg.selectivity,
                                cfg.seed,
                            ) {
                                return;
                            }
                            matched += 1;
                            let out = OutputTuple {
                                pair: inst.pair,
                                key: tuple.key,
                                event_time: tuple.event_time.max(partner.event_time),
                            };
                            if inst.out_path.len() <= 1 {
                                outputs.push(OutputRecord {
                                    arrival_ms: now,
                                    latency_ms: now - out.event_time,
                                    pair: out.pair,
                                });
                            } else {
                                let t_arr = now + dist(inst.out_path[0], inst.out_path[1]);
                                push(
                                    &mut heap,
                                    &mut seq,
                                    t_arr,
                                    EventKind::OutputArrive {
                                        path: Arc::clone(&inst.out_path),
                                        hop: 1,
                                        out,
                                    },
                                );
                            }
                        },
                    );
                }
                EventKind::OutputArrive { path, hop, out } => {
                    let node = path[hop as usize];
                    let Some(done) = serve_at(
                        &service_ms,
                        &mut busy_until,
                        &mut busy_ms,
                        cfg.max_queue_ms,
                        node.idx(),
                        now,
                    ) else {
                        dropped += 1;
                        continue;
                    };
                    if hop as usize == path.len() - 1 {
                        outputs.push(OutputRecord {
                            arrival_ms: done,
                            latency_ms: done - out.event_time,
                            pair: out.pair,
                        });
                    } else {
                        let next = path[hop as usize + 1];
                        let t_arr = done + dist(node, next);
                        push(
                            &mut heap,
                            &mut seq,
                            t_arr,
                            EventKind::OutputArrive {
                                path,
                                hop: hop + 1,
                                out,
                            },
                        );
                    }
                }
                EventKind::Gc => {
                    let watermark = now - cfg.window_ms;
                    for b in &mut buffers {
                        b.gc(watermark, cfg.window_ms);
                    }
                    let next = now + cfg.gc_interval_ms;
                    if next < phase_end && next <= cfg.duration_ms {
                        push(&mut heap, &mut seq, next, EventKind::Gc);
                    }
                }
            }
        }

        // The epoch: migrate window state to each instance's successor
        // and apply capacity updates.
        if let Some(sw) = switches.get(phase) {
            assert_eq!(
                sw.succ.len(),
                buffers.len(),
                "succession map must cover every old instance"
            );
            let mut next_buffers: Vec<WindowBuffers> = (0..sw.dataflow.instances.len())
                .map(|_| WindowBuffers::new())
                .collect();
            for (old, mut b) in buffers.drain(..).enumerate() {
                if let Some(new) = sw.succ[old] {
                    next_buffers[new as usize].import_groups(b.export_groups());
                }
            }
            buffers = next_buffers;
            for &(node, cap) in &sw.node_capacity {
                capacities[node.idx()] = cap;
            }
            service_ms = service_of(&capacities);
        }
    }

    outputs.sort_unstable_by(|a, b| a.arrival_ms.total_cmp(&b.arrival_ms));
    let delivered = outputs.len() as u64;
    SimResult {
        outputs,
        emitted,
        matched,
        delivered,
        node_busy_ms: busy_ms,
        dropped,
        truncated,
    }
}

/// Nearest-rank percentile of a sample: the value at rank
/// `ceil(q · n)` (1-indexed, clamped to `[1, n]`) of the sorted data —
/// the paper-standard definition, shared by [`SimResult`] and the
/// executor's `ExecResult` so the two engines' tail numbers can never
/// disagree on semantics.
///
/// The previous copy-pasted implementations used `round((n−1)·q)`
/// nearest-*index*, which under-reports the tail: p99.99 over n = 200
/// picked rank 199 instead of 200. Nearest-rank pins `q = 1` to the
/// maximum and never rounds a tail quantile downward. Empty samples
/// yield 0.0.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_unstable_by(f64::total_cmp);
    let n = v.len();
    let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n);
    v[rank - 1]
}

/// Weighted random partition choice proportional to partition rates.
///
/// Shared by the simulator and the threaded executor (`nova-exec`) so
/// both use the same weighting logic (their RNG *streams* differ: the
/// simulator draws from one global seeded generator, the executor from
/// per-source ones, so individual choices are not pairwise identical).
/// Degenerate weight vectors — all-zero,
/// negative-summing or non-finite totals, as produced by a pathological
/// σ decomposition — fall back to a uniform choice instead of handing
/// `gen_range` an empty `0.0..0.0` range (which panics).
pub fn pick_partition(rates: &[f64], rng: &mut StdRng) -> usize {
    if rates.len() <= 1 {
        return 0;
    }
    let total: f64 = rates.iter().sum();
    if total.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || !total.is_finite() {
        return rng.gen_range(0..rates.len());
    }
    let mut pick = rng.gen_range(0.0..total);
    for (i, r) in rates.iter().enumerate() {
        if pick < *r {
            return i;
        }
        pick -= r;
    }
    rates.len() - 1
}

/// Deterministic per-tuple join sub-key in `[0, key_space)`.
///
/// Pure function of `(seed, stream, seq)` — a 64-bit finalizer mix over
/// the emitting stream's index and the tuple's per-stream sequence
/// number — shared by the simulator and the executor so both engines
/// stamp the *same* sub-key onto the same tuple. `key_space <= 1`
/// short-circuits to 0: the unkeyed workload, where every tuple of a
/// window is a join candidate.
///
/// The sub-key is the coordinate keyed sub-pair sharding routes on
/// (`nova-exec`'s `shard_of(window, pair, bucket)`): because matching
/// requires *equal* sub-keys and equal sub-keys always map to the same
/// key bucket, hash-splitting a window's state by sub-key never
/// separates a matching pair.
pub fn subkey_of(seed: u64, stream: u32, seq: u64, key_space: u32) -> u32 {
    if key_space <= 1 {
        return 0;
    }
    let mut x = seed
        ^ (stream as u64).rotate_left(40)
        ^ seq.wrapping_mul(0xA24B_AED4_963E_E407)
        ^ 0xD6E8_FEB8_6659_FD93;
    x ^= x >> 32;
    x = x.wrapping_mul(0x9FB2_1C65_1E98_DF25);
    x ^= x >> 28;
    (x % key_space as u64) as u32
}

/// Deterministic selectivity test: a (left seq, right seq) pair matches
/// with probability `selectivity`, independent of arrival order.
///
/// Pure function of `(seed, selectivity, seqs)` and shared by the
/// simulator and the threaded executor, so a given tuple pair survives
/// in both or in neither — the property the exec-vs-sim cross-validation
/// tests rely on.
pub fn match_survives(a_seq: u64, b_seq: u64, a_side: Side, selectivity: f64, seed: u64) -> bool {
    if selectivity >= 1.0 {
        return true;
    }
    let (l, r) = match a_side {
        Side::Left => (a_seq, b_seq),
        Side::Right => (b_seq, a_seq),
    };
    let mut x = seed ^ (l.wrapping_mul(0x9E3779B97F4A7C15)) ^ r.rotate_left(17);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 27;
    let unit = (x >> 11) as f64 / (1u64 << 53) as f64;
    unit < selectivity
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::Dataflow;
    use nova_core::baselines::{sink_based, source_based};
    use nova_core::{JoinQuery, StreamSpec};
    use nova_topology::NodeRole;

    /// sink(0), left src(1), right src(2), worker(3). All links 10 ms.
    fn world(sink_cap: f64, src_cap: f64, worker_cap: f64) -> (Topology, JoinQuery) {
        let mut t = Topology::new();
        let sink = t.add_node(NodeRole::Sink, sink_cap, "sink");
        let l = t.add_node(NodeRole::Source, src_cap, "l");
        let r = t.add_node(NodeRole::Source, src_cap, "r");
        t.add_node(NodeRole::Worker, worker_cap, "w");
        let q = JoinQuery::by_key(
            vec![StreamSpec::keyed(l, 20.0, 1)],
            vec![StreamSpec::keyed(r, 20.0, 1)],
            sink,
        );
        (t, q)
    }

    fn flat_dist(a: NodeId, b: NodeId) -> f64 {
        if a == b {
            0.0
        } else {
            10.0
        }
    }

    #[test]
    fn sink_join_produces_outputs_with_sane_latency() {
        let (t, q) = world(1000.0, 1000.0, 1000.0);
        let plan = q.resolve();
        let p = sink_based(&q, &plan);
        let df = Dataflow::from_baseline(&q, &p);
        let cfg = SimConfig {
            duration_ms: 2000.0,
            window_ms: 100.0,
            ..Default::default()
        };
        let res = simulate(&t, flat_dist, &df, &cfg);
        assert!(res.delivered > 0, "no outputs: {res:?}");
        // Latency ≥ one network hop (10 ms) and far below the run length
        // on an uncongested cluster.
        assert!(res.mean_latency() >= 10.0, "mean {}", res.mean_latency());
        assert!(res.mean_latency() < 300.0, "mean {}", res.mean_latency());
        assert!(!res.truncated);
    }

    #[test]
    fn emission_rate_matches_configuration() {
        let (t, q) = world(1000.0, 1000.0, 1000.0);
        let plan = q.resolve();
        let p = sink_based(&q, &plan);
        let df = Dataflow::from_baseline(&q, &p);
        let cfg = SimConfig {
            duration_ms: 5000.0,
            ..Default::default()
        };
        let res = simulate(&t, flat_dist, &df, &cfg);
        // 2 sources × 20 tuples/s × 5 s = 200 (±1 boundary tuple each).
        assert!(
            (res.emitted as i64 - 200).abs() <= 2,
            "emitted {}",
            res.emitted
        );
    }

    #[test]
    fn overloaded_sink_collapses_latency_and_throughput() {
        // Sink can process only 15 tuples/s but ingests 40/s: latency is
        // pegged near the bounded-queue cap and throughput collapses.
        let (t_slow, q) = world(15.0, 1000.0, 1000.0);
        let plan = q.resolve();
        let p = sink_based(&q, &plan);
        let df = Dataflow::from_baseline(&q, &p);
        let cfg = SimConfig {
            duration_ms: 20_000.0,
            window_ms: 100.0,
            ..Default::default()
        };
        let slow = simulate(&t_slow, flat_dist, &df, &cfg);

        let (t_fast, _) = world(4000.0, 1000.0, 1000.0);
        let fast = simulate(&t_fast, flat_dist, &df, &cfg);

        assert!(
            slow.delivered < fast.delivered / 2,
            "overload must cut throughput: slow {} fast {}",
            slow.delivered,
            fast.delivered
        );
        assert!(
            slow.latency_percentile(0.9) > 5.0 * fast.latency_percentile(0.9),
            "overload must blow up tail latency: slow {} fast {}",
            slow.latency_percentile(0.9),
            fast.latency_percentile(0.9)
        );
        // The bounded queue sheds load rather than queueing forever.
        assert!(slow.dropped > 0, "bounded queues must shed load");
        assert!(
            slow.latency_percentile(1.0) <= cfg.max_queue_ms + 100.0,
            "latency stays bounded by the queue cap: {}",
            slow.latency_percentile(1.0)
        );
        // Latency grows from the cold start to the saturated regime.
        let early = slow.outputs.first().unwrap().latency_ms;
        let late = slow.outputs.last().unwrap().latency_ms;
        assert!(late > early, "queue growth: early {early} late {late}");
    }

    #[test]
    fn source_placement_pays_ingestion_contention() {
        // Joins co-located with sources share the source's tiny capacity.
        let (t, q) = world(1000.0, 25.0, 1000.0);
        let plan = q.resolve();
        let p_src = source_based(&q, &plan);
        let p_sink = sink_based(&q, &plan);
        let cfg = SimConfig {
            duration_ms: 15_000.0,
            window_ms: 100.0,
            ..Default::default()
        };
        let src_res = simulate(&t, flat_dist, &Dataflow::from_baseline(&q, &p_src), &cfg);
        let sink_res = simulate(&t, flat_dist, &Dataflow::from_baseline(&q, &p_sink), &cfg);
        // With a fast sink and slow sources, sink placement wins.
        assert!(
            src_res.latency_percentile(0.9) > sink_res.latency_percentile(0.9),
            "src 90P {} vs sink 90P {}",
            src_res.latency_percentile(0.9),
            sink_res.latency_percentile(0.9)
        );
    }

    #[test]
    fn selectivity_scales_output_volume() {
        let (t, q) = world(1000.0, 1000.0, 1000.0);
        let plan = q.resolve();
        let p = sink_based(&q, &plan);
        let df = Dataflow::from_baseline(&q, &p);
        let full = simulate(
            &t,
            flat_dist,
            &df,
            &SimConfig {
                duration_ms: 5000.0,
                selectivity: 1.0,
                ..Default::default()
            },
        );
        let half = simulate(
            &t,
            flat_dist,
            &df,
            &SimConfig {
                duration_ms: 5000.0,
                selectivity: 0.5,
                ..Default::default()
            },
        );
        let ratio = half.delivered as f64 / full.delivered as f64;
        assert!((0.35..0.65).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn windows_bound_matching() {
        let (t, q) = world(1000.0, 1000.0, 1000.0);
        let plan = q.resolve();
        let p = sink_based(&q, &plan);
        let df = Dataflow::from_baseline(&q, &p);
        // Tiny windows: ~1 tuple/window/side ⇒ few matches. Large
        // windows: every pair in a window matches ⇒ many more.
        let small = simulate(
            &t,
            flat_dist,
            &df,
            &SimConfig {
                duration_ms: 5000.0,
                window_ms: 10.0,
                ..Default::default()
            },
        );
        let large = simulate(
            &t,
            flat_dist,
            &df,
            &SimConfig {
                duration_ms: 5000.0,
                window_ms: 1000.0,
                ..Default::default()
            },
        );
        assert!(
            large.delivered > 3 * small.delivered,
            "large {} small {}",
            large.delivered,
            small.delivered
        );
    }

    #[test]
    fn pick_partition_survives_all_zero_rates() {
        // Regression: `gen_range(0.0..0.0)` used to panic when every
        // partition rate was zero; now the choice falls back to uniform.
        let mut rng = StdRng::seed_from_u64(9);
        for rates in [vec![0.0, 0.0, 0.0], vec![0.0, -0.0], vec![f64::NAN, 1.0]] {
            let p = pick_partition(&rates, &mut rng);
            assert!(p < rates.len(), "{rates:?} -> {p}");
        }
        // Single-partition and healthy vectors are untouched.
        assert_eq!(pick_partition(&[0.0], &mut rng), 0);
        assert_eq!(pick_partition(&[5.0], &mut rng), 0);
        let p = pick_partition(&[1.0, 3.0], &mut rng);
        assert!(p < 2);
    }

    #[test]
    fn pick_partition_uniform_fallback_covers_all_indices() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[pick_partition(&[0.0; 4], &mut rng)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "fallback must reach every partition: {seen:?}"
        );
    }

    #[test]
    fn subkey_is_stable_in_range_and_spreads() {
        for key_space in [2u32, 7, 64] {
            let mut seen = vec![false; key_space as usize];
            for stream in 0..3u32 {
                for seq in 1..500u64 {
                    let k = subkey_of(0x51, stream, seq, key_space);
                    assert!(k < key_space);
                    assert_eq!(k, subkey_of(0x51, stream, seq, key_space));
                    seen[k as usize] = true;
                }
            }
            assert!(
                seen.iter().all(|&s| s),
                "sub-keys must reach every value of [0, {key_space})"
            );
        }
        // key_space 1 is the unkeyed workload: everything is sub-key 0.
        assert_eq!(subkey_of(0x51, 3, 17, 1), 0);
        assert_eq!(subkey_of(0x51, 3, 17, 0), 0);
    }

    #[test]
    fn keyed_workload_restricts_matching() {
        // With sub-keys drawn from [0, K), only ~1/K of the window
        // cross-product matches — the keyed join must deliver strictly
        // fewer results than the unkeyed run, but still some.
        let (t, q) = world(1000.0, 1000.0, 1000.0);
        let plan = q.resolve();
        let p = sink_based(&q, &plan);
        let df = Dataflow::from_baseline(&q, &p);
        let base = SimConfig {
            duration_ms: 5000.0,
            window_ms: 1000.0,
            ..Default::default()
        };
        let unkeyed = simulate(&t, flat_dist, &df, &base);
        let keyed = simulate(
            &t,
            flat_dist,
            &df,
            &SimConfig {
                key_space: 8,
                ..base
            },
        );
        assert!(keyed.delivered > 0, "keyed join must still match");
        assert!(
            keyed.matched * 4 < unkeyed.matched,
            "key_space 8 must cut the match volume: keyed {} unkeyed {}",
            keyed.matched,
            unkeyed.matched
        );
    }

    #[test]
    fn percentile_uses_ceil_nearest_rank() {
        // Known vector 1..=200: nearest-rank pins the tail exactly.
        let v: Vec<f64> = (1..=200).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.5), 100.0, "p50 = rank ceil(100)");
        // Regression: round((n-1)·q) picked rank 199 here — the
        // under-reported tail the shared helper exists to fix.
        assert_eq!(percentile(&v, 0.9999), 200.0, "p99.99 = rank ceil(199.98)");
        assert_eq!(percentile(&v, 1.0), 200.0, "p100 = max");
        assert_eq!(percentile(&v, 0.0), 1.0, "q=0 clamps to rank 1");
        // Small-n sanity + unsorted input.
        assert_eq!(percentile(&[3.0, 1.0, 2.0, 4.0], 0.5), 2.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn reconfigured_replay_without_switches_matches_plain_sim_modulo_drain() {
        let (t, q) = world(1000.0, 1000.0, 1000.0);
        let plan = q.resolve();
        let p = sink_based(&q, &plan);
        let df = Dataflow::from_baseline(&q, &p);
        let cfg = SimConfig {
            duration_ms: 3000.0,
            window_ms: 100.0,
            selectivity: 0.6,
            max_queue_ms: f64::INFINITY,
            ..Default::default()
        };
        let plain = simulate(&t, flat_dist, &df, &cfg);
        let replay = simulate_reconfigured(&t, flat_dist, &df, &[], &cfg);
        assert_eq!(replay.emitted, plain.emitted);
        // The replay drains in-flight work past the horizon (executor
        // semantics), so it may see a small tail of extra matches —
        // never fewer.
        assert!(replay.matched >= plain.matched);
        assert!((replay.matched - plain.matched) as f64 <= (plain.matched as f64 * 0.10).max(8.0));
        assert_eq!(
            replay.delivered, replay.matched,
            "drop-free drain delivers all"
        );
        assert_eq!(replay.dropped, 0);
        // And the replay itself is deterministic.
        let again = simulate_reconfigured(&t, flat_dist, &df, &[], &cfg);
        assert_eq!(again.matched, replay.matched);
        assert_eq!(again.delivered, replay.delivered);
    }

    #[test]
    fn rate_preserving_switch_is_count_transparent() {
        // Re-placing the join (sink -> worker) mid-run without touching
        // rates must not change what is emitted or matched: the
        // emission grid continues (resume_time) and the straddling
        // window's state migrates to the new instance.
        let (t, q) = world(1000.0, 1000.0, 1000.0);
        let plan = q.resolve();
        let sink_p = sink_based(&q, &plan);
        let src_p = source_based(&q, &plan);
        let df = Dataflow::from_baseline(&q, &sink_p);
        let cfg = SimConfig {
            duration_ms: 3000.0,
            window_ms: 200.0,
            selectivity: 0.7,
            max_queue_ms: f64::INFINITY,
            ..Default::default()
        };
        let unreconfigured = simulate_reconfigured(&t, flat_dist, &df, &[], &cfg);
        // Epoch deliberately *not* window-aligned: 1250 straddles the
        // [1200, 1400) window, so pre/post matching spans the handoff.
        let sw = crate::dataflow::PlanSwitch::between(1250.0, &q, &sink_p, &src_p, 1.0);
        let switched = simulate_reconfigured(&t, flat_dist, &df, &[sw], &cfg);
        assert_eq!(switched.dropped, 0);
        assert_eq!(switched.emitted, unreconfigured.emitted);
        assert_eq!(switched.matched, unreconfigured.matched);
        assert_eq!(switched.delivered, unreconfigured.delivered);
    }

    #[test]
    fn rate_change_switch_restarts_the_grid_at_the_epoch() {
        let (t, q) = world(1000.0, 1000.0, 1000.0);
        let plan = q.resolve();
        let p = sink_based(&q, &plan);
        let df = Dataflow::from_baseline(&q, &p);
        let cfg = SimConfig {
            duration_ms: 4000.0,
            window_ms: 100.0,
            max_queue_ms: f64::INFINITY,
            ..Default::default()
        };
        // Double both rates at t = 2000: emitted ≈ 2·40·2 + 2·80·2.
        let mut q2 = q.clone();
        q2.left[0].rate = 40.0;
        q2.right[0].rate = 40.0;
        let p2 = sink_based(&q2, &q2.resolve());
        let sw = crate::dataflow::PlanSwitch::between(2000.0, &q2, &p, &p2, 1.0);
        let res = simulate_reconfigured(&t, flat_dist, &df, &[sw], &cfg);
        assert_eq!(res.dropped, 0);
        let expected = 2.0 * 20.0 * 2.0 + 2.0 * 40.0 * 2.0;
        assert!(
            (res.emitted as f64 - expected).abs() <= 4.0,
            "emitted {} vs expected {expected}",
            res.emitted
        );
        assert!(res.delivered > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (t, q) = world(100.0, 100.0, 100.0);
        let plan = q.resolve();
        let p = sink_based(&q, &plan);
        let df = Dataflow::from_baseline(&q, &p);
        let cfg = SimConfig {
            duration_ms: 3000.0,
            ..Default::default()
        };
        let a = simulate(&t, flat_dist, &df, &cfg);
        let b = simulate(&t, flat_dist, &df, &cfg);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.emitted, b.emitted);
        assert_eq!(a.mean_latency(), b.mean_latency());
    }
}
