//! Tuples flowing through the simulated dataflow.

use nova_core::{PairId, Side};

/// A data tuple in flight. Payload contents are irrelevant to placement
/// behavior, so only the routing metadata and timing are carried.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tuple {
    /// The join pair this tuple feeds.
    pub pair: PairId,
    /// Which input of the join it belongs to.
    pub side: Side,
    /// Partition index within its stream (Nova's bandwidth-aware
    /// partitioning; 0 for unpartitioned placements).
    pub partition: u32,
    /// Join key (e.g. region id).
    pub key: u32,
    /// Per-tuple join sub-key in `[0, key_space)`, drawn at emission by
    /// [`crate::subkey_of`] — a pure function of `(seed, stream, seq)`,
    /// so the simulator and the executor assign identical sub-keys to
    /// the same tuple. Keyed workloads (`key_space > 1`) only match
    /// tuples with equal sub-keys; unkeyed workloads carry 0 throughout.
    ///
    /// This is the stable coordinate keyed sub-pair sharding routes on:
    /// co-keyed tuples of a `(window, pair)` always hash to the same
    /// shard, at any key-bucket count.
    pub subkey: u32,
    /// Monotonic per-stream sequence number.
    pub seq: u64,
    /// Event time (ms since simulation start) — set at emission.
    pub event_time: f64,
}

/// A join result en route to the sink.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutputTuple {
    /// Producing pair.
    pub pair: PairId,
    /// Join key.
    pub key: u32,
    /// Event time of the *later* input tuple — the standard event-time
    /// semantics for join outputs.
    pub event_time: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_is_small_enough_to_copy_freely() {
        // The simulator copies tuples per routing fan-out; keep them lean.
        assert!(std::mem::size_of::<Tuple>() <= 40);
        assert!(std::mem::size_of::<OutputTuple>() <= 24);
    }
}
