//! # nova-runtime — discrete-event stream-processing testbed
//!
//! A deterministic discrete-event simulator of a distributed
//! stream-processing engine, standing in for the 14-node Raspberry-Pi
//! NebulaStream cluster of the paper's end-to-end evaluation (§4.7; see
//! DESIGN.md §3 for the substitution argument). It executes the
//! placements produced by [`nova_core`] — Nova's and every baseline's —
//! under identical conditions and measures what the paper measures:
//! delivered throughput and end-to-end latency percentiles (mean to
//! 99.99P), under normal and CPU-stressed conditions.
//!
//! The model:
//!
//! * **Nodes** are single-server queues with a tuple/s capacity; every
//!   ingested, forwarded or processed tuple consumes one service slot.
//!   Overloaded nodes build unbounded queues, so their latency grows over
//!   the run — the backpressure collapse visible in Fig. 11.
//! * **Links** add latency per hop from a pluggable oracle (measured
//!   matrices, `tc`-style injected delays, or cost-space estimates).
//! * **Operators**: sources emit at fixed rates (ingestion shares the
//!   source node's capacity — co-locating joins with sources is *not*
//!   free), windowed symmetric-hash joins match tuples per (pair,
//!   tumbling window), the sink records arrival/latency per result.
//!
//! Everything is deterministic given the [`engine::SimConfig`] seed:
//! two runs of the same configuration are byte-identical, which is what
//! lets `nova-exec` (the thread-level executor running the *same*
//! [`Dataflow`]s) cross-validate against this engine count for count.
//!
//! ## Example
//!
//! Place a 1-pair query at the sink and simulate it — determinism means
//! the rerun reproduces the first run exactly:
//!
//! ```
//! use nova_core::baselines::sink_based;
//! use nova_core::{JoinQuery, StreamSpec};
//! use nova_runtime::{simulate, Dataflow, SimConfig};
//! use nova_topology::{NodeRole, Topology};
//!
//! let mut t = Topology::new();
//! let sink = t.add_node(NodeRole::Sink, 1000.0, "sink");
//! let l = t.add_node(NodeRole::Source, 1000.0, "left");
//! let r = t.add_node(NodeRole::Source, 1000.0, "right");
//! let q = JoinQuery::by_key(
//!     vec![StreamSpec::keyed(l, 20.0, 1)],
//!     vec![StreamSpec::keyed(r, 20.0, 1)],
//!     sink,
//! );
//! let placement = sink_based(&q, &q.resolve());
//! let df = Dataflow::from_baseline(&q, &placement);
//! let dist = |a: nova_topology::NodeId, b: nova_topology::NodeId| {
//!     if a == b { 0.0 } else { 5.0 }
//! };
//!
//! let cfg = SimConfig {
//!     duration_ms: 1000.0,
//!     window_ms: 100.0,
//!     ..SimConfig::default()
//! };
//! let run = simulate(&t, dist, &df, &cfg);
//! assert!(run.delivered > 0);
//! assert!(run.mean_latency() >= 5.0, "one hop lower-bounds latency");
//!
//! let rerun = simulate(&t, dist, &df, &cfg);
//! assert_eq!(run.delivered, rerun.delivered, "seeded ⇒ reproducible");
//! ```

pub mod dataflow;
pub mod engine;
pub mod testbed;
pub mod tuple;
pub mod window;

pub use dataflow::{Dataflow, FeedSpec, JoinInstance, PlanSwitch, Route, SourceTask};
pub use engine::{
    admission_time, match_survives, percentile, pick_partition, resume_time, simulate,
    simulate_reconfigured, subkey_of, OutputRecord, SimConfig, SimResult,
};
pub use testbed::{run_placement, with_stress};
pub use tuple::{OutputTuple, Tuple};
pub use window::{BufferedTuple, VecWindowBuffers, WindowBuffers, WindowGroup};
