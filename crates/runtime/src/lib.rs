//! # nova-runtime — discrete-event stream-processing testbed
//!
//! A deterministic discrete-event simulator of a distributed
//! stream-processing engine, standing in for the 14-node Raspberry-Pi
//! NebulaStream cluster of the paper's end-to-end evaluation (§4.7; see
//! DESIGN.md §3 for the substitution argument). It executes the
//! placements produced by [`nova_core`] — Nova's and every baseline's —
//! under identical conditions and measures what the paper measures:
//! delivered throughput and end-to-end latency percentiles (mean to
//! 99.99P), under normal and CPU-stressed conditions.
//!
//! The model:
//!
//! * **Nodes** are single-server queues with a tuple/s capacity; every
//!   ingested, forwarded or processed tuple consumes one service slot.
//!   Overloaded nodes build unbounded queues, so their latency grows over
//!   the run — the backpressure collapse visible in Fig. 11.
//! * **Links** add latency per hop from a pluggable oracle (measured
//!   matrices, `tc`-style injected delays, or cost-space estimates).
//! * **Operators**: sources emit at fixed rates (ingestion shares the
//!   source node's capacity — co-locating joins with sources is *not*
//!   free), windowed symmetric-hash joins match tuples per (pair,
//!   tumbling window), the sink records arrival/latency per result.
//!
//! Everything is deterministic given the [`engine::SimConfig`] seed.

pub mod dataflow;
pub mod engine;
pub mod testbed;
pub mod tuple;
pub mod window;

pub use dataflow::{Dataflow, FeedSpec, JoinInstance, Route, SourceTask};
pub use engine::{
    match_survives, pick_partition, simulate, subkey_of, OutputRecord, SimConfig, SimResult,
};
pub use testbed::{run_placement, with_stress};
pub use tuple::{OutputTuple, Tuple};
pub use window::{BufferedTuple, WindowBuffers};
