//! Deploying a [`Placement`] as an executable dataflow.
//!
//! Translates the optimizer's output (join replicas with partition sets
//! and routing paths) into the structures the simulator executes:
//! source tasks with per-partition routing tables, join instances with
//! their buffers' home nodes, and the sink. This mirrors what the paper
//! does when it hands Nova's placements to NebulaStream's deployment
//! layer (§4.7) — here the "engine" is the discrete-event simulator.

use std::collections::HashMap;
use std::sync::Arc;

use nova_core::{JoinQuery, PairId, PartitionedJoin, Placement, Side};
use nova_topology::NodeId;

/// One physical source stream to drive.
#[derive(Debug, Clone)]
pub struct SourceTask {
    /// Node emitting the stream.
    pub node: NodeId,
    /// Side of the join it feeds.
    pub side: Side,
    /// Data rate in tuples/second.
    pub rate: f64,
    /// Join key carried by every tuple (region id).
    pub key: u32,
    /// Routing: pairs fed by this stream.
    pub feeds: Vec<FeedSpec>,
}

/// Routing table of one (stream → pair) edge.
#[derive(Debug, Clone)]
pub struct FeedSpec {
    /// Target pair.
    pub pair: PairId,
    /// Rate of each partition of this stream for this pair (weights for
    /// partition assignment at the source).
    pub partition_rates: Vec<f64>,
    /// For each partition index: the join instances hosting it, with the
    /// network path from the source to each instance's node.
    pub routes: Vec<Vec<Route>>,
}

/// A concrete route to one join instance.
#[derive(Debug, Clone)]
pub struct Route {
    /// Index into [`Dataflow::instances`].
    pub instance: u32,
    /// Node path `[source, ..., instance node]`.
    pub path: Arc<Vec<NodeId>>,
}

/// One deployed (merged) join instance.
#[derive(Debug, Clone)]
pub struct JoinInstance {
    /// Hosting node.
    pub node: NodeId,
    /// The pair it computes.
    pub pair: PairId,
    /// Output route `[node, ..., sink]`.
    pub out_path: Arc<Vec<NodeId>>,
}

/// A deployable dataflow derived from a query + placement.
#[derive(Debug, Clone)]
pub struct Dataflow {
    /// All source tasks (left streams first, then right).
    pub sources: Vec<SourceTask>,
    /// All join instances.
    pub instances: Vec<JoinInstance>,
    /// The sink node.
    pub sink: NodeId,
}

impl Dataflow {
    /// Build the dataflow for a placement.
    ///
    /// `sigma_of` must return the σ that Phase III used for each pair so
    /// the partition decomposition is reconstructed identically;
    /// baseline placements (unpartitioned) should use [`Dataflow::from_baseline`].
    pub fn build(
        query: &JoinQuery,
        placement: &Placement,
        mut sigma_of: impl FnMut(PairId) -> f64,
    ) -> Dataflow {
        let plan = query.resolve();
        // Instances in placement order.
        let instances: Vec<JoinInstance> = placement
            .replicas
            .iter()
            .map(|r| JoinInstance {
                node: r.node,
                pair: r.pair,
                out_path: Arc::new(r.out_path.clone()),
            })
            .collect();

        // Per (pair, side, partition) routing: which instances host it.
        let mut routing: HashMap<(PairId, Side, u32), Vec<Route>> = HashMap::new();
        for (idx, rep) in placement.replicas.iter().enumerate() {
            for &p in &rep.left_partitions {
                routing
                    .entry((rep.pair, Side::Left, p))
                    .or_default()
                    .push(Route {
                        instance: idx as u32,
                        path: Arc::new(rep.left_path.clone()),
                    });
            }
            for &p in &rep.right_partitions {
                routing
                    .entry((rep.pair, Side::Right, p))
                    .or_default()
                    .push(Route {
                        instance: idx as u32,
                        path: Arc::new(rep.right_path.clone()),
                    });
            }
        }

        let mut sources = Vec::with_capacity(query.left.len() + query.right.len());
        for (side, streams) in [(Side::Left, &query.left), (Side::Right, &query.right)] {
            for (stream_idx, spec) in streams.iter().enumerate() {
                let mut feeds = Vec::new();
                let pairs: Vec<_> = plan
                    .pairs
                    .iter()
                    .filter(|p| match side {
                        Side::Left => p.left == stream_idx as u32,
                        Side::Right => p.right == stream_idx as u32,
                    })
                    .collect();
                for pair in pairs {
                    let sigma = sigma_of(pair.id);
                    let parts = PartitionedJoin::decompose(
                        query.left_stream(pair).rate,
                        query.right_stream(pair).rate,
                        sigma,
                    );
                    let partition_rates = match side {
                        Side::Left => parts.left.clone(),
                        Side::Right => parts.right.clone(),
                    };
                    let routes: Vec<Vec<Route>> = (0..partition_rates.len() as u32)
                        .map(|p| {
                            routing
                                .get(&(pair.id, side, p))
                                .cloned()
                                .unwrap_or_default()
                        })
                        .collect();
                    feeds.push(FeedSpec {
                        pair: pair.id,
                        partition_rates,
                        routes,
                    });
                }
                sources.push(SourceTask {
                    node: spec.node,
                    side,
                    rate: spec.rate,
                    key: spec.key.unwrap_or(0),
                    feeds,
                });
            }
        }
        Dataflow {
            sources,
            instances,
            sink: query.sink,
        }
    }

    /// Build for an unpartitioned baseline placement (every replica
    /// carries the single partition `[0]`, i.e. σ = 1).
    pub fn from_baseline(query: &JoinQuery, placement: &Placement) -> Dataflow {
        Dataflow::build(query, placement, |_| 1.0)
    }

    /// Total expected emission rate across all sources (tuples/s).
    pub fn total_source_rate(&self) -> f64 {
        self.sources.iter().map(|s| s.rate).sum()
    }
}

/// One live plan reconfiguration (§3.5 on a *running* dataflow): at
/// virtual time [`PlanSwitch::epoch_ms`] the engine stops routing by
/// the old plan and adopts [`PlanSwitch::dataflow`], migrating each old
/// instance's live window state to its successor under
/// [`PlanSwitch::succ`].
///
/// The same value drives both engines — the simulator's
/// [`crate::simulate_reconfigured`] replay and the executor's
/// `ExecHandle::apply` — which is what makes "exec counts across a
/// reconfiguration are identical to the simulator replaying the same
/// pre/post plans" a testable statement rather than a metaphor.
#[derive(Debug, Clone)]
pub struct PlanSwitch {
    /// Virtual time of the epoch boundary: tuples emitted at
    /// `t < epoch_ms` play against the old plan, `t >= epoch_ms`
    /// against the new one. Need *not* be window-aligned — the window
    /// straddling the epoch is carried across by state handoff.
    pub epoch_ms: f64,
    /// The post-epoch plan. The source set may only grow, and only by
    /// appending: index `i` keeps naming the same stream (rates,
    /// routes, hosts and instance sets may all change freely). Appended
    /// sources replay a mid-run stream admission — they start on the
    /// [`crate::admission_time`] grid of this epoch, mirroring the
    /// executor's `ExecHandle::add_source`. Removing streams is not
    /// replayed live.
    pub dataflow: Dataflow,
    /// For each *old* instance index: the new instance inheriting its
    /// window state, or `None` to drop the state (its pair is gone).
    pub succ: Vec<Option<u32>>,
    /// Per-node capacity updates (tuples/s) taking effect at the epoch;
    /// `<= 0` means "pure relay", matching both engines' convention.
    pub node_capacity: Vec<(NodeId, f64)>,
}

impl PlanSwitch {
    /// Build the switch between two placements of the *same* pair set:
    /// the post dataflow from `(query_post, post)` under partition
    /// scale `sigma` (1.0 for unpartitioned baselines, the Phase III σ
    /// for Nova placements), and the succession map by matching each
    /// pre replica to the same-ordinal replica of its pair in `post`
    /// (falling back to the pair's first replica when the replica count
    /// shrank, and to `None` when the pair is gone).
    pub fn between(
        epoch_ms: f64,
        query_post: &JoinQuery,
        pre: &Placement,
        post: &Placement,
        sigma: f64,
    ) -> PlanSwitch {
        let dataflow = Dataflow::build(query_post, post, |_| sigma);
        let ordinal_in = |placement: &Placement, idx: usize| {
            let pair = placement.replicas[idx].pair;
            placement.replicas[..idx]
                .iter()
                .filter(|r| r.pair == pair)
                .count()
        };
        let succ = (0..pre.replicas.len())
            .map(|i| {
                let pair = pre.replicas[i].pair;
                let ordinal = ordinal_in(pre, i);
                let mut first = None;
                for (j, rep) in post.replicas.iter().enumerate() {
                    if rep.pair != pair {
                        continue;
                    }
                    if first.is_none() {
                        first = Some(j as u32);
                    }
                    if ordinal_in(post, j) == ordinal {
                        return Some(j as u32);
                    }
                }
                first
            })
            .collect();
        PlanSwitch {
            epoch_ms,
            dataflow,
            succ,
            node_capacity: Vec::new(),
        }
    }

    /// Attach per-node capacity updates (builder style).
    pub fn with_capacities(mut self, caps: Vec<(NodeId, f64)>) -> PlanSwitch {
        self.node_capacity = caps;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_core::baselines::sink_based;
    use nova_core::{Nova, NovaConfig, StreamSpec};
    use nova_geom::Coord;
    use nova_netcoord::CostSpace;
    use nova_topology::{NodeRole, Topology};

    fn world() -> (Topology, CostSpace, JoinQuery) {
        let mut t = Topology::new();
        let mut coords = Vec::new();
        let sink = t.add_node(NodeRole::Sink, 100.0, "sink");
        coords.push(Coord::xy(0.0, 0.0));
        let l = t.add_node(NodeRole::Source, 10.0, "l");
        coords.push(Coord::xy(10.0, 5.0));
        let r = t.add_node(NodeRole::Source, 10.0, "r");
        coords.push(Coord::xy(10.0, -5.0));
        for i in 0..4 {
            t.add_node(NodeRole::Worker, 40.0, format!("w{i}"));
            coords.push(Coord::xy(8.0 + 0.1 * i as f64, 0.0));
        }
        let q = JoinQuery::by_key(
            vec![StreamSpec::keyed(l, 30.0, 1)],
            vec![StreamSpec::keyed(r, 30.0, 1)],
            sink,
        );
        (t, CostSpace::new(coords), q)
    }

    #[test]
    fn baseline_dataflow_has_single_partition_routes() {
        let (_, _, q) = world();
        let plan = q.resolve();
        let p = sink_based(&q, &plan);
        let df = Dataflow::from_baseline(&q, &p);
        assert_eq!(df.sources.len(), 2);
        assert_eq!(df.instances.len(), 1);
        for s in &df.sources {
            assert_eq!(s.feeds.len(), 1);
            assert_eq!(s.feeds[0].partition_rates.len(), 1);
            assert_eq!(s.feeds[0].routes[0].len(), 1);
        }
        assert_eq!(df.total_source_rate(), 60.0);
    }

    #[test]
    fn plan_switch_succession_matches_replicas_by_pair_and_ordinal() {
        let (_, _, q) = world();
        let plan = q.resolve();
        let pre = sink_based(&q, &plan);
        // Same pair set, different host structure: the successor is the
        // pair's same-ordinal replica.
        let post = sink_based(&q, &plan);
        let sw = PlanSwitch::between(500.0, &q, &pre, &post, 1.0);
        assert_eq!(sw.epoch_ms, 500.0);
        assert_eq!(sw.succ.len(), pre.replicas.len());
        for (i, s) in sw.succ.iter().enumerate() {
            let s = s.expect("pair still placed");
            assert_eq!(post.replicas[s as usize].pair, pre.replicas[i].pair);
        }
        // A pair that disappears maps to None.
        let mut gone = post.clone();
        gone.replicas.clear();
        let sw = PlanSwitch::between(500.0, &q, &pre, &gone, 1.0);
        assert!(sw.succ.iter().all(|s| s.is_none()));
    }

    #[test]
    fn nova_dataflow_routes_every_partition_somewhere() {
        let (t, space, q) = world();
        let mut nova = Nova::with_cost_space(t, space, NovaConfig::default());
        nova.optimize(q.clone());
        let sigma = NovaConfig::default().sigma;
        let df = Dataflow::build(&q, nova.placement(), |_| sigma);
        // Every partition of every feed must have at least one route —
        // otherwise tuples would be dropped.
        for s in &df.sources {
            for f in &s.feeds {
                assert_eq!(f.routes.len(), f.partition_rates.len());
                for (p, routes) in f.routes.iter().enumerate() {
                    assert!(!routes.is_empty(), "partition {p} of {:?} unrouted", f.pair);
                }
            }
        }
        // Instance out-paths end at the sink.
        for inst in &df.instances {
            assert_eq!(*inst.out_path.last().unwrap(), df.sink);
        }
    }
}
