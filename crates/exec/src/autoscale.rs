//! Closed-loop elasticity: the autoscaling controller (DESIGN.md §9).
//!
//! PR 6 gave the executor a telemetry plane ([`crate::metrics`]) and
//! PR 5 a live control plane ([`crate::control`]); this module closes
//! the loop between them. An [`Autoscaler`] owns the run's
//! [`ExecHandle`] on a background thread, consumes the periodic
//! [`MetricsSnapshot`] feed from [`ExecHandle::subscribe`], fits a
//! per-node performance model to consecutive snapshots and synthesizes
//! [`PlanSwitch`]es on its own:
//!
//! * **Scale up** when predicted utilization crosses the high-water
//!   threshold for several consecutive samples — a new shard
//!   generation with more workers per instance
//!   ([`ExecHandle::apply_scaled`]).
//! * **Re-place** when a node's pacer backlog signals model-domain
//!   exhaustion (the node physically cannot serve its arrival rate):
//!   the caller-supplied [`Relocator`] rebuilds the dataflow away from
//!   the saturated host, and the switch migrates the window state
//!   through the ordinary epoch-barrier protocol.
//! * **Scale down** after sustained slack, never below the floor of
//!   one shard.
//!
//! The estimator is deliberately simple and fully observable. For each
//! node, over the window between two snapshots (Δt of virtual time),
//!
//! ```text
//! utilization  =  Δbusy_ms / Δt  +  max(0, Δbacklog_ms / Δt)
//! ```
//!
//! The first term is the classic ρ = λ·s (arrival rate × observed
//! per-item service time, both folded into the pacer's busy-time
//! meter); it saturates at 1.0 when the node is overloaded. The second
//! term recovers the excess: a queue whose backlog grows by `g` ms per
//! ms of time is receiving `1 + g` times what it can serve, so the sum
//! estimates the true offered ρ even past saturation. The run-wide
//! prediction is the max over nodes; rising live-shard queue depth is
//! used as the wall-clock-side saturation signal for scale-down
//! suppression.
//!
//! **Hysteresis and cooldown** make the loop converge instead of
//! oscillate: a decision needs `high_samples` (resp. `slack_samples`)
//! consecutive snapshots beyond the threshold, and after any switch
//! the controller holds for `cooldown_ms` of virtual time regardless
//! of what the estimator says. The flash-crowd and diurnal scenarios
//! in `bench_exec_smoke` pin this (BENCH_exec_autoscale.json).
//!
//! **Correctness gate.** Every switch the controller applies — scale,
//! re-placement or [`ExecHandle::add_source`] admission — is recorded
//! as a [`RecordedSwitch`]; replaying the recorded sequence through
//! [`nova_runtime::simulate_reconfigured`] must reproduce the
//! executor's exec counts exactly on drop-free runs (see
//! `tests/reopt_consistency.rs`). The controller therefore never
//! invents semantics: it only schedules the same epoch-barrier
//! reconfigurations a human operator could apply by hand.

use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::Duration;

use nova_runtime::{Dataflow, PlanSwitch};
use nova_topology::NodeId;

use crate::control::{EpochStats, ExecHandle, ReconfigError, ShardScale};
use crate::metrics::{ExecResult, MetricsSnapshot};

/// Tuning knobs of the autoscaling [`Policy`]. All time quantities are
/// **virtual** milliseconds (the model domain shared with the
/// simulator), so a policy behaves identically at any
/// [`crate::ExecConfig::time_scale`].
#[derive(Debug, Clone)]
pub struct AutoscaleConfig {
    /// Snapshot sampling interval (wall time, passed to
    /// [`ExecHandle::subscribe`]). Zero is treated as "no feed": the
    /// controller then only executes injected switches.
    pub interval: Duration,
    /// Predicted-utilization high-water mark; at or above it for
    /// [`AutoscaleConfig::high_samples`] consecutive snapshots the
    /// controller scales up.
    pub high_utilization: f64,
    /// Low-water mark; at or below it (with an empty queue signal) for
    /// [`AutoscaleConfig::slack_samples`] consecutive snapshots the
    /// controller scales down.
    pub low_utilization: f64,
    /// Pacer-backlog level (ms of unserved work) that marks a node as
    /// exhausted and makes the scale-up decision carry a
    /// re-placement away from it.
    pub backlog_high_ms: f64,
    /// Consecutive high-utilization samples required before scaling
    /// up (hysteresis against one-sample spikes).
    pub high_samples: usize,
    /// Consecutive slack samples required before scaling down
    /// (longer than `high_samples` by convention: growing is urgent,
    /// shrinking is not).
    pub slack_samples: usize,
    /// Virtual-time hold after any decision before the next one may
    /// fire — the anti-oscillation half of the hysteresis pair.
    pub cooldown_ms: f64,
    /// How far past the deciding snapshot's `at_ms` the synthesized
    /// switch's epoch is placed. Must comfortably exceed the snapshot
    /// latency so the sources are still ahead of the epoch when armed.
    pub epoch_lead_ms: f64,
    /// Scale-down floor (>= 1).
    pub min_shards: usize,
    /// Scale-up ceiling.
    pub max_shards: usize,
    /// Multiplicative step per scale decision (2 doubles/halves).
    pub scale_factor: usize,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            interval: Duration::from_millis(25),
            high_utilization: 0.85,
            low_utilization: 0.5,
            backlog_high_ms: 200.0,
            high_samples: 2,
            slack_samples: 4,
            cooldown_ms: 400.0,
            epoch_lead_ms: 60.0,
            min_shards: 1,
            max_shards: 8,
            scale_factor: 2,
        }
    }
}

/// What the [`Policy`] chose at one sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// No action: thresholds not met, streak incomplete, or cooldown.
    Hold,
    /// Spawn the next generation with more shards per instance;
    /// `relocate_from` additionally asks the [`Relocator`] to move
    /// join instances off the named (backlog-exhausted) node.
    ScaleUp {
        /// Target shards per instance.
        shards: usize,
        /// Target key buckets (kept equal to `shards` so the bucket
        /// space can actually spread across the new workers).
        key_buckets: usize,
        /// Node index whose pacer backlog crossed
        /// [`AutoscaleConfig::backlog_high_ms`], if any.
        relocate_from: Option<usize>,
    },
    /// Shrink the next generation after sustained slack.
    ScaleDown {
        /// Target shards per instance.
        shards: usize,
        /// Target key buckets (== `shards`).
        key_buckets: usize,
    },
}

/// One evaluated sample: the estimator's outputs plus the decision.
#[derive(Debug, Clone, Copy)]
pub struct Evaluation {
    /// Max-over-nodes predicted utilization (ρ estimate, can exceed 1).
    pub utilization: f64,
    /// Largest per-node pacer backlog observed in this sample (ms).
    pub max_backlog_ms: f64,
    /// Live shards' queued input tuples (wall-side pressure signal).
    pub queued_tuples: u64,
    /// What the policy chose.
    pub decision: Decision,
}

/// Per-node state carried between samples.
#[derive(Debug, Clone)]
struct PrevSample {
    at_ms: f64,
    /// `(busy_ms, backlog_ms)` per node.
    nodes: Vec<(f64, f64)>,
}

/// The pure decision core of the controller: consecutive-snapshot
/// differencing, the utilization estimator, hysteresis streaks and the
/// cooldown clock. It owns no threads and performs no I/O, which is
/// what makes the edge cases (cooldown suppression, the scale-down
/// floor) unit-testable sample by sample via [`Policy::step`].
#[derive(Debug, Clone)]
pub struct Policy {
    cfg: AutoscaleConfig,
    shards: usize,
    prev: Option<PrevSample>,
    high_streak: usize,
    slack_streak: usize,
    cooldown_until_ms: f64,
}

impl Policy {
    /// A policy starting from the run's current shard count.
    pub fn new(cfg: AutoscaleConfig, initial_shards: usize) -> Policy {
        Policy {
            cfg,
            shards: initial_shards.max(1),
            prev: None,
            high_streak: 0,
            slack_streak: 0,
            cooldown_until_ms: f64::NEG_INFINITY,
        }
    }

    /// Shard count the policy currently believes the run is at.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Evaluate one [`MetricsSnapshot`] (convenience wrapper over
    /// [`Policy::step`]).
    pub fn observe(&mut self, snap: &MetricsSnapshot) -> Evaluation {
        let nodes: Vec<(f64, f64)> = snap
            .nodes
            .iter()
            .map(|n| (n.busy_ms, n.backlog_ms))
            .collect();
        let queued: u64 = snap
            .shards
            .iter()
            .filter(|s| s.live)
            .map(|s| s.queued_tuples)
            .sum();
        self.step(snap.at_ms, &nodes, queued)
    }

    /// Evaluate one raw sample: virtual timestamp, `(busy_ms,
    /// backlog_ms)` per node, and the live shards' queued tuples.
    ///
    /// Returns the estimator outputs and the decision; a non-`Hold`
    /// decision immediately starts the cooldown and resets both
    /// hysteresis streaks. The policy updates its own shard count
    /// optimistically — callers that fail to apply the corresponding
    /// switch should [`Policy::force_shards`] it back.
    pub fn step(&mut self, at_ms: f64, nodes: &[(f64, f64)], queued_tuples: u64) -> Evaluation {
        let max_backlog_ms = nodes.iter().map(|n| n.1).fold(0.0, f64::max);
        let Some(prev) = self.prev.replace(PrevSample {
            at_ms,
            nodes: nodes.to_vec(),
        }) else {
            return self.hold(0.0, max_backlog_ms, queued_tuples);
        };
        let dt = at_ms - prev.at_ms;
        if dt <= 0.0 || prev.nodes.len() != nodes.len() {
            return self.hold(0.0, max_backlog_ms, queued_tuples);
        }

        // ρ̂ per node: served fraction plus backlog growth rate.
        let mut utilization = 0.0f64;
        let mut worst_backlog_node: Option<usize> = None;
        for (i, (&(busy, backlog), &(pbusy, pbacklog))) in nodes.iter().zip(&prev.nodes).enumerate()
        {
            let rho = (busy - pbusy) / dt + ((backlog - pbacklog) / dt).max(0.0);
            utilization = utilization.max(rho);
            if backlog >= self.cfg.backlog_high_ms
                && worst_backlog_node.is_none_or(|w| backlog > nodes[w].1)
            {
                worst_backlog_node = Some(i);
            }
        }

        // Hysteresis streaks advance even during cooldown, so a
        // persistent condition fires on the first post-cooldown sample.
        if utilization >= self.cfg.high_utilization {
            self.high_streak += 1;
            self.slack_streak = 0;
        } else if utilization <= self.cfg.low_utilization && queued_tuples == 0 {
            self.slack_streak += 1;
            self.high_streak = 0;
        } else {
            self.high_streak = 0;
            self.slack_streak = 0;
        }

        if at_ms < self.cooldown_until_ms {
            return Evaluation {
                utilization,
                max_backlog_ms,
                queued_tuples,
                decision: Decision::Hold,
            };
        }

        let decision = if self.high_streak >= self.cfg.high_samples {
            let target = (self.shards * self.cfg.scale_factor.max(2)).min(self.cfg.max_shards);
            if target > self.shards || worst_backlog_node.is_some() {
                // Growing, relocating, or both — a pure re-placement
                // (already at max_shards) is still a ScaleUp decision.
                self.shards = target.max(self.shards);
                Decision::ScaleUp {
                    shards: self.shards,
                    key_buckets: self.shards,
                    relocate_from: worst_backlog_node,
                }
            } else {
                Decision::Hold
            }
        } else if self.slack_streak >= self.cfg.slack_samples && self.shards > self.cfg.min_shards {
            self.shards = (self.shards / self.cfg.scale_factor.max(2)).max(self.cfg.min_shards);
            Decision::ScaleDown {
                shards: self.shards,
                key_buckets: self.shards,
            }
        } else {
            Decision::Hold
        };

        if decision != Decision::Hold {
            self.high_streak = 0;
            self.slack_streak = 0;
            self.cooldown_until_ms = at_ms + self.cfg.cooldown_ms;
        }
        Evaluation {
            utilization,
            max_backlog_ms,
            queued_tuples,
            decision,
        }
    }

    /// Overwrite the believed shard count (after a failed or external
    /// switch).
    pub fn force_shards(&mut self, shards: usize) {
        self.shards = shards.max(1);
    }

    fn hold(&self, utilization: f64, max_backlog_ms: f64, queued_tuples: u64) -> Evaluation {
        Evaluation {
            utilization,
            max_backlog_ms,
            queued_tuples,
            decision: Decision::Hold,
        }
    }
}

/// One JSON-lines row of the controller's decision log: the snapshot
/// it saw, the utilization it predicted and what it did about it.
#[derive(Debug, Clone)]
pub struct DecisionRecord {
    /// Virtual time of the deciding snapshot.
    pub at_ms: f64,
    /// Wall time of the deciding snapshot.
    pub wall_ms: f64,
    /// Predicted utilization (ρ̂, max over nodes).
    pub utilization: f64,
    /// Largest per-node pacer backlog at the sample (ms).
    pub max_backlog_ms: f64,
    /// Live shards' queued input tuples at the sample.
    pub queued_tuples: u64,
    /// `"hold"`, `"scale-up"`, `"scale-down"`, `"injected-apply"`,
    /// `"injected-add-source"`.
    pub action: String,
    /// Epoch of the synthesized switch (`NaN` for holds).
    pub epoch_ms: f64,
    /// Shard count after the decision.
    pub shards: usize,
    /// `"held"`, `"applied"`, or `"rejected: <error>"`.
    pub outcome: String,
}

impl DecisionRecord {
    /// Serialize as one JSON object on one line (hand-rolled like the
    /// rest of the workspace — no serde in the offline build).
    pub fn to_json_line(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v:.3}")
            } else {
                "null".into()
            }
        }
        format!(
            "{{\"at_ms\":{},\"wall_ms\":{},\"utilization\":{},\"max_backlog_ms\":{},\
             \"queued_tuples\":{},\"action\":\"{}\",\"epoch_ms\":{},\"shards\":{},\
             \"outcome\":\"{}\"}}",
            num(self.at_ms),
            num(self.wall_ms),
            num(self.utilization),
            num(self.max_backlog_ms),
            self.queued_tuples,
            esc(&self.action),
            num(self.epoch_ms),
            self.shards,
            esc(&self.outcome)
        )
    }
}

/// A switch the controller successfully applied, in order. Replaying
/// `switch`es through [`nova_runtime::simulate_reconfigured`] (the
/// scale overrides do not exist there — shard layout is an executor
/// concept that never changes counts) must reproduce the run's exec
/// counts on drop-free runs.
#[derive(Debug, Clone)]
pub struct RecordedSwitch {
    /// The applied plan switch.
    pub switch: PlanSwitch,
    /// True when it was an [`ExecHandle::add_source`] admission.
    pub admitted: bool,
    /// Shard-layout override, when the switch carried one.
    pub scale: Option<ShardScale>,
    /// The epoch's measurements.
    pub stats: EpochStats,
}

/// Everything the controller produced: the run's results, the decision
/// log and the applied switch sequence (the replay script).
#[derive(Debug)]
pub struct AutoscaleReport {
    /// The joined run's [`ExecResult`].
    pub result: ExecResult,
    /// One record per evaluated snapshot or injected command.
    pub decisions: Vec<DecisionRecord>,
    /// Applied switches in application order.
    pub switches: Vec<RecordedSwitch>,
}

/// Rebuilds the dataflow away from an exhausted node: given the node
/// to evacuate, returns the replacement [`Dataflow`] and the
/// instance succession map (old instance → new instance), exactly the
/// `(dataflow, succ)` halves of a [`PlanSwitch`]. Supplied by the
/// caller because placement lives in `nova-core`, not the executor —
/// benches and tests typically wrap `nova_core::baselines::host_based`.
pub type Relocator = Box<dyn FnMut(NodeId) -> (Dataflow, Vec<Option<u32>>) + Send>;

/// Latency oracle for compiling post plans on the controller thread.
pub type DistFn = Box<dyn FnMut(NodeId, NodeId) -> f64 + Send>;

enum Cmd {
    Apply {
        switch: PlanSwitch,
        reply: mpsc::Sender<Result<EpochStats, ReconfigError>>,
    },
    AddSource {
        switch: PlanSwitch,
        reply: mpsc::Sender<Result<EpochStats, ReconfigError>>,
    },
}

/// The closed-loop controller: owns the [`ExecHandle`] on a background
/// thread, watches the snapshot feed through a [`Policy`] and applies
/// the switches it decides on. External plan changes (a re-optimizer,
/// a workload generator, an operator) are injected through
/// [`Autoscaler::apply`] / [`Autoscaler::add_source`] and execute on
/// the controller thread, so the run sees **one totally ordered switch
/// sequence** — which is what makes the recorded sequence replayable.
///
/// The thread exits when the snapshot feed reports every shard retired
/// (the run drained), or — when there is no feed because telemetry is
/// off — when the `Autoscaler` is [`Autoscaler::join`]ed; either way
/// it then joins the run and assembles the [`AutoscaleReport`].
///
/// # Example
///
/// Launch a run, hand the handle to a controller, inject one
/// placement move (sink host → worker) and collect the report. The
/// workload is far below the high-water mark and already at the
/// scale-down floor, so the injected switch is the only one applied:
///
/// ```
/// use nova_core::baselines::{host_based, sink_based};
/// use nova_core::{JoinQuery, StreamSpec};
/// use nova_exec::{launch, AutoscaleConfig, Autoscaler, ExecConfig};
/// use nova_runtime::{Dataflow, PlanSwitch};
/// use nova_topology::{NodeId, NodeRole, Topology};
///
/// let mut t = Topology::new();
/// let sink = t.add_node(NodeRole::Sink, 1000.0, "sink");
/// let l = t.add_node(NodeRole::Source, 1000.0, "l");
/// let r = t.add_node(NodeRole::Source, 1000.0, "r");
/// let w = t.add_node(NodeRole::Worker, 1000.0, "w");
/// let q = JoinQuery::by_key(
///     vec![StreamSpec::keyed(l, 25.0, 1)],
///     vec![StreamSpec::keyed(r, 25.0, 1)],
///     sink,
/// );
/// fn dist(a: NodeId, b: NodeId) -> f64 {
///     if a == b { 0.0 } else { 5.0 }
/// }
/// let pre = sink_based(&q, &q.resolve());
/// let post = host_based(&q, &q.resolve(), w);
/// let df = Dataflow::from_baseline(&q, &pre);
/// let cfg = ExecConfig {
///     duration_ms: 600.0,
///     window_ms: 100.0,
///     time_scale: 8.0,             // 600 virtual ms in ~75 wall ms
///     max_queue_ms: f64::INFINITY, // drop-free ⇒ counts are exact
///     ..ExecConfig::default()
/// };
///
/// let handle = launch(&t, dist, &df, &cfg).expect("config is valid");
/// let ctl = Autoscaler::spawn(
///     handle,
///     df.clone(),
///     AutoscaleConfig::default(),
///     Box::new(dist),
///     None, // no relocator: the controller may rescale, not re-place
/// );
///
/// // A non-finite epoch asks the controller to stamp the switch
/// // `now + epoch_lead_ms` when it executes on the controller thread.
/// let mv = PlanSwitch::between(f64::NAN, &q, &pre, &post, 1.0);
/// ctl.apply(mv).expect("injected switch applies");
///
/// let report = ctl.join();
/// assert!(report.result.delivered > 0);
/// assert_eq!(report.result.dropped, 0);
/// assert_eq!(report.switches.len(), 1, "only the injected move");
/// ```
pub struct Autoscaler {
    cmd_tx: Option<mpsc::Sender<Cmd>>,
    thread: Option<JoinHandle<AutoscaleReport>>,
}

impl Autoscaler {
    /// Take ownership of a launched run and start controlling it.
    ///
    /// `dataflow` must be the plan the run was launched with (the
    /// controller clones it for identity switches and tracks it across
    /// relocations). `relocator` enables the re-placement half of
    /// scale-up decisions; without it the controller only scales the
    /// shard layout.
    pub fn spawn(
        handle: ExecHandle,
        dataflow: Dataflow,
        cfg: AutoscaleConfig,
        dist: DistFn,
        relocator: Option<Relocator>,
    ) -> Autoscaler {
        let (cmd_tx, cmd_rx) = mpsc::channel();
        let thread = std::thread::spawn(move || {
            control_loop(handle, dataflow, cfg, dist, relocator, cmd_rx)
        });
        Autoscaler {
            cmd_tx: Some(cmd_tx),
            thread: Some(thread),
        }
    }

    /// Inject a plan switch; it is applied on the controller thread
    /// (totally ordered with the controller's own switches) and the
    /// result returned synchronously. A switch with a non-finite
    /// `epoch_ms` is stamped `now + epoch_lead_ms` by the controller.
    pub fn apply(&self, switch: PlanSwitch) -> Result<EpochStats, ReconfigError> {
        self.roundtrip(|reply| Cmd::Apply { switch, reply })
    }

    /// Inject a source admission (see [`ExecHandle::add_source`]),
    /// same ordering and stamping rules as [`Autoscaler::apply`].
    pub fn add_source(&self, switch: PlanSwitch) -> Result<EpochStats, ReconfigError> {
        self.roundtrip(|reply| Cmd::AddSource { switch, reply })
    }

    fn roundtrip(
        &self,
        make: impl FnOnce(mpsc::Sender<Result<EpochStats, ReconfigError>>) -> Cmd,
    ) -> Result<EpochStats, ReconfigError> {
        let (reply_tx, reply_rx) = mpsc::channel();
        let sent = self
            .cmd_tx
            .as_ref()
            .map(|tx| tx.send(make(reply_tx)).is_ok())
            .unwrap_or(false);
        if !sent {
            return Err(ReconfigError::RunFinished);
        }
        reply_rx.recv().unwrap_or(Err(ReconfigError::RunFinished))
    }

    /// Wait for the run to end and collect the report. (Dropping the
    /// command channel is what releases a feed-less controller.)
    pub fn join(mut self) -> AutoscaleReport {
        self.cmd_tx = None;
        self.thread
            .take()
            .expect("autoscaler already joined")
            .join()
            .expect("autoscaler thread panicked")
    }
}

/// The controller thread body.
fn control_loop(
    mut handle: ExecHandle,
    mut current: Dataflow,
    cfg: AutoscaleConfig,
    mut dist: DistFn,
    mut relocator: Option<Relocator>,
    cmd_rx: mpsc::Receiver<Cmd>,
) -> AutoscaleReport {
    let mut decisions: Vec<DecisionRecord> = Vec::new();
    let mut switches: Vec<RecordedSwitch> = Vec::new();
    let mut policy = Policy::new(cfg.clone(), handle.shards());

    let feed = if cfg.interval.is_zero() {
        None
    } else {
        handle.subscribe(cfg.interval).ok()
    };

    let run_cmd = |cmd: Cmd,
                   handle: &mut ExecHandle,
                   current: &mut Dataflow,
                   policy: &mut Policy,
                   decisions: &mut Vec<DecisionRecord>,
                   switches: &mut Vec<RecordedSwitch>,
                   dist: &mut DistFn| {
        let (mut switch, admitted, reply) = match cmd {
            Cmd::Apply { switch, reply } => (switch, false, reply),
            Cmd::AddSource { switch, reply } => (switch, true, reply),
        };
        if !switch.epoch_ms.is_finite() {
            switch.epoch_ms = handle.now_ms() + cfg.epoch_lead_ms;
        }
        let res = if admitted {
            handle.add_source(&switch, &mut *dist)
        } else {
            handle.apply(&switch, &mut *dist)
        };
        let outcome = match &res {
            Ok(stats) => {
                *current = switch.dataflow.clone();
                switches.push(RecordedSwitch {
                    switch: switch.clone(),
                    admitted,
                    scale: None,
                    stats: *stats,
                });
                "applied".to_string()
            }
            Err(e) => format!("rejected: {e}"),
        };
        decisions.push(DecisionRecord {
            at_ms: handle.now_ms(),
            wall_ms: f64::NAN,
            utilization: f64::NAN,
            max_backlog_ms: f64::NAN,
            queued_tuples: 0,
            action: if admitted {
                "injected-add-source".into()
            } else {
                "injected-apply".into()
            },
            epoch_ms: switch.epoch_ms,
            shards: policy.shards(),
            outcome,
        });
        let _ = reply.send(res);
    };

    if let Some(rx) = feed {
        loop {
            // Injected commands first: they share the thread, so they
            // interleave with controller decisions in one sequence.
            while let Ok(cmd) = cmd_rx.try_recv() {
                run_cmd(
                    cmd,
                    &mut handle,
                    &mut current,
                    &mut policy,
                    &mut decisions,
                    &mut switches,
                    &mut dist,
                );
            }
            let snap = match rx.recv_timeout(Duration::from_millis(5)) {
                Ok(s) => s,
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                // Telemetry registry gone (should not happen before
                // finish, but never spin on a dead feed).
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            };
            // The run has drained once every shard row has retired:
            // only this thread reconfigures, so "all dead" can never be
            // a transient between generations.
            let drained = !snap.shards.is_empty() && snap.shards.iter().all(|s| !s.live);
            let eval = policy.observe(&snap);
            let (action, epoch_ms, outcome) = match eval.decision {
                Decision::Hold => ("hold".to_string(), f64::NAN, "held".to_string()),
                Decision::ScaleUp {
                    shards,
                    key_buckets,
                    relocate_from,
                } => {
                    let epoch_ms = snap.at_ms + cfg.epoch_lead_ms;
                    let (dataflow, succ) = match relocate_from {
                        Some(node) => match relocator.as_mut() {
                            Some(r) => r(NodeId(node as u32)),
                            None => (current.clone(), identity_succ(&current)),
                        },
                        None => (current.clone(), identity_succ(&current)),
                    };
                    let switch = PlanSwitch {
                        epoch_ms,
                        dataflow,
                        succ,
                        node_capacity: Vec::new(),
                    };
                    let scale = ShardScale {
                        shards,
                        key_buckets,
                    };
                    let action = if relocate_from.is_some() {
                        "scale-up+relocate".to_string()
                    } else {
                        "scale-up".to_string()
                    };
                    match handle.apply_scaled(&switch, &mut *dist, scale) {
                        Ok(stats) => {
                            current = switch.dataflow.clone();
                            switches.push(RecordedSwitch {
                                switch,
                                admitted: false,
                                scale: Some(scale),
                                stats,
                            });
                            (action, epoch_ms, "applied".to_string())
                        }
                        Err(e) => {
                            policy.force_shards(handle.shards());
                            (action, epoch_ms, format!("rejected: {e}"))
                        }
                    }
                }
                Decision::ScaleDown {
                    shards,
                    key_buckets,
                } => {
                    let epoch_ms = snap.at_ms + cfg.epoch_lead_ms;
                    let switch = PlanSwitch {
                        epoch_ms,
                        dataflow: current.clone(),
                        succ: identity_succ(&current),
                        node_capacity: Vec::new(),
                    };
                    let scale = ShardScale {
                        shards,
                        key_buckets,
                    };
                    match handle.apply_scaled(&switch, &mut *dist, scale) {
                        Ok(stats) => {
                            current = switch.dataflow.clone();
                            switches.push(RecordedSwitch {
                                switch,
                                admitted: false,
                                scale: Some(scale),
                                stats,
                            });
                            ("scale-down".to_string(), epoch_ms, "applied".to_string())
                        }
                        Err(e) => {
                            policy.force_shards(handle.shards());
                            ("scale-down".to_string(), epoch_ms, format!("rejected: {e}"))
                        }
                    }
                }
            };
            decisions.push(DecisionRecord {
                at_ms: snap.at_ms,
                wall_ms: snap.wall_ms,
                utilization: eval.utilization,
                max_backlog_ms: eval.max_backlog_ms,
                queued_tuples: eval.queued_tuples,
                action,
                epoch_ms,
                shards: policy.shards(),
                outcome,
            });
            if drained {
                break;
            }
        }
    }

    // No feed left (or none to begin with): stay available for
    // injected switches until the handle's owner joins us.
    while let Ok(cmd) = cmd_rx.recv() {
        run_cmd(
            cmd,
            &mut handle,
            &mut current,
            &mut policy,
            &mut decisions,
            &mut switches,
            &mut dist,
        );
    }

    AutoscaleReport {
        result: handle.join(),
        decisions,
        switches,
    }
}

fn identity_succ(df: &Dataflow) -> Vec<Option<u32>> {
    (0..df.instances.len() as u32).map(Some).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AutoscaleConfig {
        AutoscaleConfig {
            high_samples: 2,
            slack_samples: 2,
            cooldown_ms: 100.0,
            min_shards: 1,
            max_shards: 8,
            ..AutoscaleConfig::default()
        }
    }

    /// Feed the policy a saturated node: busy advances as fast as time
    /// and backlog grows, so ρ̂ > 1.
    fn hot(policy: &mut Policy, at_ms: f64, backlog: f64) -> Evaluation {
        policy.step(at_ms, &[(at_ms, backlog)], 0)
    }

    #[test]
    fn estimator_recovers_overload_from_backlog_growth() {
        let mut p = Policy::new(cfg(), 1);
        p.step(0.0, &[(0.0, 0.0)], 0);
        // busy tracks time (ρ = 1) and backlog grows 50 ms per 100 ms.
        let e = p.step(100.0, &[(100.0, 50.0)], 0);
        assert!((e.utilization - 1.5).abs() < 1e-9, "{}", e.utilization);
    }

    #[test]
    fn scale_up_needs_the_full_streak() {
        let mut p = Policy::new(cfg(), 1);
        hot(&mut p, 0.0, 0.0);
        let e1 = hot(&mut p, 100.0, 100.0);
        assert_eq!(e1.decision, Decision::Hold, "one sample is not a trend");
        let e2 = hot(&mut p, 200.0, 200.0);
        assert!(
            matches!(e2.decision, Decision::ScaleUp { shards: 2, .. }),
            "{:?}",
            e2.decision
        );
    }

    #[test]
    fn cooldown_suppresses_back_to_back_switches() {
        let mut p = Policy::new(cfg(), 1);
        hot(&mut p, 0.0, 0.0);
        hot(&mut p, 100.0, 100.0);
        let fired = hot(&mut p, 200.0, 200.0);
        assert!(matches!(fired.decision, Decision::ScaleUp { .. }));
        // Still saturated, but inside the 100 ms cooldown: hold.
        let e = hot(&mut p, 250.0, 300.0);
        assert_eq!(e.decision, Decision::Hold);
        // First sample past the cooldown fires again (streak kept
        // advancing underneath).
        let e = hot(&mut p, 310.0, 400.0);
        assert!(
            matches!(e.decision, Decision::ScaleUp { shards: 4, .. }),
            "{:?}",
            e.decision
        );
    }

    #[test]
    fn scale_down_floors_at_min_shards() {
        let mut p = Policy::new(cfg(), 2);
        p.step(0.0, &[(0.0, 0.0)], 0);
        let e1 = p.step(100.0, &[(10.0, 0.0)], 0);
        assert_eq!(e1.decision, Decision::Hold);
        let e2 = p.step(200.0, &[(20.0, 0.0)], 0);
        assert!(
            matches!(e2.decision, Decision::ScaleDown { shards: 1, .. }),
            "{:?}",
            e2.decision
        );
        // Already at the floor: sustained slack never goes below 1.
        for i in 0..10 {
            let at = 400.0 + 100.0 * i as f64;
            let e = p.step(at, &[(20.0, 0.0)], 0);
            assert_eq!(e.decision, Decision::Hold, "sample {i}");
        }
        assert_eq!(p.shards(), 1);
    }

    #[test]
    fn queued_tuples_block_scale_down() {
        let mut p = Policy::new(cfg(), 4);
        p.step(0.0, &[(0.0, 0.0)], 0);
        for i in 1..=10 {
            // Model-domain slack but wall-side queues: the shards are
            // the bottleneck, shrinking them would make it worse.
            let e = p.step(100.0 * i as f64, &[(10.0, 0.0)], 500);
            assert_eq!(e.decision, Decision::Hold, "sample {i}");
        }
        assert_eq!(p.shards(), 4);
    }

    #[test]
    fn relocation_rides_on_backlog_exhaustion() {
        let mut p = Policy::new(cfg(), 1);
        p.step(0.0, &[(0.0, 0.0), (0.0, 0.0)], 0);
        // Node 1 saturates with a growing backlog past backlog_high_ms.
        p.step(100.0, &[(20.0, 0.0), (100.0, 250.0)], 0);
        let e = p.step(200.0, &[(40.0, 0.0), (200.0, 500.0)], 0);
        match e.decision {
            Decision::ScaleUp {
                relocate_from: Some(n),
                ..
            } => assert_eq!(n, 1),
            other => panic!("expected relocating scale-up, got {other:?}"),
        }
    }

    #[test]
    fn decision_record_json_is_one_object_per_line() {
        let rec = DecisionRecord {
            at_ms: 1234.5,
            wall_ms: 60.0,
            utilization: 1.25,
            max_backlog_ms: 300.0,
            queued_tuples: 42,
            action: "scale-up".into(),
            epoch_ms: 1300.0,
            shards: 4,
            outcome: "applied".into(),
        };
        let line = rec.to_json_line();
        assert!(!line.contains('\n'));
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"action\":\"scale-up\""));
        assert!(line.contains("\"queued_tuples\":42"));
        // Non-finite fields serialize as null, keeping the log
        // machine-parseable.
        let hold = DecisionRecord {
            epoch_ms: f64::NAN,
            ..rec
        };
        assert!(hold.to_json_line().contains("\"epoch_ms\":null"));
    }
}
