//! The M:N cooperative scheduler behind [`crate::AsyncBackend`].
//!
//! [`Scheduler`] multiplexes S shard *tasks* onto W *worker* OS threads
//! (W ≤ cores, S ≫ W): a task is a resumable state machine that is
//! polled until it either finishes, runs out of input, or exhausts its
//! per-poll run budget. The design is a deliberately small subset of a
//! production event loop (no timers, no I/O reactor — the executor's
//! only events are channel readiness):
//!
//! * a single shared FIFO **ready queue** of task ids, guarded by one
//!   mutex + condvar — workers pop, poll, and park when the queue is
//!   empty;
//! * a per-task **status word** (`Status`) implementing the classic
//!   wake protocol: a wake of an `Idle` task enqueues it, a wake of a
//!   `Running` task marks it `RunningWoken` so the worker re-enqueues it
//!   after the poll returns (closing the "event arrived while I was
//!   deciding to sleep" race), and wakes of already-`Queued` tasks
//!   coalesce into nothing;
//! * [`Waker`] handles — `(scheduler, task id)` pairs handed to the
//!   poll-based channels ([`crate::channel::poll_bounded`]), which call
//!   [`Waker::wake`] under the channel lock whenever the condition a
//!   task parked on (data available / capacity available) becomes true.
//!
//! ## Why lost wake-ups cannot happen
//!
//! A task only returns [`Poll::Pending`] after *registering* a waker
//! with a channel and re-checking the channel's state **under the
//! channel's own lock** (registration and the state check are one
//! critical section in `try_recv`/`try_send`). Any state change after
//! that registration fires the waker. If the waker fires before the
//! worker has finished the poll, the status word is `Running`, the wake
//! is recorded as `RunningWoken`, and [`Scheduler::complete`]
//! re-enqueues the task instead of parking it. Either way the task runs
//! again after the event — the wake is never dropped.
//!
//! Fairness comes from the FIFO queue plus the run budget
//! ([`crate::ExecConfig::run_budget`]): a task with a deep backlog
//! yields after a bounded number of tuples and re-joins the *back* of
//! the queue, so co-scheduled shards make progress at bounded latency
//! skew instead of one hot shard monopolizing its worker.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// What a task's `poll` reports back to its worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Poll {
    /// The task is blocked on a channel (no input / no sink capacity)
    /// and has registered a [`Waker`]; park it until the waker fires.
    Pending,
    /// The task exhausted its run budget with work still at hand;
    /// re-enqueue it at the back of the ready queue.
    Yielded,
    /// The task finished (sent its Eof downstream); never poll again.
    Done,
}

/// Scheduling state of one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Parked: not in the queue, waiting for a wake.
    Idle,
    /// In the ready queue (or about to be re-enqueued).
    Queued,
    /// A worker is polling it right now.
    Running,
    /// A wake arrived *while* a worker was polling it; re-enqueue on
    /// completion instead of parking.
    RunningWoken,
    /// Finished; wakes are no-ops.
    Done,
}

struct Inner {
    ready: VecDeque<usize>,
    status: Vec<Status>,
    /// Tasks not yet `Done`; workers exit when it reaches zero.
    live: usize,
    /// How many of `live` are phantom [`Scheduler::hold`] guards, so
    /// the telemetry gauge can report real tasks only.
    holds: usize,
}

/// Shared state of one event loop: the ready queue and per-task status
/// words. Cheap to clone through an [`Arc`]; see the module docs for
/// the wake protocol.
pub struct Scheduler {
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl Scheduler {
    /// A scheduler over `tasks` tasks, all initially ready (every task
    /// must run at least once to register its first waker).
    pub fn new(tasks: usize) -> Arc<Self> {
        Arc::new(Scheduler {
            inner: Mutex::new(Inner {
                ready: (0..tasks).collect(),
                status: vec![Status::Queued; tasks],
                live: tasks,
                holds: 0,
            }),
            cv: Condvar::new(),
        })
    }

    /// A wake handle for `task`, to hand to the channels it parks on.
    pub fn waker(self: &Arc<Self>, task: usize) -> Waker {
        Waker {
            sched: Arc::clone(self),
            task,
        }
    }

    /// Pop the next ready task, parking the calling worker while the
    /// queue is empty. Returns `None` once every task is done — the
    /// workers' exit signal.
    pub fn next(&self) -> Option<usize> {
        let mut inner = self.inner.lock().expect("scheduler poisoned");
        loop {
            if inner.live == 0 {
                return None;
            }
            if let Some(id) = inner.ready.pop_front() {
                debug_assert_eq!(inner.status[id], Status::Queued);
                inner.status[id] = Status::Running;
                return Some(id);
            }
            inner = self.cv.wait(inner).expect("scheduler poisoned");
        }
    }

    /// Record the outcome of polling `task` (which [`Scheduler::next`]
    /// handed out). Resolves the wake-while-running race: a `Pending`
    /// task that was woken mid-poll goes straight back into the queue.
    pub fn complete(&self, task: usize, outcome: Poll) {
        let mut inner = self.inner.lock().expect("scheduler poisoned");
        let woken = inner.status[task] == Status::RunningWoken;
        match outcome {
            Poll::Done => {
                inner.status[task] = Status::Done;
                inner.live -= 1;
                if inner.live == 0 {
                    // Every parked worker must observe live == 0 and exit.
                    self.cv.notify_all();
                }
            }
            Poll::Yielded => {
                inner.status[task] = Status::Queued;
                inner.ready.push_back(task);
                self.cv.notify_one();
            }
            Poll::Pending => {
                if woken {
                    inner.status[task] = Status::Queued;
                    inner.ready.push_back(task);
                    self.cv.notify_one();
                } else {
                    inner.status[task] = Status::Idle;
                }
            }
        }
    }

    /// Register a new task mid-run (live reconfiguration spawns a fresh
    /// generation of shard tasks). The task starts `Idle` — *not* in
    /// the ready queue — so the caller can finish publishing the task's
    /// state (e.g. push it into the shared task table) before making it
    /// runnable with a [`Waker::wake`]; a worker can therefore never
    /// pop an id whose task it cannot look up.
    pub fn reserve(&self) -> usize {
        let mut inner = self.inner.lock().expect("scheduler poisoned");
        let id = inner.status.len();
        inner.status.push(Status::Idle);
        inner.live += 1;
        id
    }

    /// Take a run guard: a phantom live task that keeps the workers
    /// from exiting while the task set is momentarily empty — between
    /// an old generation retiring at an epoch barrier and the new one
    /// being registered. Balance with [`Scheduler::release`].
    pub fn hold(&self) {
        let mut inner = self.inner.lock().expect("scheduler poisoned");
        inner.live += 1;
        inner.holds += 1;
    }

    /// Release a [`Scheduler::hold`] guard; once the real tasks are
    /// done too, every parked worker observes `live == 0` and exits.
    pub fn release(&self) {
        let mut inner = self.inner.lock().expect("scheduler poisoned");
        inner.live -= 1;
        inner.holds -= 1;
        if inner.live == 0 {
            self.cv.notify_all();
        }
    }

    /// Telemetry gauge: tasks not yet `Done`, excluding phantom
    /// [`Scheduler::hold`] guards.
    pub fn live_tasks(&self) -> usize {
        let inner = self.inner.lock().expect("scheduler poisoned");
        inner.live - inner.holds
    }

    fn wake(&self, task: usize) {
        let mut inner = self.inner.lock().expect("scheduler poisoned");
        match inner.status[task] {
            Status::Idle => {
                inner.status[task] = Status::Queued;
                inner.ready.push_back(task);
                self.cv.notify_one();
            }
            Status::Running => inner.status[task] = Status::RunningWoken,
            // Coalesce: already queued / already marked / finished.
            Status::Queued | Status::RunningWoken | Status::Done => {}
        }
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Scheduler { .. }")
    }
}

/// Wake handle for one task: channels call [`Waker::wake`] when the
/// condition the task parked on becomes true. Clone-cheap (an [`Arc`]
/// and an index); firing a stale waker is a harmless no-op.
#[derive(Clone)]
pub struct Waker {
    sched: Arc<Scheduler>,
    task: usize,
}

impl Waker {
    /// Make the task runnable again (see the module docs for the
    /// Idle/Running/Queued transitions).
    pub fn wake(&self) {
        self.sched.wake(self.task);
    }
}

impl std::fmt::Debug for Waker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Waker({})", self.task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tasks_start_ready_and_drain_to_none() {
        let s = Scheduler::new(3);
        let mut seen = Vec::new();
        for _ in 0..3 {
            let id = s.next().unwrap();
            seen.push(id);
            s.complete(id, Poll::Done);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(s.next(), None);
    }

    #[test]
    fn yielded_tasks_requeue_fifo() {
        let s = Scheduler::new(2);
        let a = s.next().unwrap();
        s.complete(a, Poll::Yielded);
        let b = s.next().unwrap();
        assert_ne!(a, b, "yielded task goes to the back of the queue");
        s.complete(b, Poll::Done);
        assert_eq!(s.next(), Some(a));
        s.complete(a, Poll::Done);
        assert_eq!(s.next(), None);
    }

    #[test]
    fn wake_while_running_requeues_instead_of_parking() {
        let s = Scheduler::new(1);
        let id = s.next().unwrap();
        // Event arrives while the worker is still polling…
        s.waker(id).wake();
        // …so a Pending outcome must not park the task.
        s.complete(id, Poll::Pending);
        assert_eq!(s.next(), Some(id));
        s.complete(id, Poll::Done);
        assert_eq!(s.next(), None);
    }

    #[test]
    fn wake_of_idle_task_enqueues_it_once() {
        let s = Scheduler::new(1);
        let id = s.next().unwrap();
        s.complete(id, Poll::Pending); // parks
        let w = s.waker(id);
        w.wake();
        w.wake(); // coalesces
        assert_eq!(s.next(), Some(id));
        s.complete(id, Poll::Done);
        assert_eq!(s.next(), None);
    }

    #[test]
    fn reserved_tasks_are_idle_until_woken_and_guards_keep_workers_alive() {
        let s = Scheduler::new(0);
        s.hold();
        // No tasks yet, but the guard keeps next() from returning None:
        // nothing to pop, so a worker would park — verify via a thread.
        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || s2.next());
        std::thread::sleep(std::time::Duration::from_millis(10));
        let id = s.reserve();
        assert_eq!(id, 0);
        s.waker(id).wake(); // publishes the reserved task
        assert_eq!(h.join().unwrap(), Some(id));
        s.complete(id, Poll::Done);
        // Guard still held: workers must not exit...
        let s3 = Arc::clone(&s);
        let h = std::thread::spawn(move || s3.next());
        std::thread::sleep(std::time::Duration::from_millis(10));
        let late = s.reserve();
        s.waker(late).wake();
        assert_eq!(h.join().unwrap(), Some(late));
        s.complete(late, Poll::Done);
        // ...until it is released.
        s.release();
        assert_eq!(s.next(), None);
    }

    #[test]
    fn workers_park_until_a_wake_and_exit_on_all_done() {
        let s = Scheduler::new(1);
        let id = s.next().unwrap();
        s.complete(id, Poll::Pending);
        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || {
            // Parks on the condvar until the main thread wakes task 0,
            // then drives it to completion.
            while let Some(id) = s2.next() {
                s2.complete(id, Poll::Done);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        s.waker(id).wake();
        h.join().unwrap();
        assert_eq!(s.next(), None);
    }
}
