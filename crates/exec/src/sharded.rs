//! Intra-operator sharding: N join workers per deployed instance.
//!
//! [`ShardedBackend`] fans every join instance out to
//! [`ExecConfig::shards`] worker threads, each owning a disjoint slice
//! of the instance's window state. Tuples are hash-partitioned at the
//! source by `(window, pair, key bucket)`: any two tuples that could
//! ever match share all three coordinates — matching is per instance
//! (i.e. per pair), per tumbling window, and (for keyed workloads,
//! `key_space > 1`) requires *equal* join sub-keys, which always map to
//! the same bucket under [`key_bucket_of`]. So every potential match
//! lands on exactly one shard and the union of per-shard match sets
//! equals the unsharded match set, at any shard *and* any bucket count.
//! Shards share no buffers, take no locks, and probe each `(window,
//! key)` group privately.
//!
//! Parallelism comes from two independent axes:
//!
//! * **windows × pairs** (PR 2's axis, always on): different windows
//!   and pairs hash to different shards — enough when the workload has
//!   many pairs or small windows;
//! * **key buckets** ([`ExecConfig::key_buckets`] > 1): a *single hot
//!   pair with one giant window* — the skew case where the first axis
//!   degenerates to one shard — is hash-split by join sub-key, so its
//!   window state and probe work spread across all shards and the
//!   backend scales with cores even on one pair.
//!
//! `key_buckets = 1` keeps every sub-key in bucket 0 and reproduces the
//! PR 2 `(window, pair)` routing bit-for-bit (property-tested in
//! `crates/exec/tests/shard_props.rs`).
//!
//! ## Determinism
//!
//! Window assignment, the shard hash and the selectivity test are pure
//! functions of the config seed and event times, so on drop-free runs
//! `emitted` / `matched` / `delivered` are *identical* to
//! [`crate::ThreadedBackend`] and to the simulator — regardless of
//! shard count or OS scheduling. Per-shard watermarks (min event-time
//! frontier over the sources feeding the instance) drive garbage
//! collection exactly as in the unsharded worker: a shard sees each
//! source's tuples in event-time order over its FIFO channel, so its
//! frontiers still bound every future arrival. A shard that happens to
//! receive no tuples for a while only *delays* its GC — never makes it
//! unsafe.
//!
//! The model-domain numbers are also unchanged: ingest/relay service
//! slots are charged by the source worker and out-path relays by the
//! shard that produced the output, against the same shared
//! [`crate::metrics::NodePacer`]s, so the sharding is invisible to the
//! virtual-time
//! resource model.
//!
//! Each shard is individually visible to the telemetry plane: the
//! bootstrap registers one [`crate::metrics::MetricsRegistry`]
//! instrument per `(instance, shard)` at the shard's flat spawn index,
//! so a [`crate::MetricsSnapshot`] reports tuples-in / matched /
//! queue depth per shard — the per-worker saturation signal a future
//! autoscaler needs to tell "one hot shard" from "all shards busy".

use nova_core::PairId;
use nova_runtime::Dataflow;
use nova_topology::{NodeId, Topology};

use crate::metrics::ExecResult;
use crate::{Backend, ExecConfig};

/// Shard owning the `(window, pair, key bucket)` slice, for `shards`
/// shards.
///
/// A 64-bit finalizer mix over the window id, pair id and key bucket;
/// pure, so the routing decision is identical across sources, runs and
/// backends. `bucket = 0` — every tuple of an unkeyed workload, and
/// every tuple when `key_buckets = 1` — contributes nothing to the mix,
/// so the function then equals PR 2's `(window, pair)` routing exactly:
/// existing scaling numbers and shard layouts are reproduced
/// bit-for-bit.
#[inline]
pub fn shard_of(window: u64, pair: PairId, bucket: u32, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut x = window
        ^ ((pair.0 as u64) << 32)
        ^ (bucket as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93)
        ^ 0x9E37_79B9_7F4A_7C15;
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    (x % shards as u64) as usize
}

/// Key bucket of a join sub-key, for `key_buckets` buckets.
///
/// A pure 64-bit finalizer mix over the sub-key (so adjacent sub-keys
/// spread instead of striping), reduced mod `key_buckets`. Equal
/// sub-keys always land in the same bucket — the co-location invariant
/// keyed sharding rests on — and `key_buckets <= 1` pins everything to
/// bucket 0, reproducing unkeyed routing.
#[inline]
pub fn key_bucket_of(subkey: u32, key_buckets: usize) -> u32 {
    if key_buckets <= 1 {
        return 0;
    }
    let mut x = (subkey as u64).wrapping_mul(0xA24B_AED4_963E_E407) ^ 0x9FB2_1C65_1E98_DF25;
    x ^= x >> 32;
    x = x.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    x ^= x >> 29;
    (x % key_buckets as u64) as u32
}

/// Multi-core backend: one OS thread per source task, `shards` join
/// workers per instance, and the sink. Reads the shard count from
/// [`ExecConfig::shards`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardedBackend;

impl Backend for ShardedBackend {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn run(
        &self,
        topology: &Topology,
        dist: &mut dyn FnMut(NodeId, NodeId) -> f64,
        dataflow: &Dataflow,
        cfg: &ExecConfig,
    ) -> ExecResult {
        run_with_shards(topology, dist, dataflow, cfg, cfg.shards.max(1))
    }
}

/// The executor bootstrap shared by every threaded backend: `shards`
/// join workers per deployed instance, hash-partitioned at the source.
/// `shards = 1` is exactly the classic thread-per-operator layout, so
/// [`crate::ThreadedBackend`] delegates here too — one copy of the
/// channel wiring, spawn loops, sink quorum and result assembly to keep
/// correct, with no possibility of the backends drifting apart. Since
/// the control plane landed, that one copy is
/// `crate::control::launch_threads` (shared further with the live
/// reconfiguration path — a plain run is a reconfigurable run that
/// never reconfigures).
pub(crate) fn run_with_shards(
    topology: &Topology,
    dist: &mut dyn FnMut(NodeId, NodeId) -> f64,
    dataflow: &Dataflow,
    cfg: &ExecConfig,
    shards: usize,
) -> ExecResult {
    crate::control::launch_threads(topology, dist, dataflow, cfg, shards).finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadedBackend;
    use nova_core::baselines::sink_based;
    use nova_core::{JoinQuery, StreamSpec};
    use nova_topology::NodeRole;

    fn world() -> (Topology, Dataflow) {
        let mut t = Topology::new();
        let sink = t.add_node(NodeRole::Sink, 1000.0, "sink");
        let mut left = Vec::new();
        let mut right = Vec::new();
        for k in 0..2u32 {
            let l = t.add_node(NodeRole::Source, 1000.0, format!("l{k}"));
            let r = t.add_node(NodeRole::Source, 1000.0, format!("r{k}"));
            left.push(StreamSpec::keyed(l, 40.0, k));
            right.push(StreamSpec::keyed(r, 40.0, k));
        }
        let q = JoinQuery::by_key(left, right, sink);
        let p = sink_based(&q, &q.resolve());
        let df = Dataflow::from_baseline(&q, &p);
        (t, df)
    }

    fn flat_dist(a: NodeId, b: NodeId) -> f64 {
        if a == b {
            0.0
        } else {
            10.0
        }
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for shards in [1usize, 2, 3, 4, 8] {
            for window in 0..200u64 {
                for pair in 0..4u32 {
                    for bucket in [0u32, 1, 7] {
                        let s = shard_of(window, PairId(pair), bucket, shards);
                        assert!(s < shards);
                        assert_eq!(s, shard_of(window, PairId(pair), bucket, shards));
                    }
                }
            }
        }
        assert_eq!(shard_of(123, PairId(7), 0, 1), 0);
    }

    #[test]
    fn shard_of_spreads_windows_across_shards() {
        let shards = 4;
        let mut seen = [false; 4];
        for window in 0..64u64 {
            seen[shard_of(window, PairId(0), 0, shards)] = true;
        }
        assert!(seen.iter().all(|&s| s), "hash must reach every shard");
    }

    #[test]
    fn key_buckets_spread_a_single_hot_window_across_shards() {
        // The skew failure mode `(window, pair)` routing cannot escape:
        // one pair, one window. Buckets must reach every shard.
        let shards = 4;
        let mut seen = [false; 4];
        for subkey in 0..64u32 {
            let bucket = key_bucket_of(subkey, 16);
            seen[shard_of(0, PairId(0), bucket, shards)] = true;
        }
        assert!(seen.iter().all(|&s| s), "buckets must reach every shard");
        // And with a single bucket everything stays on one shard.
        let only = shard_of(0, PairId(0), key_bucket_of(17, 1), shards);
        assert_eq!(only, shard_of(0, PairId(0), 0, shards));
    }

    #[test]
    fn sharded_counts_match_threaded_exactly() {
        let (t, df) = world();
        let base = ExecConfig {
            duration_ms: 2500.0,
            window_ms: 100.0,
            selectivity: 0.6,
            time_scale: 8.0,
            // Unbounded queues: count identity is guaranteed only on
            // drop-free runs, and with a bounded queue an OS-stalled
            // source thread (~30 ms on a loaded 1-core host ≈ 250
            // virtual ms at time_scale 8) can shed a tuple spuriously.
            max_queue_ms: f64::INFINITY,
            ..ExecConfig::default()
        };
        let mut dist = flat_dist;
        let threaded = ThreadedBackend.run(&t, &mut dist, &df, &base);
        assert_eq!(threaded.dropped, 0, "scenario must stay uncongested");
        for shards in [1usize, 2, 4] {
            let cfg = ExecConfig { shards, ..base };
            let mut dist = flat_dist;
            let sharded = ShardedBackend.run(&t, &mut dist, &df, &cfg);
            assert_eq!(sharded.dropped, 0);
            assert_eq!(sharded.emitted, threaded.emitted, "shards={shards}");
            assert_eq!(sharded.matched, threaded.matched, "shards={shards}");
            assert_eq!(sharded.delivered, threaded.delivered, "shards={shards}");
            assert_eq!(
                sharded.threads,
                df.sources.len() + df.instances.len() * shards + 1
            );
        }
    }

    #[test]
    fn keyed_sharding_counts_match_threaded_at_every_bucket_count() {
        // Keyed workload (sub-keys drawn from [0, 16)): key-bucket
        // routing must never change what joins — match and delivery
        // counts are pinned to the threaded baseline at every
        // (shards, key_buckets) combination, because matching requires
        // equal sub-keys and co-keyed tuples always co-locate.
        let (t, df) = world();
        let base = ExecConfig {
            duration_ms: 2500.0,
            window_ms: 500.0,
            selectivity: 0.9,
            time_scale: 8.0,
            key_space: 16,
            // Drop-free by construction — see above.
            max_queue_ms: f64::INFINITY,
            ..ExecConfig::default()
        };
        let mut dist = flat_dist;
        let threaded = ThreadedBackend.run(&t, &mut dist, &df, &base);
        assert_eq!(threaded.dropped, 0, "scenario must stay uncongested");
        assert!(threaded.delivered > 0, "keyed workload must match");
        for shards in [2usize, 4] {
            for key_buckets in [1usize, 2, 8, 64] {
                let cfg = ExecConfig {
                    shards,
                    key_buckets,
                    ..base
                };
                let mut dist = flat_dist;
                let sharded = ShardedBackend.run(&t, &mut dist, &df, &cfg);
                let tag = format!("shards={shards} buckets={key_buckets}");
                assert_eq!(sharded.dropped, 0, "{tag}");
                assert_eq!(sharded.emitted, threaded.emitted, "{tag}");
                assert_eq!(sharded.matched, threaded.matched, "{tag}");
                assert_eq!(sharded.delivered, threaded.delivered, "{tag}");
            }
        }
    }

    #[test]
    fn sharded_run_is_count_deterministic() {
        let (t, df) = world();
        let cfg = ExecConfig {
            duration_ms: 2000.0,
            window_ms: 100.0,
            selectivity: 0.5,
            time_scale: 8.0,
            shards: 4,
            // Drop-free by construction — see above.
            max_queue_ms: f64::INFINITY,
            ..ExecConfig::default()
        };
        let mut dist = flat_dist;
        let a = ShardedBackend.run(&t, &mut dist, &df, &cfg);
        let mut dist = flat_dist;
        let b = ShardedBackend.run(&t, &mut dist, &df, &cfg);
        assert!(a.delivered > 0);
        assert_eq!(a.dropped, 0);
        assert_eq!(a.emitted, b.emitted);
        assert_eq!(a.matched, b.matched);
        assert_eq!(a.delivered, b.delivered);
    }
}
