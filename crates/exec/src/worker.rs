//! Plan compilation and the source/sink worker loops.
//!
//! Before any thread starts, the [`Dataflow`] is *compiled*: every
//! routing path is resolved into a flat chain of `(node, link-delay)`
//! segments so worker threads never consult the topology or the latency
//! oracle at runtime. A source thread then plays its stream against the
//! virtual clock — token-bucket pacing against the configured rate,
//! ingest service on the source node's pacer, relay charges along the
//! compiled segments — and ships batches over the bounded channels. The
//! sink thread is the measurement point: it charges the sink node's
//! service slot per output and records [`OutputRecord`]s.

use nova_core::Side;
use nova_runtime::{pick_partition, subkey_of, Dataflow, OutputRecord, Tuple, WindowBuffers};
use nova_topology::{NodeId, Topology};
use rand::prelude::*;
use std::time::Instant;

use crate::channel::{BatchLane, InFlight, JoinMsg, MsgReceiver, MsgSender, SinkMsg, TupleBatch};
use crate::control::SourceCtrl;
use crate::metrics::{
    count_drop, Counters, LatencyBatch, NodePacer, SinkTelemetry, SourceTelemetry,
};
use crate::sharded::{key_bucket_of, shard_of};
use crate::ExecConfig;

/// Wall-to-virtual time mapping shared by every worker.
///
/// Virtual time runs `scale`× faster than wall time, so a 120 s
/// experiment can execute in 120/scale wall seconds while keeping every
/// virtual-domain quantity (rates, window assignment, latencies)
/// identical. `scale = 1` is real time.
#[derive(Debug, Clone, Copy)]
pub struct VirtualClock {
    start: Instant,
    scale: f64,
}

impl VirtualClock {
    /// Start the clock now.
    pub fn start(scale: f64) -> Self {
        VirtualClock {
            start: Instant::now(),
            scale: if scale > 0.0 { scale } else { 1.0 },
        }
    }

    /// Current virtual time in ms.
    #[inline]
    pub fn now_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1000.0 * self.scale
    }

    /// Elapsed wall time in ms.
    pub fn wall_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1000.0
    }

    /// Sleep until virtual time `t` (coarse: re-checks after sleeping).
    pub fn sleep_until(&self, t: f64) {
        loop {
            let now = self.now_ms();
            if now >= t {
                return;
            }
            let wall_ms = (t - now) / self.scale;
            std::thread::sleep(std::time::Duration::from_secs_f64(
                (wall_ms / 1000.0).max(50e-6),
            ));
        }
    }
}

/// One hop of a compiled route: pay `link_ms` of wire delay, then one
/// service slot on `node`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Segment {
    pub node: usize,
    pub link_ms: f64,
}

/// A compiled path from a source to one join instance. The final
/// segment's node is the instance's host, so clearing the chain includes
/// the instance's ingest service charge (mirroring the simulator, which
/// serves the instance node on the tuple's final `InputArrive`).
#[derive(Debug, Clone)]
pub(crate) struct CompiledRoute {
    pub instance: u32,
    pub segments: Vec<Segment>,
}

/// A source's routing table for one join pair.
#[derive(Debug, Clone)]
pub(crate) struct CompiledFeed {
    pub pair: nova_core::PairId,
    pub partition_rates: Vec<f64>,
    /// Per partition index: the routes to every hosting instance.
    pub routes: Vec<Vec<CompiledRoute>>,
}

/// A fully compiled source task.
#[derive(Debug, Clone)]
pub(crate) struct CompiledSource {
    pub index: u32,
    pub node: usize,
    pub side: Side,
    pub key: u32,
    /// Emission interval in virtual ms.
    pub interval_ms: f64,
    /// First emission time (sources are staggered like the simulator to
    /// avoid phase artifacts).
    pub first_at_ms: f64,
    pub feeds: Vec<CompiledFeed>,
    /// Distinct instances this source can reach (Eof fan-out).
    pub targets: Vec<u32>,
}

/// A compiled join instance.
#[derive(Debug, Clone)]
pub(crate) struct CompiledInstance {
    pub index: u32,
    pub pair: nova_core::PairId,
    /// Relay hops of the output path (excludes the sink itself).
    pub out_relays: Vec<Segment>,
    /// Wire delay of the final hop into the sink (0 when co-located).
    pub out_final_link_ms: f64,
    /// Whether the sink node charges a service slot per output (false
    /// when the join runs on the sink itself, like the simulator).
    pub charge_sink: bool,
    /// Number of sources feeding this instance (Eof quorum).
    pub producers: usize,
}

/// The compiled plan: everything workers need, oracle-free.
#[derive(Debug, Clone)]
pub(crate) struct CompiledPlan {
    pub sources: Vec<CompiledSource>,
    pub instances: Vec<CompiledInstance>,
}

/// Resolve the dataflow against the topology and latency oracle.
pub(crate) fn compile(
    topology: &Topology,
    dist: &mut dyn FnMut(NodeId, NodeId) -> f64,
    dataflow: &Dataflow,
) -> CompiledPlan {
    let _ = topology; // capacities are consumed by the pacer table
    let mut producer_sets: Vec<Vec<u32>> = vec![Vec::new(); dataflow.instances.len()];

    let sources: Vec<CompiledSource> = dataflow
        .sources
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let interval_ms = 1000.0 / s.rate;
            let mut targets: Vec<u32> = Vec::new();
            let feeds: Vec<CompiledFeed> = s
                .feeds
                .iter()
                .map(|f| CompiledFeed {
                    pair: f.pair,
                    partition_rates: f.partition_rates.clone(),
                    routes: f
                        .routes
                        .iter()
                        .map(|routes| {
                            routes
                                .iter()
                                .map(|r| {
                                    if !targets.contains(&r.instance) {
                                        targets.push(r.instance);
                                    }
                                    let segments = if r.path.len() >= 2 {
                                        r.path
                                            .windows(2)
                                            .map(|w| Segment {
                                                node: w[1].idx(),
                                                link_ms: dist(w[0], w[1]),
                                            })
                                            .collect()
                                    } else {
                                        // Join co-located with the source:
                                        // the join work still takes its own
                                        // service slot on the source node.
                                        vec![Segment {
                                            node: s.node.idx(),
                                            link_ms: 0.0,
                                        }]
                                    };
                                    CompiledRoute {
                                        instance: r.instance,
                                        segments,
                                    }
                                })
                                .collect()
                        })
                        .collect(),
                })
                .collect();
            for &t in &targets {
                producer_sets[t as usize].push(i as u32);
            }
            CompiledSource {
                index: i as u32,
                node: s.node.idx(),
                side: s.side,
                key: s.key,
                interval_ms,
                // Same stagger formula as the simulator.
                first_at_ms: interval_ms * (i as f64 / dataflow.sources.len() as f64),
                feeds,
                targets,
            }
        })
        .collect();

    let instances: Vec<CompiledInstance> = dataflow
        .instances
        .iter()
        .enumerate()
        .map(|(i, inst)| {
            let path = &inst.out_path;
            let (out_relays, out_final_link_ms, charge_sink) = if path.len() >= 2 {
                let relays: Vec<Segment> = (1..path.len() - 1)
                    .map(|h| Segment {
                        node: path[h].idx(),
                        link_ms: dist(path[h - 1], path[h]),
                    })
                    .collect();
                let final_link = dist(path[path.len() - 2], path[path.len() - 1]);
                (relays, final_link, true)
            } else {
                (Vec::new(), 0.0, false)
            };
            CompiledInstance {
                index: i as u32,
                pair: inst.pair,
                out_relays,
                out_final_link_ms,
                charge_sink,
                producers: producer_sets[i].len(),
            }
        })
        .collect();

    CompiledPlan { sources, instances }
}

/// Ship one non-empty [`TupleBatch`] down the channel's batch lane,
/// leaving a fresh batch of the same fixed capacity in its slot (the
/// allocation travels with the message — the receiver frees it, the
/// sender never re-touches it). True while the receiver lives.
fn flush_batch<T: MsgSender<JoinMsg>>(
    txs: &[T],
    batches: &mut [TupleBatch],
    which: usize,
    cap: usize,
    tele: &SourceTelemetry,
) -> bool {
    if batches[which].is_empty() {
        return true;
    }
    let source = batches[which].source();
    let batch = std::mem::replace(&mut batches[which], TupleBatch::with_capacity(source, cap));
    let n = batch.len();
    let ok = txs[which].send_batch(batch).is_ok();
    if ok {
        tele.on_send(which, n);
        // Batch boundaries double as the emission-gauge flush points.
        tele.flush();
    }
    ok
}

/// Source worker: emit the stream, pay ingest + relay charges, batch
/// tuples toward the instances.
///
/// `txs` holds `shards` consecutive channels per join instance (flat
/// index `instance × shards + shard`); each tuple is routed to the
/// shard owning its `(window, pair, key bucket)` slice so shards share
/// no window state — with `key_buckets > 1` even one pair's single
/// window splits by join sub-key. `shards = 1` is the classic
/// one-channel-per-instance layout.
///
/// Generic over the channel family ([`MsgSender`]): the thread-per-shard
/// backends hand it blocking MPSC senders, the async backend poll-based
/// ones — the source's own sends block either way (sources are OS
/// threads; real backpressure is the point).
///
/// ## Live reconfiguration
///
/// `ctrl` is the source's control mailbox, polled once per emission
/// step. A [`SourceCtrl::Reconfigure`] arms an epoch: when the next
/// emission time reaches the epoch (or the stream ends first), the
/// source flushes, fans a [`JoinMsg::Barrier`] to every shard it feeds
/// and *parks* on the mailbox until [`SourceCtrl::Resume`] delivers the
/// post-epoch routing (a fresh [`CompiledSource`] + the new
/// generation's senders). The pre/post emission split is therefore
/// exactly `t < epoch` / `t >= epoch`, and the resumed grid follows
/// [`nova_runtime::resume_time`] — the same rule the simulator's
/// replay applies, which is what keeps the two engines count-identical
/// across a reconfiguration.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_source<T: MsgSender<JoinMsg>>(
    mut src: CompiledSource,
    cfg: &ExecConfig,
    clock: VirtualClock,
    pacers: &[NodePacer],
    counters: &Counters,
    mut txs: Vec<T>,
    mut shards: usize,
    mut key_buckets: usize,
    ctrl: &std::sync::mpsc::Receiver<SourceCtrl<T>>,
    mut tele: SourceTelemetry,
) {
    let mut rng =
        StdRng::seed_from_u64(cfg.seed ^ (src.index as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let mut seq = 0u64;
    let mut pending_epoch: Option<(u64, f64)> = None;
    let mut t = src.first_at_ms;

    'generations: loop {
        let mut batches: Vec<TupleBatch> = (0..txs.len())
            .map(|_| TupleBatch::with_capacity(src.index, cfg.batch_size))
            .collect();
        // How far ahead of the wall clock a source may run (virtual
        // ms): enough to fill a batch at high rates, but tightly
        // bounded — sources reserve service slots on shared pacers as
        // they emit, so inter-source schedule skew inflates measured
        // queueing latency by up to this slack.
        let slack_ms = (src.interval_ms * cfg.batch_size as f64 * 0.25).clamp(0.5, 4.0);

        'emit: while t <= cfg.duration_ms && seq < cfg.max_tuples_per_source {
            if pending_epoch.is_none() {
                if let Ok(SourceCtrl::Reconfigure { epoch, epoch_ms }) = ctrl.try_recv() {
                    pending_epoch = Some((epoch, epoch_ms));
                }
            }
            if let Some((_, epoch_ms)) = pending_epoch {
                if t >= epoch_ms {
                    break 'emit;
                }
            }
            let now = clock.now_ms();
            if t > now + slack_ms {
                for which in 0..batches.len() {
                    if !flush_batch(&txs, &mut batches, which, cfg.batch_size, &tele) {
                        break 'emit;
                    }
                }
                // Paced sources publish the emission gauge here: their
                // batches may stay partial for many intervals.
                tele.flush();
                clock.sleep_until(t - slack_ms * 0.5);
                continue;
            }
            seq += 1;
            Counters::bump(&counters.emitted, 1);
            tele.on_emit();
            // Ingestion costs one service slot on the source node; a
            // saturated source sheds the sample.
            let Some(ingest_done) = pacers[src.node].serve(t) else {
                tele.on_drop(counters);
                t += src.interval_ms;
                continue;
            };
            let window = WindowBuffers::window_of(t, cfg.window_ms);
            // Same pure sub-key the simulator stamps on this
            // (stream, seq): both engines key and bucket identically.
            let subkey = subkey_of(cfg.seed, src.index, seq, cfg.key_space);
            let bucket = key_bucket_of(subkey, key_buckets);
            for feed in &src.feeds {
                let partition = pick_partition(&feed.partition_rates, &mut rng);
                let shard = shard_of(window, feed.pair, bucket, shards);
                let tuple = Tuple {
                    pair: feed.pair,
                    side: src.side,
                    partition: partition as u32,
                    key: src.key,
                    subkey,
                    seq,
                    event_time: t,
                };
                for route in &feed.routes[partition] {
                    // Walk the relay chain: wire delay, then a service
                    // slot per hop (the last hop is the instance's
                    // ingest).
                    let mut deliver_at = ingest_done;
                    let mut delivered = true;
                    for seg in &route.segments {
                        deliver_at += seg.link_ms;
                        match pacers[seg.node].serve(deliver_at) {
                            Some(done) => deliver_at = done,
                            None => {
                                tele.on_drop(counters);
                                delivered = false;
                                break;
                            }
                        }
                    }
                    if delivered {
                        let which = route.instance as usize * shards + shard;
                        batches[which].push(InFlight { tuple, deliver_at });
                        if batches[which].len() >= cfg.batch_size
                            && !flush_batch(&txs, &mut batches, which, cfg.batch_size, &tele)
                        {
                            break 'emit;
                        }
                    }
                }
            }
            t += src.interval_ms;
        }
        for which in 0..batches.len() {
            let _ = flush_batch(&txs, &mut batches, which, cfg.batch_size, &tele);
        }
        tele.flush();

        // An armed epoch always resolves through the barrier handshake,
        // even when the stream ended first — the shards' quiesce quorum
        // counts this barrier, and the control plane decides what (if
        // anything) this source emits afterwards.
        let Some((epoch, epoch_ms)) = pending_epoch.take() else {
            break 'generations;
        };
        // An on-time arm barriers at the first grid point >= epoch, so
        // t < epoch + interval; anything beyond means emissions already
        // crossed the epoch under the old plan — flag the dirty split.
        let late = t >= epoch_ms + src.interval_ms;
        for &target in &src.targets {
            for shard in 0..shards {
                let _ = txs[target as usize * shards + shard].send_msg(JoinMsg::Barrier {
                    source: src.index,
                    epoch,
                    late,
                });
            }
        }
        match ctrl.recv() {
            Ok(SourceCtrl::Resume {
                src: new_src,
                txs: new_txs,
                n_sources,
                shards: new_shards,
                key_buckets: new_buckets,
                tx_instr,
            }) => {
                // Swap in the new generation's pre-resolved send-side
                // instruments along with its channels and shard layout
                // (the controller may have scaled shards/key-buckets).
                tele.tx_instr = tx_instr;
                // Post-epoch grid: continue the old grid on an
                // unchanged rate, restart staggered from the epoch on a
                // changed one — the exact rule the simulator's replay
                // applies, shared as `nova_runtime::resume_time`.
                t = nova_runtime::resume_time(
                    t,
                    src.interval_ms,
                    new_src.interval_ms,
                    epoch_ms,
                    new_src.index as usize,
                    n_sources,
                );
                src = new_src;
                txs = new_txs;
                shards = new_shards;
                key_buckets = new_buckets;
            }
            // The handle is gone mid-epoch: the old shards already
            // quiesced, so there is nobody left to feed — wind down
            // without Eofs (the sink terminates by sender hang-up).
            Ok(SourceCtrl::Reconfigure { .. }) | Err(_) => return,
        }
    }

    for &target in &src.targets {
        for shard in 0..shards {
            let _ =
                txs[target as usize * shards + shard].send_msg(JoinMsg::Eof { source: src.index });
        }
    }
}

/// A source admitted mid-run (`ExecHandle::add_source`): spawned
/// *parked* while its admission epoch is in flight, it waits for the
/// [`SourceCtrl::Resume`] that carries its compiled task — whose
/// `first_at_ms` the control plane has already placed on the
/// [`nova_runtime::admission_time`] grid — and only then enters the
/// normal [`run_source`] loop. A hang-up (or a stray `Reconfigure`)
/// before the Resume means the run was torn down mid-admission: exit
/// without Eofs, exactly like a source parked across a dropped handle.
pub(crate) fn run_admitted_source<T: MsgSender<JoinMsg>>(
    cfg: &ExecConfig,
    clock: VirtualClock,
    pacers: &[NodePacer],
    counters: &Counters,
    ctrl: &std::sync::mpsc::Receiver<SourceCtrl<T>>,
    registry: Option<std::sync::Arc<crate::metrics::MetricsRegistry>>,
) {
    match ctrl.recv() {
        Ok(SourceCtrl::Resume {
            src,
            txs,
            n_sources: _,
            shards,
            key_buckets,
            tx_instr,
        }) => {
            let tele = match &registry {
                Some(r) => SourceTelemetry::new(
                    std::sync::Arc::clone(r),
                    r.register_source(src.index, src.node),
                    tx_instr,
                ),
                None => SourceTelemetry::disabled(),
            };
            run_source(
                src,
                cfg,
                clock,
                pacers,
                counters,
                txs,
                shards,
                key_buckets,
                ctrl,
                tele,
            )
        }
        Ok(SourceCtrl::Reconfigure { .. }) | Err(_) => {}
    }
}

/// Sink worker: charge the sink's service slot per output and record
/// the delivered results. Returns them in arrival order. Generic over
/// the channel family ([`MsgReceiver`]) — the sink is an OS thread and
/// blocks while idle under every backend.
///
/// A [`SinkMsg::Epoch`] (live reconfiguration) re-bases the Eof quorum
/// and the per-instance charge table onto the new shard generation: old
/// shards retire *without* Eofs, and the control plane orders the Epoch
/// message after every old-generation batch and before any
/// new-generation one.
pub(crate) fn run_sink<R: MsgReceiver<SinkMsg>>(
    rx: R,
    sink_node: usize,
    mut charge_sink: Vec<bool>,
    pacers: &[NodePacer],
    counters: &Counters,
    mut producers: usize,
    tele: Option<SinkTelemetry>,
) -> Vec<OutputRecord> {
    let mut records: Vec<OutputRecord> = Vec::new();
    let mut eofs = 0usize;
    if producers == 0 {
        return records;
    }
    let registry = tele.as_ref().map(|t| &*t.registry);
    while let Some(msg) = rx.recv_msg() {
        match msg {
            SinkMsg::Batch { instance, outputs } => {
                // Per-batch accounting: one `seen` bump up front, local
                // latency accumulation flushed once at the end — the
                // per-output path stays atomics-free.
                let mut lat = tele.as_ref().map(|t| {
                    t.instr.on_seen(outputs.len() as u64);
                    LatencyBatch::new()
                });
                for o in outputs {
                    let arrival = if charge_sink[instance as usize] {
                        match pacers[sink_node].serve(o.deliver_at) {
                            Some(done) => done,
                            None => {
                                count_drop(counters, registry);
                                continue;
                            }
                        }
                    } else {
                        o.deliver_at
                    };
                    let latency_ms = arrival - o.out.event_time;
                    if let Some(l) = &mut lat {
                        l.record_ms(latency_ms);
                    }
                    records.push(OutputRecord {
                        arrival_ms: arrival,
                        latency_ms,
                        pair: o.out.pair,
                    });
                }
                if let (Some(t), Some(l)) = (&tele, &lat) {
                    t.flush_batch(l);
                }
            }
            SinkMsg::Eof { .. } => {
                eofs += 1;
                if eofs == producers {
                    break;
                }
            }
            SinkMsg::Epoch {
                producers: new_producers,
                charge_sink: table,
            } => {
                producers = new_producers;
                charge_sink = table;
                eofs = 0;
                if producers == 0 {
                    break;
                }
            }
        }
    }
    records.sort_unstable_by(|a, b| a.arrival_ms.total_cmp(&b.arrival_ms));
    records
}
