//! Shared accounting: per-node service pacing, run results, and the
//! live telemetry plane.
//!
//! The executor keeps the simulator's resource model — every node is a
//! single-server queue with a tuple/s capacity — but enforces it with
//! lock-free *virtual-time* accounting instead of a global event heap.
//! Each node has a [`NodePacer`]: an atomic `busy_until` timestamp in
//! virtual milliseconds. Reserving a service slot advances it by the
//! node's per-tuple service time; a reservation whose backlog exceeds
//! the bounded-queue cap is refused (load shedding), exactly like the
//! simulator's `serve`. Because the pacer is shared by every thread that
//! touches the node, co-located operators contend for the same capacity
//! — the ingestion-vs-join contention the paper's source-placement
//! experiments hinge on.
//!
//! ## The telemetry plane
//!
//! Everything above was historically observable only *after*
//! [`crate::ExecHandle::join`] returned. The [`MetricsRegistry`] turns
//! it into a live feed: per-shard / per-source / per-node instruments
//! that every backend updates on the hot path through **pre-resolved
//! handles** — each worker holds an `Arc` to its own instrument struct,
//! resolved once at spawn, so a hot-path update is a single
//! `fetch_add(_, Ordering::Relaxed)` on an uncontended cache line (no
//! map lookups, no locks). Gauges (channel queue depth, pacer backlog)
//! are *derived at read time* from pairs of monotonic counters and the
//! pacers' `busy_until`, so they cost the hot path nothing at all.
//! Latency and per-batch service time go into fixed-bucket log-scale
//! histograms ([`HistogramSnapshot`]); control-plane milestones (epoch
//! arm → quiesce → resume, generation spawns, sampled shed events) go
//! into a bounded trace ring ([`TraceEvent`]) with monotonic virtual +
//! wall timestamps.
//!
//! Reads are wait-free for writers: [`MetricsRegistry::snapshot`] loads
//! each atomic individually (`Relaxed`), so a snapshot is a consistent
//! *monotonic* view — every counter in a later snapshot is ≥ its value
//! in an earlier one, and the final snapshot equals the
//! [`ExecResult`] counts — rather than a point-in-time atomic cut
//! (which would require stopping the world). That is exactly the
//! contract a sampling controller needs, and what the telemetry tests
//! pin across live reconfigurations on all three backends.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use nova_runtime::OutputRecord;
use nova_topology::NodeId;

use crate::control::EpochStats;
use crate::sched::Scheduler;
use crate::worker::{CompiledInstance, VirtualClock};

/// Lock-free single-server queue clock for one node.
#[derive(Debug)]
pub struct NodePacer {
    /// Virtual time (ms) until which the node is busy, as `f64` bits.
    busy_until: AtomicU64,
    /// Accumulated service time (ms), as `f64` bits.
    busy_ms: AtomicU64,
    /// Service time per tuple in ms, as `f64` bits; 0 ⇒ infinite
    /// capacity (pure relay). Atomic so live reconfiguration can apply
    /// a capacity change (§3.5) to a running pacer; already-reserved
    /// slots keep their old completion times, exactly like the
    /// simulator's replay.
    service_ms: AtomicU64,
    /// Bounded-queue cap: refuse work once the backlog exceeds this.
    max_queue_ms: f64,
}

/// Service time (ms/tuple) of a capacity in tuples/s; `<= 0` ⇒ relay.
fn service_ms_of(capacity: f64) -> f64 {
    if capacity > 0.0 {
        1000.0 / capacity
    } else {
        0.0
    }
}

impl NodePacer {
    /// Pacer for a node of the given capacity (tuples/s).
    pub fn new(capacity: f64, max_queue_ms: f64) -> Self {
        NodePacer {
            busy_until: AtomicU64::new(0f64.to_bits()),
            busy_ms: AtomicU64::new(0f64.to_bits()),
            service_ms: AtomicU64::new(service_ms_of(capacity).to_bits()),
            max_queue_ms,
        }
    }

    /// Update the node's capacity mid-run (live reconfiguration). The
    /// publishing control plane orders this before the new shard
    /// generation spawns and before the sources resume, so every
    /// post-epoch reservation observes the new rate.
    pub fn set_capacity(&self, capacity: f64) {
        // ORDERING: Release pairs with the Acquire load in `serve` —
        // a reservation that sees the new rate also sees everything
        // the control plane published before changing it.
        self.service_ms
            .store(service_ms_of(capacity).to_bits(), Ordering::Release);
    }

    /// Reserve one service slot for work arriving at virtual time `at`.
    ///
    /// Returns the completion time, or `None` if the backlog already
    /// exceeds the queue cap (the tuple is shed). Mirrors the
    /// simulator's `serve` byte for byte, but is safe to call from any
    /// thread: the reservation is a CAS loop over `busy_until`.
    pub fn serve(&self, at: f64) -> Option<f64> {
        // ORDERING: Acquire pairs with `set_capacity`'s Release, so a
        // post-reconfiguration reservation observes the new rate.
        let service_ms = f64::from_bits(self.service_ms.load(Ordering::Acquire));
        if service_ms == 0.0 {
            return Some(at);
        }
        loop {
            // ORDERING: the CAS loop is the queue — Acquire on the
            // read and AcqRel on the exchange make each successful
            // reservation happen-after the one whose `done` it builds
            // on, so completion times are monotone per node.
            let cur_bits = self.busy_until.load(Ordering::Acquire);
            let cur = f64::from_bits(cur_bits);
            if cur - at > self.max_queue_ms {
                return None;
            }
            let start = cur.max(at);
            let done = start + service_ms;
            if self
                .busy_until
                .compare_exchange_weak(
                    cur_bits,
                    done.to_bits(),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                self.add_busy(service_ms);
                return Some(done);
            }
        }
    }

    fn add_busy(&self, delta: f64) {
        // ORDERING: busy_ms is a statistic, not a synchronizer — the
        // CAS only guards against a lost float addition; readers
        // tolerate any interleaving, so Relaxed throughout.
        let mut cur = self.busy_ms.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self.busy_ms.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Total service time charged to this node so far (ms).
    pub fn busy_ms(&self) -> f64 {
        // ORDERING: monotone statistic; a marginally stale read only
        // shifts one telemetry sample.
        f64::from_bits(self.busy_ms.load(Ordering::Relaxed))
    }

    /// Virtual time (ms) until which the node is busy — the front of
    /// its single-server queue. `busy_until_ms() − now` is the node's
    /// backlog gauge in the telemetry plane.
    pub fn busy_until_ms(&self) -> f64 {
        // ORDERING: backlog gauge for samplers — staleness is bounded
        // by the sample interval, no ordering needed.
        f64::from_bits(self.busy_until.load(Ordering::Relaxed))
    }
}

/// Run-wide atomic counters shared by all workers.
#[derive(Debug, Default)]
pub struct Counters {
    /// Tuples generated by all sources.
    pub emitted: AtomicU64,
    /// Join matches that survived selectivity.
    pub matched: AtomicU64,
    /// Tuples/outputs shed by bounded node queues.
    pub dropped: AtomicU64,
}

impl Counters {
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64, by: u64) {
        // ORDERING: pure tally; the run's final values are fenced by
        // worker joins, live reads are statistics (DESIGN.md §8).
        counter.fetch_add(by, Ordering::Relaxed);
    }
}

/// Results of one executor run. Field-compatible with
/// [`nova_runtime::SimResult`] so report code can treat either.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Delivered join results in arrival order (virtual ms).
    pub outputs: Vec<OutputRecord>,
    /// Tuples emitted by all sources.
    pub emitted: u64,
    /// Join matches produced (post-selectivity).
    pub matched: u64,
    /// Outputs delivered to the sink (= `outputs.len()`).
    pub delivered: u64,
    /// Busy milliseconds accumulated per node (virtual service time).
    pub node_busy_ms: Vec<f64>,
    /// Tuples dropped by bounded node queues (load shedding).
    pub dropped: u64,
    /// Real wall-clock duration of the run in ms (threads spawned to
    /// last join), for hardware-throughput reporting.
    pub wall_ms: f64,
    /// Number of OS threads the run used (sources + joins + sink).
    pub threads: usize,
    /// Per-epoch reconfiguration stats (pause/handoff wall times,
    /// migrated state), in epoch order — the same records
    /// [`crate::ExecHandle::epoch_stats`] reports live, surviving
    /// `join()` so post-run reports can include them.
    pub epochs: Vec<EpochStats>,
}

impl ExecResult {
    /// Delivered outputs per second of virtual time. Zero-or-negative
    /// durations yield 0.0 (matching
    /// [`ExecResult::input_tuples_per_wall_s`]) rather than `inf`/`NaN`.
    pub fn throughput_per_s(&self, duration_ms: f64) -> f64 {
        if duration_ms <= 0.0 {
            return 0.0;
        }
        self.delivered as f64 / (duration_ms / 1000.0)
    }

    /// Source tuples pushed through the executor per *wall-clock*
    /// second — the hardware-throughput number the exec benches report.
    pub fn input_tuples_per_wall_s(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.emitted as f64 / (self.wall_ms / 1000.0)
    }

    /// Mean end-to-end latency of delivered outputs (virtual ms).
    pub fn mean_latency(&self) -> f64 {
        if self.outputs.is_empty() {
            return 0.0;
        }
        self.outputs.iter().map(|o| o.latency_ms).sum::<f64>() / self.outputs.len() as f64
    }

    /// Latency percentile (q in [0, 1]), nearest-rank semantics via the
    /// helper shared with the simulator ([`nova_runtime::percentile`])
    /// — one definition of "p99.99" for both engines.
    pub fn latency_percentile(&self, q: f64) -> f64 {
        let v: Vec<f64> = self.outputs.iter().map(|o| o.latency_ms).collect();
        nova_runtime::percentile(&v, q)
    }

    /// Outputs whose arrival time is within the first `duration_ms` of
    /// virtual time — the subset the simulator would have recorded
    /// before its cut-off (the executor drains in-flight work instead
    /// of truncating it).
    pub fn delivered_by(&self, duration_ms: f64) -> u64 {
        self.outputs
            .iter()
            .filter(|o| o.arrival_ms <= duration_ms)
            .count() as u64
    }

    /// Utilization of a node: busy time / duration. Zero-or-negative
    /// durations yield 0.0 rather than `inf`/`NaN`.
    pub fn utilization(&self, node: NodeId, duration_ms: f64) -> f64 {
        if duration_ms <= 0.0 {
            return 0.0;
        }
        self.node_busy_ms.get(node.idx()).copied().unwrap_or(0.0) / duration_ms
    }
}

// ---------------------------------------------------------------------------
// Telemetry plane: instruments, histograms, trace ring, registry.
// ---------------------------------------------------------------------------

/// Number of log₂ buckets in a `LogHistogram`. Bucket `i` covers
/// `[2^i, 2^{i+1})` microseconds; 40 buckets reach ≈ 6 days — far past
/// any latency this executor can produce.
pub const HIST_BUCKETS: usize = 40;

/// Fixed-bucket log₂-scale histogram over microseconds. Recording is a
/// single `Relaxed` `fetch_add` on a pre-computed bucket index — cheap
/// enough for the per-output hot path.
#[derive(Debug)]
pub(crate) struct LogHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    /// Sum of recorded values in integer microseconds (for the
    /// Prometheus `_sum` series).
    sum_us: AtomicU64,
}

impl LogHistogram {
    fn new() -> Self {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
        }
    }

    #[inline]
    pub(crate) fn record_ms(&self, ms: f64) {
        // ORDERING: independent tallies — a scrape may see the bucket
        // without the sum for one in-flight sample, which histogram
        // consumers tolerate by construction; Relaxed keeps the hot
        // instrument at one uncontended RMW per field.
        let us = value_us(ms);
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Fold a locally-accumulated [`LatencyBatch`] in: one `fetch_add`
    /// per *occupied* bucket plus one for the sum, instead of two per
    /// recorded value.
    pub(crate) fn merge(&self, batch: &LatencyBatch) {
        // ORDERING: same contract as `record_ms` — per-bucket tallies,
        // torn scrapes are within the telemetry plane's error bars.
        for (i, &c) in batch.counts.iter().enumerate() {
            if c > 0 {
                self.buckets[i].fetch_add(c, Ordering::Relaxed);
            }
        }
        if batch.sum_us > 0 {
            self.sum_us.fetch_add(batch.sum_us, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        // ORDERING: a scrape is a statistical sample, not a barrier —
        // each bucket is read atomically, cross-bucket skew is fine.
        HistogramSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum_ms: self.sum_us.load(Ordering::Relaxed) as f64 / 1000.0,
        }
    }
}

#[inline]
fn value_us(ms: f64) -> u64 {
    if ms.is_finite() && ms > 0.0 {
        (ms * 1000.0) as u64
    } else {
        0
    }
}

/// `(us | 1).ilog2()` maps `[2^i, 2^{i+1})` µs to bucket i, sub-µs to 0.
#[inline]
fn bucket_of(us: u64) -> usize {
    ((us | 1).ilog2() as usize).min(HIST_BUCKETS - 1)
}

/// Stack-local histogram accumulator: the sink fills one per output
/// batch and [`LogHistogram::merge`]s it in a handful of atomics,
/// keeping the per-output path allocation- and atomics-free.
#[derive(Debug)]
pub(crate) struct LatencyBatch {
    counts: [u64; HIST_BUCKETS],
    sum_us: u64,
    n: u64,
}

impl LatencyBatch {
    pub(crate) fn new() -> Self {
        LatencyBatch {
            counts: [0; HIST_BUCKETS],
            sum_us: 0,
            n: 0,
        }
    }

    #[inline]
    pub(crate) fn record_ms(&mut self, ms: f64) {
        let us = value_us(ms);
        self.counts[bucket_of(us)] += 1;
        self.sum_us += us;
        self.n += 1;
    }
}

/// Read-side view of a `LogHistogram` (the crate-private write side):
/// per-bucket counts plus the
/// value sum, with quantile estimation by bucket upper bound.
#[derive(Debug, Clone, Default)]
pub struct HistogramSnapshot {
    /// Count per log₂ bucket; bucket `i` covers `[2^i, 2^{i+1})` µs.
    pub counts: Vec<u64>,
    /// Sum of recorded values in milliseconds.
    pub sum_ms: f64,
}

impl HistogramSnapshot {
    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Inclusive upper bound of bucket `i` in milliseconds.
    pub fn bucket_upper_ms(i: usize) -> f64 {
        // Bucket i covers up to (but excluding) 2^{i+1} µs.
        (1u64 << (i + 1).min(63)) as f64 / 1000.0
    }

    /// Quantile estimate (`q` in `[0, 1]`): the upper bound of the
    /// first bucket whose cumulative count reaches `q × total`.
    /// Returns 0.0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Self::bucket_upper_ms(i);
            }
        }
        Self::bucket_upper_ms(self.counts.len().saturating_sub(1))
    }
}

/// One structured control-plane trace event. Timestamps are monotonic:
/// `at_ms` is virtual time (the clock the data plane runs on), `wall_ms`
/// is real time since launch.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Sequence number (monotonic, gap-free until the ring wraps).
    pub seq: u64,
    /// Virtual timestamp (ms since launch).
    pub at_ms: f64,
    /// Wall-clock timestamp (ms since launch).
    pub wall_ms: f64,
    /// What happened.
    pub kind: TraceKind,
}

/// Trace-event taxonomy: epoch lifecycle spans from the control plane,
/// generation spawn/park, and sampled shed events.
#[derive(Debug, Clone)]
pub enum TraceKind {
    /// An epoch barrier was armed at every source.
    EpochArm {
        /// Epoch number (1-based).
        epoch: u64,
        /// Virtual time of the barrier.
        epoch_ms: f64,
    },
    /// One shard of the outgoing generation reported quiesced.
    ShardQuiesced {
        /// Flat shard index within its generation.
        flat: usize,
        /// Epoch it quiesced at.
        epoch: u64,
    },
    /// A new shard generation was spawned (at launch and per epoch).
    GenerationSpawn {
        /// Generation number (0 at launch).
        generation: u64,
        /// Number of shard workers/tasks in the generation.
        shard_workers: usize,
    },
    /// Sources resumed after a completed reconfiguration.
    EpochResume {
        /// Epoch number.
        epoch: u64,
        /// Join groups migrated into the new generation.
        migrated_groups: usize,
        /// Buffered tuples migrated.
        migrated_tuples: usize,
        /// Wall-clock handoff time (quiesce → resume), ms.
        handoff_wall_ms: f64,
    },
    /// Load shedding sampled at power-of-two totals (1, 2, 4, 8, …) so
    /// a shedding run traces O(log drops) events, not O(drops).
    Shed {
        /// Total dropped count at the time of the event.
        dropped: u64,
    },
}

/// Capacity of the trace ring; older events are discarded first.
const TRACE_RING_CAP: usize = 4096;

/// Per-source instrument: resolved once at source spawn.
#[derive(Debug)]
pub(crate) struct SourceInstr {
    /// Source index in the query.
    pub index: u32,
    /// Node the source is pinned to.
    pub node: usize,
    emitted: AtomicU64,
}

impl SourceInstr {
    #[inline]
    pub(crate) fn on_emit(&self, n: u64) {
        // ORDERING: see `ShardInstr::on_send` — same tally contract.
        self.emitted.fetch_add(n, Ordering::Relaxed);
    }
}

/// Per-shard instrument: one per shard worker/task per generation,
/// resolved at spawn and shared with the sources that feed it (the
/// send-side counters double as the channel-depth gauge inputs).
#[derive(Debug)]
pub(crate) struct ShardInstr {
    generation: u64,
    instance: u32,
    shard: u32,
    pair: u32,
    /// Batches / tuples pushed into the shard's input channel.
    sent_msgs: AtomicU64,
    sent_tuples: AtomicU64,
    /// Batches / tuples the shard dequeued.
    recv_msgs: AtomicU64,
    recv_tuples: AtomicU64,
    /// Matches produced (post-selectivity), published per input batch —
    /// unlike the run-wide [`Counters::matched`], which is only
    /// published when a shard retires.
    matched: AtomicU64,
    /// Output tuples flushed toward the sink.
    out_tuples: AtomicU64,
    /// Set when the shard retires (end-of-stream or epoch quiesce).
    retired: AtomicBool,
}

impl ShardInstr {
    #[inline]
    pub(crate) fn on_send(&self, tuples: usize) {
        // ORDERING: all ShardInstr/SinkInstr updates are pure tallies
        // read by samplers — queue-depth gauges are *derived* as
        // sent − recv, and a torn read only misstates depth by one
        // in-flight batch for one sample. Relaxed everywhere keeps
        // the ≤ 3 % telemetry-overhead budget (DESIGN.md §8).
        self.sent_msgs.fetch_add(1, Ordering::Relaxed);
        self.sent_tuples.fetch_add(tuples as u64, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn on_recv(&self, tuples: usize) {
        // ORDERING: see `on_send` — same tally contract.
        self.recv_msgs.fetch_add(1, Ordering::Relaxed);
        self.recv_tuples.fetch_add(tuples as u64, Ordering::Relaxed);
    }

    /// Add a batch's worth of matches — the join publishes its local
    /// count once per input batch, keeping the per-match path free of
    /// atomics (see [`crate::join::JoinCore::publish_matched`]).
    #[inline]
    pub(crate) fn on_matched(&self, n: u64) {
        // ORDERING: see `on_send` — same tally contract.
        self.matched.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn on_out(&self, tuples: usize) {
        // ORDERING: see `on_send` — same tally contract.
        self.out_tuples.fetch_add(tuples as u64, Ordering::Relaxed);
    }

    pub(crate) fn retire(&self) {
        // ORDERING: liveness flag for snapshot labeling only; the
        // epoch protocol itself synchronizes through the scheduler,
        // not through this bit.
        self.retired.store(true, Ordering::Relaxed);
    }
}

/// Sink instrument: delivered outputs and tuples seen (delivered +
/// shed at the sink node).
#[derive(Debug, Default)]
pub(crate) struct SinkInstr {
    delivered: AtomicU64,
    seen: AtomicU64,
}

impl SinkInstr {
    #[inline]
    pub(crate) fn on_seen(&self, n: u64) {
        // ORDERING: see `ShardInstr::on_send` — same tally contract.
        self.seen.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn on_delivered(&self, n: u64) {
        // ORDERING: see `ShardInstr::on_send` — same tally contract.
        self.delivered.fetch_add(n, Ordering::Relaxed);
    }
}

/// Count a shed tuple: bump the run-wide counter and, when a registry
/// is attached, emit a rate-limited trace event at power-of-two totals
/// (each total is returned by exactly one `fetch_add`, so concurrent
/// shedders never double-trace).
#[inline]
pub(crate) fn count_drop(counters: &Counters, registry: Option<&MetricsRegistry>) {
    // ORDERING: fetch_add is atomic regardless of ordering, so each
    // power-of-two total is still returned to exactly one shedder;
    // nothing else reads the counter mid-run for control decisions.
    let total = counters.dropped.fetch_add(1, Ordering::Relaxed) + 1;
    if let Some(r) = registry {
        if total.is_power_of_two() {
            r.trace(TraceKind::Shed { dropped: total });
        }
    }
}

/// Pre-resolved telemetry handles for one source worker.
#[derive(Clone, Default)]
pub(crate) struct SourceTelemetry {
    pub registry: Option<Arc<MetricsRegistry>>,
    pub instr: Option<Arc<SourceInstr>>,
    /// Send-side instruments of the *current* shard generation, indexed
    /// by flat shard id; swapped on every `Resume`.
    pub tx_instr: Vec<Arc<ShardInstr>>,
    /// Emissions accumulated since the last instrument flush — the
    /// per-tuple path stays atomics-free; [`SourceTelemetry::flush`]
    /// publishes at batch/pacing boundaries. (`Cell`: the handle lives
    /// on one worker thread.)
    pending_emit: std::cell::Cell<u64>,
}

impl SourceTelemetry {
    pub(crate) fn new(
        registry: Arc<MetricsRegistry>,
        instr: Arc<SourceInstr>,
        tx_instr: Vec<Arc<ShardInstr>>,
    ) -> Self {
        SourceTelemetry {
            registry: Some(registry),
            instr: Some(instr),
            tx_instr,
            pending_emit: std::cell::Cell::new(0),
        }
    }

    pub(crate) fn disabled() -> Self {
        SourceTelemetry::default()
    }

    #[inline]
    pub(crate) fn on_emit(&self) {
        if self.instr.is_some() {
            self.pending_emit.set(self.pending_emit.get() + 1);
        }
    }

    /// Publish the locally-accumulated emission count.
    #[inline]
    pub(crate) fn flush(&self) {
        if let Some(i) = &self.instr {
            let n = self.pending_emit.take();
            if n > 0 {
                i.on_emit(n);
            }
        }
    }

    #[inline]
    pub(crate) fn on_send(&self, flat: usize, tuples: usize) {
        if let Some(i) = self.tx_instr.get(flat) {
            i.on_send(tuples);
        }
    }

    #[inline]
    pub(crate) fn on_drop(&self, counters: &Counters) {
        count_drop(counters, self.registry.as_deref());
    }
}

/// Pre-resolved telemetry handles for one shard worker/task (carried by
/// [`crate::join::JoinCore`] so all three backends share the hooks).
#[derive(Debug, Clone)]
pub(crate) struct ShardTelemetry {
    pub registry: Arc<MetricsRegistry>,
    pub instr: Arc<ShardInstr>,
}

/// Pre-resolved telemetry handles for the sink worker.
#[derive(Clone)]
pub(crate) struct SinkTelemetry {
    pub registry: Arc<MetricsRegistry>,
    pub instr: Arc<SinkInstr>,
}

impl SinkTelemetry {
    /// Fold one output batch's delivery accounting in: delivered count
    /// and latency histogram, a few atomics per *batch*.
    #[inline]
    pub(crate) fn flush_batch(&self, batch: &LatencyBatch) {
        if batch.n > 0 {
            self.instr.on_delivered(batch.n);
            self.registry.latency.merge(batch);
        }
    }
}

/// The run-wide instrument registry: the write side is lock-free
/// pre-resolved handles (see the module docs); the read side derives a
/// monotonic [`MetricsSnapshot`] on demand. Instrument lists are
/// append-only across generations, so counters sampled in consecutive
/// snapshots never decrease.
pub struct MetricsRegistry {
    clock: VirtualClock,
    counters: Arc<Counters>,
    pacers: Arc<Vec<NodePacer>>,
    shards: Mutex<Vec<Arc<ShardInstr>>>,
    sources: Mutex<Vec<Arc<SourceInstr>>>,
    sink: Arc<SinkInstr>,
    latency: LogHistogram,
    service: LogHistogram,
    trace: Mutex<VecDeque<TraceEvent>>,
    trace_seq: AtomicU64,
    epochs: Mutex<Vec<EpochStats>>,
    /// Scheduler of the async backend, when that backend is running —
    /// snapshot reads its live-task gauge.
    sched: Mutex<Option<Arc<Scheduler>>>,
    /// Set by the control plane once every worker has joined and all
    /// counts are final; the subscription sampler sends one last
    /// snapshot (equal to the [`ExecResult`] counts) and exits.
    finished: AtomicBool,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("MetricsRegistry { .. }")
    }
}

impl MetricsRegistry {
    pub(crate) fn new(
        clock: VirtualClock,
        counters: Arc<Counters>,
        pacers: Arc<Vec<NodePacer>>,
    ) -> Arc<Self> {
        // lint: allow(lock, the registry's mutexes guard *roster*
        // state — instrument lists, the trace ring, epoch stats —
        // touched at spawn/reconfiguration/scrape time; the per-tuple
        // instruments above them are plain atomics, DESIGN.md §8)
        Arc::new(MetricsRegistry {
            clock,
            counters,
            pacers,
            shards: Mutex::new(Vec::new()),
            sources: Mutex::new(Vec::new()),
            sink: Arc::new(SinkInstr::default()),
            latency: LogHistogram::new(),
            service: LogHistogram::new(),
            trace: Mutex::new(VecDeque::new()),
            trace_seq: AtomicU64::new(0),
            epochs: Mutex::new(Vec::new()),
            sched: Mutex::new(None),
            finished: AtomicBool::new(false),
        })
    }

    /// Register one source's instrument (at spawn).
    pub(crate) fn register_source(&self, index: u32, node: usize) -> Arc<SourceInstr> {
        let instr = Arc::new(SourceInstr {
            index,
            node,
            emitted: AtomicU64::new(0),
        });
        // lint: allow(lock, once per source spawn, not per tuple)
        // allow(panic, a poisoned roster means a worker crashed while
        // registering — nothing downstream is trustworthy, propagate)
        self.sources
            .lock()
            .expect("registry poisoned")
            .push(Arc::clone(&instr));
        instr
    }

    /// Register a full shard generation's instruments: one per flat
    /// shard index, appended to the (never-truncated) shard list.
    pub(crate) fn register_generation(
        &self,
        generation: u64,
        instances: &[CompiledInstance],
        shards: usize,
    ) -> Vec<Arc<ShardInstr>> {
        let per: Vec<Arc<ShardInstr>> = (0..instances.len() * shards)
            .map(|flat| {
                Arc::new(ShardInstr {
                    generation,
                    instance: (flat / shards) as u32,
                    shard: (flat % shards) as u32,
                    pair: instances[flat / shards].pair.0,
                    sent_msgs: AtomicU64::new(0),
                    sent_tuples: AtomicU64::new(0),
                    recv_msgs: AtomicU64::new(0),
                    recv_tuples: AtomicU64::new(0),
                    matched: AtomicU64::new(0),
                    out_tuples: AtomicU64::new(0),
                    retired: AtomicBool::new(false),
                })
            })
            .collect();
        // lint: allow(lock, once per shard generation — spawn and
        // reconfiguration only) allow(panic, poisoned roster — see
        // register_source)
        self.shards
            .lock()
            .expect("registry poisoned")
            .extend(per.iter().cloned());
        per
    }

    pub(crate) fn sink_instr(&self) -> Arc<SinkInstr> {
        Arc::clone(&self.sink)
    }

    pub(crate) fn attach_scheduler(&self, sched: Arc<Scheduler>) {
        // lint: allow(lock, once per backend launch) allow(panic,
        // poisoned roster — see register_source)
        *self.sched.lock().expect("registry poisoned") = Some(sched);
    }

    #[inline]
    pub(crate) fn record_service_ms(&self, ms: f64) {
        self.service.record_ms(ms);
    }

    /// Append a trace event (drop-oldest past [`TRACE_RING_CAP`]).
    pub(crate) fn trace(&self, kind: TraceKind) {
        // ORDERING: seq only needs uniqueness and rough monotonicity
        // for consumers ordering the ring; fetch_add gives both.
        let seq = self.trace_seq.fetch_add(1, Ordering::Relaxed);
        let ev = TraceEvent {
            seq,
            at_ms: self.clock.now_ms(),
            wall_ms: self.clock.wall_ms(),
            kind,
        };
        // lint: allow(lock, trace events are rate-limited control
        // moments — epoch edges, power-of-two shed totals — never the
        // per-tuple path) allow(panic, poisoned ring — see
        // register_source)
        let mut ring = self.trace.lock().expect("registry poisoned");
        if ring.len() == TRACE_RING_CAP {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    pub(crate) fn push_epoch(&self, stats: EpochStats) {
        // lint: allow(lock, once per reconfiguration epoch)
        // allow(panic, poisoned roster — see register_source)
        self.epochs.lock().expect("registry poisoned").push(stats);
    }

    pub(crate) fn finish(&self) {
        // ORDERING: Release pairs with `is_finished`'s Acquire — the
        // sampler that sees the flag also sees every final counter
        // value published before the control plane raised it, so its
        // last snapshot equals the ExecResult counts.
        self.finished.store(true, Ordering::Release);
    }

    pub(crate) fn is_finished(&self) -> bool {
        // ORDERING: Acquire half of the `finish` pairing above.
        self.finished.load(Ordering::Acquire)
    }

    /// Drain-free copy of the trace ring, oldest first.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        // lint: allow(lock, scrape-side read of the rate-limited
        // ring) allow(panic, poisoned ring — see register_source)
        self.trace
            .lock()
            .expect("registry poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Build a monotonic snapshot of every instrument. Each atomic is
    /// loaded individually (`Relaxed`) — writers are never blocked, and
    /// every counter is ≥ its value in any earlier snapshot (instrument
    /// lists are append-only; counters only grow). `matched` is summed
    /// over the per-shard instruments, so it is *live* — the run-wide
    /// [`Counters::matched`] only moves when a shard retires.
    pub fn snapshot(&self) -> MetricsSnapshot {
        // ORDERING: every load below is a statistical sample of a
        // monotone counter — see the monotonicity argument in the doc
        // comment; cross-counter skew within one snapshot is accepted.
        // lint: allow(lock, scrape-side walk of the roster mutexes —
        // registration and scrapes contend, tuples never do)
        // allow(panic, poisoned roster — see register_source)
        let now_ms = self.clock.now_ms();
        let shards: Vec<ShardSnapshot> = self
            .shards
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|s| {
                let sent_msgs = s.sent_msgs.load(Ordering::Relaxed);
                let sent_tuples = s.sent_tuples.load(Ordering::Relaxed);
                let recv_msgs = s.recv_msgs.load(Ordering::Relaxed);
                let recv_tuples = s.recv_tuples.load(Ordering::Relaxed);
                ShardSnapshot {
                    generation: s.generation,
                    instance: s.instance,
                    shard: s.shard,
                    pair: s.pair,
                    live: !s.retired.load(Ordering::Relaxed),
                    queued_msgs: sent_msgs.saturating_sub(recv_msgs),
                    queued_tuples: sent_tuples.saturating_sub(recv_tuples),
                    tuples_in: recv_tuples,
                    matched: s.matched.load(Ordering::Relaxed),
                    out_tuples: s.out_tuples.load(Ordering::Relaxed),
                }
            })
            .collect();
        let sources: Vec<SourceSnapshot> = self
            .sources
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|s| SourceSnapshot {
                source: s.index,
                node: s.node,
                emitted: s.emitted.load(Ordering::Relaxed),
            })
            .collect();
        let nodes: Vec<NodeSnapshot> = self
            .pacers
            .iter()
            .enumerate()
            .map(|(i, p)| NodeSnapshot {
                node: i,
                busy_ms: p.busy_ms(),
                backlog_ms: (p.busy_until_ms() - now_ms).max(0.0),
            })
            .collect();
        let matched = shards.iter().map(|s| s.matched).sum();
        let out_total: u64 = shards.iter().map(|s| s.out_tuples).sum();
        let sink_seen = self.sink.seen.load(Ordering::Relaxed);
        MetricsSnapshot {
            at_ms: now_ms,
            wall_ms: self.clock.wall_ms(),
            emitted: self.counters.emitted.load(Ordering::Relaxed),
            matched,
            delivered: self.sink.delivered.load(Ordering::Relaxed),
            dropped: self.counters.dropped.load(Ordering::Relaxed),
            sink_queued_tuples: out_total.saturating_sub(sink_seen),
            live_tasks: self
                .sched
                .lock()
                .expect("registry poisoned")
                .as_ref()
                .map(|s| s.live_tasks()),
            shards,
            sources,
            nodes,
            latency: self.latency.snapshot(),
            service: self.service.snapshot(),
            epochs: self.epochs.lock().expect("registry poisoned").clone(),
            trace_seq: self.trace_seq.load(Ordering::Relaxed),
        }
    }
}

/// Why a snapshot subscription was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubscribeError {
    /// `Duration::ZERO` sampling interval. The sampler's wait loop
    /// (`while waited < interval`) never sleeps at zero, so the thread
    /// would spin flat-out re-snapshotting for the entire run — reject
    /// instead of burning a core.
    ZeroInterval,
}

impl std::fmt::Display for SubscribeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubscribeError::ZeroInterval => write!(
                f,
                "subscription interval must be > 0 (a zero interval hot-spins the sampler)"
            ),
        }
    }
}

impl std::error::Error for SubscribeError {}

/// Spawn the subscription sampler: a detached thread that sends one
/// [`MetricsSnapshot`] per `interval`, plus a final snapshot (equal to
/// the [`ExecResult`] counts) once the run finishes; it exits when the
/// receiver is dropped. A zero interval is rejected (see
/// [`SubscribeError::ZeroInterval`]).
pub(crate) fn subscribe(
    registry: Arc<MetricsRegistry>,
    interval: Duration,
) -> Result<mpsc::Receiver<MetricsSnapshot>, SubscribeError> {
    if interval.is_zero() {
        return Err(SubscribeError::ZeroInterval);
    }
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || loop {
        // Sleep in short hops so the final snapshot lands promptly
        // after the run finishes, regardless of the interval.
        let hop = Duration::from_millis(10).min(interval);
        let mut waited = Duration::ZERO;
        while waited < interval && !registry.is_finished() {
            std::thread::sleep(hop);
            waited += hop;
        }
        let finished = registry.is_finished();
        if tx.send(registry.snapshot()).is_err() || finished {
            return;
        }
    });
    Ok(rx)
}

/// Per-shard view within a [`MetricsSnapshot`].
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Shard generation (0 at launch, +1 per reconfiguration).
    pub generation: u64,
    /// Join-instance index within the generation.
    pub instance: u32,
    /// Shard index within the instance.
    pub shard: u32,
    /// Sub-query pair id the instance executes.
    pub pair: u32,
    /// False once the shard retired (Eof or epoch quiesce).
    pub live: bool,
    /// Input-channel depth in batches (sent − received).
    pub queued_msgs: u64,
    /// Input-channel depth in tuples.
    pub queued_tuples: u64,
    /// Tuples the shard has dequeued so far.
    pub tuples_in: u64,
    /// Matches produced (post-selectivity), live.
    pub matched: u64,
    /// Output tuples flushed toward the sink.
    pub out_tuples: u64,
}

/// Per-source view within a [`MetricsSnapshot`].
#[derive(Debug, Clone)]
pub struct SourceSnapshot {
    /// Source index in the query.
    pub source: u32,
    /// Node the source is pinned to.
    pub node: usize,
    /// Tuples emitted so far.
    pub emitted: u64,
}

/// Per-node view within a [`MetricsSnapshot`].
#[derive(Debug, Clone)]
pub struct NodeSnapshot {
    /// Node index in the topology.
    pub node: usize,
    /// Accumulated service time (virtual ms).
    pub busy_ms: f64,
    /// Pacer backlog gauge: `busy_until − now`, clamped at 0.
    pub backlog_ms: f64,
}

/// A monotonically consistent view of a running (or finished) executor.
///
/// Counters never decrease between consecutive snapshots of the same
/// run, and the final snapshot's totals equal the [`ExecResult`]
/// counts. Gauges (`queued_*`, `backlog_ms`, `live_tasks`) are derived
/// from counter pairs at read time.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Virtual timestamp of the read (ms since launch).
    pub at_ms: f64,
    /// Wall-clock timestamp of the read (ms since launch).
    pub wall_ms: f64,
    /// Tuples emitted by all sources.
    pub emitted: u64,
    /// Join matches produced so far (live, summed over shards).
    pub matched: u64,
    /// Outputs delivered to the sink.
    pub delivered: u64,
    /// Tuples shed by bounded node queues.
    pub dropped: u64,
    /// Sink-channel depth in tuples (flushed − seen by the sink).
    pub sink_queued_tuples: u64,
    /// Live tasks in the async backend's scheduler (None elsewhere).
    pub live_tasks: Option<usize>,
    /// Per-shard instruments, all generations, spawn order.
    pub shards: Vec<ShardSnapshot>,
    /// Per-source instruments.
    pub sources: Vec<SourceSnapshot>,
    /// Per-node pacer gauges.
    pub nodes: Vec<NodeSnapshot>,
    /// End-to-end latency histogram (virtual ms) of delivered outputs.
    pub latency: HistogramSnapshot,
    /// Per-batch wall-clock service-time histogram of shard workers.
    pub service: HistogramSnapshot,
    /// Completed reconfiguration epochs so far.
    pub epochs: Vec<EpochStats>,
    /// Trace-event sequence number (events recorded so far).
    pub trace_seq: u64,
}

/// Format a float for export: fixed 3-decimal, non-finite → 0.
fn jnum(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "0".to_string()
    }
}

impl MetricsSnapshot {
    /// Degraded snapshot for runs with `telemetry: false`: only the
    /// run-wide counters (matched as published at shard retirement) and
    /// node gauges; per-shard/source vectors, histograms, and
    /// `delivered` are empty/zero.
    pub(crate) fn degraded(
        clock: &VirtualClock,
        counters: &Counters,
        pacers: &[NodePacer],
        epochs: &[EpochStats],
    ) -> Self {
        let now_ms = clock.now_ms();
        // ORDERING: same sampling contract as `snapshot` — monotone
        // counters read individually, skew accepted.
        MetricsSnapshot {
            at_ms: now_ms,
            wall_ms: clock.wall_ms(),
            emitted: counters.emitted.load(Ordering::Relaxed),
            matched: counters.matched.load(Ordering::Relaxed),
            delivered: 0,
            dropped: counters.dropped.load(Ordering::Relaxed),
            sink_queued_tuples: 0,
            live_tasks: None,
            shards: Vec::new(),
            sources: Vec::new(),
            nodes: pacers
                .iter()
                .enumerate()
                .map(|(i, p)| NodeSnapshot {
                    node: i,
                    busy_ms: p.busy_ms(),
                    backlog_ms: (p.busy_until_ms() - now_ms).max(0.0),
                })
                .collect(),
            latency: HistogramSnapshot::default(),
            service: HistogramSnapshot::default(),
            epochs: epochs.to_vec(),
            trace_seq: 0,
        }
    }

    /// Render as one JSON object on a single line (JSON-lines record).
    /// Hand-rolled — the workspace deliberately has no serde dependency.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push('{');
        s.push_str(&format!(
            "\"at_ms\":{},\"wall_ms\":{},\"emitted\":{},\"matched\":{},\"delivered\":{},\"dropped\":{},\"sink_queued_tuples\":{}",
            jnum(self.at_ms),
            jnum(self.wall_ms),
            self.emitted,
            self.matched,
            self.delivered,
            self.dropped,
            self.sink_queued_tuples,
        ));
        match self.live_tasks {
            Some(n) => s.push_str(&format!(",\"live_tasks\":{n}")),
            None => s.push_str(",\"live_tasks\":null"),
        }
        s.push_str(&format!(
            ",\"latency_p50_ms\":{},\"latency_p99_ms\":{},\"latency_count\":{}",
            jnum(self.latency.quantile(0.50)),
            jnum(self.latency.quantile(0.99)),
            self.latency.count(),
        ));
        s.push_str(&format!(
            ",\"service_p50_ms\":{},\"service_p99_ms\":{},\"service_count\":{}",
            jnum(self.service.quantile(0.50)),
            jnum(self.service.quantile(0.99)),
            self.service.count(),
        ));
        s.push_str(&format!(
            ",\"epochs\":{},\"trace_seq\":{}",
            self.epochs.len(),
            self.trace_seq
        ));
        s.push_str(",\"shards\":[");
        for (i, sh) in self.shards.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"gen\":{},\"inst\":{},\"shard\":{},\"pair\":{},\"live\":{},\"queued_msgs\":{},\"queued_tuples\":{},\"tuples_in\":{},\"matched\":{},\"out_tuples\":{}}}",
                sh.generation,
                sh.instance,
                sh.shard,
                sh.pair,
                sh.live,
                sh.queued_msgs,
                sh.queued_tuples,
                sh.tuples_in,
                sh.matched,
                sh.out_tuples,
            ));
        }
        s.push_str("],\"sources\":[");
        for (i, src) in self.sources.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"source\":{},\"node\":{},\"emitted\":{}}}",
                src.source, src.node, src.emitted
            ));
        }
        s.push_str("],\"nodes\":[");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"node\":{},\"busy_ms\":{},\"backlog_ms\":{}}}",
                n.node,
                jnum(n.busy_ms),
                jnum(n.backlog_ms)
            ));
        }
        s.push_str("]}");
        s
    }

    /// Render in the Prometheus text exposition format (hand-rolled,
    /// counters as `_total`, histograms with cumulative `le` buckets).
    pub fn to_prometheus(&self) -> String {
        let mut s = String::with_capacity(2048);
        for (name, v) in [
            ("nova_emitted_total", self.emitted),
            ("nova_matched_total", self.matched),
            ("nova_delivered_total", self.delivered),
            ("nova_dropped_total", self.dropped),
        ] {
            s.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        s.push_str("# TYPE nova_sink_queue_depth_tuples gauge\n");
        s.push_str(&format!(
            "nova_sink_queue_depth_tuples {}\n",
            self.sink_queued_tuples
        ));
        if let Some(n) = self.live_tasks {
            s.push_str("# TYPE nova_sched_live_tasks gauge\n");
            s.push_str(&format!("nova_sched_live_tasks {n}\n"));
        }
        s.push_str("# TYPE nova_source_emitted_total counter\n");
        for src in &self.sources {
            s.push_str(&format!(
                "nova_source_emitted_total{{source=\"{}\",node=\"{}\"}} {}\n",
                src.source, src.node, src.emitted
            ));
        }
        for (name, kind, get) in [
            (
                "nova_shard_tuples_in_total",
                "counter",
                (|sh: &ShardSnapshot| sh.tuples_in) as fn(&ShardSnapshot) -> u64,
            ),
            ("nova_shard_matched_total", "counter", |sh| sh.matched),
            ("nova_shard_out_tuples_total", "counter", |sh| sh.out_tuples),
            ("nova_shard_queue_depth_msgs", "gauge", |sh| sh.queued_msgs),
            ("nova_shard_queue_depth_tuples", "gauge", |sh| {
                sh.queued_tuples
            }),
            ("nova_shard_live", "gauge", |sh| sh.live as u64),
        ] {
            s.push_str(&format!("# TYPE {name} {kind}\n"));
            for sh in &self.shards {
                s.push_str(&format!(
                    "{name}{{generation=\"{}\",instance=\"{}\",shard=\"{}\",pair=\"{}\"}} {}\n",
                    sh.generation,
                    sh.instance,
                    sh.shard,
                    sh.pair,
                    get(sh)
                ));
            }
        }
        s.push_str("# TYPE nova_node_busy_ms_total counter\n");
        for n in &self.nodes {
            s.push_str(&format!(
                "nova_node_busy_ms_total{{node=\"{}\"}} {}\n",
                n.node,
                jnum(n.busy_ms)
            ));
        }
        s.push_str("# TYPE nova_node_backlog_ms gauge\n");
        for n in &self.nodes {
            s.push_str(&format!(
                "nova_node_backlog_ms{{node=\"{}\"}} {}\n",
                n.node,
                jnum(n.backlog_ms)
            ));
        }
        for (name, h) in [
            ("nova_latency_ms", &self.latency),
            ("nova_service_ms", &self.service),
        ] {
            s.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cum = 0u64;
            let last_nonzero = h.counts.iter().rposition(|&c| c > 0).unwrap_or(0);
            for (i, c) in h.counts.iter().enumerate().take(last_nonzero + 1) {
                cum += c;
                s.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {cum}\n",
                    jnum(HistogramSnapshot::bucket_upper_ms(i))
                ));
            }
            s.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
            s.push_str(&format!("{name}_sum {}\n", jnum(h.sum_ms)));
            s.push_str(&format!("{name}_count {}\n", h.count()));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pacer_charges_service_time_sequentially() {
        let p = NodePacer::new(1000.0, 250.0); // 1 ms/tuple
        assert_eq!(p.serve(0.0), Some(1.0));
        assert_eq!(p.serve(0.0), Some(2.0));
        // Work arriving later starts when it arrives.
        assert_eq!(p.serve(10.0), Some(11.0));
        assert!((p.busy_ms() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pacer_sheds_beyond_queue_cap() {
        let p = NodePacer::new(1000.0, 5.0);
        for _ in 0..6 {
            assert!(p.serve(0.0).is_some());
        }
        // Backlog is now 6 ms > 5 ms cap: shed.
        assert!(p.serve(0.0).is_none());
        // But work arriving once the queue drained is accepted.
        assert!(p.serve(100.0).is_some());
    }

    #[test]
    fn capacity_updates_apply_to_new_reservations_only() {
        let p = NodePacer::new(1000.0, f64::INFINITY); // 1 ms/tuple
        assert_eq!(p.serve(0.0), Some(1.0));
        p.set_capacity(100.0); // 10 ms/tuple from now on
        assert_eq!(p.serve(0.0), Some(11.0), "old backlog keeps its end");
        assert!((p.busy_ms() - 11.0).abs() < 1e-12);
        p.set_capacity(0.0); // pure relay
        assert_eq!(p.serve(50.0), Some(50.0));
    }

    #[test]
    fn zero_capacity_is_a_free_relay() {
        let p = NodePacer::new(0.0, 5.0);
        assert_eq!(p.serve(7.5), Some(7.5));
        assert_eq!(p.busy_ms(), 0.0);
    }

    #[test]
    fn pacer_is_safe_under_concurrent_reservations() {
        use std::sync::Arc;
        let p = Arc::new(NodePacer::new(100_000.0, f64::INFINITY));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        p.serve(0.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // 40 000 reservations × 0.01 ms each, none lost (up to float
        // accumulation error across 40 000 additions).
        assert!((p.busy_ms() - 400.0).abs() < 1e-6, "busy {}", p.busy_ms());
        let busy_until = f64::from_bits(p.busy_until.load(Ordering::Relaxed));
        assert!((busy_until - 400.0).abs() < 1e-6, "busy_until {busy_until}");
    }

    fn result_with(delivered: u64, busy: Vec<f64>) -> ExecResult {
        ExecResult {
            outputs: Vec::new(),
            emitted: 0,
            matched: 0,
            delivered,
            node_busy_ms: busy,
            dropped: 0,
            wall_ms: 0.0,
            threads: 0,
            epochs: Vec::new(),
        }
    }

    #[test]
    fn throughput_guards_nonpositive_duration() {
        let r = result_with(100, vec![]);
        assert_eq!(r.throughput_per_s(0.0), 0.0);
        assert_eq!(r.throughput_per_s(-5.0), 0.0);
        assert!(r.throughput_per_s(0.0).is_finite());
        assert_eq!(r.throughput_per_s(1000.0), 100.0);
    }

    #[test]
    fn utilization_guards_nonpositive_duration() {
        let r = result_with(0, vec![50.0]);
        let n = NodeId(0);
        assert_eq!(r.utilization(n, 0.0), 0.0);
        assert_eq!(r.utilization(n, -1.0), 0.0);
        assert!(!r.utilization(n, 0.0).is_nan());
        assert!((r.utilization(n, 100.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_buckets_and_quantiles() {
        let h = LogHistogram::new();
        assert_eq!(h.snapshot().quantile(0.99), 0.0, "empty histogram");
        // 0.001 ms = 1 µs → bucket 0; 1 ms = 1000 µs → bucket 9
        // ([512, 1024)); 10 ms → bucket 13 ([8192, 16384) µs).
        h.record_ms(0.001);
        h.record_ms(1.0);
        h.record_ms(10.0);
        let s = h.snapshot();
        assert_eq!(s.count(), 3);
        assert_eq!(s.counts[0], 1);
        assert_eq!(s.counts[9], 1);
        assert_eq!(s.counts[13], 1);
        assert!((s.sum_ms - 11.001).abs() < 1e-9);
        // p50 lands in the middle bucket, p99 in the top one; both are
        // the bucket's upper bound.
        assert_eq!(s.quantile(0.5), HistogramSnapshot::bucket_upper_ms(9));
        assert_eq!(s.quantile(0.99), HistogramSnapshot::bucket_upper_ms(13));
        // Out-of-range values are clamped, not lost.
        h.record_ms(f64::INFINITY);
        h.record_ms(-3.0);
        assert_eq!(h.snapshot().count(), 5);
    }

    #[test]
    fn exporters_render_without_panicking() {
        let clock = VirtualClock::start(1000.0);
        let counters = Arc::new(Counters::default());
        let pacers = Arc::new(vec![NodePacer::new(100.0, 250.0)]);
        let reg = MetricsRegistry::new(clock, counters, pacers);
        reg.register_source(0, 0);
        reg.trace(TraceKind::GenerationSpawn {
            generation: 0,
            shard_workers: 2,
        });
        let snap = reg.snapshot();
        let json = snap.to_json_line();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(!json.contains('\n'), "JSON-lines record must be one line");
        assert!(json.contains("\"emitted\":0"));
        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE nova_emitted_total counter"));
        assert!(prom.contains("nova_latency_ms_bucket{le=\"+Inf\"} 0"));
        assert_eq!(reg.trace_events().len(), 1);
    }

    #[test]
    fn shed_traces_sample_power_of_two_totals() {
        let clock = VirtualClock::start(1000.0);
        let counters = Arc::new(Counters::default());
        let pacers = Arc::new(Vec::new());
        let reg = MetricsRegistry::new(clock, Arc::clone(&counters), pacers);
        for _ in 0..100 {
            count_drop(&counters, Some(&reg));
        }
        // Totals 1, 2, 4, 8, 16, 32, 64 → 7 events for 100 drops.
        assert_eq!(reg.trace_events().len(), 7);
        assert_eq!(counters.dropped.load(Ordering::Relaxed), 100);
    }
}
