//! Bounded MPSC links between workers.
//!
//! Channels are the executor's network links: every join instance and
//! the sink own one bounded multi-producer single-consumer channel, and
//! every upstream worker holds a cloned sender. Sends *block* when the
//! receiver's buffer is full — backpressure propagates upstream exactly
//! as a full TCP window would — while latency-model load shedding is
//! handled separately by the [`crate::metrics::NodePacer`]s. Tuples
//! travel in batches to amortize per-message synchronization, which is
//! what lets a single box push >10⁶ tuples/s through the executor.

use std::sync::mpsc::{sync_channel, Receiver as MpscReceiver, SyncSender, TrySendError};

use nova_runtime::{OutputTuple, Tuple};

/// An input tuple in flight to a join instance.
#[derive(Debug, Clone, Copy)]
pub struct InFlight {
    /// The routed tuple.
    pub tuple: Tuple,
    /// Virtual time at which the tuple has cleared every relay hop and
    /// the instance node's ingest service slot.
    pub deliver_at: f64,
}

/// A join output in flight to the sink.
#[derive(Debug, Clone, Copy)]
pub struct OutFlight {
    /// The join result.
    pub out: OutputTuple,
    /// Virtual time at which the output reaches the sink node (before
    /// the sink's own service slot).
    pub deliver_at: f64,
}

/// Message on a source → join-instance channel.
#[derive(Debug)]
pub enum JoinMsg {
    /// A batch of tuples from one source task.
    Batch {
        /// Index of the producing source task.
        source: u32,
        /// The tuples, in emission order.
        tuples: Vec<InFlight>,
    },
    /// The source has emitted its last tuple.
    Eof {
        /// Index of the finished source task.
        source: u32,
    },
}

/// Message on a join-instance → sink channel.
#[derive(Debug)]
pub enum SinkMsg {
    /// A batch of join outputs from one instance.
    Batch {
        /// Index of the producing join instance.
        instance: u32,
        /// The outputs, in production order.
        outputs: Vec<OutFlight>,
    },
    /// The instance has produced its last output.
    Eof {
        /// Index of the finished instance.
        instance: u32,
    },
}

/// Sending half of a bounded link. Cloneable (multi-producer).
#[derive(Debug)]
pub struct Sender<T> {
    inner: SyncSender<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            inner: self.inner.clone(),
        }
    }
}

/// Receiving half of a bounded link.
#[derive(Debug)]
pub struct Receiver<T> {
    inner: MpscReceiver<T>,
}

/// Create a bounded link buffering at most `capacity` messages.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = sync_channel(capacity.max(1));
    (Sender { inner: tx }, Receiver { inner: rx })
}

impl<T> Sender<T> {
    /// Blocking send; `Err` when the receiver is gone (its worker
    /// finished or panicked), which senders treat as end-of-run.
    pub fn send(&self, msg: T) -> Result<(), Closed> {
        self.inner.send(msg).map_err(|_| Closed)
    }

    /// Non-blocking send: `Ok(true)` if accepted, `Ok(false)` if the
    /// buffer is full, `Err` when the receiver is gone.
    pub fn try_send(&self, msg: T) -> Result<bool, Closed> {
        match self.inner.try_send(msg) {
            Ok(()) => Ok(true),
            Err(TrySendError::Full(_)) => Ok(false),
            Err(TrySendError::Disconnected(_)) => Err(Closed),
        }
    }
}

impl<T> Receiver<T> {
    /// Blocking receive; `None` once every sender is dropped and the
    /// buffer is drained.
    pub fn recv(&self) -> Option<T> {
        self.inner.recv().ok()
    }
}

/// The other side of a link hung up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Closed;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_arrive_in_order_per_producer() {
        let (tx, rx) = bounded::<u32>(4);
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx2.send(i).unwrap();
            }
        });
        let mut last = None;
        let mut count = 0;
        drop(tx);
        while let Some(v) = rx.recv() {
            if let Some(prev) = last {
                assert!(v > prev, "FIFO violated: {v} after {prev}");
            }
            last = Some(v);
            count += 1;
        }
        h.join().unwrap();
        assert_eq!(count, 100);
    }

    #[test]
    fn recv_ends_when_all_senders_drop() {
        let (tx, rx) = bounded::<u8>(2);
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(1).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn try_send_reports_full_buffers() {
        let (tx, _rx) = bounded::<u8>(1);
        assert_eq!(tx.try_send(1), Ok(true));
        assert_eq!(tx.try_send(2), Ok(false));
    }
}
