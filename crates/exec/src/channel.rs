//! Bounded MPSC links between workers.
//!
//! Channels are the executor's network links: every join instance and
//! the sink own one bounded multi-producer single-consumer channel, and
//! every upstream worker holds a cloned sender. Sends *block* when the
//! receiver's buffer is full — backpressure propagates upstream exactly
//! as a full TCP window would — while latency-model load shedding is
//! handled separately by the [`crate::metrics::NodePacer`]s. Tuples
//! travel in batches to amortize per-message synchronization, which is
//! what lets a single box push >10⁶ tuples/s through the executor.
//!
//! Two families share the message types and the batching discipline:
//!
//! * [`bounded`] — the classic link over [`std::sync::mpsc`]: both
//!   endpoints block (a full buffer parks the sender's OS thread, an
//!   empty one parks the receiver's). Used by the thread-per-shard
//!   backends, where every endpoint owns a whole thread it may park.
//! * [`poll_bounded`] — the event-loop link for [`crate::AsyncBackend`]:
//!   the same bounded FIFO, but each endpoint exists in a blocking *and*
//!   a non-blocking flavour. Cooperative shard tasks use
//!   [`PollReceiver::try_recv`] / [`PollSender::try_send`], which never
//!   park — on Empty/Full they register the task's
//!   [`Waker`] **inside the channel's critical
//!   section** (so the state re-check and the registration are atomic —
//!   no lost wake-ups) and return immediately. OS-thread peers (source
//!   tasks, the sink) keep the blocking [`PollSender::send`] /
//!   [`PollReceiver::recv`], so backpressure on sources is still a real
//!   park, and every state transition wakes whichever flavour of peer
//!   is waiting.
//!
//! ## Observability
//!
//! Neither family exposes its buffer occupancy — [`std::sync::mpsc`]
//! hides its queue entirely, and reaching into `poll_bounded`'s mutex
//! from a sampler would add contention to the hot path. The telemetry
//! plane therefore observes queue depth from the *endpoints* instead:
//! senders and receivers bump per-channel monotonic counters
//! (messages/tuples sent, messages/tuples received) in their
//! pre-resolved [`crate::metrics::MetricsRegistry`] instruments, and a
//! snapshot derives depth as `sent − received` (saturating — the two
//! counters are read at slightly different instants). The channel code
//! itself stays instrument-free: batching already bounds the counter
//! update rate to once per batch, and a depth gauge derived from two
//! Relaxed counters is exactly as fresh as one read from inside the
//! lock would be by the time the sampler publishes it.

use std::collections::VecDeque;
use std::sync::mpsc::{sync_channel, Receiver as MpscReceiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};

use nova_runtime::{OutputTuple, Tuple};

use crate::sched::Waker;

/// An input tuple in flight to a join instance.
#[derive(Debug, Clone, Copy)]
pub struct InFlight {
    /// The routed tuple.
    pub tuple: Tuple,
    /// Virtual time at which the tuple has cleared every relay hop and
    /// the instance node's ingest service slot.
    pub deliver_at: f64,
}

/// A join output in flight to the sink.
#[derive(Debug, Clone, Copy)]
pub struct OutFlight {
    /// The join result.
    pub out: OutputTuple,
    /// Virtual time at which the output reaches the sink node (before
    /// the sink's own service slot).
    pub deliver_at: f64,
}

/// A fixed-size batch of in-flight tuples — the unit every source →
/// join-instance channel actually carries. Sources accumulate one
/// `TupleBatch` per downstream shard on the emission grid and flush it
/// when it reaches `ExecConfig::batch_size` (or at a pacing stall,
/// barrier, or Eof, so a partial batch is never stranded). The batch
/// carries its own event-time frontier, maintained incrementally on
/// [`TupleBatch::push`], so the receiving `crate::join::JoinCore`
/// advances watermarks without re-scanning the tuples.
#[derive(Debug)]
pub struct TupleBatch {
    /// Index of the producing source task.
    source: u32,
    /// The tuples, in emission order.
    tuples: Vec<InFlight>,
    /// Max event time over `tuples` (−∞ when empty).
    frontier: f64,
}

impl TupleBatch {
    /// Empty batch from `source`, with room for `capacity` tuples.
    pub fn with_capacity(source: u32, capacity: usize) -> Self {
        TupleBatch {
            source,
            tuples: Vec::with_capacity(capacity),
            frontier: f64::NEG_INFINITY,
        }
    }

    /// Append one tuple, folding its event time into the frontier.
    pub fn push(&mut self, t: InFlight) {
        self.frontier = self.frontier.max(t.tuple.event_time);
        self.tuples.push(t);
    }

    /// Number of tuples in the batch.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the batch holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples, in emission order.
    pub fn tuples(&self) -> &[InFlight] {
        &self.tuples
    }

    /// Index of the producing source task.
    pub fn source(&self) -> u32 {
        self.source
    }

    /// Max event time over the batch (−∞ when empty).
    pub fn frontier(&self) -> f64 {
        self.frontier
    }
}

/// Message on a source → join-instance channel.
#[derive(Debug)]
pub enum JoinMsg {
    /// A batch of tuples from one source task.
    Batch(TupleBatch),
    /// The source has emitted its last tuple.
    Eof {
        /// Index of the finished source task.
        source: u32,
    },
    /// Epoch barrier (live reconfiguration): the source has emitted its
    /// last *pre-epoch* tuple on this channel. FIFO order makes the
    /// barrier a watertight separator — everything this source sent
    /// before the epoch precedes it. A shard that has collected a
    /// barrier or Eof from every producer has seen its complete
    /// pre-epoch input and quiesces (exports state, retires).
    Barrier {
        /// Index of the barriering source task.
        source: u32,
        /// Reconfiguration epoch this barrier belongs to.
        epoch: u64,
        /// True when the source had already emitted past the epoch by
        /// the time the arm reached it (the pre/post split then falls
        /// at the source's actual position, not at the epoch — counts
        /// stay exact but no longer mirror a replay at the epoch).
        late: bool,
    },
}

/// Message on a join-instance → sink channel.
#[derive(Debug)]
pub enum SinkMsg {
    /// A batch of join outputs from one instance.
    Batch {
        /// Index of the producing join instance.
        instance: u32,
        /// The outputs, in production order.
        outputs: Vec<OutFlight>,
    },
    /// The instance has produced its last output.
    Eof {
        /// Index of the finished instance.
        instance: u32,
    },
    /// Live reconfiguration: a new generation of shard workers replaces
    /// the old one. Sent by the control plane *after* every old shard
    /// quiesced (so all old-generation batches precede it) and *before*
    /// the new generation can produce, so the sink's accounting flips
    /// exactly at the epoch.
    Epoch {
        /// Eof quorum of the new generation (its shard-worker count);
        /// the sink's Eof counter restarts at zero.
        producers: usize,
        /// Per-instance "charge the sink's service slot" table of the
        /// new plan (old shards never retire via Eof, so indices in
        /// later batches always refer to the new plan's instances).
        charge_sink: Vec<bool>,
    },
}

/// Sending half of a bounded link. Cloneable (multi-producer).
#[derive(Debug)]
pub struct Sender<T> {
    inner: SyncSender<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            inner: self.inner.clone(),
        }
    }
}

/// Receiving half of a bounded link.
#[derive(Debug)]
pub struct Receiver<T> {
    inner: MpscReceiver<T>,
}

/// Create a bounded link buffering at most `capacity` messages.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = sync_channel(capacity.max(1));
    (Sender { inner: tx }, Receiver { inner: rx })
}

impl<T> Sender<T> {
    /// Blocking send; `Err` when the receiver is gone (its worker
    /// finished or panicked), which senders treat as end-of-run.
    pub fn send(&self, msg: T) -> Result<(), Closed> {
        self.inner.send(msg).map_err(|_| Closed)
    }

    /// Non-blocking send: `Ok(true)` if accepted, `Ok(false)` if the
    /// buffer is full, `Err` when the receiver is gone.
    pub fn try_send(&self, msg: T) -> Result<bool, Closed> {
        match self.inner.try_send(msg) {
            Ok(()) => Ok(true),
            Err(TrySendError::Full(_)) => Ok(false),
            Err(TrySendError::Disconnected(_)) => Err(Closed),
        }
    }
}

impl<T> Receiver<T> {
    /// Blocking receive; `None` once every sender is dropped and the
    /// buffer is drained.
    pub fn recv(&self) -> Option<T> {
        self.inner.recv().ok()
    }
}

/// The other side of a link hung up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Closed;

/// Sending a message, abstracted over the channel family — what
/// [`crate::worker::run_source`] needs from its downstream links. The
/// blocking semantics are identical for both implementations: the call
/// parks the calling OS thread while the buffer is full.
pub(crate) trait MsgSender<T> {
    /// Blocking send; `Err` when the receiving worker is gone.
    fn send_msg(&self, msg: T) -> Result<(), Closed>;
}

impl<T> MsgSender<T> for Sender<T> {
    fn send_msg(&self, msg: T) -> Result<(), Closed> {
        self.send(msg)
    }
}

/// The batch lane: shipping a whole [`TupleBatch`] downstream in one
/// channel operation. Blanket-implemented over every
/// [`MsgSender<JoinMsg>`], so the blocking ([`bounded`]) and
/// poll-bounded families share one batch framing — a source flushes
/// identically whichever backend sits downstream.
pub(crate) trait BatchLane {
    /// Blocking batch send; `Err` when the receiving worker is gone.
    fn send_batch(&self, batch: TupleBatch) -> Result<(), Closed>;
}

impl<S: MsgSender<JoinMsg>> BatchLane for S {
    fn send_batch(&self, batch: TupleBatch) -> Result<(), Closed> {
        self.send_msg(JoinMsg::Batch(batch))
    }
}

/// Receiving a message, abstracted over the channel family — what
/// [`crate::worker::run_sink`] needs from its inbound link.
pub(crate) trait MsgReceiver<T> {
    /// Blocking receive; `None` once every sender hung up and the
    /// buffer is drained.
    fn recv_msg(&self) -> Option<T>;
}

impl<T> MsgReceiver<T> for Receiver<T> {
    fn recv_msg(&self) -> Option<T> {
        self.recv()
    }
}

// ---------------------------------------------------------------------
// Poll-based bounded links (the async backend's channels)
// ---------------------------------------------------------------------

/// Outcome of a non-blocking [`PollSender::try_send`].
#[derive(Debug)]
pub enum PollSend<T> {
    /// Accepted into the buffer.
    Sent,
    /// Buffer full: the message is handed back and the caller's waker
    /// is registered — it fires as soon as capacity frees up.
    Full(T),
    /// The receiver is gone; senders treat this as end-of-run.
    Closed(T),
}

/// Outcome of a non-blocking [`PollReceiver::try_recv`].
#[derive(Debug)]
pub enum PollRecv<T> {
    /// Next message, FIFO.
    Item(T),
    /// Buffer empty: the caller's waker is registered — it fires on the
    /// next send (or when the last sender hangs up).
    Empty,
    /// Every sender hung up and the buffer is drained.
    Closed,
}

struct PollState<T> {
    items: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receiver_alive: bool,
    /// The cooperative receiver parked on Empty (at most one: MPSC).
    recv_waker: Option<Waker>,
    /// Cooperative senders parked on Full.
    send_wakers: Vec<Waker>,
}

struct PollChan<T> {
    state: Mutex<PollState<T>>,
    /// Parks *blocking* peers only (OS threads); cooperative peers park
    /// in the scheduler via their wakers instead.
    cv: Condvar,
}

impl<T> PollChan<T> {
    /// Wake everything waiting for "buffer no longer full".
    fn notify_space(&self, state: &mut PollState<T>) {
        for w in state.send_wakers.drain(..) {
            w.wake();
        }
        self.cv.notify_all();
    }

    /// Wake everything waiting for "buffer no longer empty" (or for a
    /// closure, which uses the same parking spots).
    fn notify_data(&self, state: &mut PollState<T>) {
        if let Some(w) = state.recv_waker.take() {
            w.wake();
        }
        self.cv.notify_all();
    }
}

/// Sending half of a poll-based link. Cloneable (multi-producer); both
/// blocking ([`PollSender::send`], for OS-thread producers) and
/// non-blocking ([`PollSender::try_send`], for cooperative tasks).
#[derive(Debug)]
pub struct PollSender<T> {
    chan: Arc<PollChan<T>>,
}

/// Receiving half of a poll-based link; both blocking
/// ([`PollReceiver::recv`], for OS-thread consumers) and non-blocking
/// ([`PollReceiver::try_recv`], for cooperative tasks).
#[derive(Debug)]
pub struct PollReceiver<T> {
    chan: Arc<PollChan<T>>,
}

impl<T> std::fmt::Debug for PollChan<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PollChan { .. }")
    }
}

/// Create a poll-based bounded link buffering at most `capacity`
/// messages — the [`crate::AsyncBackend`] counterpart of [`bounded`].
pub fn poll_bounded<T>(capacity: usize) -> (PollSender<T>, PollReceiver<T>) {
    // lint: allow(lock, the poll family IS a lock: waker registration
    // must be atomic with the buffer check (DESIGN.md §5), so the state
    // lives under one Mutex and blocking peers park on the Condvar)
    let chan = Arc::new(PollChan {
        state: Mutex::new(PollState {
            items: VecDeque::new(),
            capacity: capacity.max(1),
            senders: 1,
            receiver_alive: true,
            recv_waker: None,
            send_wakers: Vec::new(),
        }),
        cv: Condvar::new(),
    });
    (
        PollSender {
            chan: Arc::clone(&chan),
        },
        PollReceiver { chan },
    )
}

impl<T> Clone for PollSender<T> {
    fn clone(&self) -> Self {
        // lint: allow(lock, sender bookkeeping happens at wiring time,
        // not per message) allow(panic, poisoned means a peer panicked
        // mid-send — propagating the crash is the correct response)
        self.chan.state.lock().expect("channel poisoned").senders += 1;
        PollSender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for PollSender<T> {
    fn drop(&mut self) {
        // lint: allow(lock, hang-up is once per endpoint, off the data
        // path) allow(panic, poisoned channel during teardown — the
        // process is already crashing)
        let mut state = self.chan.state.lock().expect("channel poisoned");
        state.senders -= 1;
        if state.senders == 0 {
            // The receiver must observe the closure even with an empty
            // buffer.
            self.chan.notify_data(&mut state);
        }
    }
}

impl<T> Drop for PollReceiver<T> {
    fn drop(&mut self) {
        // lint: allow(lock, hang-up is once per endpoint, off the data
        // path) allow(panic, poisoned channel during teardown — the
        // process is already crashing)
        let mut state = self.chan.state.lock().expect("channel poisoned");
        state.receiver_alive = false;
        // Senders parked on a full buffer must observe the hang-up.
        self.chan.notify_space(&mut state);
    }
}

impl<T> PollSender<T> {
    /// Blocking send (for OS-thread producers): parks while the buffer
    /// is full; `Err` when the receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), Closed> {
        // lint: allow(lock, blocking send exists for OS-thread peers —
        // backpressure parks them here by design; cooperative tasks
        // use try_send) allow(panic, poisoned means a peer panicked
        // holding the state — propagate, never limp on half a channel)
        let mut state = self.chan.state.lock().expect("channel poisoned");
        loop {
            if !state.receiver_alive {
                return Err(Closed);
            }
            if state.items.len() < state.capacity {
                state.items.push_back(msg);
                self.chan.notify_data(&mut state);
                return Ok(());
            }
            state = self.chan.cv.wait(state).expect("channel poisoned");
        }
    }

    /// Non-blocking send (for cooperative tasks): on a full buffer the
    /// message comes back and `waker` is registered *in the same
    /// critical section* — any pop after this call fires it, so the
    /// caller can safely park.
    pub fn try_send(&self, msg: T, waker: &Waker) -> PollSend<T> {
        // lint: allow(lock, the critical section is what makes waker
        // registration race-free with the consumer's pop — see the
        // lost-wake argument in DESIGN.md §5) allow(panic, poisoned
        // means a peer panicked holding the state — propagate)
        let mut state = self.chan.state.lock().expect("channel poisoned");
        if !state.receiver_alive {
            return PollSend::Closed(msg);
        }
        if state.items.len() < state.capacity {
            state.items.push_back(msg);
            self.chan.notify_data(&mut state);
            PollSend::Sent
        } else {
            state.send_wakers.push(waker.clone());
            PollSend::Full(msg)
        }
    }
}

impl<T> PollReceiver<T> {
    /// Blocking receive (for OS-thread consumers): parks while the
    /// buffer is empty; `None` once every sender hung up and the buffer
    /// is drained.
    pub fn recv(&self) -> Option<T> {
        // lint: allow(lock, blocking recv exists for OS-thread peers —
        // an empty buffer parks them here by design; cooperative tasks
        // use try_recv) allow(panic, poisoned means a peer panicked
        // holding the state — propagate, never limp on half a channel)
        let mut state = self.chan.state.lock().expect("channel poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                self.chan.notify_space(&mut state);
                return Some(item);
            }
            if state.senders == 0 {
                return None;
            }
            state = self.chan.cv.wait(state).expect("channel poisoned");
        }
    }

    /// Non-blocking receive (for cooperative tasks): on an empty buffer
    /// `waker` is registered in the same critical section — any push
    /// (or final hang-up) after this call fires it, so the caller can
    /// safely park.
    pub fn try_recv(&self, waker: &Waker) -> PollRecv<T> {
        // lint: allow(lock, the critical section is what makes waker
        // registration race-free with a producer's push — see the
        // lost-wake argument in DESIGN.md §5) allow(panic, poisoned
        // means a peer panicked holding the state — propagate)
        let mut state = self.chan.state.lock().expect("channel poisoned");
        if let Some(item) = state.items.pop_front() {
            self.chan.notify_space(&mut state);
            return PollRecv::Item(item);
        }
        if state.senders == 0 {
            return PollRecv::Closed;
        }
        state.recv_waker = Some(waker.clone());
        PollRecv::Empty
    }
}

impl<T> MsgSender<T> for PollSender<T> {
    fn send_msg(&self, msg: T) -> Result<(), Closed> {
        self.send(msg)
    }
}

impl<T> MsgReceiver<T> for PollReceiver<T> {
    fn recv_msg(&self) -> Option<T> {
        self.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_arrive_in_order_per_producer() {
        let (tx, rx) = bounded::<u32>(4);
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx2.send(i).unwrap();
            }
        });
        let mut last = None;
        let mut count = 0;
        drop(tx);
        while let Some(v) = rx.recv() {
            if let Some(prev) = last {
                assert!(v > prev, "FIFO violated: {v} after {prev}");
            }
            last = Some(v);
            count += 1;
        }
        h.join().unwrap();
        assert_eq!(count, 100);
    }

    #[test]
    fn recv_ends_when_all_senders_drop() {
        let (tx, rx) = bounded::<u8>(2);
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(1).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn try_send_reports_full_buffers() {
        let (tx, _rx) = bounded::<u8>(1);
        assert_eq!(tx.try_send(1), Ok(true));
        assert_eq!(tx.try_send(2), Ok(false));
    }

    use crate::sched::{Poll, Scheduler};

    #[test]
    fn poll_try_recv_registers_waker_and_push_fires_it() {
        let sched = Scheduler::new(1);
        let task = sched.next().unwrap();
        let waker = sched.waker(task);
        let (tx, rx) = poll_bounded::<u8>(4);
        // Empty: registers the waker...
        assert!(matches!(rx.try_recv(&waker), PollRecv::Empty));
        sched.complete(task, Poll::Pending); // task parks
                                             // ...and a blocking push from an "OS thread" wakes the task.
        tx.send(7).unwrap();
        assert_eq!(sched.next(), Some(task));
        assert!(matches!(rx.try_recv(&waker), PollRecv::Item(7)));
        // Last sender hanging up also wakes a parked receiver.
        assert!(matches!(rx.try_recv(&waker), PollRecv::Empty));
        sched.complete(task, Poll::Pending);
        drop(tx);
        assert_eq!(sched.next(), Some(task));
        assert!(matches!(rx.try_recv(&waker), PollRecv::Closed));
    }

    #[test]
    fn poll_try_send_hands_message_back_and_pop_frees_capacity() {
        let sched = Scheduler::new(1);
        let task = sched.next().unwrap();
        let waker = sched.waker(task);
        let (tx, rx) = poll_bounded::<u8>(1);
        assert!(matches!(tx.try_send(1, &waker), PollSend::Sent));
        // Full: the message comes back and the waker is registered...
        let PollSend::Full(msg) = tx.try_send(2, &waker) else {
            panic!("second send must report Full");
        };
        sched.complete(task, Poll::Pending);
        // ...and a blocking pop fires it.
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(sched.next(), Some(task));
        assert!(matches!(tx.try_send(msg, &waker), PollSend::Sent));
        // Receiver hang-up is reported, message handed back.
        drop(rx);
        assert!(matches!(tx.try_send(9, &waker), PollSend::Closed(9)));
    }

    fn inflight(seq: u64, event_time: f64) -> InFlight {
        use nova_core::{PairId, Side};
        InFlight {
            tuple: Tuple {
                pair: PairId(0),
                side: Side::Left,
                partition: 0,
                key: 0,
                subkey: 0,
                seq,
                event_time,
            },
            deliver_at: event_time,
        }
    }

    #[test]
    fn tuple_batch_tracks_its_frontier_incrementally() {
        let mut b = TupleBatch::with_capacity(3, 8);
        assert!(b.is_empty());
        assert_eq!(b.frontier(), f64::NEG_INFINITY);
        // Out-of-order event times: the frontier is the max, not the last.
        b.push(inflight(1, 10.0));
        b.push(inflight(2, 30.0));
        b.push(inflight(3, 20.0));
        assert_eq!(b.len(), 3);
        assert_eq!(b.source(), 3);
        assert_eq!(b.frontier(), 30.0);
        let seqs: Vec<u64> = b.tuples().iter().map(|t| t.tuple.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3], "emission order preserved");
    }

    #[test]
    fn batch_lane_frames_identically_on_both_channel_families() {
        // One send_batch per family; both receivers must see the same
        // JoinMsg::Batch framing with payload and frontier intact.
        let (tx, rx) = bounded::<JoinMsg>(2);
        let (ptx, prx) = poll_bounded::<JoinMsg>(2);
        for lane in [&tx as &dyn BatchLane, &ptx as &dyn BatchLane] {
            let mut b = TupleBatch::with_capacity(7, 2);
            b.push(inflight(1, 5.0));
            b.push(inflight(2, 15.0));
            lane.send_batch(b).unwrap();
        }
        drop(tx);
        drop(ptx);
        for msg in [rx.recv().unwrap(), prx.recv().unwrap()] {
            let JoinMsg::Batch(got) = msg else {
                panic!("batch lane must frame as JoinMsg::Batch");
            };
            assert_eq!(got.source(), 7);
            assert_eq!(got.len(), 2);
            assert_eq!(got.frontier(), 15.0);
        }
    }

    #[test]
    fn poll_blocking_endpoints_are_fifo_across_threads() {
        let (tx, rx) = poll_bounded::<u32>(4);
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx2.send(i).unwrap();
            }
        });
        drop(tx);
        let mut last = None;
        let mut count = 0;
        while let Some(v) = rx.recv() {
            if let Some(prev) = last {
                assert!(v > prev, "FIFO violated: {v} after {prev}");
            }
            last = Some(v);
            count += 1;
        }
        h.join().unwrap();
        assert_eq!(count, 100);
    }
}
