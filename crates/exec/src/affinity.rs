//! Optional CPU affinity for the join worker pools.
//!
//! With [`crate::ExecConfig::pin_workers`] set, the thread-per-shard
//! fleet pins each shard thread — and the async fleet each pool worker
//! — to one core (round-robin over the machine's cores), so a hot
//! shard stops migrating between cores mid-window and its arena-backed
//! window state stays in one core's cache hierarchy. Sources and the
//! sink are deliberately left unpinned: they pace against the wall
//! clock and block often, exactly the threads the OS scheduler places
//! well on its own.
//!
//! The build is offline (no libc crate), so the Linux implementation
//! issues the raw `sched_setaffinity(2)` syscall directly; on other
//! platforms — or if the kernel refuses (e.g. a cpuset-restricted
//! container) — pinning is silently skipped and the run proceeds
//! unpinned. Affinity is a performance hint, never a correctness
//! requirement: every count-identity property holds pinned or not.

/// Cores available to this process — the modulus for round-robin pin
/// assignment.
pub(crate) fn machine_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Pin the calling thread to `cpu` (modulo the mask width). Returns
/// whether the kernel accepted the mask; `false` is always safe to
/// ignore.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub(crate) fn pin_current_thread(cpu: usize) -> bool {
    // A 1024-bit cpu_set_t, the kernel's default mask width.
    let mut mask = [0u64; 16];
    let bit = cpu % 1024;
    mask[bit / 64] |= 1u64 << (bit % 64);
    let len = std::mem::size_of_val(&mask);
    // sched_setaffinity(pid = 0 → calling thread, len, mask)
    let ret: isize;
    // SAFETY: raw sched_setaffinity(2) syscall. pid 0 addresses only
    // the calling thread; `len`/`mask.as_ptr()` describe a live local
    // array the kernel reads, never writes; rcx/r11 are declared
    // clobbered as the syscall ABI requires. Worst case the kernel
    // rejects the mask and we return false — no memory is touched.
    #[cfg(target_arch = "x86_64")]
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 203isize => ret, // __NR_sched_setaffinity
            in("rdi") 0usize,
            in("rsi") len,
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    // SAFETY: same syscall via the aarch64 `svc #0` convention — x8
    // carries the syscall number, x0–x2 the same read-only arguments
    // as above, and x0 returns the status in place.
    #[cfg(target_arch = "aarch64")]
    unsafe {
        std::arch::asm!(
            "svc #0",
            in("x8") 122isize, // __NR_sched_setaffinity
            inlateout("x0") 0isize => ret,
            in("x1") len,
            in("x2") mask.as_ptr(),
            options(nostack),
        );
    }
    ret == 0
}

/// Non-Linux (or exotic-arch) builds: affinity is unavailable; report
/// "not pinned" and let the OS scheduler do its thing.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
pub(crate) fn pin_current_thread(_cpu: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    fn pinning_to_an_existing_core_succeeds_and_work_proceeds() {
        // Core 0 exists on every machine; the thread must both accept
        // the mask and keep computing correctly afterwards.
        let pinned = pin_current_thread(0);
        assert!(pinned, "pinning to core 0 must succeed on Linux");
        let sum: u64 = (0..1000u64).sum();
        assert_eq!(sum, 499_500);
    }

    #[test]
    fn out_of_range_cpu_indices_wrap_instead_of_failing() {
        // Round-robin assignment can exceed the core count; the mask
        // wraps at 1024 bits and the call must not panic either way.
        let _ = pin_current_thread(usize::MAX - 3);
        let _ = pin_current_thread(1024);
    }
}
