//! M:N cooperative event-loop backend: S shard tasks on W threads.
//!
//! [`AsyncBackend`] runs the same hash-partitioned shard layout as
//! [`crate::ShardedBackend`] — `shards` slices of `(window, pair, key
//! bucket)` state per deployed join instance, routed by
//! [`crate::shard_of`] — but each shard is a *cooperative task*
//! (`JoinTask`) instead of an OS thread. A homemade scheduler
//! ([`crate::sched::Scheduler`]; no external async runtime — the build
//! is offline) multiplexes the S = instances × shards tasks onto
//! [`ExecConfig::workers`] worker threads, so the thread count tracks
//! the *cores*, not the shard count: with one-thread-per-shard, shard
//! counts beyond the core count buy only context-switch overhead and
//! per-thread stacks; here shards beyond the core count are just more
//! (cheap) tasks, which is exactly the regime a resource-constrained
//! node oversubscribed with join parallelism lives in.
//!
//! Sources and the sink stay OS threads — they pace against the wall
//! clock and block legitimately — and talk to the tasks over
//! [`crate::channel::poll_bounded`] links: the task-side endpoints
//! never park (a would-block registers the task's waker and returns),
//! while the OS-thread side keeps real blocking backpressure. Each
//! task's poll consumes at most [`ExecConfig::run_budget`] input
//! messages before yielding back to the FIFO ready queue, bounding the
//! latency skew between co-scheduled shards. The
//! [`crate::channel::TupleBatch`] is the atomic unit of work: a whole
//! batch is probed per state-machine step
//! (`crate::join::JoinCore::on_batch`), and pauses — budget
//! exhaustion, a full sink — land only *between* batches, never inside
//! one.
//!
//! The bootstrap itself lives in [`crate::control`] (shared with the
//! thread-per-shard backends), which also gives this backend live
//! reconfiguration: an epoch barrier retires the task generation
//! through the same `JoinCore::on_barrier`/`export_state` seam, and the
//! replacement generation is registered with the *same* scheduler and
//! worker pool ([`crate::sched::Scheduler::reserve`]).
//!
//! ## Why count identity survives cooperative scheduling
//!
//! The scheduler changes *when* a shard's tuples are processed, never
//! *which* tuples it sees or *in what order*: routing happens at the
//! source by the same pure `shard_of` hash, each poll drains the
//! shard's FIFO channel in arrival order, and a yield or park falls
//! only between whole input batches, so resumption re-enters the state
//! machine at a batch boundary. All match decisions
//! ([`nova_runtime::match_survives`]), window
//! assignment and sub-keys are pure functions of the config seed and
//! event times, and the watermark argument is per-shard FIFO order
//! (see `crate::join::JoinCore`), so delaying a task only delays its
//! GC — never changes it. Hence on drop-free runs
//! `emitted`/`matched`/`delivered` are *identical* to
//! [`crate::ThreadedBackend`], [`crate::ShardedBackend`] and the
//! simulator at every (workers × shards × key-buckets) combination.

use nova_runtime::Dataflow;
use nova_topology::{NodeId, Topology};

use crate::channel::{JoinMsg, OutFlight, PollReceiver, PollRecv, PollSend, PollSender, SinkMsg};
use crate::control::Quiesced;
use crate::join::JoinCore;
use crate::metrics::{Counters, ExecResult, NodePacer};
use crate::sched::{Poll, Waker};
use crate::{Backend, ExecConfig};

/// Event-loop backend: `shards` cooperative join tasks per deployed
/// instance, multiplexed onto [`ExecConfig::workers`] threads. Reads
/// the shard/worker counts and the per-poll run budget from the config.
#[derive(Debug, Clone, Copy, Default)]
pub struct AsyncBackend;

impl Backend for AsyncBackend {
    fn name(&self) -> &'static str {
        "async"
    }

    fn run(
        &self,
        topology: &Topology,
        dist: &mut dyn FnMut(NodeId, NodeId) -> f64,
        dataflow: &Dataflow,
        cfg: &ExecConfig,
    ) -> ExecResult {
        crate::control::launch_tasks(topology, dist, dataflow, cfg).finish()
    }
}

/// Resolve [`ExecConfig::workers`] for `tasks` shard tasks: 0 = one
/// worker per core (capped at the task count — extra workers would
/// only park); explicit values are taken as given, still capped at the
/// task count.
pub fn effective_workers(cfg_workers: usize, tasks: usize) -> usize {
    let auto = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let requested = if cfg_workers == 0 { auto } else { cfg_workers };
    requested.clamp(1, tasks.max(1))
}

/// One shard of one join instance as a cooperative task — the same
/// [`JoinCore`] the thread-per-shard backends drive, wrapped in the
/// resumable state a poll-based loop needs. Pauses land at batch
/// granularity: a poll either completes a whole
/// [`crate::channel::TupleBatch`] step or hasn't started it.
pub(crate) struct JoinTask {
    core: JoinCore,
    /// Flat index within this task's generation (the control plane's
    /// quiesce bookkeeping is per generation).
    flat: usize,
    /// `None` once the task retired (or its worker panicked): dropping
    /// the endpoint eagerly lets blocked sources observe the hang-up
    /// instead of parking on a channel nobody will ever drain.
    rx: Option<PollReceiver<JoinMsg>>,
    /// `None` once retired/dead — the sink terminates either on the
    /// full Eof quorum or on all senders hanging up, so a task that
    /// dies without its Eof still cannot hang the run.
    sink_tx: Option<PollSender<SinkMsg>>,
    waker: Waker,
    ctrl_up: std::sync::mpsc::Sender<Quiesced>,
    out_batch: Vec<OutFlight>,
    /// Sink frames (one probe batch can fan out to several
    /// `batch_size` chunks) awaiting a sink slot; drained front-first
    /// on every poll, so output order to the sink stays per-task FIFO
    /// even when `try_send` reports Full mid-drain.
    pending: std::collections::VecDeque<SinkMsg>,
    /// All producers have signalled Eof; drain outputs, then Eof.
    finishing: bool,
    /// Epoch-barrier quorum complete (live reconfiguration): drain
    /// outputs, export state up the control channel, retire without a
    /// sink Eof.
    quiesce: Option<u64>,
}

impl JoinTask {
    pub(crate) fn new(
        core: JoinCore,
        flat: usize,
        rx: PollReceiver<JoinMsg>,
        sink_tx: PollSender<SinkMsg>,
        waker: Waker,
        ctrl_up: std::sync::mpsc::Sender<Quiesced>,
    ) -> JoinTask {
        // Instances nobody feeds skip straight to the Eof handshake
        // (the zero-producer quorum is vacuously met).
        let finishing = core.inst.producers == 0;
        JoinTask {
            core,
            flat,
            rx: Some(rx),
            sink_tx: Some(sink_tx),
            waker,
            ctrl_up,
            out_batch: Vec::new(),
            pending: std::collections::VecDeque::new(),
            finishing,
            quiesce: None,
        }
    }

    /// Run this shard until it blocks, exhausts its budget or finishes.
    pub(crate) fn poll(
        &mut self,
        cfg: &ExecConfig,
        pacers: &[NodePacer],
        counters: &Counters,
    ) -> Poll {
        let mut budget = cfg.run_budget.max(1);
        loop {
            // 1. Stashed sink frames go out (FIFO) before anything else.
            while let Some(msg) = self.pending.pop_front() {
                match self.sink().try_send(msg, &self.waker) {
                    PollSend::Sent => {}
                    PollSend::Full(msg) => {
                        self.pending.push_front(msg);
                        return Poll::Pending;
                    }
                    // Sink hung up: the run is being torn down; retire.
                    PollSend::Closed(_) => return self.retire(counters),
                }
            }

            // 2. Quiescing (epoch barrier): everything is flushed; ship
            // the window state to the control plane and retire — no
            // sink Eof, the sink is re-based on the new generation.
            if let Some(epoch) = self.quiesce {
                debug_assert!(self.out_batch.is_empty() && self.pending.is_empty());
                let groups = self.core.export_state();
                let _ = self.ctrl_up.send(Quiesced {
                    flat: self.flat,
                    epoch,
                    late: self.core.late_split(),
                    groups,
                });
                return self.retire(counters);
            }

            // 3. Winding down: everything is flushed; Eof is last.
            if self.finishing {
                debug_assert!(self.out_batch.is_empty() && self.pending.is_empty());
                let send = self.sink().try_send(
                    SinkMsg::Eof {
                        instance: self.core.inst.index,
                    },
                    &self.waker,
                );
                return match send {
                    PollSend::Sent | PollSend::Closed(_) => self.retire(counters),
                    PollSend::Full(_) => Poll::Pending,
                };
            }

            // 4. Next input message. The budget counts whole messages:
            // a received batch is probed start-to-finish in this step
            // ([`JoinCore::on_batch`]), so pauses — `run_budget`
            // exhaustion included — only ever land between batches.
            if budget == 0 {
                return Poll::Yielded;
            }
            budget -= 1;
            let recv = self
                .rx
                .as_ref()
                .expect("retired task polled")
                .try_recv(&self.waker);
            match recv {
                PollRecv::Item(JoinMsg::Batch(batch)) => {
                    self.core
                        .on_batch(&batch, cfg, pacers, counters, &mut self.out_batch);
                    if !self.out_batch.is_empty() {
                        self.stash_out_batch(cfg.batch_size);
                    }
                }
                PollRecv::Item(JoinMsg::Eof { source }) => {
                    if self.core.on_eof(source) {
                        self.begin_finishing();
                    } else if let Some(epoch) = self.core.quiesce_ready() {
                        // A stream that ended during the arm closes the
                        // quiesce quorum with its Eof (the barriered
                        // producers already reported).
                        self.begin_quiescing(epoch);
                    }
                }
                PollRecv::Item(JoinMsg::Barrier {
                    source,
                    epoch,
                    late,
                }) => {
                    if self.core.on_barrier(source, epoch, late) {
                        self.begin_quiescing(epoch);
                    }
                }
                PollRecv::Empty => return Poll::Pending,
                // Every source hung up without Eof (aborted run): wind
                // down with what we have.
                PollRecv::Closed => self.begin_finishing(),
            }
        }
    }

    fn begin_finishing(&mut self) {
        self.finishing = true;
        debug_assert!(self.out_batch.is_empty(), "outputs stash per batch step");
    }

    fn begin_quiescing(&mut self, epoch: u64) {
        self.quiesce = Some(epoch);
        debug_assert!(self.out_batch.is_empty(), "outputs stash per batch step");
    }

    /// Queue the step's accumulated outputs as `batch_size`-framed sink
    /// messages (step 1 drains them FIFO on the next trip around the
    /// loop — one probe batch can fan out to several frames).
    fn stash_out_batch(&mut self, batch_size: usize) {
        let frame = batch_size.max(1);
        let mut outputs = std::mem::take(&mut self.out_batch);
        if let Some(i) = self.core.shard_instr() {
            i.on_out(outputs.len());
        }
        let instance = self.core.inst.index;
        while outputs.len() > frame {
            let rest = outputs.split_off(frame);
            let chunk = std::mem::replace(&mut outputs, rest);
            self.pending.push_back(SinkMsg::Batch {
                instance,
                outputs: chunk,
            });
        }
        self.pending.push_back(SinkMsg::Batch { instance, outputs });
    }

    fn sink(&self) -> &PollSender<SinkMsg> {
        self.sink_tx.as_ref().expect("retired task polled")
    }

    /// Publish this shard's match count exactly once, drop both channel
    /// endpoints (sources blocked on a full input channel observe the
    /// hang-up; the sink's sender count drops) and finish.
    fn retire(&mut self, counters: &Counters) -> Poll {
        // Instrument flush first: `mark_retired` publishes the match
        // delta, which must happen before the take zeroes the count.
        self.core.mark_retired();
        Counters::bump(&counters.matched, std::mem::take(&mut self.core.matched));
        self.rx = None;
        self.sink_tx = None;
        Poll::Done
    }

    /// Teardown for a task whose poll panicked: same endpoint drops as
    /// [`JoinTask::retire`], minus the counter publication (the state
    /// is suspect). Called by the worker with the poisoned lock
    /// recovered — the sink then terminates by sender hang-up instead
    /// of waiting forever on this task's Eof.
    pub(crate) fn abandon(&mut self) {
        self.rx = None;
        self.sink_tx = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadedBackend;
    use nova_core::baselines::sink_based;
    use nova_core::{JoinQuery, StreamSpec};
    use nova_topology::NodeRole;

    fn world(n_pairs: u32) -> (Topology, Dataflow) {
        let mut t = Topology::new();
        let sink = t.add_node(NodeRole::Sink, 1000.0, "sink");
        let mut left = Vec::new();
        let mut right = Vec::new();
        for k in 0..n_pairs {
            let l = t.add_node(NodeRole::Source, 1000.0, format!("l{k}"));
            let r = t.add_node(NodeRole::Source, 1000.0, format!("r{k}"));
            left.push(StreamSpec::keyed(l, 40.0, k));
            right.push(StreamSpec::keyed(r, 40.0, k));
        }
        let q = JoinQuery::by_key(left, right, sink);
        let p = sink_based(&q, &q.resolve());
        let df = Dataflow::from_baseline(&q, &p);
        (t, df)
    }

    fn flat_dist(a: NodeId, b: NodeId) -> f64 {
        if a == b {
            0.0
        } else {
            10.0
        }
    }

    /// Uncongested base config: unbounded queues make the runs
    /// structurally drop-free, so exact-count asserts hold under any OS
    /// schedule (see the sharded backend's tests for the full
    /// rationale).
    fn base_cfg() -> ExecConfig {
        ExecConfig {
            duration_ms: 2500.0,
            window_ms: 100.0,
            selectivity: 0.6,
            time_scale: 8.0,
            max_queue_ms: f64::INFINITY,
            backend: crate::BackendKind::Async,
            ..ExecConfig::default()
        }
    }

    fn run_threaded(t: &Topology, df: &Dataflow, cfg: &ExecConfig) -> ExecResult {
        let mut dist = flat_dist;
        ThreadedBackend.run(t, &mut dist, df, cfg)
    }

    fn run_async_cfg(t: &Topology, df: &Dataflow, cfg: &ExecConfig) -> ExecResult {
        let mut dist = flat_dist;
        AsyncBackend.run(t, &mut dist, df, cfg)
    }

    #[test]
    fn single_worker_is_count_identical_to_threaded() {
        // W = 1: the entire shard matrix time-shares one worker thread
        // — the purest test that cooperative scheduling changes *when*
        // work happens, never *what* is computed.
        let (t, df) = world(2);
        let base = base_cfg();
        let threaded = run_threaded(&t, &df, &base);
        assert_eq!(threaded.dropped, 0, "scenario must stay uncongested");
        assert!(threaded.delivered > 0);
        for shards in [1usize, 4] {
            let cfg = ExecConfig {
                shards,
                workers: 1,
                ..base
            };
            let res = run_async_cfg(&t, &df, &cfg);
            assert_eq!(res.dropped, 0, "shards={shards}");
            assert_eq!(res.emitted, threaded.emitted, "shards={shards}");
            assert_eq!(res.matched, threaded.matched, "shards={shards}");
            assert_eq!(res.delivered, threaded.delivered, "shards={shards}");
            assert_eq!(
                res.threads,
                df.sources.len() + 1 + 1,
                "sources + 1 worker + sink"
            );
        }
    }

    #[test]
    fn oversubscribed_counts_match_threaded_at_every_worker_count() {
        // S ≫ W: 2 instances × 16 shards = 32 tasks on 1..4 workers.
        // With 100 ms windows and ~1 tuple per pair per window, most
        // (window, pair) slices hash to tasks that receive *no* tuples
        // at all — the zero-input edge case: such a task must still
        // complete the Eof handshake (sources fan Eofs to every shard)
        // without stalling the sink quorum or inventing matches.
        let (t, df) = world(2);
        let base = base_cfg();
        let threaded = run_threaded(&t, &df, &base);
        assert_eq!(threaded.dropped, 0, "scenario must stay uncongested");
        for workers in [1usize, 2, 4] {
            let cfg = ExecConfig {
                shards: 16,
                workers,
                ..base
            };
            let res = run_async_cfg(&t, &df, &cfg);
            assert_eq!(res.dropped, 0, "workers={workers}");
            assert_eq!(res.emitted, threaded.emitted, "workers={workers}");
            assert_eq!(res.matched, threaded.matched, "workers={workers}");
            assert_eq!(res.delivered, threaded.delivered, "workers={workers}");
            assert_eq!(res.threads, df.sources.len() + workers + 1);
        }
    }

    #[test]
    fn starved_run_budget_preserves_counts() {
        // run_budget = 1: every poll consumes at most one input
        // message, so tasks yield between every pair of batches and
        // park mid-window thousands of times — maximum stress on the
        // batch-granularity pause/resume path. Counts must not move.
        // Windows span many emission intervals so state is live across
        // yields; keyed so the bucket path is exercised too.
        let (t, df) = world(2);
        let base = ExecConfig {
            window_ms: 500.0,
            selectivity: 0.9,
            key_space: 8,
            ..base_cfg()
        };
        let threaded = run_threaded(&t, &df, &base);
        assert_eq!(threaded.dropped, 0, "scenario must stay uncongested");
        assert!(threaded.delivered > 0, "keyed workload must match");
        let cfg = ExecConfig {
            shards: 4,
            workers: 2,
            key_buckets: 4,
            run_budget: 1,
            ..base
        };
        let res = run_async_cfg(&t, &df, &cfg);
        assert_eq!(res.dropped, 0);
        assert_eq!(res.emitted, threaded.emitted);
        assert_eq!(res.matched, threaded.matched);
        assert_eq!(res.delivered, threaded.delivered);
    }

    #[test]
    fn keyed_counts_identical_across_worker_shard_bucket_matrix() {
        let (t, df) = world(2);
        let base = ExecConfig {
            window_ms: 500.0,
            selectivity: 0.9,
            key_space: 16,
            ..base_cfg()
        };
        let threaded = run_threaded(&t, &df, &base);
        assert_eq!(threaded.dropped, 0, "scenario must stay uncongested");
        assert!(threaded.delivered > 0, "keyed workload must match");
        for workers in [1usize, 3] {
            for shards in [2usize, 8] {
                for key_buckets in [1usize, 16] {
                    let cfg = ExecConfig {
                        shards,
                        workers,
                        key_buckets,
                        ..base
                    };
                    let res = run_async_cfg(&t, &df, &cfg);
                    let tag = format!("workers={workers} shards={shards} buckets={key_buckets}");
                    assert_eq!(res.dropped, 0, "{tag}");
                    assert_eq!(res.emitted, threaded.emitted, "{tag}");
                    assert_eq!(res.matched, threaded.matched, "{tag}");
                    assert_eq!(res.delivered, threaded.delivered, "{tag}");
                }
            }
        }
    }

    #[test]
    fn async_run_is_count_deterministic() {
        let (t, df) = world(2);
        let cfg = ExecConfig {
            shards: 8,
            workers: 2,
            selectivity: 0.5,
            ..base_cfg()
        };
        let a = run_async_cfg(&t, &df, &cfg);
        let b = run_async_cfg(&t, &df, &cfg);
        assert!(a.delivered > 0);
        assert_eq!(a.dropped, 0);
        assert_eq!(a.emitted, b.emitted);
        assert_eq!(a.matched, b.matched);
        assert_eq!(a.delivered, b.delivered);
    }

    #[test]
    fn effective_workers_resolves_auto_and_caps_at_tasks() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(effective_workers(0, 64), cores.min(64));
        assert_eq!(effective_workers(4, 2), 2, "capped at the task count");
        assert_eq!(effective_workers(4, 64), 4);
        assert_eq!(effective_workers(0, 0), 1, "never zero workers");
    }
}
