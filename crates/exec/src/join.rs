//! Join workers: windowed symmetric hash joins, one state machine for
//! every backend.
//!
//! `JoinCore` is the per-shard join state — the simulator's
//! [`WindowBuffers`] (per-tumbling-window symmetric hash tables with
//! watermark-driven garbage collection), per-source event-time
//! frontiers, the Eof quorum and the deterministic [`match_survives`]
//! selectivity test — factored out of the thread loop so the blocking
//! backends ([`crate::ThreadedBackend`], [`crate::ShardedBackend`]; one
//! OS thread per shard, `run_join`) and the cooperative
//! [`crate::AsyncBackend`] (S shard tasks on W worker threads) drive
//! the *same* code tuple by tuple. A given pair of tuples produces an
//! output in every backend iff it does in the simulator.
//!
//! Watermarks are event-time based: tuples from one source arrive in
//! event-time order over FIFO channels, so the minimum of the
//! per-source frontiers bounds every future arrival, making garbage
//! collection safe (and match counts deterministic) regardless of how
//! the OS — or the cooperative scheduler — interleaves the work.

use std::collections::HashMap;

use nova_runtime::{match_survives, BufferedTuple, OutputTuple, WindowBuffers, WindowGroup};

use crate::channel::{InFlight, JoinMsg, OutFlight, Receiver, Sender, SinkMsg, TupleBatch};
use crate::control::Quiesced;
use crate::metrics::{count_drop, Counters, NodePacer, ShardInstr, ShardTelemetry};
use crate::worker::CompiledInstance;
use crate::ExecConfig;

/// The backend-independent join state of one shard of one deployed
/// instance. Callers feed it routed tuples ([`JoinCore::on_tuple`]),
/// close out input batches ([`JoinCore::end_batch`]) and deliver Eofs
/// ([`JoinCore::on_eof`]); it appends surviving outputs — with their
/// out-path relay charges already paid — to the caller's batch.
pub(crate) struct JoinCore {
    pub inst: CompiledInstance,
    buffers: WindowBuffers,
    frontiers: HashMap<u32, f64>,
    eofs: usize,
    /// Epoch barriers received (live reconfiguration); a producer
    /// contributes to the quiesce quorum via a barrier *or* its Eof.
    barriers: usize,
    /// The epoch the received barriers belong to (at most one epoch is
    /// in flight per generation — the control plane serializes them).
    epoch: Option<u64>,
    /// Whether any producer reported barriering late (see
    /// [`JoinCore::late_split`]).
    late_split: bool,
    /// Matches produced so far; the caller publishes this into the
    /// shared [`Counters`] exactly once, when the shard retires.
    pub matched: u64,
    /// How much of `matched` has been flushed to the shard instrument
    /// ([`JoinCore::publish_matched`]) — the per-match hot path stays
    /// free of atomics; the live gauge advances once per batch.
    matched_published: u64,
    last_gc_watermark: f64,
    /// Pre-resolved telemetry handles (None with `telemetry: false`);
    /// set once at spawn by the control plane, so every backend's
    /// driver loop shares the same instrumentation points.
    telemetry: Option<ShardTelemetry>,
}

impl JoinCore {
    pub fn new(inst: CompiledInstance) -> Self {
        JoinCore::new_with_state(inst, Vec::new())
    }

    /// A core pre-seeded with migrated window state (live
    /// reconfiguration): the groups become probe partners for tuples
    /// that arrive afterwards, but are never re-probed against each
    /// other — their mutual matches were produced before the handoff.
    pub fn new_with_state(inst: CompiledInstance, groups: Vec<WindowGroup>) -> Self {
        let mut buffers = WindowBuffers::new();
        buffers.import_groups(groups);
        JoinCore {
            inst,
            buffers,
            frontiers: HashMap::new(),
            eofs: 0,
            barriers: 0,
            epoch: None,
            late_split: false,
            matched: 0,
            matched_published: 0,
            last_gc_watermark: 0.0,
            telemetry: None,
        }
    }

    /// Attach the shard's pre-resolved instruments (control plane, at
    /// spawn — before the core is handed to its worker/task).
    pub fn set_telemetry(&mut self, tele: ShardTelemetry) {
        self.telemetry = Some(tele);
    }

    /// This shard's instrument, for send/flush accounting.
    pub fn shard_instr(&self) -> Option<&ShardInstr> {
        self.telemetry.as_ref().map(|t| &*t.instr)
    }

    /// Record a dequeued input batch.
    #[inline]
    pub fn note_recv(&self, tuples: usize) {
        if let Some(t) = &self.telemetry {
            t.instr.on_recv(tuples);
        }
    }

    /// Start a service-time measurement iff telemetry is attached (so
    /// the disabled path never touches the clock).
    #[inline]
    pub fn service_timer(&self) -> Option<std::time::Instant> {
        self.telemetry.as_ref().map(|_| std::time::Instant::now())
    }

    /// Record one batch's accumulated wall-clock service time.
    #[inline]
    pub fn note_service(&self, spent: std::time::Duration) {
        if let Some(t) = &self.telemetry {
            t.registry.record_service_ms(spent.as_secs_f64() * 1000.0);
        }
    }

    /// Flush the locally-accumulated match count into the shard
    /// instrument — called once per input batch (and at retire), so
    /// the per-match path carries no atomics at all.
    #[inline]
    pub fn publish_matched(&mut self) {
        if let Some(t) = &self.telemetry {
            let delta = self.matched - self.matched_published;
            if delta > 0 {
                t.instr.on_matched(delta);
            }
            self.matched_published = self.matched;
        }
    }

    /// Mark the shard's instrument retired (Eof or epoch quiesce).
    pub fn mark_retired(&mut self) {
        self.publish_matched();
        if let Some(t) = &self.telemetry {
            t.instr.retire();
        }
    }

    /// Whether every producing source has signalled Eof.
    pub fn finished(&self) -> bool {
        self.eofs == self.inst.producers
    }

    /// Record a source's epoch barrier. Returns true once the quiesce
    /// quorum is complete — see [`JoinCore::quiesce_ready`].
    pub fn on_barrier(&mut self, _source: u32, epoch: u64, late: bool) -> bool {
        self.barriers += 1;
        self.epoch = Some(epoch);
        self.late_split |= late;
        self.quiesce_ready().is_some()
    }

    /// The quiesce quorum: at least one producer barriered and every
    /// producer has delivered a barrier *or* an Eof — the shard has
    /// then seen its complete pre-epoch input (per-producer FIFO) and
    /// must quiesce (flush, export state, retire without a sink Eof).
    /// Returns the epoch to report. Checked after barriers **and**
    /// after Eofs: a source whose stream ends while an epoch is being
    /// armed contributes its Eof to the quorum, and that Eof may well
    /// be the closing message.
    pub fn quiesce_ready(&self) -> Option<u64> {
        let epoch = self.epoch?;
        (self.barriers + self.eofs >= self.inst.producers).then_some(epoch)
    }

    /// Whether any producer barriered *after* already emitting past the
    /// epoch (the arm lost the race against the emission frontier) —
    /// surfaced so callers learn their split is not the clean
    /// `t < epoch` one the simulator replay assumes.
    pub fn late_split(&self) -> bool {
        self.late_split
    }

    /// Drain the shard's live window state for handoff to its successor
    /// (deterministically ordered, see
    /// [`WindowBuffers::export_groups`]).
    pub fn export_state(&mut self) -> Vec<WindowGroup> {
        self.buffers.export_groups()
    }

    /// Probe-and-insert one routed tuple: surviving matches are
    /// charged along the instance's out-path relays and appended to
    /// `out`. Callers flush `out` *between* tuples, so within one call
    /// it grows by the tuple's full match fan-out (bounded by the
    /// tuple's `(window, subkey)` partner group — the same order as
    /// the window state itself); the per-batch frontier bookkeeping
    /// lives in [`JoinCore::end_batch`], off this per-tuple hot path.
    // lint: no_alloc hot_path — the probe loop; `out.push` amortizes
    // into the caller's reused buffer, everything else is in place.
    pub fn on_tuple(
        &mut self,
        inflight: &InFlight,
        cfg: &ExecConfig,
        pacers: &[NodePacer],
        counters: &Counters,
        out: &mut Vec<OutFlight>,
    ) {
        let tuple = inflight.tuple;
        let window = WindowBuffers::window_of(tuple.event_time, cfg.window_ms);
        let (inst, matched) = (&self.inst, &mut self.matched);
        let tele = self.telemetry.as_ref();
        // Zero-copy keyed probe: partners are visited in place — no
        // per-probe Vec of the opposite buffer — and only within the
        // tuple's (window, subkey) group, so keyed workloads never walk
        // candidates they cannot match (unkeyed ones carry subkey 0 and
        // probe the whole window as before).
        self.buffers.insert_and_probe_with(
            window,
            tuple.subkey,
            tuple.side,
            BufferedTuple {
                seq: tuple.seq,
                event_time: tuple.event_time,
            },
            |partner| {
                if !match_survives(
                    tuple.seq,
                    partner.seq,
                    tuple.side,
                    cfg.selectivity,
                    cfg.seed,
                ) {
                    return;
                }
                *matched += 1;
                // Chain the output through the relay hops of the
                // out-path; the sink's own service slot is charged by
                // the sink worker.
                let mut deliver_at = inflight.deliver_at;
                for seg in &inst.out_relays {
                    deliver_at += seg.link_ms;
                    match pacers[seg.node].serve(deliver_at) {
                        Some(done) => deliver_at = done,
                        None => {
                            count_drop(counters, tele.map(|t| &*t.registry));
                            return;
                        }
                    }
                }
                out.push(OutFlight {
                    out: OutputTuple {
                        pair: inst.pair,
                        key: tuple.key,
                        event_time: tuple.event_time.max(partner.event_time),
                    },
                    deliver_at: deliver_at + inst.out_final_link_ms,
                });
            },
        );
    }

    /// Probe one whole input batch per state-machine step: every tuple
    /// through [`Self::on_tuple`], then the once-per-batch bookkeeping
    /// — frontier/watermark/GC via [`Self::end_batch`] (the batch
    /// carries its own event-time frontier, so no re-scan), match-count
    /// publication and the service-time sample. Surviving outputs
    /// append to `out`; the caller ships them downstream after the step
    /// (re-framed to its own batch size), which makes the batch the
    /// executor's atomic unit of work — a barrier, Eof or cooperative
    /// budget pause can only ever fall *between* batches.
    // lint: no_alloc hot_path — one batch per state-machine step;
    // steady state must not allocate per batch.
    pub fn on_batch(
        &mut self,
        batch: &TupleBatch,
        cfg: &ExecConfig,
        pacers: &[NodePacer],
        counters: &Counters,
        out: &mut Vec<OutFlight>,
    ) {
        self.note_recv(batch.len());
        let t0 = self.service_timer();
        for inflight in batch.tuples() {
            self.on_tuple(inflight, cfg, pacers, counters, out);
        }
        self.end_batch(batch.source(), batch.frontier(), cfg);
        self.publish_matched();
        if let Some(t0) = t0 {
            self.note_service(t0.elapsed());
        }
    }

    /// Close out an input batch from `source`: record the batch's
    /// event-time maximum as the source's frontier (one map touch per
    /// batch, not per tuple), re-derive the watermark (nothing older
    /// than the smallest per-source frontier can still arrive) and
    /// garbage-collect expired windows on cadence.
    pub fn end_batch(&mut self, source: u32, batch_frontier: f64, cfg: &ExecConfig) {
        let frontier = self.frontiers.entry(source).or_insert(0.0);
        *frontier = frontier.max(batch_frontier);
        if self.frontiers.len() == self.inst.producers {
            let watermark = self
                .frontiers
                .values()
                .copied()
                .fold(f64::INFINITY, f64::min);
            if watermark - self.last_gc_watermark >= cfg.gc_interval_ms {
                self.buffers.gc(watermark, cfg.window_ms);
                self.last_gc_watermark = watermark;
            }
        }
    }

    /// Record a source's Eof; returns true once all producers are done.
    pub fn on_eof(&mut self, source: u32) -> bool {
        self.frontiers.insert(source, f64::INFINITY);
        self.eofs += 1;
        self.finished()
    }
}

/// Blocking join worker loop for one shard (thread-per-shard backends).
/// Consumes input batches until all producing sources signalled Eof —
/// then flushes and sends its sink Eof — or until an epoch barrier
/// completes, in which case the shard *quiesces*: flushes, publishes
/// its match count, ships its window state up the control channel and
/// retires **without** a sink Eof (the control plane re-bases the
/// sink's quorum on the new generation).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_join(
    mut core: JoinCore,
    flat: usize,
    cfg: &ExecConfig,
    pacers: &[NodePacer],
    counters: &Counters,
    rx: Receiver<JoinMsg>,
    sink_tx: Sender<SinkMsg>,
    ctrl_up: std::sync::mpsc::Sender<Quiesced>,
) {
    let mut out_batch: Vec<OutFlight> = Vec::new();

    if core.inst.producers == 0 {
        core.mark_retired();
        let _ = sink_tx.send(SinkMsg::Eof {
            instance: core.inst.index,
        });
        return;
    }

    // Quiesce: every pre-epoch tuple is behind us. The flush *precedes*
    // the Quiesced send, so by the time the control plane re-bases the
    // sink, all of this shard's output is already enqueued there. No
    // sink Eof — the control plane re-bases the quorum.
    let quiesce = |core: &mut JoinCore, out_batch: &mut Vec<OutFlight>, epoch: u64| {
        let _ = flush(&sink_tx, core.inst.index, out_batch, core.shard_instr());
        Counters::bump(&counters.matched, core.matched);
        core.mark_retired();
        let _ = ctrl_up.send(Quiesced {
            flat,
            epoch,
            late: core.late_split(),
            groups: core.export_state(),
        });
    };

    'consume: while let Some(msg) = rx.recv() {
        match msg {
            JoinMsg::Batch(batch) => {
                core.on_batch(&batch, cfg, pacers, counters, &mut out_batch);
                if !flush_chunked(
                    &sink_tx,
                    core.inst.index,
                    &mut out_batch,
                    cfg.batch_size,
                    core.shard_instr(),
                ) {
                    break 'consume;
                }
            }
            JoinMsg::Eof { source } => {
                if core.on_eof(source) {
                    break;
                }
                // A producer whose stream ended during the arm counts
                // toward the quiesce quorum via its Eof — which may be
                // the closing message (the barriered producers already
                // reported and will send nothing more).
                if let Some(epoch) = core.quiesce_ready() {
                    quiesce(&mut core, &mut out_batch, epoch);
                    return;
                }
            }
            JoinMsg::Barrier {
                source,
                epoch,
                late,
            } => {
                if core.on_barrier(source, epoch, late) {
                    quiesce(&mut core, &mut out_batch, epoch);
                    return;
                }
            }
        }
    }

    let _ = flush(
        &sink_tx,
        core.inst.index,
        &mut out_batch,
        core.shard_instr(),
    );
    Counters::bump(&counters.matched, core.matched);
    core.mark_retired();
    let _ = sink_tx.send(SinkMsg::Eof {
        instance: core.inst.index,
    });
}

/// Ship a step's accumulated outputs to the sink re-framed into
/// `batch_size` chunks (one probe batch can fan out to more matches
/// than one frame holds); `false` once the sink hung up.
fn flush_chunked(
    sink_tx: &Sender<SinkMsg>,
    instance: u32,
    batch: &mut Vec<OutFlight>,
    batch_size: usize,
    instr: Option<&ShardInstr>,
) -> bool {
    let frame = batch_size.max(1);
    while batch.len() > frame {
        let rest = batch.split_off(frame);
        let mut chunk = std::mem::replace(batch, rest);
        if !flush(sink_tx, instance, &mut chunk, instr) {
            return false;
        }
    }
    flush(sink_tx, instance, batch, instr)
}

fn flush(
    sink_tx: &Sender<SinkMsg>,
    instance: u32,
    batch: &mut Vec<OutFlight>,
    instr: Option<&ShardInstr>,
) -> bool {
    if batch.is_empty() {
        return true;
    }
    let outputs = std::mem::take(batch);
    let n = outputs.len();
    let ok = sink_tx.send(SinkMsg::Batch { instance, outputs }).is_ok();
    if ok {
        if let Some(i) = instr {
            i.on_out(n);
        }
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(producers: usize) -> JoinCore {
        JoinCore::new(CompiledInstance {
            index: 0,
            pair: nova_core::PairId(0),
            out_relays: Vec::new(),
            out_final_link_ms: 0.0,
            charge_sink: false,
            producers,
        })
    }

    #[test]
    fn quiesce_quorum_closes_on_barriers_alone() {
        let mut c = core(2);
        assert!(!c.on_barrier(0, 7, false));
        assert_eq!(c.quiesce_ready(), None);
        assert!(c.on_barrier(1, 7, false));
        assert_eq!(c.quiesce_ready(), Some(7));
        assert!(!c.late_split());
    }

    #[test]
    fn eof_after_barrier_closes_the_quiesce_quorum() {
        // Regression: a producer whose stream ends during the arm
        // contributes its Eof to the quorum, and that Eof can be the
        // *closing* message — `on_eof` alone (eofs == producers) never
        // fires here, and before the fix the shard waited forever
        // (apply() then stalled out its grace period and the final
        // join() deadlocked on the stuck shard thread).
        let mut c = core(2);
        assert!(!c.on_barrier(0, 3, true));
        assert!(!c.on_eof(1), "only one Eof, not the full Eof quorum");
        assert_eq!(c.quiesce_ready(), Some(3), "barrier + Eof = quorum");
        assert!(c.late_split(), "lateness flag must survive the mix");
        // The reverse order closes through on_barrier as before.
        let mut c = core(2);
        assert!(!c.on_eof(0));
        assert!(c.on_barrier(1, 3, false));
    }

    #[test]
    fn all_eofs_finish_normally_without_an_epoch() {
        let mut c = core(2);
        assert!(!c.on_eof(0));
        assert_eq!(c.quiesce_ready(), None, "no barrier, no quiesce");
        assert!(c.on_eof(1));
        assert!(c.finished());
    }
}
