//! Join workers: windowed symmetric hash joins on real threads.
//!
//! Each deployed join instance runs on its own OS thread and reuses the
//! simulator's [`WindowBuffers`] state machine — per-tumbling-window
//! symmetric hash tables with watermark-driven garbage collection — and
//! its deterministic [`match_survives`] selectivity test, so a given
//! pair of tuples produces an output in the executor iff it does in the
//! simulator. Watermarks are event-time based: tuples from one source
//! arrive in event-time order over FIFO channels, so the minimum of the
//! per-source frontiers bounds every future arrival, making garbage
//! collection safe (and match counts deterministic) regardless of how
//! the OS interleaves the threads.

use std::collections::HashMap;

use nova_runtime::{match_survives, BufferedTuple, OutputTuple, WindowBuffers};

use crate::channel::{JoinMsg, OutFlight, Receiver, Sender, SinkMsg};
use crate::metrics::{Counters, NodePacer};
use crate::worker::CompiledInstance;
use crate::ExecConfig;

/// Join worker loop for one instance. Consumes input batches until all
/// producing sources signalled Eof, then flushes and closes its side of
/// the sink channel.
pub(crate) fn run_join(
    inst: CompiledInstance,
    cfg: &ExecConfig,
    pacers: &[NodePacer],
    counters: &Counters,
    rx: Receiver<JoinMsg>,
    sink_tx: Sender<SinkMsg>,
) {
    let mut buffers = WindowBuffers::new();
    let mut frontiers: HashMap<u32, f64> = HashMap::new();
    let mut eofs = 0usize;
    let mut out_batch: Vec<OutFlight> = Vec::new();
    let mut matched = 0u64;
    let mut last_gc_watermark = 0.0f64;

    if inst.producers == 0 {
        let _ = sink_tx.send(SinkMsg::Eof {
            instance: inst.index,
        });
        return;
    }

    'consume: while let Some(msg) = rx.recv() {
        match msg {
            JoinMsg::Batch { source, tuples } => {
                let mut frontier = frontiers.get(&source).copied().unwrap_or(0.0);
                for inflight in tuples {
                    let tuple = inflight.tuple;
                    frontier = frontier.max(tuple.event_time);
                    let window = WindowBuffers::window_of(tuple.event_time, cfg.window_ms);
                    // Zero-copy keyed probe: partners are visited in
                    // place — no per-probe Vec of the opposite buffer —
                    // and only within the tuple's (window, subkey)
                    // group, so keyed workloads never walk candidates
                    // they cannot match (unkeyed ones carry subkey 0
                    // and probe the whole window as before).
                    let mut closed = false;
                    buffers.insert_and_probe_with(
                        window,
                        tuple.subkey,
                        tuple.side,
                        BufferedTuple {
                            seq: tuple.seq,
                            event_time: tuple.event_time,
                        },
                        |partner| {
                            if closed
                                || !match_survives(
                                    tuple.seq,
                                    partner.seq,
                                    tuple.side,
                                    cfg.selectivity,
                                    cfg.seed,
                                )
                            {
                                return;
                            }
                            matched += 1;
                            let out = OutputTuple {
                                pair: inst.pair,
                                key: tuple.key,
                                event_time: tuple.event_time.max(partner.event_time),
                            };
                            // Chain the output through the relay hops of
                            // the out-path; the sink's own service slot
                            // is charged by the sink worker.
                            let mut deliver_at = inflight.deliver_at;
                            let mut delivered = true;
                            for seg in &inst.out_relays {
                                deliver_at += seg.link_ms;
                                match pacers[seg.node].serve(deliver_at) {
                                    Some(done) => deliver_at = done,
                                    None => {
                                        Counters::bump(&counters.dropped, 1);
                                        delivered = false;
                                        break;
                                    }
                                }
                            }
                            if delivered {
                                out_batch.push(OutFlight {
                                    out,
                                    deliver_at: deliver_at + inst.out_final_link_ms,
                                });
                                if out_batch.len() >= cfg.batch_size
                                    && !flush(&sink_tx, inst.index, &mut out_batch)
                                {
                                    closed = true;
                                }
                            }
                        },
                    );
                    if closed {
                        break 'consume;
                    }
                }
                frontiers.insert(source, frontier);

                // Event-time watermark: nothing older than the smallest
                // per-source frontier can still arrive.
                if frontiers.len() == inst.producers {
                    let watermark = frontiers.values().copied().fold(f64::INFINITY, f64::min);
                    if watermark - last_gc_watermark >= cfg.gc_interval_ms {
                        buffers.gc(watermark, cfg.window_ms);
                        last_gc_watermark = watermark;
                    }
                }
                if !out_batch.is_empty() && !flush(&sink_tx, inst.index, &mut out_batch) {
                    break 'consume;
                }
            }
            JoinMsg::Eof { source } => {
                frontiers.insert(source, f64::INFINITY);
                eofs += 1;
                if eofs == inst.producers {
                    break;
                }
            }
        }
    }

    let _ = flush(&sink_tx, inst.index, &mut out_batch);
    Counters::bump(&counters.matched, matched);
    let _ = sink_tx.send(SinkMsg::Eof {
        instance: inst.index,
    });
}

fn flush(sink_tx: &Sender<SinkMsg>, instance: u32, batch: &mut Vec<OutFlight>) -> bool {
    if batch.is_empty() {
        return true;
    }
    let outputs = std::mem::take(batch);
    sink_tx.send(SinkMsg::Batch { instance, outputs }).is_ok()
}
