//! Live plan reconfiguration: the executor-side control plane (§3.5).
//!
//! The simulator has replayed re-optimization steps since the `reopt`
//! module landed; this module closes the sim/exec asymmetry by letting
//! a *running* placement absorb a [`PlanSwitch`] mid-stream. The run is
//! started through [`launch`], which returns an [`ExecHandle`]; each
//! [`ExecHandle::apply`] executes one **epoch-barrier protocol** over
//! whatever backend the config selected:
//!
//! 1. **Arm** — every source worker receives `Reconfigure { epoch,
//!    epoch_ms }` on its control mailbox. Sources keep emitting until
//!    their next emission time reaches the epoch, so the pre/post split
//!    is exactly `t < epoch_ms` / `t >= epoch_ms` — a property of the
//!    *plan*, not of scheduling.
//! 2. **Barrier** — at the epoch each source flushes its batches, fans
//!    a [`crate::channel::JoinMsg::Barrier`] to every shard it feeds
//!    (the same fan-out as its Eofs) and parks on the mailbox.
//!    Per-producer FIFO channels make the barrier a watertight
//!    separator: a shard that has a barrier (or Eof) from every
//!    producer has seen its complete pre-epoch input.
//! 3. **Quiesce & handoff** — each shard then flushes its outputs,
//!    publishes its match count, exports its live window state
//!    ([`nova_runtime::WindowGroup`]s) up the control channel and
//!    retires. This is identical across backends because the logic
//!    lives in the shared `JoinCore` (`on_barrier` / `export_state`).
//! 4. **Switch** — the control plane compiles the post plan, re-bases
//!    the sink's Eof quorum ([`crate::channel::SinkMsg::Epoch`]),
//!    spawns a *fresh generation* of shard workers (threads or
//!    cooperative tasks, per backend) whose `JoinCore`s are pre-seeded
//!    with the migrated `(window, pair, key bucket)` groups re-hashed
//!    under the new layout, and finally resumes every source with the
//!    new routing tables and senders.
//!
//! ## Why counts are preserved
//!
//! *Pre/pre* matches were produced by the old shards before the barrier
//! (FIFO exhaustiveness). *Post/post* matches are produced by the new
//! shards. *Pre/post* matches cross the epoch: the pre tuple's buffered
//! state migrates — without re-probing, so nothing is double-counted —
//! to exactly the shard that the post tuple's `(window, pair, key
//! bucket)` routes to, **before** any post tuple can be processed
//! (sources are parked until the handoff completes). So no match is
//! lost and none is duplicated, at any epoch position — window-aligned
//! or mid-window. The simulator's
//! [`nova_runtime::simulate_reconfigured`] implements the same
//! semantics over the same [`PlanSwitch`], which is what the
//! reconfiguration consistency tests pin: identical
//! `emitted`/`matched`/`delivered` on drop-free runs, on all three
//! backends (DESIGN.md §7).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use nova_runtime::{Dataflow, OutputRecord, PlanSwitch, WindowGroup};
use nova_topology::{NodeId, Topology};

use crate::async_backend::{effective_workers, JoinTask};
use crate::channel::{bounded, poll_bounded, JoinMsg, MsgSender, PollSender, Sender, SinkMsg};
use crate::join::JoinCore;
use crate::metrics::{
    Counters, ExecResult, MetricsRegistry, MetricsSnapshot, NodePacer, ShardInstr, ShardTelemetry,
    SinkTelemetry, SourceTelemetry, SubscribeError, TraceKind,
};
use crate::sched::{Poll, Scheduler};
use crate::sharded::{key_bucket_of, shard_of};
use crate::worker::{self, CompiledInstance, CompiledSource, VirtualClock};
use crate::{ExecConfig, ExecConfigError};

/// Control message to one source worker (its private mailbox).
pub(crate) enum SourceCtrl<T> {
    /// Arm an epoch: barrier once the next emission time reaches
    /// `epoch_ms`.
    Reconfigure {
        /// Epoch identifier (monotonic per run).
        epoch: u64,
        /// Virtual time of the boundary.
        epoch_ms: f64,
    },
    /// Post-epoch routing: a freshly compiled source (new rates, feeds
    /// and targets) and the new shard generation's senders.
    Resume {
        /// The post-plan source task.
        src: CompiledSource,
        /// Senders of the new generation, flat `instance × shards +
        /// shard` layout.
        txs: Vec<T>,
        /// Total post-plan source count (for the shared resume-grid
        /// rule — admission changes the stagger denominator).
        n_sources: usize,
        /// Shards per instance in the new generation (the controller
        /// may scale this across an epoch).
        shards: usize,
        /// Key buckets of the new generation's shard routing.
        key_buckets: usize,
        /// Send-side instruments of the new generation, same flat
        /// layout as `txs` (empty with telemetry disabled).
        tx_instr: Vec<Arc<ShardInstr>>,
    },
}

/// A quiesced shard's report: its flat index in the retiring
/// generation and its exported window state.
pub(crate) struct Quiesced {
    /// Flat `instance × shards + shard` index within the old layout.
    pub flat: usize,
    /// Epoch the barrier belonged to (stale reports — from an epoch
    /// that timed out — are dropped by the collector).
    pub epoch: u64,
    /// Whether any producer barriered after already emitting past the
    /// epoch (see [`EpochStats::clean_split`]).
    pub late: bool,
    /// The shard's live `(window, key)` groups, handed off to the new
    /// generation.
    pub groups: Vec<WindowGroup>,
}

/// Measurements of one applied reconfiguration.
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    /// Epoch identifier (1 for the first `apply`).
    pub epoch: u64,
    /// Virtual time of the boundary.
    pub epoch_ms: f64,
    /// Wall time of the whole `apply` call: arming the sources through
    /// resuming them. Includes the time sources naturally take to
    /// *reach* the epoch, so it is workload-dependent.
    pub pause_wall_ms: f64,
    /// Wall time of the stop-the-world part only: last shard quiesced
    /// → sources resumed (state re-hash, new-generation spawn, sink
    /// re-base). This is the protocol's own overhead.
    pub handoff_wall_ms: f64,
    /// `(window, key)` groups migrated to the new generation.
    pub migrated_groups: usize,
    /// Buffered tuples inside those groups.
    pub migrated_tuples: usize,
    /// Shard workers in the new generation.
    pub shard_workers: usize,
    /// True when every source barriered *before* emitting past the
    /// epoch — the clean `t < epoch_ms` split that makes the run
    /// mirror [`nova_runtime::simulate_reconfigured`] exactly. False
    /// means the arm lost the race against the emission frontier
    /// (epoch too close to the sources' current position, e.g. in
    /// flat-out `time_scale` runs): counts are still internally exact
    /// and no state is lost, but they need not equal a replay that
    /// splits at the epoch.
    pub clean_split: bool,
}

/// Why an [`ExecHandle::apply`] was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconfigError {
    /// Every source worker has already finished — nothing left to
    /// reconfigure.
    RunFinished,
    /// The post plan's source count differs from the running plan's.
    /// [`ExecHandle::apply`] preserves the source set; admitting new
    /// streams goes through [`ExecHandle::add_source`], and removing
    /// streams is not replayed live.
    SourceCountMismatch {
        /// Sources in the running plan.
        running: usize,
        /// Sources in the post plan.
        post: usize,
    },
    /// [`ExecHandle::add_source`] requires the post plan to *append*
    /// at least one new source after the running plan's.
    NoNewSources {
        /// Sources in the running plan.
        running: usize,
        /// Sources in the post plan.
        post: usize,
    },
    /// A shard-scale override ([`ShardScale`]) with zero shards or
    /// zero key buckets — there is no zero-shard layout.
    InvalidScale {
        /// Requested shards per instance.
        shards: usize,
        /// Requested key buckets.
        key_buckets: usize,
    },
    /// A previous epoch is still armed: its quiesce timed out, so the
    /// sources may still be heading toward (or parked at) that barrier
    /// and a second arm would corrupt the epoch numbering. The run
    /// itself keeps streaming and drains normally on
    /// [`ExecHandle::join`].
    EpochInFlight {
        /// The armed epoch's identifier.
        epoch: u64,
    },
    /// `succ` does not cover exactly the old instance set.
    SuccessorLengthMismatch {
        /// Old instances in the running plan.
        running: usize,
        /// Entries in the switch's succession map.
        got: usize,
    },
    /// A successor index points past the post plan's instance list.
    SuccessorOutOfRange {
        /// The offending successor index.
        index: u32,
        /// Instances in the post plan.
        instances: usize,
    },
    /// The old generation did not quiesce within the grace period
    /// (e.g. the epoch was armed after the run drained).
    QuiesceTimeout,
}

impl std::fmt::Display for ReconfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReconfigError::RunFinished => write!(f, "run already finished; nothing to reconfigure"),
            ReconfigError::SourceCountMismatch { running, post } => write!(
                f,
                "post plan has {post} sources but the running plan has {running}; \
                 apply preserves the source set (admit new streams via add_source)"
            ),
            ReconfigError::NoNewSources { running, post } => write!(
                f,
                "add_source needs a post plan that appends new sources, but it has \
                 {post} and the running plan already has {running}"
            ),
            ReconfigError::InvalidScale {
                shards,
                key_buckets,
            } => write!(
                f,
                "shard scale {shards}x{key_buckets} rejected: shards and key_buckets \
                 must both be >= 1"
            ),
            ReconfigError::EpochInFlight { epoch } => write!(
                f,
                "epoch {epoch} is still armed (its quiesce timed out); refusing to arm \
                 another reconfiguration on top of it"
            ),
            ReconfigError::SuccessorLengthMismatch { running, got } => write!(
                f,
                "succession map covers {got} instances but the running plan has {running}"
            ),
            ReconfigError::SuccessorOutOfRange { index, instances } => write!(
                f,
                "successor instance {index} out of range (post plan has {instances} instances)"
            ),
            ReconfigError::QuiesceTimeout => write!(
                f,
                "old shard generation did not quiesce in time (was the epoch armed \
                 after the stream ended?)"
            ),
        }
    }
}

impl std::error::Error for ReconfigError {}

/// A shard-layout override for one reconfiguration epoch — the
/// executor-side elasticity knob. [`ExecHandle::apply_scaled`] re-hashes
/// the migrated window state under the new `(shards, key_buckets)`
/// layout and resumes the sources with the new routing arithmetic, so
/// a running placement can grow or shrink its worker parallelism
/// without a restart. Any scale preserves match/delivery counts on
/// drop-free runs: shard routing decides *where* a tuple is matched,
/// never *what* matches (see `sharded::shard_of`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardScale {
    /// Shards per join instance in the new generation (>= 1).
    pub shards: usize,
    /// Key buckets of the new generation's shard routing (>= 1).
    pub key_buckets: usize,
}

/// Per-backend mechanism for materializing one generation of shard
/// workers. Everything protocol-level lives in [`Plane`]; a fleet only
/// knows how to wire channels and spawn its execution vehicles.
pub(crate) trait Fleet {
    /// The join-channel sender family this fleet's sources use.
    type Tx: MsgSender<JoinMsg> + Clone + Send + 'static;

    /// Spawn shard workers for `cores` (flat `instance × shards +
    /// shard` order) and return their input senders in the same order.
    fn spawn_generation(&mut self, cores: Vec<JoinCore>) -> Vec<Self::Tx>;

    /// Enqueue a message to the sink (the fleet owns a sink sender for
    /// the whole run, which also keeps the channel open across
    /// generation turnover).
    fn send_sink(&mut self, msg: SinkMsg);

    /// OS threads this fleet has spawned so far (for
    /// [`ExecResult::threads`] accounting).
    fn worker_threads(&self) -> usize;

    /// Release the sink sender and join every spawned worker. Called
    /// once, after the sources finished.
    fn finish(&mut self);
}

/// Thread-per-shard fleet: one OS thread per `JoinCore`, blocking MPSC
/// channels — the vehicle of [`crate::ThreadedBackend`] (1 shard) and
/// [`crate::ShardedBackend`] (N shards).
pub(crate) struct ThreadFleet {
    cfg: ExecConfig,
    pacers: Arc<Vec<NodePacer>>,
    counters: Arc<Counters>,
    sink_tx: Option<Sender<SinkMsg>>,
    ctrl_up: mpsc::Sender<Quiesced>,
    handles: Vec<JoinHandle<()>>,
    spawned: usize,
}

impl Fleet for ThreadFleet {
    type Tx = Sender<JoinMsg>;

    fn spawn_generation(&mut self, cores: Vec<JoinCore>) -> Vec<Sender<JoinMsg>> {
        let mut txs = Vec::with_capacity(cores.len());
        for (flat, core) in cores.into_iter().enumerate() {
            let (tx, rx) = bounded::<JoinMsg>(self.cfg.channel_capacity);
            txs.push(tx);
            let cfg = self.cfg;
            let pacers = Arc::clone(&self.pacers);
            let counters = Arc::clone(&self.counters);
            let sink_tx = self.sink_tx.clone().expect("fleet finished");
            let ctrl_up = self.ctrl_up.clone();
            // Optional affinity: shard `flat` lives on core `flat mod
            // cores`, so its window arena stays in one cache hierarchy.
            let pin = self
                .cfg
                .pin_workers
                .then(|| flat % crate::affinity::machine_cores());
            self.spawned += 1;
            self.handles.push(std::thread::spawn(move || {
                if let Some(cpu) = pin {
                    let _ = crate::affinity::pin_current_thread(cpu);
                }
                crate::join::run_join(core, flat, &cfg, &pacers, &counters, rx, sink_tx, ctrl_up)
            }));
        }
        txs
    }

    fn send_sink(&mut self, msg: SinkMsg) {
        if let Some(tx) = &self.sink_tx {
            let _ = tx.send(msg);
        }
    }

    fn worker_threads(&self) -> usize {
        self.spawned
    }

    fn finish(&mut self) {
        self.sink_tx = None;
        for h in self.handles.drain(..) {
            h.join().expect("join worker panicked");
        }
    }
}

/// Cooperative-task fleet: shard tasks on the M:N event loop — the
/// vehicle of [`crate::AsyncBackend`]. Generations add tasks to one
/// long-lived scheduler; the worker thread count is fixed at launch.
pub(crate) struct TaskFleet {
    cfg: ExecConfig,
    sink_tx: Option<PollSender<SinkMsg>>,
    ctrl_up: mpsc::Sender<Quiesced>,
    scheduler: Arc<Scheduler>,
    /// All tasks ever registered, indexed by scheduler id. Workers
    /// clone the `Arc` out under a short lock; the per-task mutex is
    /// uncontended by design (the scheduler hands a task to one worker
    /// at a time).
    table: Arc<Mutex<Vec<Arc<Mutex<JoinTask>>>>>,
    workers: Vec<JoinHandle<()>>,
    spawned: usize,
}

impl TaskFleet {
    /// Spawn the fixed worker pool (gen-0 setup).
    fn start_workers(
        &mut self,
        count: usize,
        pacers: &Arc<Vec<NodePacer>>,
        counters: &Arc<Counters>,
    ) {
        self.spawned += count;
        for i in 0..count {
            let scheduler = Arc::clone(&self.scheduler);
            let table = Arc::clone(&self.table);
            let cfg = self.cfg;
            let pacers = Arc::clone(pacers);
            let counters = Arc::clone(counters);
            // Optional affinity: pool worker `i` on core `i mod cores`.
            let pin = self
                .cfg
                .pin_workers
                .then(|| i % crate::affinity::machine_cores());
            self.workers.push(std::thread::spawn(move || {
                if let Some(cpu) = pin {
                    let _ = crate::affinity::pin_current_thread(cpu);
                }
                while let Some(id) = scheduler.next() {
                    let task = {
                        let table = table.lock().expect("task table poisoned");
                        Arc::clone(&table[id])
                    };
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        task.lock()
                            .expect("join task poisoned")
                            .poll(&cfg, &pacers, &counters)
                    }));
                    match outcome {
                        Ok(outcome) => scheduler.complete(id, outcome),
                        Err(payload) => {
                            // A panicked poll must not hang the run:
                            // drop the dead task's endpoints so blocked
                            // sources and the sink observe closure,
                            // retire it in the scheduler, then re-raise.
                            let mut task = match task.lock() {
                                Ok(guard) => guard,
                                Err(poisoned) => poisoned.into_inner(),
                            };
                            task.abandon();
                            drop(task);
                            scheduler.complete(id, Poll::Done);
                            resume_unwind(payload);
                        }
                    }
                }
            }));
        }
    }
}

impl Fleet for TaskFleet {
    type Tx = PollSender<JoinMsg>;

    fn spawn_generation(&mut self, cores: Vec<JoinCore>) -> Vec<PollSender<JoinMsg>> {
        let mut txs = Vec::with_capacity(cores.len());
        for (flat, core) in cores.into_iter().enumerate() {
            let (tx, rx) = poll_bounded::<JoinMsg>(self.cfg.channel_capacity);
            txs.push(tx);
            // Reserve first (task starts Idle), publish the task, then
            // wake it — a worker can never pop an unpublished id.
            let id = self.scheduler.reserve();
            let task = JoinTask::new(
                core,
                flat,
                rx,
                self.sink_tx.clone().expect("fleet finished"),
                self.scheduler.waker(id),
                self.ctrl_up.clone(),
            );
            {
                let mut table = self.table.lock().expect("task table poisoned");
                debug_assert_eq!(table.len(), id);
                table.push(Arc::new(Mutex::new(task)));
            }
            self.scheduler.waker(id).wake();
        }
        txs
    }

    fn send_sink(&mut self, msg: SinkMsg) {
        if let Some(tx) = &self.sink_tx {
            let _ = tx.send(msg);
        }
    }

    fn worker_threads(&self) -> usize {
        self.spawned
    }

    fn finish(&mut self) {
        self.sink_tx = None;
        self.scheduler.release();
        for h in self.workers.drain(..) {
            h.join().expect("event-loop worker panicked");
        }
    }
}

/// The running execution: sources, one fleet of shard workers, the
/// sink, and the control channels between them. Generic over the fleet
/// so the epoch protocol is written exactly once.
pub(crate) struct Plane<F: Fleet> {
    fleet: F,
    cfg: ExecConfig,
    clock: VirtualClock,
    topology: Topology,
    pacers: Arc<Vec<NodePacer>>,
    counters: Arc<Counters>,
    shards: usize,
    /// Current key-bucket count of the shard routing (starts at
    /// `cfg.key_buckets`, changed by scale overrides).
    key_buckets: usize,
    /// True while an epoch is armed whose quiesce never completed
    /// (timeout): arming another on top would corrupt the barrier
    /// protocol, so reconfigurations are refused until the run drains.
    armed: bool,
    epoch: u64,
    /// Current generation's instances (flat layout divides by
    /// `shards`).
    instances: Vec<CompiledInstance>,
    join_txs: Vec<F::Tx>,
    src_ctrl: Vec<mpsc::Sender<SourceCtrl<F::Tx>>>,
    src_handles: Vec<JoinHandle<()>>,
    ctrl_up_rx: mpsc::Receiver<Quiesced>,
    sink_handle: Option<JoinHandle<Vec<OutputRecord>>>,
    n_sources: usize,
    stats: Vec<EpochStats>,
    /// The telemetry plane's instrument registry (None with
    /// `cfg.telemetry == false`).
    registry: Option<Arc<MetricsRegistry>>,
    /// Shard generation counter (0 at launch, +1 per reconfiguration)
    /// — labels each generation's instruments.
    generation: u64,
}

/// Register a generation's instruments and attach them to its cores
/// (no-op without a registry). Returns the send-side handles in flat
/// order, for the sources feeding this generation.
fn attach_telemetry(
    registry: &Option<Arc<MetricsRegistry>>,
    generation: u64,
    instances: &[CompiledInstance],
    shards: usize,
    cores: &mut [JoinCore],
) -> Vec<Arc<ShardInstr>> {
    let Some(r) = registry else {
        return Vec::new();
    };
    let instr = r.register_generation(generation, instances, shards);
    for (core, i) in cores.iter_mut().zip(&instr) {
        core.set_telemetry(ShardTelemetry {
            registry: Arc::clone(r),
            instr: Arc::clone(i),
        });
    }
    r.trace(TraceKind::GenerationSpawn {
        generation,
        shard_workers: cores.len(),
    });
    instr
}

impl<F: Fleet> Plane<F> {
    /// Execute one epoch-barrier reconfiguration. Blocks until the
    /// sources are resumed on the new plan.
    ///
    /// `scale` optionally re-hashes the new generation under a
    /// different `(shards, key_buckets)` layout; `admit` switches the
    /// source-count contract from "preserve" to "append" — new
    /// sources are spawned parked and join the post-epoch grid at
    /// [`nova_runtime::admission_time`].
    pub(crate) fn reconfigure(
        &mut self,
        switch: &PlanSwitch,
        dist: &mut dyn FnMut(NodeId, NodeId) -> f64,
        scale: Option<ShardScale>,
        admit: bool,
    ) -> Result<EpochStats, ReconfigError> {
        let t0 = Instant::now();
        if self.armed {
            return Err(ReconfigError::EpochInFlight { epoch: self.epoch });
        }
        let n_running = self.src_ctrl.len();
        let n_post = switch.dataflow.sources.len();
        if admit {
            if n_post <= n_running {
                return Err(ReconfigError::NoNewSources {
                    running: n_running,
                    post: n_post,
                });
            }
        } else if n_post != n_running {
            return Err(ReconfigError::SourceCountMismatch {
                running: n_running,
                post: n_post,
            });
        }
        if let Some(s) = scale {
            if s.shards == 0 || s.key_buckets == 0 {
                return Err(ReconfigError::InvalidScale {
                    shards: s.shards,
                    key_buckets: s.key_buckets,
                });
            }
        }
        if switch.succ.len() != self.instances.len() {
            return Err(ReconfigError::SuccessorLengthMismatch {
                running: self.instances.len(),
                got: switch.succ.len(),
            });
        }
        for s in switch.succ.iter().flatten() {
            if *s as usize >= switch.dataflow.instances.len() {
                return Err(ReconfigError::SuccessorOutOfRange {
                    index: *s,
                    instances: switch.dataflow.instances.len(),
                });
            }
        }

        // 1. Arm every (still living) source.
        self.epoch += 1;
        let epoch = self.epoch;
        let alive: Vec<bool> = self
            .src_ctrl
            .iter()
            .map(|c| {
                c.send(SourceCtrl::Reconfigure {
                    epoch,
                    epoch_ms: switch.epoch_ms,
                })
                .is_ok()
            })
            .collect();
        if !alive.iter().any(|&a| a) {
            self.epoch -= 1;
            return Err(ReconfigError::RunFinished);
        }
        self.armed = true;
        if let Some(r) = &self.registry {
            r.trace(TraceKind::EpochArm {
                epoch,
                epoch_ms: switch.epoch_ms,
            });
        }

        // 2.–3. Collect the quiesce quorum: every old shard whose
        // instance has producers (zero-producer shards retired with an
        // Eof at spawn and own no state).
        let expected: Vec<usize> = (0..self.join_txs.len())
            .filter(|flat| self.instances[flat / self.shards].producers > 0)
            .collect();
        let mut exported: Vec<Vec<WindowGroup>> = vec![Vec::new(); self.join_txs.len()];
        let grace = Duration::from_secs_f64(self.cfg.quiesce_grace_ms.clamp(1.0, 8.64e7) / 1000.0);
        let deadline = Instant::now() + grace;
        let mut drained_grace: Option<Instant> = None;
        let mut received = 0usize;
        let mut clean_split = true;
        while received < expected.len() {
            match self.ctrl_up_rx.recv_timeout(Duration::from_millis(50)) {
                Ok(q) => {
                    if q.epoch != epoch {
                        // A straggler from an epoch that timed out: its
                        // generation's handoff window is gone — drop the
                        // report (and its state) instead of counting it
                        // toward this epoch's quorum and re-hashing it
                        // under the wrong layout.
                        continue;
                    }
                    clean_split &= !q.late;
                    if let Some(r) = &self.registry {
                        r.trace(TraceKind::ShardQuiesced {
                            flat: q.flat,
                            epoch,
                        });
                    }
                    exported[q.flat] = q.groups;
                    received += 1;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(ReconfigError::QuiesceTimeout)
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if Instant::now() >= deadline {
                        return Err(ReconfigError::QuiesceTimeout);
                    }
                    // If every source thread has exited, none of them
                    // barriered (a barriered source parks on its
                    // mailbox): the Reconfigure raced the stream end
                    // and the old shards retired through their Eofs.
                    // Give stragglers a short grace, then report the
                    // run as finished instead of stalling out the full
                    // deadline.
                    if self.src_handles.iter().all(|h| h.is_finished()) {
                        match drained_grace {
                            None => drained_grace = Some(Instant::now() + Duration::from_secs(2)),
                            Some(g) if Instant::now() >= g => {
                                // No source barriered — the epoch never
                                // materialized, so nothing stays armed.
                                self.armed = false;
                                return Err(ReconfigError::RunFinished);
                            }
                            Some(_) => {}
                        }
                    }
                }
            }
        }
        let quiesced_at = Instant::now();

        // 4a. Capacity updates take effect at the epoch (old backlogs
        // keep their already-reserved completion times, exactly like
        // the simulator's replay).
        for &(node, cap) in &switch.node_capacity {
            self.pacers[node.idx()].set_capacity(cap);
        }

        // 4b. Compile the post plan (the caller re-supplies the latency
        // oracle; routes are resolved once, workers stay oracle-free).
        let mut post = worker::compile(&self.topology, dist, &switch.dataflow);
        // Admitted sources join the post-epoch emission grid: the same
        // `epoch + interval · i/n` stagger the simulator's replay
        // seeds them with (`admission_time` is the shared definition).
        for i in n_running..n_post {
            let src = &mut post.sources[i];
            src.first_at_ms =
                nova_runtime::admission_time(switch.epoch_ms, src.interval_ms, i, n_post);
        }

        // The scale override takes effect with the new generation: the
        // migrated state is re-hashed below under the *new* layout and
        // the sources resume with the new routing arithmetic.
        let new_shards = scale.map(|s| s.shards).unwrap_or(self.shards);
        let new_buckets = scale.map(|s| s.key_buckets).unwrap_or(self.key_buckets);

        // 4c. Re-base the sink on the new generation. Ordering: every
        // old-generation batch was enqueued before its shard's
        // Quiesced report (which we have), so the Epoch lands after
        // all old output and before anything the new generation sends.
        let n_new = post.instances.len() * new_shards;
        self.fleet.send_sink(SinkMsg::Epoch {
            producers: n_new,
            charge_sink: post.instances.iter().map(|i| i.charge_sink).collect(),
        });

        // 4d. Re-hash the migrated state under the new layout and spawn
        // the new generation pre-seeded with it.
        let mut migrated_groups = 0usize;
        let mut migrated_tuples = 0usize;
        let mut per_flat: Vec<Vec<WindowGroup>> = (0..n_new).map(|_| Vec::new()).collect();
        for (old_flat, groups) in exported.into_iter().enumerate() {
            let old_inst = old_flat / self.shards;
            let Some(new_inst) = switch.succ[old_inst] else {
                continue; // pair gone: its state dies with it
            };
            let pair = post.instances[new_inst as usize].pair;
            for g in groups {
                migrated_groups += 1;
                migrated_tuples += g.left.len() + g.right.len();
                let bucket = key_bucket_of(g.key, new_buckets);
                let shard = shard_of(g.window, pair, bucket, new_shards);
                per_flat[new_inst as usize * new_shards + shard].push(g);
            }
        }
        let mut cores: Vec<JoinCore> = per_flat
            .into_iter()
            .enumerate()
            .map(|(flat, mut groups)| {
                // Deterministic merge order regardless of which old
                // shard exported what (stable: equal keys keep old-flat
                // order).
                groups.sort_by_key(|g| (g.window, g.key));
                JoinCore::new_with_state(post.instances[flat / new_shards].clone(), groups)
            })
            .collect();
        self.generation += 1;
        let tx_instr = attach_telemetry(
            &self.registry,
            self.generation,
            &post.instances,
            new_shards,
            &mut cores,
        );
        let new_txs = self.fleet.spawn_generation(cores);

        // 4e'. Spawn the admitted sources *parked*: each waits on its
        // mailbox for the Resume below, which carries its compiled
        // task already placed on the admission grid.
        for _ in n_running..n_post {
            let (ctrl_tx, ctrl_rx) = mpsc::channel::<SourceCtrl<F::Tx>>();
            self.src_ctrl.push(ctrl_tx);
            let cfg = self.cfg;
            let clock = self.clock;
            let pacers = Arc::clone(&self.pacers);
            let counters = Arc::clone(&self.counters);
            let registry = self.registry.clone();
            self.src_handles.push(std::thread::spawn(move || {
                worker::run_admitted_source(&cfg, clock, &pacers, &counters, &ctrl_rx, registry)
            }));
        }

        // 4e. Resume the sources on the new routing; sources that
        // already finished get their Eofs sent on their behalf so the
        // new generation's quorum still closes.
        for (i, ctrl) in self.src_ctrl.iter().enumerate() {
            let src = post.sources[i].clone();
            let targets = src.targets.clone();
            let resumed = alive.get(i).copied().unwrap_or(true)
                && ctrl
                    .send(SourceCtrl::Resume {
                        src,
                        txs: new_txs.clone(),
                        n_sources: n_post,
                        shards: new_shards,
                        key_buckets: new_buckets,
                        tx_instr: tx_instr.clone(),
                    })
                    .is_ok();
            if !resumed {
                for &target in &targets {
                    for shard in 0..new_shards {
                        let _ = new_txs[target as usize * new_shards + shard]
                            .send_msg(JoinMsg::Eof { source: i as u32 });
                    }
                }
            }
        }
        self.join_txs = new_txs;
        self.instances = post.instances;
        self.shards = new_shards;
        self.key_buckets = new_buckets;
        self.n_sources = n_post;
        self.armed = false;

        let stats = EpochStats {
            epoch,
            epoch_ms: switch.epoch_ms,
            pause_wall_ms: t0.elapsed().as_secs_f64() * 1000.0,
            handoff_wall_ms: quiesced_at.elapsed().as_secs_f64() * 1000.0,
            migrated_groups,
            migrated_tuples,
            shard_workers: n_new,
            clean_split,
        };
        if let Some(r) = &self.registry {
            r.trace(TraceKind::EpochResume {
                epoch,
                migrated_groups,
                migrated_tuples,
                handoff_wall_ms: stats.handoff_wall_ms,
            });
            r.push_epoch(stats);
        }
        self.stats.push(stats);
        Ok(stats)
    }

    /// A monotonic snapshot of the run's instruments (see
    /// [`MetricsRegistry::snapshot`]); degraded to run-wide counters
    /// and node gauges when telemetry is off.
    pub(crate) fn metrics(&self) -> MetricsSnapshot {
        match &self.registry {
            Some(r) => r.snapshot(),
            None => {
                MetricsSnapshot::degraded(&self.clock, &self.counters, &self.pacers, &self.stats)
            }
        }
    }

    /// Periodic snapshot stream (see [`ExecHandle::subscribe`]); with
    /// telemetry off the receiver yields nothing. The interval is
    /// validated in both cases — a zero interval is a hot-spinning
    /// sampler, not a faster one.
    pub(crate) fn subscribe(
        &self,
        interval: Duration,
    ) -> Result<mpsc::Receiver<MetricsSnapshot>, SubscribeError> {
        match &self.registry {
            Some(r) => crate::metrics::subscribe(Arc::clone(r), interval),
            None if interval.is_zero() => Err(SubscribeError::ZeroInterval),
            None => Ok(mpsc::channel().1),
        }
    }

    /// Wait for the stream to end and assemble the run's results.
    pub(crate) fn finish(mut self) -> ExecResult {
        // No more reconfigurations: parked sources would observe the
        // hang-up, running ones simply never barrier again.
        drop(std::mem::take(&mut self.src_ctrl));
        for h in self.src_handles.drain(..) {
            h.join().expect("source worker panicked");
        }
        // Every source thread has exited, so the coordinator's clones
        // are the last senders into the current generation. Drop them
        // *before* joining the fleet: a shard that is still waiting on
        // a producer that died without delivering its Eof — e.g. a
        // source whose stream ended in the race window between an
        // epoch's Resume being sent and its mailbox being read — then
        // observes the hang-up and winds down instead of deadlocking
        // the join below.
        self.join_txs.clear();
        self.fleet.finish();
        let outputs = self
            .sink_handle
            .take()
            .expect("sink already joined")
            .join()
            .expect("sink worker panicked");

        // All workers have joined: every count is final. Release the
        // subscription samplers — their last snapshot equals this
        // result's counts.
        if let Some(r) = &self.registry {
            r.finish();
        }

        use std::sync::atomic::Ordering;
        let delivered = outputs.len() as u64;
        // ORDERING: read after every worker has been joined — the
        // joins' happens-before edges already make the final counter
        // values visible, so the loads need no ordering of their own.
        ExecResult {
            outputs,
            emitted: self.counters.emitted.load(Ordering::Relaxed),
            matched: self.counters.matched.load(Ordering::Relaxed),
            delivered,
            node_busy_ms: self.pacers.iter().map(|p| p.busy_ms()).collect(),
            dropped: self.counters.dropped.load(Ordering::Relaxed),
            wall_ms: self.clock.wall_ms(),
            threads: self.n_sources + self.fleet.worker_threads() + 1,
            epochs: std::mem::take(&mut self.stats),
        }
    }
}

/// Shared launch pre-work: compiled plan, pacer table, counters.
struct Prep {
    plan: worker::CompiledPlan,
    pacers: Arc<Vec<NodePacer>>,
    counters: Arc<Counters>,
    charge_sink: Vec<bool>,
    sink_node: usize,
}

fn prep(
    topology: &Topology,
    dist: &mut dyn FnMut(NodeId, NodeId) -> f64,
    dataflow: &Dataflow,
    cfg: &ExecConfig,
) -> Prep {
    let plan = worker::compile(topology, dist, dataflow);
    let pacers: Arc<Vec<NodePacer>> = Arc::new(
        topology
            .nodes()
            .iter()
            .map(|n| NodePacer::new(n.capacity, cfg.max_queue_ms))
            .collect(),
    );
    let charge_sink = plan.instances.iter().map(|i| i.charge_sink).collect();
    Prep {
        plan,
        pacers,
        counters: Arc::new(Counters::default()),
        charge_sink,
        sink_node: dataflow.sink.idx(),
    }
}

/// Spawn the source workers (shared by both fleets).
#[allow(clippy::type_complexity)]
#[allow(clippy::too_many_arguments)]
fn spawn_sources<T: MsgSender<JoinMsg> + Clone + Send + 'static>(
    sources: Vec<CompiledSource>,
    cfg: &ExecConfig,
    clock: VirtualClock,
    pacers: &Arc<Vec<NodePacer>>,
    counters: &Arc<Counters>,
    join_txs: &[T],
    shards: usize,
    key_buckets: usize,
    registry: &Option<Arc<MetricsRegistry>>,
    tx_instr: &[Arc<ShardInstr>],
) -> (Vec<mpsc::Sender<SourceCtrl<T>>>, Vec<JoinHandle<()>>) {
    let mut ctrls = Vec::with_capacity(sources.len());
    let mut handles = Vec::with_capacity(sources.len());
    for src in sources {
        let (ctrl_tx, ctrl_rx) = mpsc::channel::<SourceCtrl<T>>();
        ctrls.push(ctrl_tx);
        let cfg = *cfg;
        let pacers = Arc::clone(pacers);
        let counters = Arc::clone(counters);
        let txs: Vec<T> = join_txs.to_vec();
        let tele = match registry {
            Some(r) => SourceTelemetry::new(
                Arc::clone(r),
                r.register_source(src.index, src.node),
                tx_instr.to_vec(),
            ),
            None => SourceTelemetry::disabled(),
        };
        handles.push(std::thread::spawn(move || {
            worker::run_source(
                src,
                &cfg,
                clock,
                &pacers,
                &counters,
                txs,
                shards,
                key_buckets,
                &ctrl_rx,
                tele,
            )
        }));
    }
    (ctrls, handles)
}

/// Launch on the thread-per-shard vehicle (`shards = 1` is the classic
/// thread-per-operator layout — one bootstrap for both backends, so
/// they cannot drift).
pub(crate) fn launch_threads(
    topology: &Topology,
    dist: &mut dyn FnMut(NodeId, NodeId) -> f64,
    dataflow: &Dataflow,
    cfg: &ExecConfig,
    shards: usize,
) -> Plane<ThreadFleet> {
    let p = prep(topology, dist, dataflow, cfg);
    // The clock starts before the fleet spawns so the registry can
    // timestamp spawn-time trace events; sources still emit at the
    // same virtual times (their grid is absolute).
    let clock = VirtualClock::start(cfg.time_scale);
    let registry = cfg
        .telemetry
        .then(|| MetricsRegistry::new(clock, Arc::clone(&p.counters), Arc::clone(&p.pacers)));
    let (ctrl_up_tx, ctrl_up_rx) = mpsc::channel::<Quiesced>();
    let (sink_tx, sink_rx) = bounded::<SinkMsg>(cfg.channel_capacity);
    let mut fleet = ThreadFleet {
        cfg: *cfg,
        pacers: Arc::clone(&p.pacers),
        counters: Arc::clone(&p.counters),
        sink_tx: Some(sink_tx),
        ctrl_up: ctrl_up_tx,
        handles: Vec::new(),
        spawned: 0,
    };
    let mut cores: Vec<JoinCore> = (0..p.plan.instances.len() * shards)
        .map(|flat| JoinCore::new(p.plan.instances[flat / shards].clone()))
        .collect();
    let tx_instr = attach_telemetry(&registry, 0, &p.plan.instances, shards, &mut cores);
    let n_workers = cores.len();
    let join_txs = fleet.spawn_generation(cores);

    let sink_handle = {
        let pacers = Arc::clone(&p.pacers);
        let counters = Arc::clone(&p.counters);
        let (charge, node) = (p.charge_sink.clone(), p.sink_node);
        let tele = registry.as_ref().map(|r| SinkTelemetry {
            registry: Arc::clone(r),
            instr: r.sink_instr(),
        });
        std::thread::spawn(move || {
            worker::run_sink(sink_rx, node, charge, &pacers, &counters, n_workers, tele)
        })
    };

    let n_sources = p.plan.sources.len();
    let key_buckets = cfg.key_buckets.max(1);
    let (src_ctrl, src_handles) = spawn_sources(
        p.plan.sources,
        cfg,
        clock,
        &p.pacers,
        &p.counters,
        &join_txs,
        shards,
        key_buckets,
        &registry,
        &tx_instr,
    );

    Plane {
        fleet,
        cfg: *cfg,
        clock,
        topology: topology.clone(),
        pacers: p.pacers,
        counters: p.counters,
        shards,
        key_buckets,
        armed: false,
        epoch: 0,
        instances: p.plan.instances,
        join_txs,
        src_ctrl,
        src_handles,
        ctrl_up_rx,
        sink_handle: Some(sink_handle),
        n_sources,
        stats: Vec::new(),
        registry,
        generation: 0,
    }
}

/// Launch on the M:N event-loop vehicle.
pub(crate) fn launch_tasks(
    topology: &Topology,
    dist: &mut dyn FnMut(NodeId, NodeId) -> f64,
    dataflow: &Dataflow,
    cfg: &ExecConfig,
) -> Plane<TaskFleet> {
    let shards = cfg.shards.max(1);
    let p = prep(topology, dist, dataflow, cfg);
    let clock = VirtualClock::start(cfg.time_scale);
    let registry = cfg
        .telemetry
        .then(|| MetricsRegistry::new(clock, Arc::clone(&p.counters), Arc::clone(&p.pacers)));
    let (ctrl_up_tx, ctrl_up_rx) = mpsc::channel::<Quiesced>();
    let (sink_tx, sink_rx) = poll_bounded::<SinkMsg>(cfg.channel_capacity);
    let n_tasks = p.plan.instances.len() * shards;
    let workers = effective_workers(cfg.workers, n_tasks);

    let scheduler = Scheduler::new(0);
    // Run guard: keeps the workers alive across the task-less moment
    // between generations; released in `TaskFleet::finish`.
    scheduler.hold();
    let mut fleet = TaskFleet {
        cfg: *cfg,
        sink_tx: Some(sink_tx),
        ctrl_up: ctrl_up_tx,
        scheduler,
        table: Arc::new(Mutex::new(Vec::new())),
        workers: Vec::new(),
        spawned: 0,
    };
    if let Some(r) = &registry {
        r.attach_scheduler(Arc::clone(&fleet.scheduler));
    }
    fleet.start_workers(workers, &p.pacers, &p.counters);
    let mut cores: Vec<JoinCore> = (0..n_tasks)
        .map(|flat| JoinCore::new(p.plan.instances[flat / shards].clone()))
        .collect();
    let tx_instr = attach_telemetry(&registry, 0, &p.plan.instances, shards, &mut cores);
    let join_txs = fleet.spawn_generation(cores);

    let sink_handle = {
        let pacers = Arc::clone(&p.pacers);
        let counters = Arc::clone(&p.counters);
        let (charge, node) = (p.charge_sink.clone(), p.sink_node);
        let tele = registry.as_ref().map(|r| SinkTelemetry {
            registry: Arc::clone(r),
            instr: r.sink_instr(),
        });
        std::thread::spawn(move || {
            worker::run_sink(sink_rx, node, charge, &pacers, &counters, n_tasks, tele)
        })
    };

    let n_sources = p.plan.sources.len();
    let key_buckets = cfg.key_buckets.max(1);
    let (src_ctrl, src_handles) = spawn_sources(
        p.plan.sources,
        cfg,
        clock,
        &p.pacers,
        &p.counters,
        &join_txs,
        shards,
        key_buckets,
        &registry,
        &tx_instr,
    );

    Plane {
        fleet,
        cfg: *cfg,
        clock,
        topology: topology.clone(),
        pacers: p.pacers,
        counters: p.counters,
        shards,
        key_buckets,
        armed: false,
        epoch: 0,
        instances: p.plan.instances,
        join_txs,
        src_ctrl,
        src_handles,
        ctrl_up_rx,
        sink_handle: Some(sink_handle),
        n_sources,
        stats: Vec::new(),
        registry,
        generation: 0,
    }
}

enum AnyPlane {
    Threads(Plane<ThreadFleet>),
    Tasks(Plane<TaskFleet>),
}

/// A running, reconfigurable execution — the executor-side §3.5
/// surface. Obtained from [`launch`]; [`ExecHandle::apply`] absorbs
/// one [`PlanSwitch`] mid-stream (any number may be applied in
/// sequence), [`ExecHandle::join`] waits for the stream to end and
/// returns the run's [`ExecResult`].
pub struct ExecHandle {
    plane: AnyPlane,
}

impl ExecHandle {
    /// Apply one plan switch through the epoch-barrier protocol,
    /// blocking until the sources are streaming on the new plan.
    /// `dist` is the latency oracle for compiling the post plan's
    /// routes (the handle does not retain the one used at launch).
    ///
    /// The epoch must be armed while the sources are still *ahead* of
    /// it: choose `switch.epoch_ms` comfortably beyond the emission
    /// frontier (paced runs: beyond [`ExecHandle::now_ms`] plus a few
    /// emission intervals; flat-out `time_scale` runs: beyond the
    /// emission times the sources can reach before the control message
    /// lands). A late arm is not an error — the source barriers at its
    /// actual position, counts stay exact and no state is lost — but
    /// the pre/post split then falls past the epoch, so the run no
    /// longer mirrors [`nova_runtime::simulate_reconfigured`] at that
    /// epoch; the returned [`EpochStats::clean_split`] reports which
    /// case occurred (and the churn smoke gate asserts it stays true).
    pub fn apply(
        &mut self,
        switch: &PlanSwitch,
        mut dist: impl FnMut(NodeId, NodeId) -> f64,
    ) -> Result<EpochStats, ReconfigError> {
        match &mut self.plane {
            AnyPlane::Threads(p) => p.reconfigure(switch, &mut dist, None, false),
            AnyPlane::Tasks(p) => p.reconfigure(switch, &mut dist, None, false),
        }
    }

    /// [`ExecHandle::apply`] with a shard-layout override: the new
    /// generation is spawned with `scale.shards` workers per instance
    /// and routes on `scale.key_buckets` buckets, the migrated window
    /// state re-hashed under that layout — live scale-up/-down without
    /// a restart. The switch may otherwise be an identity (same
    /// dataflow, identity succession): the epoch protocol is the same
    /// either way, and counts are preserved on drop-free runs because
    /// shard routing never decides *what* matches.
    ///
    /// Scaling applies to the thread-per-shard fleets by spawning a
    /// differently sized generation; on the async backend it resizes
    /// the cooperative task set (the worker-thread pool stays as
    /// launched — M:N scheduling absorbs the new task count).
    pub fn apply_scaled(
        &mut self,
        switch: &PlanSwitch,
        mut dist: impl FnMut(NodeId, NodeId) -> f64,
        scale: ShardScale,
    ) -> Result<EpochStats, ReconfigError> {
        match &mut self.plane {
            AnyPlane::Threads(p) => p.reconfigure(switch, &mut dist, Some(scale), false),
            AnyPlane::Tasks(p) => p.reconfigure(switch, &mut dist, Some(scale), false),
        }
    }

    /// Admit new source streams without a restart. The post plan must
    /// contain the running plan's sources (same order) plus at least
    /// one appended [`nova_runtime::SourceTask`]; anything else is
    /// refused with [`ReconfigError::NoNewSources`] or
    /// [`ReconfigError::SourceCountMismatch`] before the epoch arms.
    ///
    /// The admission runs through the same epoch-barrier protocol as
    /// [`ExecHandle::apply`]: existing sources barrier at
    /// `switch.epoch_ms`, the quiesced state migrates, and the new
    /// sources are spawned *parked* and released together with the
    /// resume — each entering the post-epoch emission grid at
    /// [`nova_runtime::admission_time`]`(epoch, interval, i, n_post)`,
    /// exactly where [`nova_runtime::simulate_reconfigured`] seeds
    /// them in a replay. Existing sources with unchanged rates keep
    /// their old grid, so admission alone never perturbs the running
    /// streams' emission times.
    pub fn add_source(
        &mut self,
        switch: &PlanSwitch,
        mut dist: impl FnMut(NodeId, NodeId) -> f64,
    ) -> Result<EpochStats, ReconfigError> {
        match &mut self.plane {
            AnyPlane::Threads(p) => p.reconfigure(switch, &mut dist, None, true),
            AnyPlane::Tasks(p) => p.reconfigure(switch, &mut dist, None, true),
        }
    }

    /// Shards per join instance in the current generation.
    pub fn shards(&self) -> usize {
        match &self.plane {
            AnyPlane::Threads(p) => p.shards,
            AnyPlane::Tasks(p) => p.shards,
        }
    }

    /// Key buckets of the current generation's shard routing.
    pub fn key_buckets(&self) -> usize {
        match &self.plane {
            AnyPlane::Threads(p) => p.key_buckets,
            AnyPlane::Tasks(p) => p.key_buckets,
        }
    }

    /// Current virtual time of the run (ms).
    pub fn now_ms(&self) -> f64 {
        match &self.plane {
            AnyPlane::Threads(p) => p.clock.now_ms(),
            AnyPlane::Tasks(p) => p.clock.now_ms(),
        }
    }

    /// Stats of every reconfiguration applied so far.
    pub fn epoch_stats(&self) -> &[EpochStats] {
        match &self.plane {
            AnyPlane::Threads(p) => &p.stats,
            AnyPlane::Tasks(p) => &p.stats,
        }
    }

    /// Take a live [`MetricsSnapshot`] of the running executor.
    ///
    /// Safe to call at any rate (each call is a handful of relaxed
    /// atomic loads per instrument — ~10 Hz polling is far below
    /// measurable cost) and from any thread holding the handle.
    /// Consistency contract: every cumulative counter in a later
    /// snapshot is `>=` its value in an earlier one, and the snapshot
    /// taken after [`ExecHandle::join`] would have returned equals the
    /// corresponding [`ExecResult`] totals. With
    /// [`crate::ExecConfig::telemetry`] disabled this degrades to the
    /// coarse shared counters (no per-shard rows, empty histograms).
    pub fn metrics(&self) -> MetricsSnapshot {
        match &self.plane {
            AnyPlane::Threads(p) => p.metrics(),
            AnyPlane::Tasks(p) => p.metrics(),
        }
    }

    /// Subscribe to periodic [`MetricsSnapshot`]s, one every
    /// `interval`, delivered on a standard `mpsc` receiver.
    ///
    /// A detached sampler thread drives the stream; it sends one final
    /// snapshot after the run finishes (so the last value received
    /// matches the [`ExecResult`]) and exits when the run ends or the
    /// receiver is dropped, whichever comes first. With telemetry
    /// disabled the receiver is already disconnected.
    ///
    /// A zero `interval` is rejected with
    /// [`SubscribeError::ZeroInterval`] — the sampler sleeps in
    /// `interval`-bounded hops, so zero would hot-spin a core for the
    /// whole run instead of sampling faster.
    pub fn subscribe(
        &self,
        interval: std::time::Duration,
    ) -> Result<mpsc::Receiver<MetricsSnapshot>, SubscribeError> {
        match &self.plane {
            AnyPlane::Threads(p) => p.subscribe(interval),
            AnyPlane::Tasks(p) => p.subscribe(interval),
        }
    }

    /// Wait for the stream to end and collect the measurements.
    pub fn join(self) -> ExecResult {
        match self.plane {
            AnyPlane::Threads(p) => p.finish(),
            AnyPlane::Tasks(p) => p.finish(),
        }
    }
}

/// Start a reconfigurable execution of `dataflow` on the backend the
/// config selects — the live counterpart of [`crate::execute`]. The
/// returned [`ExecHandle`] must be [`ExecHandle::join`]ed to collect
/// results (the run proceeds on its own threads either way).
pub fn launch(
    topology: &Topology,
    mut dist: impl FnMut(NodeId, NodeId) -> f64,
    dataflow: &Dataflow,
    cfg: &ExecConfig,
) -> Result<ExecHandle, ExecConfigError> {
    cfg.validate()?;
    Ok(launch_unchecked(topology, &mut dist, dataflow, cfg))
}

/// [`launch`] minus the config validation — the seam `Backend::run`
/// impls use (they keep the historical lenient clamping for direct
/// calls).
pub(crate) fn launch_unchecked(
    topology: &Topology,
    dist: &mut dyn FnMut(NodeId, NodeId) -> f64,
    dataflow: &Dataflow,
    cfg: &ExecConfig,
) -> ExecHandle {
    use crate::BackendKind;
    let plane = match cfg.backend {
        BackendKind::Async => AnyPlane::Tasks(launch_tasks(topology, dist, dataflow, cfg)),
        BackendKind::Threaded => {
            AnyPlane::Threads(launch_threads(topology, dist, dataflow, cfg, 1))
        }
        BackendKind::Sharded => AnyPlane::Threads(launch_threads(
            topology,
            dist,
            dataflow,
            cfg,
            cfg.shards.max(1),
        )),
        BackendKind::Auto => {
            if cfg.shards > 1 {
                AnyPlane::Threads(launch_threads(topology, dist, dataflow, cfg, cfg.shards))
            } else {
                AnyPlane::Threads(launch_threads(topology, dist, dataflow, cfg, 1))
            }
        }
    };
    ExecHandle { plane }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BackendKind;
    use nova_core::baselines::{sink_based, source_based};
    use nova_core::{JoinQuery, StreamSpec};
    use nova_topology::NodeRole;

    /// sink(0), l(1), r(2), worker(3) — the cross-validation world.
    fn world() -> (Topology, JoinQuery) {
        let mut t = Topology::new();
        let sink = t.add_node(NodeRole::Sink, 1000.0, "sink");
        let l = t.add_node(NodeRole::Source, 1000.0, "l");
        let r = t.add_node(NodeRole::Source, 1000.0, "r");
        t.add_node(NodeRole::Worker, 1000.0, "w");
        let q = JoinQuery::by_key(
            vec![StreamSpec::keyed(l, 40.0, 1)],
            vec![StreamSpec::keyed(r, 40.0, 1)],
            sink,
        );
        (t, q)
    }

    fn flat_dist(a: NodeId, b: NodeId) -> f64 {
        if a == b {
            0.0
        } else {
            10.0
        }
    }

    /// Drop-free paced config (see the backend tests for the
    /// unbounded-queue rationale).
    fn cfg(backend: BackendKind) -> ExecConfig {
        ExecConfig {
            duration_ms: 2400.0,
            window_ms: 200.0,
            selectivity: 0.7,
            time_scale: 8.0,
            max_queue_ms: f64::INFINITY,
            backend,
            ..ExecConfig::default()
        }
    }

    #[test]
    fn route_only_reconfiguration_is_count_transparent_on_every_backend() {
        // Move the join from the sink to the sources mid-window
        // (epoch 1100 straddles [1000, 1200)): counts must equal the
        // never-reconfigured run on every backend, because routing
        // never decides *what* matches and the straddling window's
        // state migrates with the instance.
        let (t, q) = world();
        let plan = q.resolve();
        let pre = sink_based(&q, &plan);
        let post = source_based(&q, &plan);
        let df = Dataflow::from_baseline(&q, &pre);
        for (backend, shards, workers) in [
            (BackendKind::Threaded, 1usize, 0usize),
            (BackendKind::Sharded, 4, 0),
            (BackendKind::Async, 4, 2),
        ] {
            let cfg = ExecConfig {
                shards,
                workers,
                ..cfg(backend)
            };
            let baseline = crate::execute(&t, flat_dist, &df, &cfg).expect("valid config");
            assert_eq!(baseline.dropped, 0);
            assert!(baseline.delivered > 0);

            let sw = PlanSwitch::between(1100.0, &q, &pre, &post, 1.0);
            let mut handle = launch(&t, flat_dist, &df, &cfg).expect("valid config");
            let stats = handle.apply(&sw, flat_dist).expect("reconfigure");
            assert_eq!(stats.epoch, 1);
            assert!(
                stats.migrated_tuples > 0,
                "{backend:?}: the straddling window must migrate state"
            );
            let res = handle.join();
            let tag = format!("{backend:?}");
            assert_eq!(res.dropped, 0, "{tag}");
            assert_eq!(res.emitted, baseline.emitted, "{tag}");
            assert_eq!(res.matched, baseline.matched, "{tag}");
            assert_eq!(res.delivered, baseline.delivered, "{tag}");
        }
    }

    #[test]
    fn consecutive_reconfigurations_compose() {
        // sink -> source -> sink again; two epochs, both mid-window.
        let (t, q) = world();
        let plan = q.resolve();
        let a = sink_based(&q, &plan);
        let b = source_based(&q, &plan);
        let df = Dataflow::from_baseline(&q, &a);
        let cfg = cfg(BackendKind::Sharded);
        let cfg = ExecConfig { shards: 2, ..cfg };
        let baseline = crate::execute(&t, flat_dist, &df, &cfg).expect("valid config");
        assert_eq!(baseline.dropped, 0);

        let mut handle = launch(&t, flat_dist, &df, &cfg).expect("valid config");
        let s1 = PlanSwitch::between(700.0, &q, &a, &b, 1.0);
        let s2 = PlanSwitch::between(1500.0, &q, &b, &a, 1.0);
        handle.apply(&s1, flat_dist).expect("epoch 1");
        handle.apply(&s2, flat_dist).expect("epoch 2");
        assert_eq!(handle.epoch_stats().len(), 2);
        let res = handle.join();
        assert_eq!(res.dropped, 0);
        assert_eq!(res.emitted, baseline.emitted);
        assert_eq!(res.matched, baseline.matched);
        assert_eq!(res.delivered, baseline.delivered);
    }

    #[test]
    fn malformed_switches_are_rejected_before_arming() {
        let (t, q) = world();
        let plan = q.resolve();
        let pre = sink_based(&q, &plan);
        let df = Dataflow::from_baseline(&q, &pre);
        let cfg = cfg(BackendKind::Threaded);
        let mut handle = launch(&t, flat_dist, &df, &cfg).expect("valid config");

        // Source count change is refused.
        let q2 = JoinQuery::by_key(
            vec![
                StreamSpec::keyed(nova_topology::NodeId(1), 40.0, 1),
                StreamSpec::keyed(nova_topology::NodeId(3), 10.0, 1),
            ],
            vec![StreamSpec::keyed(nova_topology::NodeId(2), 40.0, 1)],
            nova_topology::NodeId(0),
        );
        let p2 = sink_based(&q2, &q2.resolve());
        let sw = PlanSwitch::between(1000.0, &q2, &pre, &p2, 1.0);
        assert!(matches!(
            handle.apply(&sw, flat_dist),
            Err(ReconfigError::SourceCountMismatch { .. })
        ));

        // Succession map of the wrong length is refused.
        let mut sw = PlanSwitch::between(1000.0, &q, &pre, &pre, 1.0);
        sw.succ.push(Some(0));
        assert!(matches!(
            handle.apply(&sw, flat_dist),
            Err(ReconfigError::SuccessorLengthMismatch { .. })
        ));

        // Out-of-range successor is refused.
        let mut sw = PlanSwitch::between(1000.0, &q, &pre, &pre, 1.0);
        sw.succ[0] = Some(99);
        assert!(matches!(
            handle.apply(&sw, flat_dist),
            Err(ReconfigError::SuccessorOutOfRange { .. })
        ));

        // The run is untouched by refused switches.
        let res = handle.join();
        assert!(res.delivered > 0);
        assert_eq!(res.dropped, 0);
    }

    #[test]
    fn node_capacity_update_takes_effect_at_the_epoch() {
        // Shrink the sink's capacity mid-run under a *bounded* queue:
        // the post-epoch regime must shed (the pre-epoch one did not).
        let (t, q) = world();
        let plan = q.resolve();
        let pre = sink_based(&q, &plan);
        let df = Dataflow::from_baseline(&q, &pre);
        let cfg = ExecConfig {
            duration_ms: 4000.0,
            max_queue_ms: 250.0,
            ..cfg(BackendKind::Threaded)
        };
        let mut handle = launch(&t, flat_dist, &df, &cfg).expect("valid config");
        let sw = PlanSwitch::between(2000.0, &q, &pre, &pre, 1.0)
            .with_capacities(vec![(nova_topology::NodeId(0), 15.0)]);
        handle.apply(&sw, flat_dist).expect("reconfigure");
        let res = handle.join();
        assert!(
            res.dropped > 0,
            "a 15 t/s sink under 80 t/s input must shed after the epoch"
        );
    }
}
