//! # nova-exec — a real multi-threaded streaming-join executor
//!
//! The discrete-event simulator in [`nova_runtime`] *models* a cluster;
//! this crate *runs* one on the local machine. It takes the same inputs
//! — a [`Topology`], a one-hop latency oracle and a deployed
//! [`Dataflow`] — and executes them on OS threads: one thread per
//! source task, one per join instance, one for the sink, connected by
//! bounded MPSC channels that exert real backpressure. Tuples are
//! physically generated, routed, matched in windowed symmetric hash
//! joins (reusing the simulator's [`nova_runtime::WindowBuffers`]) and
//! collected at the sink as [`nova_runtime::OutputRecord`]s.
//!
//! ## The hybrid time model
//!
//! Emission is paced against a wall clock (optionally dilated by
//! [`ExecConfig::time_scale`]), so threads really stream, block and
//! contend. The *geo-distributed* part of the model — link latencies
//! and per-node tuple/s capacities — is enforced in virtual time by the
//! shared per-node [`metrics::NodePacer`]s: every tuple pays its wire
//! delays and service slots arithmetically (same formulas as the
//! simulator's single-server queues) while the data movement itself
//! runs as fast as the hardware allows. This gives both numbers the
//! ROADMAP cares about from a single run: model-domain latency and
//! throughput that cross-validate against the simulator, and raw
//! hardware throughput ([`ExecResult::input_tuples_per_wall_s`]).
//!
//! Determinism: event times, window assignment, partition choice and
//! the selectivity test are all pure functions of the config seed, so
//! uncongested runs deliver *count-identical* results across
//! executions; only per-output timestamps vary with OS scheduling.
//!
//! ## Backends
//!
//! Execution is behind the [`Backend`] trait; three implementations
//! share one compiled plan, one channel discipline and one join state
//! machine (`join::JoinCore`):
//!
//! * [`ThreadedBackend`] — thread-per-operator, the baseline;
//! * [`ShardedBackend`] — fans each join instance out to
//!   [`ExecConfig::shards`] worker *threads*, hash-partitioned by
//!   `(window, pair, key bucket)` so shards share no state and counts
//!   stay identical (see [`sharded`]). With multiple
//!   [`ExecConfig::key_buckets`] even a single hot pair with one giant
//!   window splits by join sub-key across shards — the backend scales
//!   with cores, not with the number of pairs;
//! * [`AsyncBackend`] — the same shard layout as cooperative *tasks*
//!   on an M:N event loop: S = instances × shards tasks multiplexed
//!   onto [`ExecConfig::workers`] threads (W ≤ cores, S ≫ W fine), so
//!   shard counts beyond the core count stop costing OS threads (see
//!   [`async_backend`] and [`sched`]).
//!
//! [`backend_for`] picks the engine from [`ExecConfig::backend`];
//! further backends (NUMA-pinned pools) plug in without touching
//! callers.
//!
//! ## Example
//!
//! Place a 1-pair query at the sink, run it on each backend and check
//! they agree (the count-identity invariant the test suite pins at
//! scale — see `tests/exec_vs_sim.rs`):
//!
//! ```
//! use nova_core::baselines::sink_based;
//! use nova_core::{JoinQuery, StreamSpec};
//! use nova_exec::{execute, BackendKind, ExecConfig};
//! use nova_runtime::Dataflow;
//! use nova_topology::{NodeRole, Topology};
//!
//! let mut t = Topology::new();
//! let sink = t.add_node(NodeRole::Sink, 1000.0, "sink");
//! let l = t.add_node(NodeRole::Source, 1000.0, "l");
//! let r = t.add_node(NodeRole::Source, 1000.0, "r");
//! let q = JoinQuery::by_key(
//!     vec![StreamSpec::keyed(l, 20.0, 1)],
//!     vec![StreamSpec::keyed(r, 20.0, 1)],
//!     sink,
//! );
//! let placement = sink_based(&q, &q.resolve());
//! let df = Dataflow::from_baseline(&q, &placement);
//! let dist = |a: nova_topology::NodeId, b: nova_topology::NodeId| {
//!     if a == b { 0.0 } else { 5.0 }
//! };
//!
//! let cfg = ExecConfig {
//!     duration_ms: 500.0,
//!     window_ms: 100.0,
//!     time_scale: 8.0,               // 500 virtual ms in ~63 wall ms
//!     max_queue_ms: f64::INFINITY,   // drop-free ⇒ counts are exact
//!     ..ExecConfig::default()
//! };
//! let threaded = execute(&t, dist, &df, &cfg).expect("config is valid");
//! assert!(threaded.delivered > 0);
//!
//! // Same run on the M:N event loop: 4 shard tasks, 2 worker threads.
//! let async_cfg = ExecConfig {
//!     backend: BackendKind::Async,
//!     shards: 4,
//!     workers: 2,
//!     ..cfg
//! };
//! let cooperative = execute(&t, dist, &df, &async_cfg).expect("config is valid");
//! assert_eq!(cooperative.matched, threaded.matched);
//! assert_eq!(cooperative.delivered, threaded.delivered);
//! ```

pub(crate) mod affinity;
pub mod async_backend;
pub mod autoscale;
pub mod channel;
pub mod control;
pub mod join;
pub mod metrics;
pub mod sched;
pub mod sharded;
pub mod worker;

use nova_runtime::{Dataflow, SimConfig};
use nova_topology::{NodeId, Topology};

pub use async_backend::{effective_workers, AsyncBackend};
pub use autoscale::{
    AutoscaleConfig, AutoscaleReport, Autoscaler, Decision, DecisionRecord, DistFn, Evaluation,
    Policy, RecordedSwitch, Relocator,
};
pub use control::{launch, EpochStats, ExecHandle, ReconfigError, ShardScale};
pub use metrics::{
    Counters, ExecResult, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, NodePacer,
    NodeSnapshot, ShardSnapshot, SourceSnapshot, SubscribeError, TraceEvent, TraceKind,
};
pub use nova_runtime::PlanSwitch;
pub use sharded::{key_bucket_of, shard_of, ShardedBackend};
pub use worker::VirtualClock;

/// Executor parameters. The virtual-domain fields mirror
/// [`SimConfig`] so a simulator experiment can be replayed on the
/// executor unchanged (see [`ExecConfig::from_sim`]).
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Virtual stream duration in ms: sources emit `rate × duration`
    /// tuples and the run drains in-flight work afterwards.
    pub duration_ms: f64,
    /// Tumbling window length in ms.
    pub window_ms: f64,
    /// Join selectivity (deterministic per tuple pair, shared with the
    /// simulator).
    pub selectivity: f64,
    /// Watermark advance required between window-state GC passes.
    pub gc_interval_ms: f64,
    /// Seed for partition assignment and the selectivity test.
    pub seed: u64,
    /// Bounded per-node queue cap in ms of backlog (load shedding).
    pub max_queue_ms: f64,
    /// Virtual ms per wall ms: 1.0 = real time, 4.0 runs a 2 s virtual
    /// experiment in 0.5 s of wall time.
    pub time_scale: f64,
    /// Tuples per channel message: sources accumulate a
    /// [`channel::TupleBatch`] per downstream shard and flush it at
    /// this size (or at a pacing stall / barrier / Eof, so partial
    /// batches are never stranded); join workers probe one whole batch
    /// per state-machine step and re-frame their outputs to the same
    /// size. Purely a throughput/latency knob — batch size is
    /// *unobservable* in the counts (the batch-equivalence property
    /// suite pins emitted/matched/delivered identical across batch
    /// sizes and to the simulator). Must be ≥ 1.
    pub batch_size: usize,
    /// Channel depth in messages (backpressure window).
    pub channel_capacity: usize,
    /// Safety valve on tuples per source.
    pub max_tuples_per_source: u64,
    /// Join shards per deployed instance. 1 = classic thread-per-
    /// operator; >1 hash-partitions each instance's tuples by
    /// `(window, pair, key bucket)` across that many dedicated worker
    /// threads ([`ShardedBackend`]). Count results are identical either
    /// way on drop-free runs.
    pub shards: usize,
    /// Cardinality of the per-tuple join sub-key space (workload
    /// property, mirrors [`SimConfig::key_space`]). 1 = unkeyed
    /// cross-product windows; >1 draws each tuple's sub-key from
    /// `[0, key_space)` via [`nova_runtime::subkey_of`] and restricts
    /// matching to equal sub-keys.
    pub key_space: u32,
    /// Key buckets for shard routing (runtime knob). 1 reproduces the
    /// `(window, pair)` routing of the unkeyed sharded backend exactly;
    /// larger values additionally hash-split each join instance's
    /// window state by sub-key into this many buckets, so even a single
    /// hot pair with one giant window spreads across shards. Any value
    /// preserves
    /// match/delivery counts: matching requires *equal* sub-keys and
    /// co-keyed tuples always co-locate (see [`sharded::key_bucket_of`]).
    pub key_buckets: usize,
    /// Which execution engine runs the dataflow.
    /// [`BackendKind::Auto`] (the default) preserves the historical
    /// rule — `shards > 1` selects [`ShardedBackend`], else
    /// [`ThreadedBackend`] — so existing configs behave unchanged;
    /// [`BackendKind::Async`] must be requested explicitly.
    pub backend: BackendKind,
    /// Worker threads of the [`AsyncBackend`] event loop (ignored by
    /// the thread-per-shard backends, which spawn one thread per
    /// shard). 0 = one worker per core. Any value is capped at the
    /// task count (instances × shards) — beyond that workers would
    /// only park. Invariant: the worker count never changes *what* is
    /// computed, only how many tasks run concurrently; `workers = 1`
    /// is count-identical to [`ThreadedBackend`].
    pub workers: usize,
    /// Run budget of one cooperative poll: the maximum number of
    /// input messages (tuple batches, Eofs, barriers) an
    /// [`AsyncBackend`] shard task consumes before it yields back to
    /// the ready queue (ignored by the thread-per-shard backends).
    /// Bounds the latency skew between shards co-scheduled on one
    /// worker; small budgets trade throughput (more scheduler
    /// round-trips) for fairness. Clamped to ≥ 1. Invariant: pauses
    /// land only *between* batches — the batch is the atomic unit of
    /// work — and tasks resume at the next message, so any budget
    /// yields identical counts (`run_budget = 1` processes exactly one
    /// message per poll).
    pub run_budget: usize,
    /// Wall-clock grace (ms) [`ExecHandle::apply`] grants the old
    /// shard generation to quiesce before giving up with
    /// [`control::ReconfigError::QuiesceTimeout`]. Quiescing is
    /// bounded by the time sources need to *reach* the epoch — the
    /// run's own pacing — so the default (60 s) is generous; tests
    /// that deliberately arm unreachable epochs shrink it. Must be
    /// positive and finite.
    pub quiesce_grace_ms: f64,
    /// Pin join workers to cores. `true` pins each thread-per-shard
    /// worker — and each [`AsyncBackend`] pool worker — to one core,
    /// round-robin over the machine's cores (`false`, the default,
    /// leaves placement to the OS scheduler). Sources and the sink stay
    /// unpinned either way. A performance hint only: pinning is
    /// silently skipped where unsupported (non-Linux, cpuset-restricted
    /// containers) and never affects counts.
    pub pin_workers: bool,
    /// Telemetry plane switch. `true` (the default) wires the
    /// [`MetricsRegistry`] into every worker at launch — per-shard
    /// instruments, latency/service histograms and the trace ring —
    /// making [`ExecHandle::metrics`]/[`ExecHandle::subscribe`] live.
    /// The hot-path cost is one relaxed atomic increment per event
    /// (measured ≤ 3% on the uniform bench scenario; the CI smoke
    /// gate pins it). `false` skips registration entirely: workers
    /// carry no instrument handles and snapshots degrade to the coarse
    /// shared [`Counters`].
    pub telemetry: bool,
}

/// Which [`Backend`] implementation [`backend_for`] resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The historical rule: [`ShardedBackend`] when
    /// [`ExecConfig::shards`] > 1, [`ThreadedBackend`] otherwise.
    #[default]
    Auto,
    /// Thread-per-operator baseline (ignores `shards`).
    Threaded,
    /// One OS thread per shard.
    Sharded,
    /// M:N cooperative event loop: shard tasks on
    /// [`ExecConfig::workers`] threads.
    Async,
}

impl BackendKind {
    /// Parse the `--backend` flag value used by the fig binaries and
    /// the smoke harness.
    pub fn parse(name: &str) -> Option<BackendKind> {
        match name {
            "auto" => Some(BackendKind::Auto),
            "threaded" => Some(BackendKind::Threaded),
            "sharded" => Some(BackendKind::Sharded),
            "async" => Some(BackendKind::Async),
            _ => None,
        }
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        let sim = SimConfig::default();
        ExecConfig {
            duration_ms: sim.duration_ms,
            window_ms: sim.window_ms,
            selectivity: sim.selectivity,
            gc_interval_ms: sim.gc_interval_ms,
            seed: sim.seed,
            max_queue_ms: sim.max_queue_ms,
            time_scale: 1.0,
            batch_size: 256,
            channel_capacity: 64,
            max_tuples_per_source: u64::MAX,
            shards: 1,
            key_space: 1,
            key_buckets: 1,
            backend: BackendKind::Auto,
            workers: 0,
            run_budget: 2048,
            quiesce_grace_ms: 60_000.0,
            pin_workers: false,
            telemetry: true,
        }
    }
}

impl ExecConfig {
    /// Replay a simulator configuration on the executor, dilating time
    /// by `time_scale`.
    pub fn from_sim(sim: &SimConfig, time_scale: f64) -> Self {
        ExecConfig {
            duration_ms: sim.duration_ms,
            window_ms: sim.window_ms,
            selectivity: sim.selectivity,
            gc_interval_ms: sim.gc_interval_ms,
            seed: sim.seed,
            max_queue_ms: sim.max_queue_ms,
            time_scale,
            key_space: sim.key_space,
            ..ExecConfig::default()
        }
    }

    /// Reject configurations whose zero-valued knobs would otherwise be
    /// clamped silently deep in the hot path (or, for a hand-rolled
    /// router calling [`shard_of`]-style arithmetic directly, divide by
    /// zero). [`execute`] and [`launch`] run this at entry so a typo'd
    /// `--shards 0` fails loudly at the boundary instead of producing a
    /// quietly different engine. `workers: 0` stays legal — it is the
    /// documented "one per core" auto value.
    pub fn validate(&self) -> Result<(), ExecConfigError> {
        if self.shards == 0 {
            return Err(ExecConfigError::ZeroShards);
        }
        if self.key_buckets == 0 {
            return Err(ExecConfigError::ZeroKeyBuckets);
        }
        if self.key_space == 0 {
            return Err(ExecConfigError::ZeroKeySpace);
        }
        if self.run_budget == 0 {
            return Err(ExecConfigError::ZeroRunBudget);
        }
        if self.batch_size == 0 {
            return Err(ExecConfigError::ZeroBatchSize);
        }
        if !(self.quiesce_grace_ms > 0.0 && self.quiesce_grace_ms.is_finite()) {
            return Err(ExecConfigError::NonPositiveQuiesceGrace);
        }
        Ok(())
    }
}

/// A rejected [`ExecConfig`] — see [`ExecConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecConfigError {
    /// `shards == 0`: there is no zero-shard layout; the historical
    /// behavior silently clamped to 1.
    ZeroShards,
    /// `key_buckets == 0`: bucket routing needs at least one bucket
    /// (1 = the unkeyed `(window, pair)` layout).
    ZeroKeyBuckets,
    /// `key_space == 0`: the sub-key space is a workload property with
    /// minimum cardinality 1 (= unkeyed).
    ZeroKeySpace,
    /// `run_budget == 0`: a zero-budget poll cannot make progress; the
    /// async scheduler would spin through yields forever without it
    /// being clamped.
    ZeroRunBudget,
    /// `batch_size == 0`: a zero-capacity batch can never fill, so
    /// sources would buffer forever and flush nothing.
    ZeroBatchSize,
    /// `quiesce_grace_ms` is zero, negative, NaN or infinite: the
    /// reconfiguration deadline must be a positive finite wall-clock
    /// duration.
    NonPositiveQuiesceGrace,
}

impl std::fmt::Display for ExecConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecConfigError::ZeroShards => {
                write!(
                    f,
                    "ExecConfig::shards must be >= 1 (1 = thread-per-operator)"
                )
            }
            ExecConfigError::ZeroKeyBuckets => write!(
                f,
                "ExecConfig::key_buckets must be >= 1 (1 = unkeyed (window, pair) routing)"
            ),
            ExecConfigError::ZeroKeySpace => write!(
                f,
                "ExecConfig::key_space must be >= 1 (1 = unkeyed workload, sub-key 0)"
            ),
            ExecConfigError::ZeroRunBudget => write!(
                f,
                "ExecConfig::run_budget must be >= 1 message per cooperative poll"
            ),
            ExecConfigError::ZeroBatchSize => write!(
                f,
                "ExecConfig::batch_size must be >= 1 tuple per channel batch"
            ),
            ExecConfigError::NonPositiveQuiesceGrace => write!(
                f,
                "ExecConfig::quiesce_grace_ms must be a positive finite wall-clock duration"
            ),
        }
    }
}

impl std::error::Error for ExecConfigError {}

/// An execution engine for deployed dataflows.
///
/// The simulator and every executor backend take the same inputs, so
/// experiments can swap "model the cluster" for "run it" with one call.
pub trait Backend {
    /// Human-readable backend name (for reports).
    fn name(&self) -> &'static str;

    /// Execute `dataflow` on `topology` under the latency oracle
    /// `dist` and return the collected measurements.
    fn run(
        &self,
        topology: &Topology,
        dist: &mut dyn FnMut(NodeId, NodeId) -> f64,
        dataflow: &Dataflow,
        cfg: &ExecConfig,
    ) -> ExecResult;
}

/// Thread-per-operator backend: one OS thread per source task, join
/// instance and sink, bounded channels in between. Ignores
/// [`ExecConfig::shards`] — it is the single-worker-per-instance
/// baseline that [`ShardedBackend`] is measured against. Both backends
/// share one bootstrap (`sharded::run_with_shards`, pinned at 1 shard
/// here), so they cannot drift apart in channel wiring, sink quorum or
/// accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadedBackend;

impl Backend for ThreadedBackend {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn run(
        &self,
        topology: &Topology,
        dist: &mut dyn FnMut(NodeId, NodeId) -> f64,
        dataflow: &Dataflow,
        cfg: &ExecConfig,
    ) -> ExecResult {
        sharded::run_with_shards(topology, dist, dataflow, cfg, 1)
    }
}

/// The backend a configuration selects — the single seam through which
/// `execute`, `nova_bench::run_placement_real` and the examples pick an
/// engine. [`ExecConfig::backend`] decides; its `Auto` default keeps
/// the historical rule ([`ShardedBackend`] when `cfg.shards > 1`, the
/// thread-per-operator [`ThreadedBackend`] otherwise).
pub fn backend_for(cfg: &ExecConfig) -> &'static dyn Backend {
    match cfg.backend {
        BackendKind::Auto => {
            if cfg.shards > 1 {
                &ShardedBackend
            } else {
                &ThreadedBackend
            }
        }
        BackendKind::Threaded => &ThreadedBackend,
        BackendKind::Sharded => &ShardedBackend,
        BackendKind::Async => &AsyncBackend,
    }
}

/// Execute a dataflow on the backend selected by [`backend_for`] — the
/// executor-side counterpart of [`nova_runtime::simulate`].
///
/// The configuration is validated at entry: zero-valued knobs
/// (`shards`, `key_buckets`, `key_space`, `run_budget`, `batch_size`)
/// return a descriptive [`ExecConfigError`] instead of being clamped
/// silently — or worse, panicking or spinning deep inside a worker.
pub fn execute(
    topology: &Topology,
    mut dist: impl FnMut(NodeId, NodeId) -> f64,
    dataflow: &Dataflow,
    cfg: &ExecConfig,
) -> Result<ExecResult, ExecConfigError> {
    cfg.validate()?;
    Ok(backend_for(cfg).run(topology, &mut dist, dataflow, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_core::baselines::{sink_based, source_based};
    use nova_core::{JoinQuery, StreamSpec};
    use nova_topology::NodeRole;

    /// sink(0), left src(1), right src(2), worker(3) — the engine's
    /// test world, reused so exec results are directly comparable.
    fn world(sink_cap: f64, src_cap: f64, worker_cap: f64) -> (Topology, JoinQuery) {
        let mut t = Topology::new();
        let sink = t.add_node(NodeRole::Sink, sink_cap, "sink");
        let l = t.add_node(NodeRole::Source, src_cap, "l");
        let r = t.add_node(NodeRole::Source, src_cap, "r");
        t.add_node(NodeRole::Worker, worker_cap, "w");
        let q = JoinQuery::by_key(
            vec![StreamSpec::keyed(l, 20.0, 1)],
            vec![StreamSpec::keyed(r, 20.0, 1)],
            sink,
        );
        (t, q)
    }

    fn flat_dist(a: NodeId, b: NodeId) -> f64 {
        if a == b {
            0.0
        } else {
            10.0
        }
    }

    /// Uncongested test config: unbounded queues make the run
    /// structurally drop-free, so exact-count and dropped == 0 asserts
    /// hold under any OS schedule (at time_scale 8 a ~30 ms scheduler
    /// stall is ~250 virtual ms — enough to trip a bounded queue
    /// spuriously on a loaded host). Tests that exercise shedding opt
    /// back into a bounded queue explicitly.
    fn fast_cfg(duration_ms: f64) -> ExecConfig {
        ExecConfig {
            duration_ms,
            window_ms: 100.0,
            time_scale: 8.0,
            max_queue_ms: f64::INFINITY,
            ..ExecConfig::default()
        }
    }

    #[test]
    fn sink_join_produces_outputs_with_sane_latency() {
        let (t, q) = world(1000.0, 1000.0, 1000.0);
        let plan = q.resolve();
        let p = sink_based(&q, &plan);
        let df = Dataflow::from_baseline(&q, &p);
        let res = execute(&t, flat_dist, &df, &fast_cfg(2000.0)).expect("valid config");
        assert!(res.delivered > 0, "no outputs: {res:?}");
        // One network hop (10 ms) lower-bounds latency; an uncongested
        // run stays well under the window + a few hops.
        assert!(res.mean_latency() >= 10.0, "mean {}", res.mean_latency());
        assert!(res.mean_latency() < 300.0, "mean {}", res.mean_latency());
        assert_eq!(res.dropped, 0);
        assert_eq!(res.threads, 4);
    }

    #[test]
    fn emission_rate_matches_configuration() {
        let (t, q) = world(1000.0, 1000.0, 1000.0);
        let plan = q.resolve();
        let p = sink_based(&q, &plan);
        let df = Dataflow::from_baseline(&q, &p);
        let res = execute(&t, flat_dist, &df, &fast_cfg(5000.0)).expect("valid config");
        // 2 sources × 20 tuples/s × 5 s = 200 (±1 boundary tuple each).
        assert!(
            (res.emitted as i64 - 200).abs() <= 2,
            "emitted {}",
            res.emitted
        );
    }

    #[test]
    fn source_colocation_contends_for_source_capacity() {
        // Joins co-located with slow sources must charge the source
        // node twice per tuple (ingest + join), showing up in busy time.
        let (t, q) = world(1000.0, 50.0, 1000.0);
        let plan = q.resolve();
        let p = source_based(&q, &plan);
        let df = Dataflow::from_baseline(&q, &p);
        let res = execute(&t, flat_dist, &df, &fast_cfg(2000.0)).expect("valid config");
        assert!(res.delivered > 0);
        // Each source ingests 20 t/s at 20 ms/tuple; the join host pays
        // double duty, so some node's busy time exceeds ingest-only.
        let max_busy = res.node_busy_ms.iter().cloned().fold(0.0, f64::max);
        assert!(max_busy > 2000.0 * 0.4, "busy {max_busy}");
    }

    #[test]
    fn overloaded_sink_sheds_and_bounds_latency() {
        let (t, q) = world(15.0, 1000.0, 1000.0);
        let plan = q.resolve();
        let p = sink_based(&q, &plan);
        let df = Dataflow::from_baseline(&q, &p);
        let cfg = ExecConfig {
            max_queue_ms: ExecConfig::default().max_queue_ms,
            ..fast_cfg(10_000.0)
        };
        let res = execute(&t, flat_dist, &df, &cfg).expect("valid config");
        assert!(res.dropped > 0, "bounded queues must shed load: {res:?}");
        // The queue cap bounds model-domain latency.
        assert!(
            res.latency_percentile(1.0) <= ExecConfig::default().max_queue_ms + 100.0,
            "p100 {}",
            res.latency_percentile(1.0)
        );
    }

    #[test]
    fn zero_knob_configs_error_instead_of_panicking_or_hanging() {
        // Regression (bug sweep): shards/key_buckets/key_space/
        // run_budget of 0 used to be clamped silently inside the
        // backends — and a hand-rolled caller doing `x % shards`
        // arithmetic would panic. Each zero knob must now fail loudly
        // at the `execute` boundary with a descriptive error.
        let (t, q) = world(1000.0, 1000.0, 1000.0);
        let plan = q.resolve();
        let p = sink_based(&q, &plan);
        let df = Dataflow::from_baseline(&q, &p);
        let base = fast_cfg(100.0);
        for (cfg, want) in [
            (
                ExecConfig { shards: 0, ..base },
                ExecConfigError::ZeroShards,
            ),
            (
                ExecConfig {
                    key_buckets: 0,
                    ..base
                },
                ExecConfigError::ZeroKeyBuckets,
            ),
            (
                ExecConfig {
                    key_space: 0,
                    ..base
                },
                ExecConfigError::ZeroKeySpace,
            ),
            (
                ExecConfig {
                    run_budget: 0,
                    backend: BackendKind::Async,
                    ..base
                },
                ExecConfigError::ZeroRunBudget,
            ),
            (
                ExecConfig {
                    batch_size: 0,
                    ..base
                },
                ExecConfigError::ZeroBatchSize,
            ),
        ] {
            assert_eq!(cfg.validate(), Err(want));
            assert_eq!(execute(&t, flat_dist, &df, &cfg).unwrap_err(), want);
            assert!(launch(&t, flat_dist, &df, &cfg).is_err());
            // The message names the knob — "descriptive error".
            assert!(format!("{want}").contains("must be >= 1"), "{want}");
        }
        // workers: 0 stays legal (documented auto value).
        let auto_workers = ExecConfig {
            workers: 0,
            backend: BackendKind::Async,
            ..base
        };
        assert_eq!(auto_workers.validate(), Ok(()));
        assert!(execute(&t, flat_dist, &df, &auto_workers).is_ok());
    }

    #[test]
    fn uncongested_runs_are_count_deterministic() {
        let (t, q) = world(1000.0, 1000.0, 1000.0);
        let plan = q.resolve();
        let p = sink_based(&q, &plan);
        let df = Dataflow::from_baseline(&q, &p);
        let cfg = ExecConfig {
            selectivity: 0.5,
            ..fast_cfg(3000.0)
        };
        let a = execute(&t, flat_dist, &df, &cfg).expect("valid config");
        let b = execute(&t, flat_dist, &df, &cfg).expect("valid config");
        assert_eq!(a.emitted, b.emitted);
        assert_eq!(a.matched, b.matched);
        assert_eq!(a.delivered, b.delivered);
    }
}
