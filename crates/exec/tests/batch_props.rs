//! Batch-equivalence property suite: `ExecConfig::batch_size` must be
//! a pure framing knob.
//!
//! The executor carries tuples in fixed-size [`TupleBatch`]es from the
//! sources through the shard workers to the sink, and the batch size
//! bounds *when* tuples move, never *what* joins. The suite pins that
//! claim the strongest way the repo knows how: `emitted` / `matched` /
//! `delivered` must be **identical** to the drain-exact simulator
//! ([`simulate_reconfigured`] with no switches — `simulate` minus the
//! duration truncation, exactly the executor's semantics) and identical
//! to each other across batch sizes {1, 2, 7, 64}, at every sampled
//! (backend × workers × shards × key-buckets) combination, on a
//! Zipfian-skewed keyed workload, including the fully starved
//! cooperative scheduler (`run_budget = 1`: one input message per
//! poll).
//!
//! Batch size 7 is deliberately co-prime with every rate and shard
//! count in the world, so source flushes constantly split emission
//! bursts mid-batch; 64 exceeds most per-window group sizes, so whole
//! windows cross the channel in one frame.

use std::sync::OnceLock;

use nova_core::baselines::sink_based;
use nova_core::{JoinQuery, StreamSpec};
use nova_exec::{execute, BackendKind, ExecConfig};
use nova_runtime::{simulate_reconfigured, Dataflow, SimConfig, SimResult};
use nova_topology::{NodeId, NodeRole, Topology};
use proptest::prelude::*;

const DURATION_MS: f64 = 1200.0;
const BATCH_SIZES: [usize; 4] = [1, 2, 7, 64];

/// Zipfian keyed world: four pairs whose rates follow a power law
/// (50, 20, 10, 5 t/s per side — the head pair carries ~59 % of the
/// traffic), each stream keyed and sub-keys drawn from `[0, 8)`. Every
/// interval divides 1000 exactly so simulator and executor produce
/// identical float event-time grids — the precondition for exact count
/// identity.
fn zipf_world() -> (Topology, JoinQuery) {
    let mut t = Topology::new();
    let sink = t.add_node(NodeRole::Sink, 1000.0, "sink");
    let rates = [50.0, 20.0, 10.0, 5.0];
    let mut left = Vec::new();
    let mut right = Vec::new();
    for (k, &rate) in rates.iter().enumerate() {
        let l = t.add_node(NodeRole::Source, 1000.0, format!("l{k}"));
        let r = t.add_node(NodeRole::Source, 1000.0, format!("r{k}"));
        left.push(StreamSpec::keyed(l, rate, k as u32));
        right.push(StreamSpec::keyed(r, rate, k as u32));
    }
    (t, JoinQuery::by_key(left, right, sink))
}

fn flat_dist(a: NodeId, b: NodeId) -> f64 {
    if a == b {
        0.0
    } else {
        10.0
    }
}

fn sim_cfg() -> SimConfig {
    SimConfig {
        duration_ms: DURATION_MS,
        window_ms: 200.0,
        selectivity: 0.8,
        key_space: 8,
        // Drop-free by construction: count identity only holds without
        // shedding, and a bounded queue could shed spuriously when the
        // OS stalls a thread.
        max_queue_ms: f64::INFINITY,
        ..SimConfig::default()
    }
}

/// The drain-exact simulator reference, computed once: with no switches
/// `simulate_reconfigured` replays the same emission grid and drains
/// every in-flight tuple, so a drop-free executor run must land on
/// these counts *exactly* — at any batch size.
fn sim_reference() -> &'static SimResult {
    static SIM: OnceLock<SimResult> = OnceLock::new();
    SIM.get_or_init(|| {
        let (t, q) = zipf_world();
        let df = Dataflow::from_baseline(&q, &sink_based(&q, &q.resolve()));
        let sim = simulate_reconfigured(&t, flat_dist, &df, &[], &sim_cfg());
        assert_eq!(sim.dropped, 0, "reference must stay drop-free");
        assert!(sim.delivered > 0, "reference must deliver");
        sim
    })
}

fn run_exec(cfg: &ExecConfig) -> nova_exec::ExecResult {
    let (t, q) = zipf_world();
    let df = Dataflow::from_baseline(&q, &sink_based(&q, &q.resolve()));
    execute(&t, flat_dist, &df, cfg).expect("valid exec config")
}

fn assert_counts_match_sim(cfg: &ExecConfig, tag: &str) {
    let sim = sim_reference();
    let res = run_exec(cfg);
    assert_eq!(res.dropped, 0, "{tag}: must stay drop-free");
    assert_eq!(res.emitted, sim.emitted, "{tag}: emitted diverged");
    assert_eq!(res.matched, sim.matched, "{tag}: matched diverged");
    assert_eq!(res.delivered, sim.delivered, "{tag}: delivered diverged");
}

/// The full deterministic matrix: every (backend × workers × shards ×
/// key-buckets) combination in the grid below, at every batch size in
/// {1, 2, 7, 64}, lands on the simulator's counts exactly — batching
/// is invisible to the join.
#[test]
fn every_batch_size_is_count_identical_across_the_backend_matrix() {
    // (backend, workers, shards, key_buckets): threaded is the single
    // sequential worker; sharded crosses shard counts with bucket
    // counts; async adds the worker dimension (W < S and W = S).
    let grid: &[(BackendKind, usize, usize, usize)] = &[
        (BackendKind::Threaded, 0, 1, 1),
        (BackendKind::Sharded, 0, 2, 1),
        (BackendKind::Sharded, 0, 2, 8),
        (BackendKind::Sharded, 0, 4, 1),
        (BackendKind::Sharded, 0, 4, 8),
        (BackendKind::Async, 1, 4, 1),
        (BackendKind::Async, 1, 4, 8),
        (BackendKind::Async, 2, 4, 1),
        (BackendKind::Async, 2, 4, 8),
        (BackendKind::Async, 2, 16, 8),
    ];
    for &(backend, workers, shards, key_buckets) in grid {
        for batch_size in BATCH_SIZES {
            let cfg = ExecConfig {
                backend,
                workers,
                shards,
                key_buckets,
                batch_size,
                ..ExecConfig::from_sim(&sim_cfg(), 16.0)
            };
            let tag = format!(
                "{backend:?} workers={workers} shards={shards} \
                 buckets={key_buckets} batch={batch_size}"
            );
            assert_counts_match_sim(&cfg, &tag);
        }
    }
}

/// The starved cooperative scheduler: `run_budget = 1` forces every
/// shard task to yield after a *single* input message, so each
/// `TupleBatch` is processed whole and the task pauses between batches
/// thousands of times per run. Counts must still be exact at every
/// batch size — the pause points sit on batch boundaries, never inside
/// one.
#[test]
fn run_budget_one_pauses_between_batches_without_losing_counts() {
    for batch_size in BATCH_SIZES {
        let cfg = ExecConfig {
            backend: BackendKind::Async,
            workers: 2,
            shards: 8,
            key_buckets: 8,
            run_budget: 1,
            batch_size,
            ..ExecConfig::from_sim(&sim_cfg(), 16.0)
        };
        assert_counts_match_sim(&cfg, &format!("run_budget=1 batch={batch_size}"));
    }
}

/// Worker pinning is a performance hint, never a correctness knob: the
/// same matrix corner with `pin_workers` on (round-robin affinity over
/// however many cores this host has — possibly one) keeps exact count
/// identity at every batch size.
#[test]
fn pinned_workers_preserve_exact_counts() {
    for (backend, workers, shards) in [
        (BackendKind::Sharded, 0usize, 4usize),
        (BackendKind::Async, 2, 8),
    ] {
        for batch_size in [1usize, 64] {
            let cfg = ExecConfig {
                backend,
                workers,
                shards,
                key_buckets: 8,
                pin_workers: true,
                batch_size,
                ..ExecConfig::from_sim(&sim_cfg(), 16.0)
            };
            let tag = format!("pinned {backend:?} shards={shards} batch={batch_size}");
            assert_counts_match_sim(&cfg, &tag);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomly sampled corners of the configuration space — any batch
    /// size in [1, 96] (not just the curated four), any backend, shard
    /// count, bucket count, worker count and a sampled run budget —
    /// stay count-identical to the simulator on the Zipfian keyed
    /// world.
    #[test]
    fn sampled_configurations_are_count_identical(
        batch_size in 1usize..=96,
        backend_pick in 0usize..3,
        workers in 1usize..=3,
        shards in 1usize..=4,
        bucket_pick in 0usize..3,
        budget_pick in 0usize..3,
    ) {
        let backend =
            [BackendKind::Threaded, BackendKind::Sharded, BackendKind::Async][backend_pick];
        let key_buckets = [1usize, 2, 8][bucket_pick];
        let run_budget = [1usize, 7, 4096][budget_pick];
        let cfg = ExecConfig {
            backend,
            workers,
            shards,
            key_buckets,
            batch_size,
            run_budget,
            ..ExecConfig::from_sim(&sim_cfg(), 16.0)
        };
        let sim = sim_reference();
        let res = run_exec(&cfg);
        let tag = format!(
            "{backend:?} workers={workers} shards={shards} buckets={key_buckets} \
             batch={batch_size} budget={run_budget}"
        );
        prop_assert_eq!(res.dropped, 0, "{}: must stay drop-free", tag);
        prop_assert_eq!(res.emitted, sim.emitted, "{}: emitted diverged", tag);
        prop_assert_eq!(res.matched, sim.matched, "{}: matched diverged", tag);
        prop_assert_eq!(res.delivered, sim.delivered, "{}: delivered diverged", tag);
    }
}
