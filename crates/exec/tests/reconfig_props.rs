//! Property test for live reconfiguration (the §3.5 control plane).
//!
//! The strongest statement the epoch-barrier/state-handoff protocol
//! makes is *count transparency*: a reconfiguration that changes only
//! **where** work runs — here, a full instance permutation, which
//! migrates every live `(window, pair, key_bucket)` group to a
//! different shard worker — must leave `emitted`/`matched`/`delivered`
//! exactly equal to a run that never reconfigured. The property is
//! sampled across (backend × workers × shards × key-buckets ×
//! batch-size) and across epoch positions (deliberately including
//! mid-window — and therefore mid-batch — epochs,
//! where pre/post tuples of the straddling window must still match
//! each other through the handoff), on a keyed, pair-skewed workload.

use std::sync::OnceLock;

use nova_core::baselines::{host_based, sink_based};
use nova_core::{JoinQuery, StreamSpec};
use nova_exec::{execute, launch, BackendKind, ExecConfig, ShardScale};
use nova_runtime::{simulate_reconfigured, Dataflow, PlanSwitch, SimConfig};
use nova_topology::{NodeId, NodeRole, Topology};
use proptest::prelude::*;

const DURATION_MS: f64 = 1200.0;

/// Keyed, pair-skewed world: hot pair at 5× the cold pair's rate, both
/// intervals dividing 1000 exactly.
fn world() -> (Topology, JoinQuery) {
    let mut t = Topology::new();
    let sink = t.add_node(NodeRole::Sink, 1000.0, "sink");
    let w1 = t.add_node(NodeRole::Worker, 1000.0, "w1");
    let w2 = t.add_node(NodeRole::Worker, 1000.0, "w2");
    let _ = (w1, w2);
    let hot_l = t.add_node(NodeRole::Source, 1000.0, "hot_l");
    let hot_r = t.add_node(NodeRole::Source, 1000.0, "hot_r");
    let cold_l = t.add_node(NodeRole::Source, 1000.0, "cold_l");
    let cold_r = t.add_node(NodeRole::Source, 1000.0, "cold_r");
    let q = JoinQuery::by_key(
        vec![
            StreamSpec::keyed(hot_l, 50.0, 0),
            StreamSpec::keyed(cold_l, 10.0, 1),
        ],
        vec![
            StreamSpec::keyed(hot_r, 50.0, 0),
            StreamSpec::keyed(cold_r, 10.0, 1),
        ],
        sink,
    );
    (t, q)
}

fn flat_dist(a: NodeId, b: NodeId) -> f64 {
    if a == b {
        0.0
    } else {
        10.0
    }
}

fn base_cfg() -> ExecConfig {
    ExecConfig {
        duration_ms: DURATION_MS,
        window_ms: 200.0,
        selectivity: 0.8,
        key_space: 8,
        time_scale: 16.0,
        // Drop-free by construction: count identity only holds without
        // shedding, and a bounded queue could shed spuriously when the
        // OS stalls a thread.
        max_queue_ms: f64::INFINITY,
        ..ExecConfig::default()
    }
}

/// The never-reconfigured reference counts — computed once; count
/// identity across backends/shards/buckets is already pinned by the
/// exec_vs_sim suite, so one threaded run is the whole reference.
fn baseline() -> &'static (u64, u64, u64) {
    static BASELINE: OnceLock<(u64, u64, u64)> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let (t, q) = world();
        let p = sink_based(&q, &q.resolve());
        let df = Dataflow::from_baseline(&q, &p);
        let res = execute(&t, flat_dist, &df, &base_cfg()).expect("valid config");
        assert_eq!(res.dropped, 0, "baseline must stay uncongested");
        assert!(res.delivered > 0, "baseline must deliver");
        (res.emitted, res.matched, res.delivered)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Migrating every live group to a different shard — an instance
    /// permutation away from the sink host and onto a worker, with the
    /// two pairs' instance slots swapped — preserves all three counts
    /// exactly, at sampled (backend × workers × shards × buckets ×
    /// batch) combinations and epoch positions, under keyed pair skew.
    /// The sampled epoch almost never lands on a batch boundary, so the
    /// sources' epoch split routinely flushes a partially filled
    /// `TupleBatch` at the barrier — and `clean_split` asserts the
    /// protocol bisected it exactly at `t < epoch`.
    #[test]
    fn full_group_migration_preserves_counts_exactly(
        backend_pick in 0usize..3,
        workers in 1usize..=3,
        shards in 1usize..=4,
        bucket_pick in 0usize..3,
        batch_pick in 0usize..4,
        epoch_frac in 0.3f64..0.7,
    ) {
        let backend = [BackendKind::Threaded, BackendKind::Sharded, BackendKind::Async][backend_pick];
        let key_buckets = [1usize, 2, 8][bucket_pick];
        let batch_size = [1usize, 2, 7, 64][batch_pick];
        let (t, q) = world();
        let pre = sink_based(&q, &q.resolve());
        // Post plan: both instances move (sink host -> worker) and
        // their slots swap, so every (window, pair, bucket) group's
        // flat shard index changes — total migration.
        let mut post = host_based(&q, &q.resolve(), nova_topology::NodeId(1));
        post.replicas.reverse();
        let df = Dataflow::from_baseline(&q, &pre);
        let cfg = ExecConfig {
            backend,
            workers,
            shards,
            key_buckets,
            batch_size,
            ..base_cfg()
        };
        let epoch_ms = epoch_frac * DURATION_MS;
        let switch = PlanSwitch::between(epoch_ms, &q, &pre, &post, 1.0);
        // The permutation really is one: pair 0's state goes to the
        // slot that now holds pair 0 (index 1 after the reverse).
        prop_assert_eq!(switch.succ.clone(), vec![Some(1), Some(0)]);

        let mut handle = launch(&t, flat_dist, &df, &cfg).expect("valid config");
        let stats = handle.apply(&switch, flat_dist).expect("reconfigure");
        prop_assert!(stats.migrated_tuples > 0, "live state must migrate");
        let res = handle.join();
        let (emitted, matched, delivered) = *baseline();
        let tag = format!(
            "{backend:?} workers={workers} shards={shards} buckets={key_buckets} \
             batch={batch_size} epoch={epoch_ms:.1}"
        );
        prop_assert!(stats.clean_split, "{}: epoch must bisect the batch", tag);
        prop_assert_eq!(res.dropped, 0, "{}: must stay drop-free", tag);
        prop_assert_eq!(res.emitted, emitted, "{}: emitted moved", tag);
        prop_assert_eq!(res.matched, matched, "{}: matched moved", tag);
        prop_assert_eq!(res.delivered, delivered, "{}: delivered moved", tag);
    }

    /// Controller-shaped switch sequences — a mid-run **source
    /// admission** (`add_source`) followed by a **relocating scale-up**
    /// (`apply_scaled` with a [`ShardScale`] override) — stay
    /// count-identical to the simulator replaying the same recorded
    /// switches, across sampled backends, shard layouts and epoch
    /// positions. This is the property the autoscaler leans on: any
    /// sequence it synthesizes from telemetry is replayable, so its
    /// decisions change *where and how wide* work runs, never *what*
    /// is computed.
    #[test]
    fn recorded_controller_sequences_replay_exactly(
        backend_pick in 0usize..3,
        workers in 1usize..=2,
        shards in 1usize..=3,
        bucket_pick in 0usize..3,
        batch_pick in 0usize..4,
        admit_frac in 0.3f64..0.5,
        rescale_frac in 0.65f64..0.85,
    ) {
        let backend = [BackendKind::Threaded, BackendKind::Sharded, BackendKind::Async][backend_pick];
        let key_buckets = [1usize, 2, 8][bucket_pick];
        let batch_size = [1usize, 2, 7, 64][batch_pick];
        let (mut t, q_pre) = world();
        // Admit a stream keyed against `cold_l` at cold_l's own rate:
        // equal partner rates keep the new pair single-partition (no
        // partition randomness), and keying to the *last* left stream
        // appends the new pair id, leaving existing ids stable.
        let late_r = t.add_node(NodeRole::Source, 1000.0, "late_r");
        let mut right = q_pre.right.clone();
        right.push(StreamSpec::keyed(late_r, 10.0, 1));
        let q_post = JoinQuery::by_key(q_pre.left.clone(), right, NodeId(0));

        let p_pre = host_based(&q_pre, &q_pre.resolve(), NodeId(1));
        let p_post = host_based(&q_post, &q_post.resolve(), NodeId(2));
        let df = Dataflow::from_baseline(&q_pre, &p_pre);
        let sim_cfg = SimConfig {
            duration_ms: DURATION_MS,
            window_ms: 200.0,
            selectivity: 0.8,
            key_space: 8,
            max_queue_ms: f64::INFINITY,
            ..SimConfig::default()
        };
        let admit = PlanSwitch::between(admit_frac * DURATION_MS, &q_post, &p_pre, &p_post, 1.0);
        let rescale = PlanSwitch::between(rescale_frac * DURATION_MS, &q_post, &p_post, &p_post, 1.0);
        let switches = [admit.clone(), rescale.clone()];
        let sim = simulate_reconfigured(&t, flat_dist, &df, &switches, &sim_cfg);
        prop_assert_eq!(sim.dropped, 0, "replay must stay drop-free");

        let cfg = ExecConfig {
            backend,
            workers,
            shards,
            key_buckets,
            batch_size,
            ..ExecConfig::from_sim(&sim_cfg, 16.0)
        };
        let tag = format!(
            "{backend:?} workers={workers} shards={shards} buckets={key_buckets} \
             batch={batch_size} admit={:.1} rescale={:.1}",
            admit.epoch_ms, rescale.epoch_ms
        );
        let mut handle = launch(&t, flat_dist, &df, &cfg).expect("valid config");
        let stats = handle.add_source(&admit, flat_dist).expect("admission");
        prop_assert!(stats.clean_split, "{}: admission epoch armed late", tag);
        let scale = ShardScale {
            shards: shards + 1,
            key_buckets: (key_buckets * 2).max(2),
        };
        let stats = handle.apply_scaled(&rescale, flat_dist, scale).expect("scale-up");
        prop_assert!(stats.clean_split, "{}: scale epoch armed late", tag);
        prop_assert_eq!(handle.shards(), shards + 1, "{}: scale not adopted", tag);
        let res = handle.join();
        prop_assert_eq!(res.dropped, 0, "{}: must stay drop-free", tag);
        prop_assert_eq!(res.emitted, sim.emitted, "{}: emitted diverged", tag);
        prop_assert_eq!(res.matched, sim.matched, "{}: matched diverged", tag);
        prop_assert_eq!(res.delivered, sim.delivered, "{}: delivered diverged", tag);
    }
}
