//! Live-telemetry consistency across a running reconfiguration.
//!
//! The telemetry plane promises two things (DESIGN.md §8): snapshots
//! taken off a *running* executor are monotonically consistent — no
//! cumulative counter ever decreases between successive snapshots,
//! even while an epoch barrier quiesces and respawns the whole shard
//! generation — and the final snapshot agrees exactly with the
//! [`nova_exec::ExecResult`] the run returns. Both are asserted here
//! on all three backends, polling [`nova_exec::ExecHandle::metrics`]
//! and draining an [`nova_exec::ExecHandle::subscribe`] stream across
//! a live [`PlanSwitch`].

use std::time::Duration;

use nova_core::baselines::{host_based, sink_based};
use nova_core::{JoinQuery, StreamSpec};
use nova_exec::{launch, BackendKind, ExecConfig, MetricsSnapshot};
use nova_runtime::{Dataflow, PlanSwitch};
use nova_topology::{NodeId, NodeRole, Topology};

const DURATION_MS: f64 = 2400.0;
const EPOCH_MS: f64 = 1100.0;

/// sink(0), l(1), r(2), w(3) — the engine's standard test world.
fn world() -> (Topology, JoinQuery) {
    let mut t = Topology::new();
    let sink = t.add_node(NodeRole::Sink, 1000.0, "sink");
    let l = t.add_node(NodeRole::Source, 1000.0, "l");
    let r = t.add_node(NodeRole::Source, 1000.0, "r");
    t.add_node(NodeRole::Worker, 1000.0, "w");
    let q = JoinQuery::by_key(
        vec![StreamSpec::keyed(l, 40.0, 1)],
        vec![StreamSpec::keyed(r, 40.0, 1)],
        sink,
    );
    (t, q)
}

fn flat_dist(a: NodeId, b: NodeId) -> f64 {
    if a == b {
        0.0
    } else {
        10.0
    }
}

fn cfg_for(backend: BackendKind, shards: usize, workers: usize) -> ExecConfig {
    ExecConfig {
        duration_ms: DURATION_MS,
        window_ms: 200.0,
        selectivity: 0.7,
        time_scale: 8.0,
        max_queue_ms: f64::INFINITY,
        backend,
        shards,
        workers,
        ..ExecConfig::default()
    }
}

/// Every cumulative quantity in `next` must be >= its value in `prev`.
/// The instrument lists are append-only across generations, so `prev`'s
/// rows are a positional prefix of `next`'s.
fn assert_monotonic(prev: &MetricsSnapshot, next: &MetricsSnapshot, tag: &str) {
    assert!(next.at_ms >= prev.at_ms, "{tag}: virtual time went back");
    assert!(next.emitted >= prev.emitted, "{tag}: emitted decreased");
    assert!(next.matched >= prev.matched, "{tag}: matched decreased");
    assert!(
        next.delivered >= prev.delivered,
        "{tag}: delivered decreased"
    );
    assert!(next.dropped >= prev.dropped, "{tag}: dropped decreased");
    assert!(
        next.trace_seq >= prev.trace_seq,
        "{tag}: trace_seq decreased"
    );
    assert!(
        next.latency.count() >= prev.latency.count(),
        "{tag}: latency count decreased"
    );
    assert!(
        next.shards.len() >= prev.shards.len(),
        "{tag}: shard instrument list shrank"
    );
    for (p, n) in prev.shards.iter().zip(next.shards.iter()) {
        let key = (p.generation, p.instance, p.shard);
        assert_eq!(
            key,
            (n.generation, n.instance, n.shard),
            "{tag}: shard row moved"
        );
        assert!(
            n.tuples_in >= p.tuples_in,
            "{tag}: shard {key:?} tuples_in decreased"
        );
        assert!(
            n.matched >= p.matched,
            "{tag}: shard {key:?} matched decreased"
        );
        assert!(
            n.out_tuples >= p.out_tuples,
            "{tag}: shard {key:?} out_tuples decreased"
        );
    }
    assert!(
        next.sources.len() >= prev.sources.len(),
        "{tag}: source instrument list shrank"
    );
    for (p, n) in prev.sources.iter().zip(next.sources.iter()) {
        assert_eq!(p.source, n.source, "{tag}: source row moved");
        assert!(
            n.emitted >= p.emitted,
            "{tag}: source {} emitted decreased",
            p.source
        );
    }
}

fn run_case(backend: BackendKind, shards: usize, workers: usize) {
    run_case_batched(backend, shards, workers, ExecConfig::default().batch_size);
}

/// The telemetry contract is batch-size independent: sources account
/// whole [`nova_exec::ExecConfig::batch_size`] frames at flush time and
/// shards at receive time, so snapshots must stay monotonic — and the
/// final one exactly equal to the `ExecResult` — no matter how tuples
/// are framed. `run_case` pins the default framing; the batched
/// variants below pin small odd and large frames.
fn run_case_batched(backend: BackendKind, shards: usize, workers: usize, batch_size: usize) {
    let (t, q) = world();
    let pre = sink_based(&q, &q.resolve());
    let post = host_based(&q, &q.resolve(), NodeId(3));
    let df = Dataflow::from_baseline(&q, &pre);
    let cfg = ExecConfig {
        batch_size,
        ..cfg_for(backend, shards, workers)
    };
    let switch = PlanSwitch::between(EPOCH_MS, &q, &pre, &post, 1.0);

    let mut handle = launch(&t, flat_dist, &df, &cfg).expect("valid config");
    let rx = handle
        .subscribe(Duration::from_millis(20))
        .expect("non-zero interval");
    let tag = format!("{backend:?} shards={shards} workers={workers} batch={batch_size}");

    // Poll live before, during-ish and after the reconfiguration.
    let mut polled: Vec<MetricsSnapshot> = vec![handle.metrics()];
    for _ in 0..4 {
        std::thread::sleep(Duration::from_millis(10));
        polled.push(handle.metrics());
    }
    let stats = handle.apply(&switch, flat_dist).expect("reconfigure");
    assert!(stats.clean_split, "{tag}: epoch armed late");
    polled.push(handle.metrics());
    for _ in 0..4 {
        std::thread::sleep(Duration::from_millis(10));
        polled.push(handle.metrics());
    }
    let res = handle.join();

    for pair in polled.windows(2) {
        assert_monotonic(&pair[0], &pair[1], &tag);
    }

    // The subscription stream ends with a final snapshot taken after
    // every worker joined; drain it and apply the same monotonic check.
    let streamed: Vec<MetricsSnapshot> = rx.iter().collect();
    assert!(
        streamed.len() >= 2,
        "{tag}: sampler delivered {} snapshots",
        streamed.len()
    );
    for pair in streamed.windows(2) {
        assert_monotonic(&pair[0], &pair[1], &tag);
    }

    // Final snapshot == ExecResult, exactly.
    let last = streamed.last().expect("final snapshot");
    assert_eq!(last.emitted, res.emitted, "{tag}: emitted mismatch");
    assert_eq!(last.matched, res.matched, "{tag}: matched mismatch");
    assert_eq!(last.delivered, res.delivered, "{tag}: delivered mismatch");
    assert_eq!(last.dropped, res.dropped, "{tag}: dropped mismatch");
    assert_eq!(
        last.latency.count(),
        res.delivered,
        "{tag}: one latency sample per delivery"
    );

    // The reconfiguration surfaced everywhere it should: EpochStats in
    // the result (satellite: they survive join) and in the snapshot,
    // and the post-epoch generation's shard instruments are present.
    assert_eq!(res.epochs.len(), 1, "{tag}: epochs lost in join");
    assert_eq!(res.epochs[0].epoch_ms, EPOCH_MS, "{tag}: wrong epoch");
    assert!(res.epochs[0].migrated_tuples > 0, "{tag}: nothing migrated");
    assert_eq!(last.epochs.len(), 1, "{tag}: snapshot missing epoch");
    let gen1 = last.shards.iter().filter(|s| s.generation == 1).count();
    assert_eq!(gen1, shards.max(1), "{tag}: generation-1 shards missing");
    assert!(
        last.shards.iter().all(|s| !s.live),
        "{tag}: instruments still live after join"
    );
    assert!(res.delivered > 0, "{tag}: run must deliver");
}

#[test]
fn threaded_snapshots_stay_consistent_across_reconfig() {
    run_case(BackendKind::Threaded, 1, 0);
}

#[test]
fn sharded_snapshots_stay_consistent_across_reconfig() {
    run_case(BackendKind::Sharded, 4, 0);
}

#[test]
fn async_snapshots_stay_consistent_across_reconfig() {
    run_case(BackendKind::Async, 4, 2);
}

/// Batch framing never double- or under-counts: a small odd batch (7,
/// co-prime with the emission grid, so the epoch splits a partially
/// filled frame) keeps every snapshot monotonic and the final one
/// equal to the `ExecResult`, on the backends with real concurrency.
#[test]
fn snapshots_stay_consistent_at_small_odd_batches() {
    run_case_batched(BackendKind::Sharded, 4, 0, 7);
    run_case_batched(BackendKind::Async, 4, 2, 7);
}

/// Large frames (64 tuples — several windows per batch at this rate)
/// move accounting to rare, bursty flushes; monotonicity and the final
/// snapshot ≡ `ExecResult` identity must survive the burstiness.
#[test]
fn snapshots_stay_consistent_at_large_batches() {
    run_case_batched(BackendKind::Threaded, 1, 0, 64);
    run_case_batched(BackendKind::Async, 4, 2, 64);
}

/// Regression: `subscribe(Duration::ZERO)` used to spawn a sampler
/// whose wait loop (`while waited < interval`) never slept — a thread
/// hot-spinning snapshots for the whole run. It must be rejected.
#[test]
fn zero_interval_subscription_is_rejected_not_hot_spinning() {
    let (t, q) = world();
    let pre = sink_based(&q, &q.resolve());
    let df = Dataflow::from_baseline(&q, &pre);
    let cfg = cfg_for(BackendKind::Threaded, 1, 0);
    let handle = launch(&t, flat_dist, &df, &cfg).expect("valid config");
    let err = handle.subscribe(Duration::ZERO).expect_err("zero interval");
    assert_eq!(err, nova_exec::SubscribeError::ZeroInterval);
    assert!(err.to_string().contains("interval must be > 0"));
    // The refusal leaves the run untouched.
    assert!(handle.subscribe(Duration::from_millis(20)).is_ok());
    assert!(handle.join().delivered > 0);
}

#[test]
fn disabled_telemetry_degrades_but_stays_usable() {
    let (t, q) = world();
    let pre = sink_based(&q, &q.resolve());
    let df = Dataflow::from_baseline(&q, &pre);
    let cfg = ExecConfig {
        telemetry: false,
        ..cfg_for(BackendKind::Threaded, 1, 0)
    };
    let handle = launch(&t, flat_dist, &df, &cfg).expect("valid config");
    // Degraded snapshots carry the coarse counters but no per-shard
    // rows, and the subscription receiver is already disconnected.
    let rx = handle
        .subscribe(Duration::from_millis(20))
        .expect("non-zero interval");
    // A zero interval is rejected up front (it would hot-spin the
    // sampler), telemetry on or off.
    assert!(handle.subscribe(Duration::ZERO).is_err());
    std::thread::sleep(Duration::from_millis(30));
    let snap = handle.metrics();
    assert!(snap.shards.is_empty());
    assert!(snap.sources.is_empty());
    assert_eq!(snap.latency.count(), 0);
    let res = handle.join();
    assert!(res.delivered > 0);
    assert!(
        rx.iter().next().is_none(),
        "dead receiver must yield nothing"
    );
}
