//! Controller edge cases: the closed-loop autoscaler on degenerate
//! feeds and the control plane's refusal paths.
//!
//! The happy path (detect pressure → scale → converge) lives in the
//! autoscale bench scenario and the `nova_exec::autoscale::Policy`
//! unit tests (cooldown suppression, the shards=1 scale-down floor).
//! This file pins the seams around it: a controller whose snapshot
//! feed never produces anything must neither spin nor deadlock, and an
//! epoch that timed out must poison later arms with a descriptive
//! error instead of corrupting the run.

use std::time::Duration;

use nova_core::baselines::{host_based, sink_based};
use nova_core::{JoinQuery, StreamSpec};
use nova_exec::{launch, AutoscaleConfig, Autoscaler, BackendKind, ExecConfig, ReconfigError};
use nova_runtime::{Dataflow, PlanSwitch};
use nova_topology::{NodeId, NodeRole, Topology};

const DURATION_MS: f64 = 2400.0;

/// sink(0), l(1), r(2), w(3) — the engine's standard test world.
fn world() -> (Topology, JoinQuery) {
    let mut t = Topology::new();
    let sink = t.add_node(NodeRole::Sink, 1000.0, "sink");
    let l = t.add_node(NodeRole::Source, 1000.0, "l");
    let r = t.add_node(NodeRole::Source, 1000.0, "r");
    t.add_node(NodeRole::Worker, 1000.0, "w");
    let q = JoinQuery::by_key(
        vec![StreamSpec::keyed(l, 40.0, 1)],
        vec![StreamSpec::keyed(r, 40.0, 1)],
        sink,
    );
    (t, q)
}

fn flat_dist(a: NodeId, b: NodeId) -> f64 {
    if a == b {
        0.0
    } else {
        10.0
    }
}

fn cfg_for(backend: BackendKind, shards: usize) -> ExecConfig {
    ExecConfig {
        duration_ms: DURATION_MS,
        window_ms: 200.0,
        selectivity: 0.7,
        time_scale: 8.0,
        max_queue_ms: f64::INFINITY,
        backend,
        shards,
        ..ExecConfig::default()
    }
}

/// Telemetry off: the subscription receiver is born disconnected, so
/// the controller sees an *empty snapshot feed*. It must fall back to
/// command-serving (no spinning, no premature exit), apply injected
/// switches, and join cleanly once the handle is released.
#[test]
fn empty_snapshot_feed_controller_serves_commands_and_joins() {
    let (t, q) = world();
    let pre = sink_based(&q, &q.resolve());
    let post = host_based(&q, &q.resolve(), NodeId(3));
    let df = Dataflow::from_baseline(&q, &pre);
    let cfg = ExecConfig {
        telemetry: false,
        ..cfg_for(BackendKind::Threaded, 1)
    };
    let handle = launch(&t, flat_dist, &df, &cfg).expect("valid config");
    let ctl = Autoscaler::spawn(
        handle,
        df.clone(),
        AutoscaleConfig::default(),
        Box::new(flat_dist),
        None,
    );
    let switch = PlanSwitch::between(1100.0, &q, &pre, &post, 1.0);
    let stats = ctl.apply(switch).expect("injected switch must apply");
    assert!(stats.clean_split, "epoch armed late");
    let report = ctl.join();
    assert!(report.result.delivered > 0, "run must deliver");
    assert_eq!(report.switches.len(), 1, "one applied switch recorded");
    assert!(!report.switches[0].admitted);
    let injected: Vec<_> = report
        .decisions
        .iter()
        .filter(|d| d.action == "injected-apply")
        .collect();
    assert_eq!(injected.len(), 1, "injected command must be logged");
    assert_eq!(injected[0].outcome, "applied");
}

/// A zero controller interval disables the feed outright (subscribing
/// with it would be rejected — see `SubscribeError::ZeroInterval`).
/// The controller must not treat that as a live feed and must still
/// terminate through `join` without any injected commands.
#[test]
fn zero_interval_controller_joins_without_a_feed() {
    let (t, q) = world();
    let pre = sink_based(&q, &q.resolve());
    let df = Dataflow::from_baseline(&q, &pre);
    let cfg = cfg_for(BackendKind::Threaded, 1);
    let handle = launch(&t, flat_dist, &df, &cfg).expect("valid config");
    let ctl = Autoscaler::spawn(
        handle,
        df.clone(),
        AutoscaleConfig {
            interval: Duration::ZERO,
            ..AutoscaleConfig::default()
        },
        Box::new(flat_dist),
        None,
    );
    let report = ctl.join();
    assert!(report.result.delivered > 0, "run must deliver");
    assert!(report.switches.is_empty(), "no switch without a feed");
    assert!(
        report.decisions.is_empty(),
        "no snapshots, no decisions: {:?}",
        report.decisions
    );
}

/// An epoch whose quiesce timed out stays armed; arming *anything*
/// on top of it — here a source admission — must be refused with
/// [`ReconfigError::EpochInFlight`] and a descriptive message, and the
/// run must still drain to a clean join afterwards.
#[test]
fn add_source_while_epoch_armed_is_rejected_descriptively() {
    let (mut t, q) = world();
    let late = t.add_node(NodeRole::Source, 1000.0, "late");
    let mut right = q.right.clone();
    right.push(StreamSpec::keyed(late, 40.0, 1));
    let q_post = JoinQuery::by_key(q.left.clone(), right, NodeId(0));

    let pre = sink_based(&q, &q.resolve());
    let post = host_based(&q, &q.resolve(), NodeId(3));
    let p_admit = host_based(&q_post, &q_post.resolve(), NodeId(3));
    let df = Dataflow::from_baseline(&q, &pre);
    // A 1 ms grace forces the timeout: the epoch sits far beyond the
    // stream end, so no source can barrier before the deadline.
    let cfg = ExecConfig {
        quiesce_grace_ms: 1.0,
        ..cfg_for(BackendKind::Threaded, 1)
    };
    let mut handle = launch(&t, flat_dist, &df, &cfg).expect("valid config");
    let stuck = PlanSwitch::between(1.0e9, &q, &pre, &post, 1.0);
    let err = handle
        .apply(&stuck, flat_dist)
        .expect_err("far-future epoch cannot quiesce within 1 ms");
    assert!(
        matches!(err, ReconfigError::QuiesceTimeout),
        "expected QuiesceTimeout, got {err}"
    );

    let admit = PlanSwitch::between(1.0e9 + 100.0, &q_post, &pre, &p_admit, 1.0);
    let err = handle
        .add_source(&admit, flat_dist)
        .expect_err("armed epoch must poison later arms");
    assert!(
        matches!(err, ReconfigError::EpochInFlight { epoch: 1 }),
        "expected EpochInFlight for epoch 1, got {err}"
    );
    assert!(
        err.to_string().contains("still armed"),
        "message must say the epoch is still armed: {err}"
    );

    // The timed-out epoch may not corrupt the run: join still drains.
    let res = handle.join();
    assert!(res.delivered > 0, "run must deliver despite the timeout");
    assert_eq!(res.dropped, 0, "drop-free world stays drop-free");
}
