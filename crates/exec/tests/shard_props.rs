//! Property tests for the keyed `(window, pair, key bucket)` shard
//! routing.
//!
//! Two invariants carry the whole keyed-sharding correctness argument:
//!
//! 1. **Co-location**: tuples that could ever match — same pair, same
//!    window, equal join sub-keys — route to the *same* shard at any
//!    shard count and any key-bucket count. (Matching requires equal
//!    sub-keys; equal sub-keys map to one bucket; `(window, pair,
//!    bucket)` determines the shard.)
//! 2. **PR 2 reproduction**: with a single key bucket the extended
//!    router equals the original `(window, pair)` hash *bit-for-bit*,
//!    so unkeyed workloads keep their exact shard layout (and their
//!    recorded scaling numbers).
//!
//! The PR 2 hash is reimplemented here verbatim as a frozen reference
//! model — if `shard_of` ever drifts for `bucket = 0`, this fails.

use nova_core::PairId;
use nova_exec::{key_bucket_of, shard_of};
use proptest::prelude::*;

/// PR 2's `(window, pair)` shard hash, frozen as the reference model.
fn pr2_shard_of(window: u64, pair: PairId, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut x = window ^ ((pair.0 as u64) << 32) ^ 0x9E37_79B9_7F4A_7C15;
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    (x % shards as u64) as usize
}

proptest! {
    /// (a) Co-keyed tuples of a pair + window co-locate at any bucket
    /// count: the full route — bucket the sub-key, hash the triple — is
    /// a pure function of `(window, pair, subkey)`, so recomputing it
    /// (as every source thread does independently) can never split a
    /// matching pair across shards. Both stages also stay in range.
    #[test]
    fn co_keyed_tuples_co_locate_at_any_bucket_count(
        wp in (0u64..1_000_000, 0u32..64),
        subkey in 0u32..100_000,
        key_buckets in 1usize..=64,
        shards in 1usize..=16,
    ) {
        let (window, pair) = wp;
        let bucket = key_bucket_of(subkey, key_buckets);
        prop_assert!((bucket as usize) < key_buckets);
        // A second, independent computation — the "other side" of the
        // join arriving at a different source thread.
        prop_assert_eq!(bucket, key_bucket_of(subkey, key_buckets));
        let shard = shard_of(window, PairId(pair), bucket, shards);
        prop_assert!(shard < shards);
        prop_assert_eq!(shard, shard_of(window, PairId(pair), bucket, shards));
    }

    /// (b) `key_buckets = 1` reproduces PR 2's `(window, pair)` routing
    /// exactly: every sub-key collapses to bucket 0 and the extended
    /// hash equals the frozen original bit-for-bit.
    #[test]
    fn single_bucket_reproduces_pr2_routing(
        wp in (0u64..u64::MAX, 0u32..u32::MAX),
        subkey in 0u32..u32::MAX,
        shards in 1usize..=16,
    ) {
        let (window, pair) = wp;
        prop_assert_eq!(key_bucket_of(subkey, 1), 0);
        prop_assert_eq!(key_bucket_of(subkey, 0), 0);
        prop_assert_eq!(
            shard_of(window, PairId(pair), key_bucket_of(subkey, 1), shards),
            pr2_shard_of(window, PairId(pair), shards)
        );
    }

    /// Unkeyed workloads (sub-key 0 everywhere) keep PR 2 routing at
    /// ANY bucket count: the constant bucket shifts which shard a
    /// `(window, pair)` lands on but still sends every tuple of the
    /// slice to one shard — the slice is never split.
    #[test]
    fn constant_subkey_never_splits_a_slice(
        wp in (0u64..1_000_000, 0u32..64),
        key_buckets in 1usize..=64,
        shards in 2usize..=16,
    ) {
        let (window, pair) = wp;
        let a = shard_of(window, PairId(pair), key_bucket_of(0, key_buckets), shards);
        let b = shard_of(window, PairId(pair), key_bucket_of(0, key_buckets), shards);
        prop_assert_eq!(a, b);
        prop_assert!(a < shards);
    }

    /// Distinct sub-keys of one hot `(window, pair)` spread: with
    /// enough sub-keys, more than one shard receives traffic whenever
    /// there is more than one shard — the anti-serialization property
    /// `(window, pair)` routing lacks on a single hot pair.
    #[test]
    fn hot_pair_traffic_reaches_multiple_shards(
        wp in (0u64..1_000_000, 0u32..64),
        key_buckets in 8usize..=64,
        shards in 2usize..=8,
    ) {
        let (window, pair) = wp;
        let mut seen = vec![false; shards];
        for subkey in 0..256u32 {
            let bucket = key_bucket_of(subkey, key_buckets);
            seen[shard_of(window, PairId(pair), bucket, shards)] = true;
        }
        let reached = seen.iter().filter(|&&s| s).count();
        prop_assert!(
            reached > 1,
            "256 sub-keys through {} buckets reached only {} of {} shards",
            key_buckets, reached, shards
        );
    }
}
