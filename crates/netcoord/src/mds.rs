//! Dense multidimensional scaling solvers.
//!
//! The paper's Eq. 5 states cost-space construction as the MDS problem of
//! finding an embedding whose induced distance matrix approximates the
//! latency matrix `A` in Frobenius norm. For testbed-scale matrices this
//! module solves it directly:
//!
//! * [`classical_mds`] — Torgerson's classical scaling: double-center the
//!   squared-distance matrix and take the top-d eigenpairs (computed here
//!   with power iteration + deflation, no external linear-algebra crate),
//! * [`smacof`] — iterative stress majorization via the Guttman
//!   transform, which directly minimizes the (unsquared) stress and
//!   typically refines the classical solution on non-metric data.
//!
//! Vivaldi (the scalable solver) is validated against these in tests.

use nova_geom::Coord;
use nova_topology::DenseRtt;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Classical MDS (Torgerson scaling) of a symmetric latency matrix into
/// `dim` dimensions.
///
/// Returns one coordinate per node. `dim` must be between 1 and
/// [`nova_geom::MAX_DIM`].
pub fn classical_mds(matrix: &DenseRtt, dim: usize, seed: u64) -> Vec<Coord> {
    let n = matrix.len();
    assert!(
        (1..=nova_geom::MAX_DIM).contains(&dim),
        "dim {dim} out of range"
    );
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![Coord::zero(dim)];
    }
    // B = -1/2 · J · D² · J  (double centering), J = I - 11ᵀ/n.
    let mut b = vec![0.0f64; n * n];
    let mut row_means = vec![0.0f64; n];
    let mut grand = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            let d = matrix.get(i, j);
            let d2 = d * d;
            b[i * n + j] = d2;
            row_means[i] += d2;
        }
        row_means[i] /= n as f64;
        grand += row_means[i];
    }
    grand /= n as f64;
    for i in 0..n {
        for j in 0..n {
            b[i * n + j] = -0.5 * (b[i * n + j] - row_means[i] - row_means[j] + grand);
        }
    }
    // Top-d eigenpairs by power iteration with deflation.
    let mut coords = vec![Coord::zero(dim); n];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut work = vec![0.0f64; n];
    #[allow(clippy::needless_range_loop)] // `d` indexes into every coord
    for d in 0..dim {
        let (lambda, v) = power_iteration(&b, n, &mut rng, 300);
        if lambda <= 1e-9 {
            break; // remaining spectrum is non-positive; stop early
        }
        let scale = lambda.sqrt();
        for i in 0..n {
            coords[i][d] = v[i] * scale;
        }
        // Deflate: B ← B − λ v vᵀ.
        for i in 0..n {
            work[i] = lambda * v[i];
        }
        for i in 0..n {
            for j in 0..n {
                b[i * n + j] -= work[i] * v[j];
            }
        }
    }
    coords
}

/// Largest-eigenvalue pair of a symmetric matrix via power iteration.
/// Returns `(eigenvalue, unit eigenvector)`. The eigenvalue can be
/// negative only if the matrix's dominant eigenvalue is negative, in which
/// case the caller should stop (B's useful spectrum is exhausted).
fn power_iteration(b: &[f64], n: usize, rng: &mut StdRng, iters: usize) -> (f64, Vec<f64>) {
    let mut v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    normalize(&mut v);
    let mut w = vec![0.0f64; n];
    let mut lambda = 0.0;
    for _ in 0..iters {
        matvec(b, n, &v, &mut w);
        let norm = normalize(&mut w);
        std::mem::swap(&mut v, &mut w);
        let new_lambda = norm;
        let converged = (new_lambda - lambda).abs() <= 1e-12 * new_lambda.abs().max(1.0);
        lambda = new_lambda;
        if converged {
            break;
        }
    }
    // Rayleigh quotient for a signed eigenvalue.
    matvec(b, n, &v, &mut w);
    let rq: f64 = v.iter().zip(&w).map(|(a, b)| a * b).sum();
    (rq, v)
}

fn matvec(b: &[f64], n: usize, v: &[f64], out: &mut [f64]) {
    for i in 0..n {
        let row = &b[i * n..(i + 1) * n];
        let mut acc = 0.0;
        for j in 0..n {
            acc += row[j] * v[j];
        }
        out[i] = acc;
    }
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

/// Options for the SMACOF stress-majorization solver.
#[derive(Debug, Clone, Copy)]
pub struct SmacofOptions {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Maximum Guttman-transform iterations.
    pub max_iters: usize,
    /// Relative stress-improvement threshold for early stopping.
    pub tolerance: f64,
    /// Seed for the random initialization (ignored when `init` is given).
    pub seed: u64,
}

impl Default for SmacofOptions {
    fn default() -> Self {
        SmacofOptions {
            dim: 2,
            max_iters: 300,
            tolerance: 1e-7,
            seed: 0x5aac0f,
        }
    }
}

/// SMACOF: minimize raw stress `Σ_{i<j} (d_ij(X) − A_ij)²` via the Guttman
/// transform. Optionally warm-started from `init` (e.g. the classical MDS
/// solution); otherwise starts from random coordinates.
pub fn smacof(matrix: &DenseRtt, opts: SmacofOptions, init: Option<Vec<Coord>>) -> Vec<Coord> {
    let n = matrix.len();
    if n == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut x: Vec<Coord> = match init {
        Some(v) => {
            assert_eq!(v.len(), n, "init length mismatch");
            v
        }
        None => (0..n)
            .map(|_| {
                let mut c = Coord::zero(opts.dim);
                for d in 0..opts.dim {
                    c[d] = rng.gen_range(-100.0..100.0);
                }
                c
            })
            .collect(),
    };
    if n == 1 {
        return x;
    }
    let mut prev_stress = stress(&x, matrix);
    let mut next = vec![Coord::zero(x[0].dim()); n];
    for _ in 0..opts.max_iters {
        // Guttman transform with uniform weights:
        // x_i ← (1/n) Σ_j [ x_j + A_ij · (x_i − x_j) / d_ij(X) ].
        for i in 0..n {
            let mut acc = Coord::zero(x[0].dim());
            for j in 0..n {
                if i == j {
                    continue;
                }
                let d = x[i].dist(&x[j]);
                let mut term = x[j];
                if d > 1e-12 {
                    term += (x[i] - x[j]) * (matrix.get(i, j) / d);
                }
                acc += term;
            }
            next[i] = acc * (1.0 / (n as f64 - 1.0));
        }
        std::mem::swap(&mut x, &mut next);
        let s = stress(&x, matrix);
        if prev_stress - s <= opts.tolerance * prev_stress.max(1e-12) {
            break;
        }
        prev_stress = s;
    }
    x
}

/// Raw stress `Σ_{i<j} (d_ij(X) − A_ij)²`.
pub fn stress(coords: &[Coord], matrix: &DenseRtt) -> f64 {
    let n = coords.len();
    let mut acc = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let diff = coords[i].dist(&coords[j]) - matrix.get(i, j);
            acc += diff * diff;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distances of points exactly embeddable in the plane.
    fn planar_matrix(pts: &[(f64, f64)]) -> DenseRtt {
        DenseRtt::from_fn(pts.len(), |i, j| {
            let (x1, y1) = pts[i];
            let (x2, y2) = pts[j];
            (x1 - x2).hypot(y1 - y2)
        })
    }

    fn max_pair_error(coords: &[Coord], m: &DenseRtt) -> f64 {
        let mut worst = 0.0f64;
        for (i, j, want) in m.pairs() {
            worst = worst.max((coords[i].dist(&coords[j]) - want).abs());
        }
        worst
    }

    #[test]
    fn classical_mds_recovers_planar_configuration() {
        let pts = [
            (0.0, 0.0),
            (10.0, 0.0),
            (0.0, 10.0),
            (10.0, 10.0),
            (5.0, 5.0),
            (2.0, 7.0),
        ];
        let m = planar_matrix(&pts);
        let coords = classical_mds(&m, 2, 1);
        // Distances (not absolute positions) must be recovered ~exactly.
        assert!(
            max_pair_error(&coords, &m) < 1e-6,
            "err {}",
            max_pair_error(&coords, &m)
        );
    }

    #[test]
    fn classical_mds_handles_trivial_sizes() {
        assert!(classical_mds(&DenseRtt::zeros(0), 2, 1).is_empty());
        assert_eq!(classical_mds(&DenseRtt::zeros(1), 2, 1).len(), 1);
        let m = planar_matrix(&[(0.0, 0.0), (3.0, 4.0)]);
        let c = classical_mds(&m, 2, 1);
        assert!((c[0].dist(&c[1]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn smacof_reduces_stress_from_random_start() {
        let pts = [(0.0, 0.0), (8.0, 1.0), (4.0, 9.0), (1.0, 4.0), (9.0, 6.0)];
        let m = planar_matrix(&pts);
        let mut rng = StdRng::seed_from_u64(2);
        let random: Vec<Coord> = (0..5)
            .map(|_| Coord::xy(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0)))
            .collect();
        let before = stress(&random, &m);
        let solved = smacof(&m, SmacofOptions::default(), Some(random));
        let after = stress(&solved, &m);
        assert!(after < before * 0.01, "stress {before} -> {after}");
    }

    #[test]
    fn smacof_refines_classical_solution_under_noise() {
        // Perturb a planar metric so it is no longer exactly embeddable;
        // SMACOF should not make the classical solution worse.
        let pts: Vec<(f64, f64)> = (0..12)
            .map(|i| ((i * 7 % 12) as f64, (i * 5 % 11) as f64))
            .collect();
        let clean = planar_matrix(&pts);
        let noisy = DenseRtt::from_fn(12, |i, j| {
            clean.get(i, j) * (1.0 + 0.2 * (((i * 31 + j * 17) % 10) as f64 / 10.0 - 0.5))
        });
        let classical = classical_mds(&noisy, 2, 3);
        let s_classical = stress(&classical, &noisy);
        let refined = smacof(&noisy, SmacofOptions::default(), Some(classical));
        let s_refined = stress(&refined, &noisy);
        assert!(
            s_refined <= s_classical + 1e-9,
            "{s_classical} -> {s_refined}"
        );
    }

    #[test]
    fn higher_dims_fit_at_least_as_well() {
        let pts = [
            (0.0, 0.0),
            (5.0, 1.0),
            (3.0, 8.0),
            (9.0, 4.0),
            (2.0, 2.0),
            (7.0, 7.0),
        ];
        let clean = planar_matrix(&pts);
        // Add asymmetric-ish noise to require extra dimensions.
        let noisy = DenseRtt::from_fn(6, |i, j| clean.get(i, j) + ((i + j) % 3) as f64);
        let c2 = classical_mds(&noisy, 2, 4);
        let c3 = classical_mds(&noisy, 3, 4);
        assert!(stress(&c3, &noisy) <= stress(&c2, &noisy) + 1e-9);
    }
}
