//! The Vivaldi decentralized network coordinate system.
//!
//! Vivaldi \[Dabek et al., SIGCOMM'04\] models latencies as spring rest
//! lengths: each node keeps a coordinate and a confidence-weighted error
//! estimate, and repeatedly nudges its coordinate towards/away from a
//! neighbor so the Euclidean distance matches the measured RTT. Nova uses
//! Vivaldi as "a stochastic solver for the MDS objective over \[a\]
//! neighborhood-induced sparse distance matrix" (§3.2): each node samples
//! only `m ≪ |V|` neighbors, avoiding quadratic measurement cost.
//!
//! The implementation follows the original update rule with the adaptive
//! timestep (`c_c·w`) and exponentially-weighted error (`c_e`), plus the
//! incremental operations Nova's re-optimization needs: adding a node
//! against a fixed neighbor set and removing a node (§3.5).

use nova_geom::Coord;
use nova_topology::{LatencyProvider, NodeId};
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::CostSpace;

/// Tuning for the Vivaldi relaxation.
#[derive(Debug, Clone, Copy)]
pub struct VivaldiConfig {
    /// Dimensionality of the coordinate space (the paper embeds in R²).
    pub dim: usize,
    /// Neighbor-set size `m` per node (paper: 20 for RIPE/FIT, 32 for
    /// PlanetLab/King).
    pub neighbors: usize,
    /// Coordinate timestep constant `c_c` (0.25 in the Vivaldi paper).
    pub cc: f64,
    /// Error-smoothing constant `c_e` (0.25 in the Vivaldi paper).
    pub ce: f64,
    /// Number of full relaxation rounds (every node updates against every
    /// neighbor once per round).
    pub rounds: usize,
    /// RNG seed (initial coordinates, neighbor sampling, tie-breaking).
    pub seed: u64,
}

impl Default for VivaldiConfig {
    fn default() -> Self {
        VivaldiConfig {
            dim: 2,
            neighbors: 20,
            cc: 0.25,
            ce: 0.25,
            rounds: 60,
            seed: 0x71a1d1,
        }
    }
}

/// A Vivaldi coordinate system over a fixed node population.
#[derive(Debug, Clone)]
pub struct Vivaldi {
    config: VivaldiConfig,
    coords: Vec<Coord>,
    /// Per-node confidence error (1.0 = no confidence, shrinks as the
    /// embedding settles).
    errors: Vec<f64>,
    /// Per-node neighbor sets.
    neighbor_sets: Vec<Vec<u32>>,
    rng: StdRng,
}

impl Vivaldi {
    /// Embed all nodes of `provider` by running `config.rounds` relaxation
    /// rounds over randomly sampled neighbor sets.
    pub fn embed(provider: &impl LatencyProvider, config: VivaldiConfig) -> Self {
        let n = provider.len();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut system = Vivaldi {
            config,
            coords: (0..n).map(|_| random_coord(config.dim, &mut rng)).collect(),
            errors: vec![1.0; n],
            neighbor_sets: sample_neighbor_sets(n, config.neighbors, &mut rng),
            rng,
        };
        for _ in 0..config.rounds {
            system.relax_round(provider);
        }
        system
    }

    /// One full relaxation round: every node updates against each of its
    /// neighbors once, in a randomized node order.
    pub fn relax_round(&mut self, provider: &impl LatencyProvider) {
        let n = self.coords.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.shuffle(&mut self.rng);
        for i in order {
            // Swap the neighbor list out to appease the borrow checker
            // without cloning per round.
            let neighbors = std::mem::take(&mut self.neighbor_sets[i as usize]);
            for &j in &neighbors {
                let rtt = provider.rtt(NodeId(i), NodeId(j));
                self.update(i as usize, j as usize, rtt);
            }
            self.neighbor_sets[i as usize] = neighbors;
        }
    }

    /// Single Vivaldi update of node `i` against remote node `j` with a
    /// fresh RTT sample.
    fn update(&mut self, i: usize, j: usize, rtt: f64) {
        if !rtt.is_finite() || rtt <= 0.0 || i == j {
            return;
        }
        let (ei, ej) = (self.errors[i], self.errors[j]);
        // Confidence weight: how much node i trusts its own estimate
        // relative to j's.
        let w = if ei + ej > 0.0 { ei / (ei + ej) } else { 0.5 };
        let dist = self.coords[i].dist(&self.coords[j]);
        let sample_err = (dist - rtt).abs() / rtt;
        // Exponentially-weighted moving average of the relative error.
        self.errors[i] =
            (sample_err * self.config.ce * w + ei * (1.0 - self.config.ce * w)).clamp(0.0, 2.0);
        // Move along the spring force direction with adaptive timestep.
        let delta = self.config.cc * w;
        let dir = match self.coords[j].direction_to(&self.coords[i], 1e-9) {
            Some(d) => d,
            None => random_unit(self.config.dim, &mut self.rng),
        };
        self.coords[i] += dir * (delta * (rtt - dist));
    }

    /// Incrementally add a node: measure RTTs to `m` existing nodes (via
    /// `provider`) and relax only the new node against them until its
    /// coordinate settles. Existing coordinates stay fixed — constant-time
    /// with respect to topology size, as §3.5 requires.
    ///
    /// Returns the id assigned to the new node (one past the current
    /// maximum).
    pub fn add_node(&mut self, provider: &impl LatencyProvider, new_id: NodeId) -> Coord {
        let n = self.coords.len();
        let m = self.config.neighbors.min(n.max(1));
        let mut neighbors: Vec<u32> = Vec::with_capacity(m);
        while neighbors.len() < m && n > 0 {
            let cand = self.rng.gen_range(0..n) as u32;
            if cand as usize != new_id.idx() && !neighbors.contains(&cand) {
                neighbors.push(cand);
            }
        }
        let mut coord = if neighbors.is_empty() {
            random_coord(self.config.dim, &mut self.rng)
        } else {
            // Start at the centroid of the neighbor coordinates.
            let pts: Vec<Coord> = neighbors.iter().map(|&j| self.coords[j as usize]).collect();
            Coord::centroid(&pts).unwrap_or_else(|| random_coord(self.config.dim, &mut self.rng))
        };
        let mut err = 1.0f64;
        // Fixed-size relaxation: rounds × m updates, independent of |V|.
        for _ in 0..self.config.rounds.max(16) {
            for &j in &neighbors {
                let rtt = provider.rtt(new_id, NodeId(j));
                if !rtt.is_finite() || rtt <= 0.0 {
                    continue;
                }
                let ej = self.errors[j as usize];
                let w = if err + ej > 0.0 {
                    err / (err + ej)
                } else {
                    0.5
                };
                let dist = coord.dist(&self.coords[j as usize]);
                let sample_err = (dist - rtt).abs() / rtt;
                err = (sample_err * self.config.ce * w + err * (1.0 - self.config.ce * w))
                    .clamp(0.0, 2.0);
                let dir = match self.coords[j as usize].direction_to(&coord, 1e-9) {
                    Some(d) => d,
                    None => random_unit(self.config.dim, &mut self.rng),
                };
                coord += dir * (self.config.cc * w * (rtt - dist));
            }
        }
        if new_id.idx() >= self.coords.len() {
            self.coords
                .resize(new_id.idx() + 1, Coord::zero(self.config.dim));
            self.errors.resize(new_id.idx() + 1, 1.0);
            self.neighbor_sets.resize(new_id.idx() + 1, Vec::new());
        }
        self.coords[new_id.idx()] = coord;
        self.errors[new_id.idx()] = err;
        self.neighbor_sets[new_id.idx()] = neighbors;
        coord
    }

    /// The embedded coordinates in node-id order.
    pub fn coords(&self) -> &[Coord] {
        &self.coords
    }

    /// Per-node confidence errors.
    pub fn errors(&self) -> &[f64] {
        &self.errors
    }

    /// Convert into a [`CostSpace`] for the optimizer.
    pub fn into_cost_space(self) -> CostSpace {
        CostSpace::new(self.coords)
    }

    /// The configuration used.
    pub fn config(&self) -> &VivaldiConfig {
        &self.config
    }
}

/// Embed one new node against an existing [`CostSpace`] without a full
/// [`Vivaldi`] system: sample `config.neighbors` live nodes, measure RTTs
/// through `provider`, and relax only the new coordinate (existing
/// coordinates stay fixed). This is the constant-time incremental
/// embedding Nova's re-optimization relies on (§3.5) and works regardless
/// of how the original space was computed (Vivaldi, MDS, ground truth).
pub fn embed_new_node(
    space: &CostSpace,
    provider: &impl LatencyProvider,
    new_id: NodeId,
    config: &VivaldiConfig,
) -> Coord {
    let mut rng = StdRng::seed_from_u64(config.seed ^ (new_id.0 as u64).wrapping_mul(0x9E37));
    let (ids, coords) = space.live();
    if ids.is_empty() {
        return random_coord(config.dim, &mut rng);
    }
    let m = config.neighbors.min(ids.len());
    // Sample m distinct live neighbors.
    let mut picked: Vec<usize> = Vec::with_capacity(m);
    while picked.len() < m {
        let cand = rng.gen_range(0..ids.len());
        if ids[cand] != new_id && !picked.contains(&cand) {
            picked.push(cand);
        }
        if picked.len() + 1 >= ids.len() {
            break;
        }
    }
    if picked.is_empty() {
        return random_coord(config.dim, &mut rng);
    }
    let anchor_coords: Vec<Coord> = picked.iter().map(|&i| coords[i]).collect();
    let mut coord =
        Coord::centroid(&anchor_coords).unwrap_or_else(|| random_coord(config.dim, &mut rng));
    let mut err = 1.0f64;
    for _ in 0..config.rounds.max(16) {
        for (slot, &i) in picked.iter().enumerate() {
            let rtt = provider.rtt(new_id, ids[i]);
            if !rtt.is_finite() || rtt <= 0.0 {
                continue;
            }
            let remote = anchor_coords[slot];
            let w = err / (err + 0.3); // fixed remote confidence
            let dist = coord.dist(&remote);
            let sample_err = (dist - rtt).abs() / rtt;
            err = (sample_err * config.ce * w + err * (1.0 - config.ce * w)).clamp(0.0, 2.0);
            let dir = match remote.direction_to(&coord, 1e-9) {
                Some(d) => d,
                None => random_unit(config.dim, &mut rng),
            };
            coord += dir * (config.cc * w * (rtt - dist));
        }
    }
    coord
}

fn random_coord(dim: usize, rng: &mut StdRng) -> Coord {
    let mut c = Coord::zero(dim);
    for i in 0..dim {
        c[i] = rng.gen_range(-1.0..1.0);
    }
    c
}

fn random_unit(dim: usize, rng: &mut StdRng) -> Coord {
    loop {
        let c = random_coord(dim, rng);
        let n = c.norm();
        if n > 1e-6 {
            return c * (1.0 / n);
        }
    }
}

fn sample_neighbor_sets(n: usize, m: usize, rng: &mut StdRng) -> Vec<Vec<u32>> {
    let m = m.min(n.saturating_sub(1));
    (0..n)
        .map(|i| {
            let mut set = Vec::with_capacity(m);
            while set.len() < m {
                let cand = rng.gen_range(0..n) as u32;
                if cand as usize != i && !set.contains(&cand) {
                    set.push(cand);
                }
            }
            set
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::EmbeddingError;
    use nova_topology::DenseRtt;

    /// A perfectly embeddable metric: points on a plane.
    fn planar_rtt(n: usize, seed: u64) -> DenseRtt {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<Coord> = (0..n)
            .map(|_| Coord::xy(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        DenseRtt::from_fn(n, |i, j| pts[i].dist(&pts[j]).max(0.1))
    }

    #[test]
    fn embeds_planar_metric_accurately() {
        let rtt = planar_rtt(80, 1);
        let v = Vivaldi::embed(
            &rtt,
            VivaldiConfig {
                rounds: 120,
                neighbors: 16,
                ..Default::default()
            },
        );
        let err = EmbeddingError::evaluate(v.coords(), &rtt, 20_000, 7);
        // Median relative error well under 15% on an embeddable metric.
        assert!(
            err.median_relative < 0.15,
            "median relative error {}",
            err.median_relative
        );
    }

    #[test]
    fn more_neighbors_do_not_hurt_much() {
        // The paper's m-selection study: accuracy converges quickly in m.
        let rtt = planar_rtt(100, 2);
        let cfg = |m: usize| VivaldiConfig {
            neighbors: m,
            rounds: 80,
            ..Default::default()
        };
        let few = Vivaldi::embed(&rtt, cfg(4));
        let many = Vivaldi::embed(&rtt, cfg(32));
        let err_few = EmbeddingError::evaluate(few.coords(), &rtt, 10_000, 3).mae;
        let err_many = EmbeddingError::evaluate(many.coords(), &rtt, 10_000, 3).mae;
        assert!(
            err_many <= err_few * 1.5,
            "m=32 ({err_many}) should not be much worse than m=4 ({err_few})"
        );
    }

    #[test]
    fn errors_decrease_with_relaxation() {
        let rtt = planar_rtt(60, 3);
        let v = Vivaldi::embed(
            &rtt,
            VivaldiConfig {
                rounds: 100,
                ..Default::default()
            },
        );
        let mean_err: f64 = v.errors().iter().sum::<f64>() / v.errors().len() as f64;
        assert!(
            mean_err < 0.5,
            "mean confidence error {mean_err} after convergence"
        );
    }

    #[test]
    fn incremental_add_places_node_near_its_true_position() {
        // Build an embedding of the first n-1 nodes, then add the last.
        let n = 80;
        let rtt = planar_rtt(n, 4);
        // Sub-provider hiding the last node.
        struct Sub<'a>(&'a DenseRtt, usize);
        impl LatencyProvider for Sub<'_> {
            fn len(&self) -> usize {
                self.1
            }
            fn rtt(&self, a: NodeId, b: NodeId) -> f64 {
                self.0.rtt(a, b)
            }
        }
        let sub = Sub(&rtt, n - 1);
        let mut v = Vivaldi::embed(
            &sub,
            VivaldiConfig {
                rounds: 120,
                neighbors: 16,
                ..Default::default()
            },
        );
        let new_id = NodeId((n - 1) as u32);
        v.add_node(&rtt, new_id);
        // Estimated distances from the new node should correlate with the
        // true RTTs: check MAE over the new node's pairs only.
        let coords = v.coords();
        let mut abs_err = 0.0;
        for j in 0..(n - 1) as u32 {
            let est = coords[new_id.idx()].dist(&coords[j as usize]);
            abs_err += (est - rtt.rtt(new_id, NodeId(j))).abs();
        }
        let mae = abs_err / (n - 1) as f64;
        // The planar metric spans ~140 units; demand placement within a
        // reasonable band.
        assert!(mae < 20.0, "incremental add MAE {mae}");
    }

    #[test]
    fn embedding_is_deterministic_per_seed() {
        let rtt = planar_rtt(40, 5);
        let a = Vivaldi::embed(&rtt, VivaldiConfig::default());
        let b = Vivaldi::embed(&rtt, VivaldiConfig::default());
        for (x, y) in a.coords().iter().zip(b.coords()) {
            assert_eq!(x.as_slice(), y.as_slice());
        }
    }

    #[test]
    fn into_cost_space_preserves_coords() {
        let rtt = planar_rtt(20, 6);
        let v = Vivaldi::embed(
            &rtt,
            VivaldiConfig {
                rounds: 20,
                ..Default::default()
            },
        );
        let c0 = v.coords()[0];
        let space = v.into_cost_space();
        assert_eq!(space.coord(NodeId(0)), Some(c0));
        assert_eq!(space.len(), 20);
    }
}
