//! Network coordinate systems (NCS) — Phase I of the Nova optimizer.
//!
//! Nova embeds the discrete topology into a continuous Euclidean *cost
//! space* by assigning every node a coordinate whose pairwise distances
//! approximate measured latencies (paper §3.2, Eq. 5). Two solvers are
//! provided, matching the paper:
//!
//! * [`vivaldi`] — the decentralized Vivaldi algorithm \[19\], which works
//!   from a small per-node neighbor set (m ≪ |V| measurements per node)
//!   and is the scalable default; it also supports incremental node
//!   addition/removal for re-optimization (§3.5),
//! * [`mds`] — the dense formulations: classical MDS (double-centering +
//!   power iteration) and SMACOF stress majorization, tractable for
//!   testbed-scale matrices and used to validate Vivaldi's output.
//!
//! [`error`] quantifies embedding quality (MAE, median relative error,
//! normalized stress) — the metrics behind the paper's neighbor-set size
//! selection and the Fig. 8 estimation-error experiment.

#![forbid(unsafe_code)]

pub mod error;
pub mod mds;
pub mod vivaldi;

pub use error::{EmbeddingError, ErrorSample};
pub use mds::{classical_mds, smacof, SmacofOptions};
pub use vivaldi::{embed_new_node, Vivaldi, VivaldiConfig};

use nova_geom::Coord;
use nova_topology::NodeId;

/// The cost space produced by Phase I: one coordinate per node.
///
/// Node ids index directly into the coordinate table. Removed nodes keep a
/// tombstone so ids of live nodes stay stable across re-optimizations.
#[derive(Debug, Clone)]
pub struct CostSpace {
    coords: Vec<Option<Coord>>,
    dim: usize,
}

impl CostSpace {
    /// Wrap a full coordinate assignment (one per node, id order).
    pub fn new(coords: Vec<Coord>) -> Self {
        let dim = coords.first().map_or(2, Coord::dim);
        CostSpace {
            coords: coords.into_iter().map(Some).collect(),
            dim,
        }
    }

    /// Dimensionality of the space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of coordinate slots (including tombstones).
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// Whether the space has no slots.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Coordinate of a live node.
    pub fn coord(&self, id: NodeId) -> Option<Coord> {
        self.coords.get(id.idx()).copied().flatten()
    }

    /// Estimated latency between two nodes = Euclidean distance in the
    /// cost space. `None` if either node was removed.
    pub fn distance(&self, a: NodeId, b: NodeId) -> Option<f64> {
        Some(self.coord(a)?.dist(&self.coord(b)?))
    }

    /// Insert or update a node's coordinate, growing the table if needed.
    pub fn set_coord(&mut self, id: NodeId, coord: Coord) {
        if id.idx() >= self.coords.len() {
            self.coords.resize(id.idx() + 1, None);
        }
        self.coords[id.idx()] = Some(coord);
    }

    /// Tombstone a node (e.g. after failure or departure, §3.5).
    pub fn remove(&mut self, id: NodeId) {
        if id.idx() < self.coords.len() {
            self.coords[id.idx()] = None;
        }
    }

    /// Iterate `(id, coord)` over live nodes.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Coord)> + '_ {
        self.coords
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.map(|c| (NodeId(i as u32), c)))
    }

    /// Coordinates of live nodes paired with their ids, materialized.
    /// Convenience for building search indexes.
    pub fn live(&self) -> (Vec<NodeId>, Vec<Coord>) {
        let mut ids = Vec::with_capacity(self.coords.len());
        let mut cs = Vec::with_capacity(self.coords.len());
        for (id, c) in self.iter() {
            ids.push(id);
            cs.push(c);
        }
        (ids, cs)
    }
}

impl nova_topology::LatencyProvider for CostSpace {
    fn len(&self) -> usize {
        self.coords.len()
    }

    /// Estimated RTT = cost-space distance. Pairs involving a removed
    /// node report `f64::INFINITY` so they are never preferred by
    /// consumers such as MST construction.
    fn rtt(&self, a: NodeId, b: NodeId) -> f64 {
        self.distance(a, b).unwrap_or(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_space_is_a_latency_provider() {
        use nova_topology::LatencyProvider;
        let mut s = CostSpace::new(vec![Coord::xy(0.0, 0.0), Coord::xy(3.0, 4.0)]);
        assert_eq!(s.rtt(NodeId(0), NodeId(1)), 5.0);
        s.remove(NodeId(1));
        assert_eq!(s.rtt(NodeId(0), NodeId(1)), f64::INFINITY);
    }

    #[test]
    fn cost_space_distance_and_tombstones() {
        let mut s = CostSpace::new(vec![Coord::xy(0.0, 0.0), Coord::xy(3.0, 4.0)]);
        assert_eq!(s.distance(NodeId(0), NodeId(1)), Some(5.0));
        s.remove(NodeId(1));
        assert_eq!(s.distance(NodeId(0), NodeId(1)), None);
        assert_eq!(s.iter().count(), 1);
        s.set_coord(NodeId(5), Coord::xy(1.0, 1.0));
        assert_eq!(s.len(), 6);
        assert_eq!(s.coord(NodeId(5)), Some(Coord::xy(1.0, 1.0)));
        let (ids, cs) = s.live();
        assert_eq!(ids.len(), 2);
        assert_eq!(cs.len(), 2);
    }
}
