//! Embedding-quality metrics.
//!
//! The paper selects Vivaldi's neighbor-set size by measuring the mean
//! absolute error (MAE) of the coordinate system (§4.1) and evaluates the
//! practical impact of triangle-inequality violations by comparing
//! estimated against measured latencies (§4.4, Fig. 8). This module
//! computes those statistics over either all pairs or a random sample
//! (essential for large topologies).

use nova_geom::Coord;
use nova_topology::{LatencyProvider, NodeId};

/// One sampled pair with its true and estimated latency.
#[derive(Debug, Clone, Copy)]
pub struct ErrorSample {
    /// First node.
    pub a: NodeId,
    /// Second node.
    pub b: NodeId,
    /// Measured RTT (ms).
    pub rtt: f64,
    /// Embedded (estimated) distance (ms).
    pub estimate: f64,
}

/// Aggregate embedding-error statistics.
#[derive(Debug, Clone, Copy)]
pub struct EmbeddingError {
    /// Mean absolute error |estimate − rtt| in milliseconds.
    pub mae: f64,
    /// Median of |estimate − rtt| / rtt.
    pub median_relative: f64,
    /// 90th percentile of |estimate − rtt| / rtt.
    pub p90_relative: f64,
    /// Number of pairs measured.
    pub pairs: usize,
}

impl EmbeddingError {
    /// Evaluate `coords` against the ground-truth `provider` over up to
    /// `max_pairs` sampled node pairs (deterministic per `seed`). When the
    /// full pair count is below `max_pairs`, every pair is used.
    pub fn evaluate(
        coords: &[Coord],
        provider: &impl LatencyProvider,
        max_pairs: usize,
        seed: u64,
    ) -> EmbeddingError {
        let samples = sample_pairs(coords, provider, max_pairs, seed);
        Self::from_samples(&samples)
    }

    /// Aggregate pre-collected samples.
    pub fn from_samples(samples: &[ErrorSample]) -> EmbeddingError {
        if samples.is_empty() {
            return EmbeddingError {
                mae: 0.0,
                median_relative: 0.0,
                p90_relative: 0.0,
                pairs: 0,
            };
        }
        let mut abs_sum = 0.0;
        let mut rel: Vec<f64> = Vec::with_capacity(samples.len());
        for s in samples {
            let abs = (s.estimate - s.rtt).abs();
            abs_sum += abs;
            if s.rtt > 0.0 {
                rel.push(abs / s.rtt);
            }
        }
        rel.sort_unstable_by(f64::total_cmp);
        let pick = |q: f64| -> f64 {
            if rel.is_empty() {
                0.0
            } else {
                rel[((rel.len() - 1) as f64 * q).round() as usize]
            }
        };
        EmbeddingError {
            mae: abs_sum / samples.len() as f64,
            median_relative: pick(0.5),
            p90_relative: pick(0.9),
            pairs: samples.len(),
        }
    }
}

/// Sample up to `max_pairs` node pairs with their measured and estimated
/// latencies. All pairs are used when the total count fits the budget.
pub fn sample_pairs(
    coords: &[Coord],
    provider: &impl LatencyProvider,
    max_pairs: usize,
    seed: u64,
) -> Vec<ErrorSample> {
    let n = coords.len().min(provider.len());
    if n < 2 {
        return Vec::new();
    }
    let total = n * (n - 1) / 2;
    let mut out = Vec::with_capacity(max_pairs.min(total));
    if total <= max_pairs {
        for i in 0..n {
            for j in (i + 1)..n {
                out.push(make_sample(coords, provider, i, j));
            }
        }
    } else {
        // xorshift-based deterministic sampling without replacement
        // guarantees are unnecessary here — duplicates are harmless for
        // aggregate statistics.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        while out.len() < max_pairs {
            let i = (next() % n as u64) as usize;
            let j = (next() % n as u64) as usize;
            if i != j {
                out.push(make_sample(coords, provider, i.min(j), i.max(j)));
            }
        }
    }
    out
}

fn make_sample(
    coords: &[Coord],
    provider: &impl LatencyProvider,
    i: usize,
    j: usize,
) -> ErrorSample {
    let (a, b) = (NodeId(i as u32), NodeId(j as u32));
    ErrorSample {
        a,
        b,
        rtt: provider.rtt(a, b),
        estimate: coords[i].dist(&coords[j]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_topology::DenseRtt;

    #[test]
    fn perfect_embedding_has_zero_error() {
        let coords = vec![
            Coord::xy(0.0, 0.0),
            Coord::xy(3.0, 4.0),
            Coord::xy(6.0, 8.0),
        ];
        let m = DenseRtt::from_fn(3, |i, j| coords[i].dist(&coords[j]));
        let e = EmbeddingError::evaluate(&coords, &m, 1000, 1);
        assert_eq!(e.mae, 0.0);
        assert_eq!(e.median_relative, 0.0);
        assert_eq!(e.pairs, 3);
    }

    #[test]
    fn known_offset_gives_known_mae() {
        let coords = vec![Coord::xy(0.0, 0.0), Coord::xy(10.0, 0.0)];
        // True RTT is 14: estimate 10 -> abs error 4, relative 4/14.
        let m = DenseRtt::from_fn(2, |_, _| 14.0);
        let e = EmbeddingError::evaluate(&coords, &m, 10, 1);
        assert!((e.mae - 4.0).abs() < 1e-12);
        assert!((e.median_relative - 4.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_respects_budget() {
        let n = 100;
        let coords: Vec<Coord> = (0..n).map(|i| Coord::xy(i as f64, 0.0)).collect();
        let m = DenseRtt::from_fn(n, |i, j| (i as f64 - j as f64).abs());
        let s = sample_pairs(&coords, &m, 500, 3);
        assert_eq!(s.len(), 500);
        let e = EmbeddingError::from_samples(&s);
        assert_eq!(e.pairs, 500);
        assert!(e.mae < 1e-9);
    }

    #[test]
    fn empty_inputs_do_not_panic() {
        let e = EmbeddingError::from_samples(&[]);
        assert_eq!(e.pairs, 0);
        let coords: Vec<Coord> = vec![Coord::xy(0.0, 0.0)];
        let m = DenseRtt::zeros(1);
        assert!(sample_pairs(&coords, &m, 10, 1).is_empty());
    }

    #[test]
    fn percentiles_are_ordered() {
        let coords: Vec<Coord> = (0..30).map(|i| Coord::xy(i as f64 * 2.0, 0.0)).collect();
        let m = DenseRtt::from_fn(30, |i, j| (i as f64 - j as f64).abs());
        let e = EmbeddingError::evaluate(&coords, &m, 10_000, 2);
        assert!(e.p90_relative >= e.median_relative);
        assert!(e.mae > 0.0);
    }
}
