//! Candidate-search ablation: exact k-d tree vs Annoy-style forest.
//!
//! Phase III issues one k-NN query per join pair; the paper switches
//! from an exact index to Annoy beyond a few thousand nodes. This bench
//! measures build and query cost of both at increasing scales (clustered
//! point sets like the synthetic topologies).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nova_geom::{AnnoyIndex, AnnoyParams, Coord, KdTree, NnIndex};
use rand::prelude::*;
use rand::rngs::StdRng;

fn clustered_points(n: usize, seed: u64) -> Vec<Coord> {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Coord> = (0..16)
        .map(|_| Coord::xy(rng.gen_range(0.0..100.0), rng.gen_range(-50.0..50.0)))
        .collect();
    (0..n)
        .map(|_| {
            let c = centers[rng.gen_range(0..centers.len())];
            Coord::xy(
                c[0] + rng.gen_range(-4.0..4.0),
                c[1] + rng.gen_range(-4.0..4.0),
            )
        })
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_build");
    group.sample_size(10);
    for n in [1_000usize, 10_000, 50_000] {
        let pts = clustered_points(n, 1);
        group.bench_with_input(BenchmarkId::new("kdtree", n), &pts, |b, pts| {
            b.iter(|| KdTree::build(std::hint::black_box(pts)))
        });
        group.bench_with_input(BenchmarkId::new("annoy", n), &pts, |b, pts| {
            b.iter(|| AnnoyIndex::build(std::hint::black_box(pts), AnnoyParams::default()))
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_query_k16");
    for n in [1_000usize, 10_000, 50_000] {
        let pts = clustered_points(n, 2);
        let kd = KdTree::build(&pts);
        let annoy = AnnoyIndex::build(&pts, AnnoyParams::default());
        let q = Coord::xy(50.0, 0.0);
        group.bench_with_input(BenchmarkId::new("kdtree", n), &q, |b, q| {
            b.iter(|| kd.knn(std::hint::black_box(q), 16))
        });
        group.bench_with_input(BenchmarkId::new("annoy", n), &q, |b, q| {
            b.iter(|| annoy.knn(std::hint::black_box(q), 16))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_query);
criterion_main!(benches);
