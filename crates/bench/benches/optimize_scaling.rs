//! Near-linear scaling of the full Nova pipeline (Fig. 10's criterion
//! companion): one sample per topology size, embedding included.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nova_core::{Nova, NovaConfig};
use nova_netcoord::{Vivaldi, VivaldiConfig};
use nova_topology::{SyntheticParams, SyntheticTopology};
use nova_workloads::{synthetic_opp, OppParams};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize_scaling");
    group.sample_size(10);
    for n in [500usize, 2_000, 8_000, 32_000] {
        let syn = SyntheticTopology::generate(&SyntheticParams {
            n,
            seed: 5,
            ..Default::default()
        });
        let w = synthetic_opp(
            &syn.topology,
            &OppParams {
                seed: 5,
                ..OppParams::default()
            },
        );
        let vivaldi_cfg = VivaldiConfig {
            neighbors: 20,
            rounds: 16,
            ..VivaldiConfig::default()
        };
        let space = Vivaldi::embed(&syn.rtt, vivaldi_cfg).into_cost_space();
        group.bench_with_input(BenchmarkId::from_parameter(n), &w, |b, w| {
            b.iter_batched(
                || Nova::with_cost_space(w.topology.clone(), space.clone(), NovaConfig::default()),
                |mut nova| {
                    nova.optimize(w.query.clone());
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
