//! Phase I cost: Vivaldi embedding and incremental node addition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nova_netcoord::{embed_new_node, Vivaldi, VivaldiConfig};
use nova_topology::{NodeId, SyntheticParams, SyntheticTopology, Testbed};

fn bench_embed(c: &mut Criterion) {
    let mut group = c.benchmark_group("vivaldi_embed");
    group.sample_size(10);
    // Testbed-scale: FIT IoT Lab (433 nodes) with the paper's m = 20.
    let fit = Testbed::FitIotLab.generate(1);
    group.bench_function("fit_iot_lab_433", |b| {
        b.iter(|| {
            Vivaldi::embed(
                &fit.rtt,
                VivaldiConfig {
                    neighbors: 20,
                    rounds: 48,
                    ..VivaldiConfig::default()
                },
            )
        })
    });
    // Synthetic scaling.
    for n in [1_000usize, 10_000] {
        let syn = SyntheticTopology::generate(&SyntheticParams {
            n,
            seed: 2,
            ..Default::default()
        });
        group.bench_with_input(BenchmarkId::new("synthetic", n), &syn, |b, syn| {
            b.iter(|| {
                Vivaldi::embed(
                    &syn.rtt,
                    VivaldiConfig {
                        neighbors: 20,
                        rounds: 24,
                        ..VivaldiConfig::default()
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_incremental(c: &mut Criterion) {
    // Adding one node must be constant-time w.r.t. topology size (§3.5).
    let mut group = c.benchmark_group("vivaldi_add_node");
    for n in [1_000usize, 10_000, 100_000] {
        let syn = SyntheticTopology::generate(&SyntheticParams {
            n,
            seed: 3,
            ..Default::default()
        });
        let cfg = VivaldiConfig {
            neighbors: 20,
            rounds: 16,
            ..VivaldiConfig::default()
        };
        let vivaldi = Vivaldi::embed(&syn.rtt, VivaldiConfig { rounds: 8, ..cfg });
        let space = vivaldi.into_cost_space();
        group.bench_with_input(BenchmarkId::from_parameter(n), &space, |b, space| {
            b.iter(|| embed_new_node(space, &syn.rtt, NodeId((n - 1) as u32), &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_embed, bench_incremental);
criterion_main!(benches);
