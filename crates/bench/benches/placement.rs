//! Phase II + III cost: virtual placement and physical assignment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nova_core::{compute_optima, Nova, NovaConfig};
use nova_netcoord::{Vivaldi, VivaldiConfig};
use nova_topology::{SyntheticParams, SyntheticTopology};
use nova_workloads::{synthetic_opp, OppParams};

fn bench_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement_phases");
    group.sample_size(10);
    for n in [1_000usize, 10_000] {
        let syn = SyntheticTopology::generate(&SyntheticParams {
            n,
            seed: 9,
            ..Default::default()
        });
        let w = synthetic_opp(
            &syn.topology,
            &OppParams {
                seed: 9,
                ..OppParams::default()
            },
        );
        let vivaldi = Vivaldi::embed(
            &syn.rtt,
            VivaldiConfig {
                neighbors: 20,
                rounds: 24,
                ..VivaldiConfig::default()
            },
        );
        let space = vivaldi.into_cost_space();
        let plan = w.query.resolve();

        group.bench_with_input(BenchmarkId::new("phase2_medians", n), &plan, |b, plan| {
            b.iter(|| compute_optima(&w.query, plan, &space))
        });
        group.bench_with_input(BenchmarkId::new("full_optimize", n), &w, |b, w| {
            b.iter_batched(
                || Nova::with_cost_space(w.topology.clone(), space.clone(), NovaConfig::default()),
                |mut nova| {
                    nova.optimize(w.query.clone());
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
