//! Discrete-event engine throughput: events processed per wall-second
//! for a scaled-down DEBS run.

use criterion::{criterion_group, criterion_main, Criterion};
use nova_bench::endtoend::{default_sim, end_to_end_runs};
use nova_runtime::SimConfig;
use nova_workloads::{environmental_scenario, EnvironmentalParams};

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_engine");
    group.sample_size(10);
    let scenario = environmental_scenario(&EnvironmentalParams {
        rate: 200.0, // scaled down from 1 kHz for bench iteration counts
        ..EnvironmentalParams::default()
    });
    let sim = SimConfig {
        duration_ms: 5_000.0,
        ..default_sim(5_000.0, 1)
    };
    group.bench_function("debs_5s_all_approaches", |b| {
        b.iter(|| end_to_end_runs(std::hint::black_box(&scenario), &sim, 1.0))
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
