//! Hardware throughput of the threaded executor vs. simulator event rate.
//!
//! The headline number: aggregate source tuples/s physically pushed
//! through the executor's threads on a keyed join with selectivity 1.0
//! (uncapped nodes, zero-delay links, windows sized so the join state
//! stays hot). The companion benchmark runs the *simulator* on the same
//! dataflow, so one report shows model-events/s next to real tuples/s.
//!
//! Run with: `cargo bench -p nova-bench --bench exec_throughput`

use criterion::{criterion_group, criterion_main, Criterion};
use nova_core::baselines::sink_based;
use nova_core::{JoinQuery, StreamSpec};
use nova_exec::{execute, ExecConfig};
use nova_runtime::{simulate, Dataflow, SimConfig};
use nova_topology::{NodeId, NodeRole, Topology};

/// `n_pairs` keyed joins, `rate` tuples/s per stream, uncapped nodes
/// (capacity 0 ⇒ pure relay: no service pacing in the hot path).
fn throughput_world(n_pairs: u32, rate: f64) -> (Topology, Dataflow) {
    let mut t = Topology::new();
    let sink = t.add_node(NodeRole::Sink, 0.0, "sink");
    let mut left = Vec::new();
    let mut right = Vec::new();
    for k in 0..n_pairs {
        let l = t.add_node(NodeRole::Source, 0.0, format!("l{k}"));
        let r = t.add_node(NodeRole::Source, 0.0, format!("r{k}"));
        left.push(StreamSpec::keyed(l, rate, k));
        right.push(StreamSpec::keyed(r, rate, k));
    }
    let query = JoinQuery::by_key(left, right, sink);
    let placement = sink_based(&query, &query.resolve());
    let dataflow = Dataflow::from_baseline(&query, &placement);
    (t, dataflow)
}

fn zero_dist(_a: NodeId, _b: NodeId) -> f64 {
    0.0
}

fn exec_cfg(duration_ms: f64) -> ExecConfig {
    ExecConfig {
        duration_ms,
        // One emission interval per window: each window holds one tuple
        // per side, so the selectivity-1.0 keyed join emits ~1 output
        // per input tuple pair without a quadratic window cross-product.
        window_ms: 1000.0 / 300_000.0,
        selectivity: 1.0,
        gc_interval_ms: 5.0,
        seed: 0x51,
        max_queue_ms: f64::INFINITY,
        // Effectively flat-out: virtual schedule runs far ahead of the
        // wall clock, so sources never sleep.
        time_scale: 1000.0,
        batch_size: 1024,
        channel_capacity: 64,
        max_tuples_per_source: u64::MAX,
    }
}

fn bench_exec_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_throughput");
    group.sample_size(10);

    // 2 pairs × 2 × 300 k tuples/s = 1.2 M tuples/s aggregate demand.
    let (t, df) = throughput_world(2, 300_000.0);
    let cfg = exec_cfg(1000.0);

    // One measured run up front for the tuples/s headline.
    let probe = execute(&t, zero_dist, &df, &cfg);
    println!(
        "exec_throughput: {} tuples + {} matches in {:.0} ms wall \
         -> {:.0} tuples/s aggregate through {} threads ({} delivered)",
        probe.emitted,
        probe.matched,
        probe.wall_ms,
        probe.input_tuples_per_wall_s(),
        probe.threads,
        probe.delivered,
    );
    assert!(probe.delivered > 0, "keyed join must deliver outputs");

    group.bench_function("threaded_keyed_join_1.2M", |b| {
        b.iter(|| execute(&t, zero_dist, &df, std::hint::black_box(&cfg)))
    });

    // The simulator on the identical dataflow, scaled to a tenth of the
    // virtual horizon (its single-threaded event loop pays ~4 heap
    // events per tuple).
    let sim_cfg = SimConfig {
        duration_ms: 100.0,
        window_ms: cfg.window_ms,
        selectivity: 1.0,
        gc_interval_ms: cfg.gc_interval_ms,
        seed: cfg.seed,
        max_events: u64::MAX,
        max_queue_ms: f64::INFINITY,
    };
    let sim_probe = {
        let start = std::time::Instant::now();
        let res = simulate(&t, zero_dist, &df, &sim_cfg);
        let wall = start.elapsed().as_secs_f64();
        println!(
            "exec_throughput: simulator pushed {} tuples in {:.0} ms wall -> {:.0} tuples/s",
            res.emitted,
            wall * 1000.0,
            res.emitted as f64 / wall,
        );
        res
    };
    assert!(sim_probe.delivered > 0);

    group.bench_function("simulator_keyed_join_120k", |b| {
        b.iter(|| simulate(&t, zero_dist, &df, std::hint::black_box(&sim_cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_exec_throughput);
criterion_main!(benches);
