//! Hardware throughput of the executor backends vs. simulator event rate.
//!
//! The headline numbers: aggregate source tuples/s physically pushed
//! through the executor's threads on a keyed join with selectivity 1.0
//! (uncapped nodes, zero-delay links, windows sized so the join state
//! stays hot), swept over shard counts 1/2/4/8 of the sharded backend
//! next to the thread-per-operator baseline — plus a *large-window*
//! variant where every probe visits ~a hundred partners, stressing the
//! zero-copy visitor path. The companion benchmark runs the *simulator*
//! on the same dataflow, so one report shows model-events/s next to
//! real tuples/s.
//!
//! Match counts are asserted identical across all backends and shard
//! counts — sharding must never change *what* joins, only how fast.
//!
//! Two skewed scenarios ride along: a **single-hot-pair** saturation
//! case (one pair, one giant window, 128 sub-keys — the workload where
//! `(window, pair)` routing serializes on one shard and only key-bucket
//! routing scales) and **Zipfian pair weights** (4 pairs, head pair
//! ~54 % of traffic). An **async event-loop** sweep closes the file:
//! the same uniform workload at shard counts up to 32, multiplexed
//! onto core-count worker threads — the regime where
//! one-thread-per-shard pays context switches and the M:N backend
//! does not.
//!
//! Run with: `cargo bench -p nova-bench --bench exec_throughput`

use criterion::{criterion_group, criterion_main, Criterion};
use nova_bench::{
    hot_pair_cfg, throughput_cfg, throughput_world, throughput_world_rates, zipf_pair_rates,
};
use nova_exec::{AsyncBackend, Backend, BackendKind, ExecConfig, ShardedBackend, ThreadedBackend};
use nova_runtime::{simulate, SimConfig};
use nova_topology::NodeId;

fn zero_dist(_a: NodeId, _b: NodeId) -> f64 {
    0.0
}

/// Run one backend pass over zero-delay links.
fn run(
    backend: &dyn Backend,
    t: &nova_topology::Topology,
    df: &nova_runtime::Dataflow,
    cfg: &ExecConfig,
) -> nova_exec::ExecResult {
    let mut dist = zero_dist;
    backend.run(t, &mut dist, df, cfg)
}

/// One emission interval per window: each window holds one tuple per
/// side, so the selectivity-1.0 keyed join emits ~1 output per input
/// tuple pair without a quadratic window cross-product.
fn small_window_cfg(duration_ms: f64, rate: f64, shards: usize) -> ExecConfig {
    throughput_cfg(duration_ms, 1000.0 / rate, 1.0, shards)
}

/// Large windows: ~200 tuples per side per window, so every probe walks
/// a long opposite buffer (the regime the old clone-per-probe path went
/// quadratic in). Selectivity keeps output volume bounded while the
/// per-partner hash still runs for every candidate.
fn large_window_cfg(duration_ms: f64, rate: f64, shards: usize) -> ExecConfig {
    throughput_cfg(duration_ms, 200.0 * 1000.0 / rate, 0.01, shards)
}

fn bench_exec_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_throughput");
    group.sample_size(10);

    // 2 pairs × 2 × 300 k tuples/s = 1.2 M tuples/s aggregate demand.
    let rate = 300_000.0;
    let (t, df) = throughput_world(2, rate);

    // Measured probe sweep up front for the tuples/s headline: the
    // threaded baseline, then the sharded backend at 1/2/4/8 shards.
    let base = small_window_cfg(1000.0, rate, 1);
    let probe = run(&ThreadedBackend, &t, &df, &base);
    println!(
        "exec_throughput[threaded  ]: {} tuples + {} matches in {:>5.0} ms wall \
         -> {:>9.0} tuples/s aggregate through {} threads ({} delivered)",
        probe.emitted,
        probe.matched,
        probe.wall_ms,
        probe.input_tuples_per_wall_s(),
        probe.threads,
        probe.delivered,
    );
    assert!(probe.delivered > 0, "keyed join must deliver outputs");
    for shards in [1usize, 2, 4, 8] {
        // Both backends share one bootstrap, so the 1-shard row is the
        // same machinery as the threaded baseline — a sanity anchor
        // whose delta vs threaded is pure measurement noise.
        let cfg = ExecConfig { shards, ..base };
        let res = run(&ShardedBackend, &t, &df, &cfg);
        println!(
            "exec_throughput[{} shard(s)]: {} tuples + {} matches in {:>5.0} ms wall \
             -> {:>9.0} tuples/s aggregate through {} threads",
            shards,
            res.emitted,
            res.matched,
            res.wall_ms,
            res.input_tuples_per_wall_s(),
            res.threads,
        );
        assert_eq!(
            res.matched, probe.matched,
            "sharding changed the match set at {shards} shards"
        );
    }

    // Batch-size sweep on the same uniform workload: the hot path
    // carries fixed-size tuple frames, so the sweep isolates pure
    // framing cost — per-tuple channel sends and wakeups at batch 1 vs
    // amortized frames at 64/1024. Counts are pinned to the probe at
    // every size: framing must never change *what* joins.
    for batch_size in [1usize, 2, 7, 64, 1024] {
        let cfg = ExecConfig { batch_size, ..base };
        let res = run(&ThreadedBackend, &t, &df, &cfg);
        println!(
            "exec_throughput[threaded, batch {batch_size:>4}]: {} tuples + {} matches \
             in {:>5.0} ms wall -> {:>9.0} tuples/s aggregate",
            res.emitted,
            res.matched,
            res.wall_ms,
            res.input_tuples_per_wall_s(),
        );
        assert_eq!(
            res.matched, probe.matched,
            "batch framing changed the match set at batch {batch_size}"
        );
    }

    group.bench_function("threaded_keyed_join_1.2M", |b| {
        b.iter(|| run(&ThreadedBackend, &t, &df, std::hint::black_box(&base)))
    });
    let unbatched = ExecConfig {
        batch_size: 1,
        ..base
    };
    group.bench_function("threaded_batch1_keyed_join_1.2M", |b| {
        b.iter(|| run(&ThreadedBackend, &t, &df, std::hint::black_box(&unbatched)))
    });
    for shards in [4usize, 8] {
        let cfg = ExecConfig { shards, ..base };
        group.bench_function(format!("sharded{shards}_keyed_join_1.2M"), |b| {
            b.iter(|| run(&ShardedBackend, &t, &df, std::hint::black_box(&cfg)))
        });
    }

    // Large-window sweep: 1 pair at 50 k tuples/s per side, ~200 tuples
    // per side per window — the probe path dominates.
    let lw_rate = 50_000.0;
    let (lt, ldf) = throughput_world(1, lw_rate);
    let lw_base = large_window_cfg(500.0, lw_rate, 1);
    let lw_probe = run(&ThreadedBackend, &lt, &ldf, &lw_base);
    for shards in [1usize, 4] {
        let cfg = ExecConfig { shards, ..lw_base };
        let res = run(&ShardedBackend, &lt, &ldf, &cfg);
        println!(
            "exec_throughput[large-window, {} shard(s)]: {} tuples + {} matches \
             in {:>5.0} ms wall -> {:>9.0} tuples/s",
            shards,
            res.emitted,
            res.matched,
            res.wall_ms,
            res.input_tuples_per_wall_s(),
        );
        assert_eq!(res.matched, lw_probe.matched);
    }
    group.bench_function("threaded_large_window_100k", |b| {
        b.iter(|| run(&ThreadedBackend, &lt, &ldf, std::hint::black_box(&lw_base)))
    });
    let lw_sharded = ExecConfig {
        shards: 4,
        ..lw_base
    };
    group.bench_function("sharded4_large_window_100k", |b| {
        b.iter(|| {
            run(
                &ShardedBackend,
                &lt,
                &ldf,
                std::hint::black_box(&lw_sharded),
            )
        })
    });

    // Single-hot-pair saturation: one pair, one giant window spanning
    // the run, 128 sub-keys. Under `(window, pair)` routing (buckets=1)
    // every tuple hashes to ONE shard — the sweep shows the keyed
    // buckets recovering the parallelism the PR 2 hash cannot.
    let hp_rate = 100_000.0;
    let (ht, hdf) = throughput_world(1, hp_rate);
    let hp_base = hot_pair_cfg(500.0, 128, 1, 1);
    let hp_probe = run(&ThreadedBackend, &ht, &hdf, &hp_base);
    assert!(hp_probe.delivered > 0, "hot pair must deliver outputs");
    for (shards, buckets) in [(4usize, 1usize), (2, 16), (4, 16), (8, 16)] {
        let cfg = ExecConfig {
            shards,
            key_buckets: buckets,
            ..hp_base
        };
        let res = run(&ShardedBackend, &ht, &hdf, &cfg);
        println!(
            "exec_throughput[hot-pair, {} shard(s), {} bucket(s)]: {} tuples + {} matches \
             in {:>5.0} ms wall -> {:>9.0} tuples/s (threaded: {:>9.0})",
            shards,
            buckets,
            res.emitted,
            res.matched,
            res.wall_ms,
            res.input_tuples_per_wall_s(),
            hp_probe.input_tuples_per_wall_s(),
        );
        assert_eq!(
            res.matched, hp_probe.matched,
            "keyed sharding changed the hot-pair match set at \
             {shards} shards / {buckets} buckets"
        );
    }
    group.bench_function("threaded_hot_pair_200k", |b| {
        b.iter(|| run(&ThreadedBackend, &ht, &hdf, std::hint::black_box(&hp_base)))
    });
    for (label, buckets) in [("pr2_routing", 1usize), ("keyed", 16)] {
        let cfg = ExecConfig {
            shards: 4,
            key_buckets: buckets,
            ..hp_base
        };
        group.bench_function(format!("sharded4_hot_pair_200k_{label}"), |b| {
            b.iter(|| run(&ShardedBackend, &ht, &hdf, std::hint::black_box(&cfg)))
        });
    }

    // Zipfian pair weights: 4 pairs, head pair ~54 % of the traffic,
    // keyed workload — count identity under realistic pair skew.
    let zrates = zipf_pair_rates(4, 100_000.0, 1.25);
    let (zt, zdf) = throughput_world_rates(&zrates);
    let z_base = ExecConfig {
        key_space: 64,
        ..throughput_cfg(500.0, 250.0, 0.02, 1)
    };
    let z_probe = run(&ThreadedBackend, &zt, &zdf, &z_base);
    assert!(z_probe.delivered > 0, "zipf workload must deliver outputs");
    for (shards, buckets) in [(4usize, 1usize), (4, 16)] {
        let cfg = ExecConfig {
            shards,
            key_buckets: buckets,
            ..z_base
        };
        let res = run(&ShardedBackend, &zt, &zdf, &cfg);
        println!(
            "exec_throughput[zipf, {} shard(s), {} bucket(s)]: {} tuples + {} matches \
             in {:>5.0} ms wall -> {:>9.0} tuples/s",
            shards,
            buckets,
            res.emitted,
            res.matched,
            res.wall_ms,
            res.input_tuples_per_wall_s(),
        );
        assert_eq!(
            res.matched, z_probe.matched,
            "keyed sharding changed the zipf match set at \
             {shards} shards / {buckets} buckets"
        );
    }

    // Async event loop on the uniform workload: S shard tasks on
    // W = cores worker threads, swept past the core count. Counts stay
    // pinned to the threaded probe at every (W, S).
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let w = cores.clamp(1, 8);
    for shards in [1usize, 4, 16, 32] {
        let cfg = ExecConfig {
            backend: BackendKind::Async,
            workers: w,
            shards,
            ..base
        };
        let res = run(&AsyncBackend, &t, &df, &cfg);
        println!(
            "exec_throughput[async W={w}, {shards:>2} task(s)]: {} tuples + {} matches \
             in {:>5.0} ms wall -> {:>9.0} tuples/s through {} threads",
            res.emitted,
            res.matched,
            res.wall_ms,
            res.input_tuples_per_wall_s(),
            res.threads,
        );
        assert_eq!(
            res.matched, probe.matched,
            "the event loop changed the match set at W={w}, S={shards}"
        );
    }
    for shards in [4usize, 32] {
        let cfg = ExecConfig {
            backend: BackendKind::Async,
            workers: w,
            shards,
            ..base
        };
        group.bench_function(format!("async_w{w}_s{shards}_keyed_join_1.2M"), |b| {
            b.iter(|| run(&AsyncBackend, &t, &df, std::hint::black_box(&cfg)))
        });
    }

    // The simulator on the identical dataflow, scaled to a tenth of the
    // virtual horizon (its single-threaded event loop pays ~4 heap
    // events per tuple).
    let sim_cfg = SimConfig {
        duration_ms: 100.0,
        window_ms: base.window_ms,
        selectivity: 1.0,
        gc_interval_ms: base.gc_interval_ms,
        seed: base.seed,
        max_events: u64::MAX,
        max_queue_ms: f64::INFINITY,
        key_space: 1,
    };
    let sim_probe = {
        let start = std::time::Instant::now();
        let res = simulate(&t, zero_dist, &df, &sim_cfg);
        let wall = start.elapsed().as_secs_f64();
        println!(
            "exec_throughput: simulator pushed {} tuples in {:.0} ms wall -> {:.0} tuples/s",
            res.emitted,
            wall * 1000.0,
            res.emitted as f64 / wall,
        );
        res
    };
    assert!(sim_probe.delivered > 0);

    group.bench_function("simulator_keyed_join_120k", |b| {
        b.iter(|| simulate(&t, zero_dist, &df, std::hint::black_box(&sim_cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_exec_throughput);
criterion_main!(benches);
