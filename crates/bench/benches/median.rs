//! Geometric-median solver ablation (DESIGN.md §4).
//!
//! Compares the Weiszfeld fixed point against plain gradient descent
//! (the paper's stated solver) and the min–max (smallest enclosing ball)
//! alternative the paper rejects in §2.3, over anchor sets of the sizes
//! Phase II actually sees (3 anchors per join replica) and larger ones.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nova_geom::{
    geometric_median, geometric_median_gd, minmax_center, Coord, GdOptions, MedianOptions,
};
use rand::prelude::*;
use rand::rngs::StdRng;

fn anchors(n: usize, seed: u64) -> Vec<Coord> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Coord::xy(rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0)))
        .collect()
}

fn bench_median(c: &mut Criterion) {
    let mut group = c.benchmark_group("geometric_median");
    for n in [3usize, 10, 100] {
        let a = anchors(n, n as u64);
        group.bench_with_input(BenchmarkId::new("weiszfeld", n), &a, |b, a| {
            b.iter(|| geometric_median(std::hint::black_box(a), MedianOptions::default()))
        });
        group.bench_with_input(BenchmarkId::new("gradient_descent", n), &a, |b, a| {
            b.iter(|| {
                geometric_median_gd(
                    std::hint::black_box(a),
                    GdOptions {
                        max_iters: 500,
                        ..GdOptions::default()
                    },
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("minmax_ball", n), &a, |b, a| {
            b.iter(|| minmax_center(std::hint::black_box(a), 500))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_median);
criterion_main!(benches);
