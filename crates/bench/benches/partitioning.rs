//! Partitioning microbenchmarks + the joint-vs-independent weighting and
//! σ-sweep ablations (DESIGN.md §4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nova_core::{partition_rates, sigma_for_bandwidth, PartitionedJoin};

fn bench_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioning");
    for sigma in [0.1f64, 0.4, 0.8] {
        group.bench_with_input(
            BenchmarkId::new("decompose_200x200", format!("sigma{sigma}")),
            &sigma,
            |b, &sigma| {
                b.iter(|| PartitionedJoin::decompose(200.0, 200.0, std::hint::black_box(sigma)))
            },
        );
    }
    group.bench_function("partition_rates_1000_by_7", |b| {
        b.iter(|| partition_rates(std::hint::black_box(1000.0), 7.0))
    });
    group.bench_function("sigma_for_bandwidth", |b| {
        b.iter(|| sigma_for_bandwidth(std::hint::black_box(120.0), 80.0, 5000.0))
    });
    group.finish();
}

/// Joint weighting (Eq. 7) vs independent per-stream partitioning: the
/// metric is total transfer, evaluated over a grid of asymmetric rates.
/// Criterion measures the computation; the printed comparison happens in
/// the `fig06 --sigma-sweep` experiment binary.
fn bench_weighting(c: &mut Criterion) {
    let rates: Vec<(f64, f64)> = (1..=20)
        .flat_map(|i| (1..=20).map(move |j| (i as f64 * 10.0, j as f64 * 10.0)))
        .collect();
    c.bench_function("joint_weighting_grid_400", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(s, t) in std::hint::black_box(&rates) {
                acc += PartitionedJoin::decompose(s, t, 0.4).total_transfer();
            }
            acc
        })
    });
}

criterion_group!(benches, bench_decompose, bench_weighting);
criterion_main!(benches);
