//! Real-execution runs: place → deploy → *execute on threads* → measure.
//!
//! Counterpart of `nova_runtime::run_placement` for the threaded
//! executor: the same placement, latency provider and (virtual) engine
//! settings, but every tuple is physically processed by a worker
//! thread. Used by `benches/exec_throughput.rs` and the
//! `real_execution` example, and by any experiment that wants hardware
//! numbers next to model numbers.

use nova_core::{JoinQuery, Placement};
use nova_exec::{Backend, ExecConfig, ExecResult, ThreadedBackend};
use nova_runtime::Dataflow;
use nova_topology::{LatencyProvider, Topology};

/// Deploy `placement` for `query` and execute it on the threaded
/// backend.
///
/// `sigma` must be the σ the placement was computed with (1.0 for the
/// unpartitioned baselines), exactly as for the simulator path.
pub fn run_placement_real(
    topology: &Topology,
    provider: &impl LatencyProvider,
    query: &JoinQuery,
    placement: &Placement,
    sigma: f64,
    cfg: &ExecConfig,
) -> ExecResult {
    let df = Dataflow::build(query, placement, |_| sigma);
    let mut dist = |a, b| provider.rtt(a, b);
    ThreadedBackend.run(topology, &mut dist, &df, cfg)
}

/// Execute an already-deployed dataflow on a caller-chosen backend —
/// the seam the cross-validation tests and future backends
/// (sharded / async / pinned) go through.
pub fn run_dataflow_real(
    backend: &dyn Backend,
    topology: &Topology,
    provider: &impl LatencyProvider,
    dataflow: &Dataflow,
    cfg: &ExecConfig,
) -> ExecResult {
    let mut dist = |a, b| provider.rtt(a, b);
    backend.run(topology, &mut dist, dataflow, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_core::baselines::sink_based;
    use nova_core::StreamSpec;
    use nova_topology::{DenseRtt, NodeRole};

    #[test]
    fn run_placement_real_executes_end_to_end() {
        let mut t = Topology::new();
        let sink = t.add_node(NodeRole::Sink, 500.0, "sink");
        let l = t.add_node(NodeRole::Source, 500.0, "l");
        let r = t.add_node(NodeRole::Source, 500.0, "r");
        let rtt = DenseRtt::from_fn(3, |_, _| 5.0);
        let q = JoinQuery::by_key(
            vec![StreamSpec::keyed(l, 10.0, 1)],
            vec![StreamSpec::keyed(r, 10.0, 1)],
            sink,
        );
        let plan = q.resolve();
        let p = sink_based(&q, &plan);
        let cfg = ExecConfig {
            duration_ms: 3000.0,
            window_ms: 200.0,
            time_scale: 8.0,
            ..ExecConfig::default()
        };
        let res = run_placement_real(&t, &rtt, &q, &p, 1.0, &cfg);
        assert!(res.delivered > 0);
        assert_eq!(res.threads, 4);
    }
}
