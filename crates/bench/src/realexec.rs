//! Real-execution runs: place → deploy → *execute on threads* → measure.
//!
//! Counterpart of `nova_runtime::run_placement` for the threaded
//! executor: the same placement, latency provider and (virtual) engine
//! settings, but every tuple is physically processed by a worker
//! thread. Used by `benches/exec_throughput.rs` and the
//! `real_execution` example, and by any experiment that wants hardware
//! numbers next to model numbers.

use nova_core::{JoinQuery, Placement};
use nova_exec::{backend_for, Backend, ExecConfig, ExecResult};
use nova_runtime::{Dataflow, SimConfig};
use nova_topology::{LatencyProvider, Topology};

/// Parse the figure binaries' shared `--real` / `--shards N` flags and
/// build the executor config for the `--real` re-runs: the simulator
/// settings dilated by `time_scale`, at the requested shard count
/// (default 1; a malformed count falls back to 1). Returns `None` when
/// `--real` is absent.
pub fn real_exec_cfg(args: &[String], sim: &SimConfig, time_scale: f64) -> Option<ExecConfig> {
    if !args.iter().any(|a| a == "--real") {
        return None;
    }
    let shards = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1);
    Some(ExecConfig {
        shards,
        ..ExecConfig::from_sim(sim, time_scale)
    })
}

/// Deploy `placement` for `query` and execute it on the backend the
/// config selects (`cfg.shards > 1` ⇒ the sharded backend, else the
/// thread-per-operator one).
///
/// `sigma` must be the σ the placement was computed with (1.0 for the
/// unpartitioned baselines), exactly as for the simulator path.
pub fn run_placement_real(
    topology: &Topology,
    provider: &impl LatencyProvider,
    query: &JoinQuery,
    placement: &Placement,
    sigma: f64,
    cfg: &ExecConfig,
) -> ExecResult {
    let df = Dataflow::build(query, placement, |_| sigma);
    let mut dist = |a, b| provider.rtt(a, b);
    backend_for(cfg).run(topology, &mut dist, &df, cfg)
}

/// Execute an already-deployed dataflow on a caller-chosen backend —
/// the seam the cross-validation tests and future backends
/// (sharded / async / pinned) go through.
pub fn run_dataflow_real(
    backend: &dyn Backend,
    topology: &Topology,
    provider: &impl LatencyProvider,
    dataflow: &Dataflow,
    cfg: &ExecConfig,
) -> ExecResult {
    let mut dist = |a, b| provider.rtt(a, b);
    backend.run(topology, &mut dist, dataflow, cfg)
}

/// The executor-throughput benchmark world: `n_pairs` keyed joins,
/// `rate` tuples/s per stream, uncapped nodes (capacity 0 ⇒ pure relay:
/// no service pacing in the hot path), sink-based placement. Shared by
/// `benches/exec_throughput.rs` and the `bench_exec_smoke` binary so
/// the CI smoke numbers measure exactly the benchmark workload.
pub fn throughput_world(n_pairs: u32, rate: f64) -> (Topology, Dataflow) {
    use nova_core::baselines::sink_based;
    use nova_core::StreamSpec;
    use nova_topology::NodeRole;

    let mut t = Topology::new();
    let sink = t.add_node(NodeRole::Sink, 0.0, "sink");
    let mut left = Vec::new();
    let mut right = Vec::new();
    for k in 0..n_pairs {
        let l = t.add_node(NodeRole::Source, 0.0, format!("l{k}"));
        let r = t.add_node(NodeRole::Source, 0.0, format!("r{k}"));
        left.push(StreamSpec::keyed(l, rate, k));
        right.push(StreamSpec::keyed(r, rate, k));
    }
    let query = JoinQuery::by_key(left, right, sink);
    let placement = sink_based(&query, &query.resolve());
    let dataflow = Dataflow::from_baseline(&query, &placement);
    (t, dataflow)
}

/// Flat-out executor settings for [`throughput_world`]: virtual time
/// runs far ahead of the wall clock so sources never sleep and the
/// join/channel machinery is the only bottleneck.
pub fn throughput_cfg(
    duration_ms: f64,
    window_ms: f64,
    selectivity: f64,
    shards: usize,
) -> ExecConfig {
    ExecConfig {
        duration_ms,
        window_ms,
        selectivity,
        gc_interval_ms: 5.0,
        seed: 0x51,
        max_queue_ms: f64::INFINITY,
        time_scale: 1000.0,
        batch_size: 1024,
        channel_capacity: 64,
        max_tuples_per_source: u64::MAX,
        shards,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_core::baselines::sink_based;
    use nova_core::StreamSpec;
    use nova_topology::{DenseRtt, NodeRole};

    #[test]
    fn run_placement_real_executes_end_to_end() {
        let mut t = Topology::new();
        let sink = t.add_node(NodeRole::Sink, 500.0, "sink");
        let l = t.add_node(NodeRole::Source, 500.0, "l");
        let r = t.add_node(NodeRole::Source, 500.0, "r");
        let rtt = DenseRtt::from_fn(3, |_, _| 5.0);
        let q = JoinQuery::by_key(
            vec![StreamSpec::keyed(l, 10.0, 1)],
            vec![StreamSpec::keyed(r, 10.0, 1)],
            sink,
        );
        let plan = q.resolve();
        let p = sink_based(&q, &plan);
        let cfg = ExecConfig {
            duration_ms: 3000.0,
            window_ms: 200.0,
            time_scale: 8.0,
            // Unbounded queues make the run structurally drop-free, so
            // the exact-count assertions below hold under any OS
            // schedule (count identity is only guaranteed without
            // shedding; a stalled thread on a loaded 1-core host could
            // otherwise trip the queue bound and shed a tuple).
            max_queue_ms: f64::INFINITY,
            ..ExecConfig::default()
        };
        let res = run_placement_real(&t, &rtt, &q, &p, 1.0, &cfg);
        assert!(res.delivered > 0);
        assert_eq!(res.dropped, 0);
        assert_eq!(res.threads, 4);

        // The shards knob selects the sharded backend and keeps counts.
        let sharded_cfg = ExecConfig { shards: 2, ..cfg };
        let sharded = run_placement_real(&t, &rtt, &q, &p, 1.0, &sharded_cfg);
        assert_eq!(sharded.threads, 5, "2 sources + 2 shards + sink");
        assert_eq!(sharded.matched, res.matched);
        assert_eq!(sharded.delivered, res.delivered);
    }
}
