//! Real-execution runs: place → deploy → *execute on threads* → measure.
//!
//! Counterpart of `nova_runtime::run_placement` for the threaded
//! executor: the same placement, latency provider and (virtual) engine
//! settings, but every tuple is physically processed by a worker
//! thread. Used by `benches/exec_throughput.rs` and the
//! `real_execution` example, and by any experiment that wants hardware
//! numbers next to model numbers.

use nova_core::{JoinQuery, Placement};
use nova_exec::{backend_for, Backend, BackendKind, ExecConfig, ExecResult};
use nova_runtime::{Dataflow, SimConfig};
use nova_topology::{LatencyProvider, Topology};

/// Usage text for the executor flags shared by every `--real`-capable
/// fig binary — printed by their `--help`, kept here (next to
/// [`real_exec_cfg`], the one parser) so the help can never drift from
/// what is actually parsed.
pub const REAL_FLAGS_USAGE: &str = "  \
--real                re-run every placement on the nova-exec executor
                        (side-by-side simulator/executor columns)
  --backend KIND        executor engine: threaded | sharded | async
                        (default auto: sharded when --shards > 1, else
                        threaded; async = M:N event loop, S shard tasks
                        on W worker threads)
  --shards N            join shards per deployed instance (default 1)
  --workers N           worker threads of the async event loop
                        (default 0 = one per core; an error on the
                        thread-per-shard backends, which spawn one
                        thread per shard)
  --run-budget N        input messages one async shard task consumes
                        per cooperative poll (default 2048; an error
                        on the thread-per-shard backends)
  --batch-size N        tuples per hot-path batch frame: sources
                        accumulate N tuples before handing the frame
                        to the join (default 256; 1 = tuple-at-a-time;
                        0 is rejected)
  --pin-workers         pin shard/worker threads round-robin onto
                        cores (Linux only, silently a no-op elsewhere;
                        a performance hint — never changes counts)
  --key-space N         per-tuple join sub-key cardinality — a workload
                        property, applied to BOTH engines (default 1)
  --key-buckets N       key buckets for shard routing (default 1 =
                        (window, pair) routing; >1 splits hot windows
                        by sub-key across shards)
  --metrics-out PATH    append one JSON-lines telemetry snapshot per
                        --real re-run (tagged with the approach name;
                        the executor's final per-shard/per-source
                        registry state — ignored without --real)";

/// Parse the figure binaries' shared `--real` / `--backend KIND` /
/// `--shards N` / `--workers N` / `--run-budget N` / `--batch-size N` /
/// `--pin-workers` / `--key-space N` /
/// `--key-buckets N` flags and build the executor config for the
/// `--real` re-runs: the simulator settings dilated by `time_scale`,
/// at the requested backend, shard, worker and key-bucket counts
/// (counts default to 1, workers to 0 = auto, backend to `auto`; a
/// malformed *count* falls back to its default, but an unknown
/// `--backend` value — or an async-only flag combined with a
/// thread-per-shard backend — is an error: silently benchmarking a
/// different engine than the one the user typed would be worse than
/// stopping). The sub-key cardinality is inherited from the
/// `SimConfig` (patched by [`with_key_space`] so *both* engines'
/// columns agree on the workload) — with `key_space = 1` every tuple
/// carries sub-key 0 and `--key-buckets` alone only permutes the
/// `(window, pair)` shard layout; pass `--key-space N` too to exercise
/// keyed sub-pair sharding. Returns `Ok(None)` when `--real` is
/// absent. [`REAL_FLAGS_USAGE`] documents exactly these flags.
pub fn parse_real_exec_cfg(
    args: &[String],
    sim: &SimConfig,
    time_scale: f64,
) -> Result<Option<ExecConfig>, String> {
    if !args.iter().any(|a| a == "--real") {
        return Ok(None);
    }
    let value_of = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let count = |name: &str, default: usize| {
        value_of(name)
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(default)
    };
    let backend = match value_of("--backend") {
        None => BackendKind::Auto,
        Some(v) => BackendKind::parse(v).ok_or_else(|| {
            format!("unknown --backend {v:?}: expected threaded | sharded | async (or auto)")
        })?,
    };
    // Regression (bug sweep): --workers / --run-budget only drive the
    // async event loop. The parser used to accept them with any
    // backend and the thread-per-shard engines silently ignored them —
    // the benchmark then measured something other than what the
    // command line said.
    if backend != BackendKind::Async {
        for flag in ["--workers", "--run-budget"] {
            if args.iter().any(|a| a == flag) {
                return Err(format!(
                    "{flag} only applies to the async event loop; pass --backend async \
                     (the thread-per-shard backends spawn one thread per shard and \
                     would silently ignore it)"
                ));
            }
        }
    }
    let mut cfg = ExecConfig {
        backend,
        shards: count("--shards", 1),
        workers: count("--workers", 0),
        key_buckets: count("--key-buckets", 1),
        pin_workers: args.iter().any(|a| a == "--pin-workers"),
        ..ExecConfig::from_sim(sim, time_scale)
    };
    cfg.run_budget = count("--run-budget", cfg.run_budget);
    cfg.batch_size = count("--batch-size", cfg.batch_size);
    cfg.validate().map_err(|e| e.to_string())?;
    Ok(Some(cfg))
}

/// [`parse_real_exec_cfg`] for the fig binaries' `main`s: prints the
/// error and exits with status 2 instead of returning it.
pub fn real_exec_cfg(args: &[String], sim: &SimConfig, time_scale: f64) -> Option<ExecConfig> {
    parse_real_exec_cfg(args, sim, time_scale).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2)
    })
}

/// Value of the figure binaries' `--metrics-out PATH` flag, if
/// present. Only meaningful together with `--real`: the simulator
/// columns have no telemetry plane, so without `--real` the flag is
/// accepted but nothing is written.
pub fn metrics_out_path(args: &[String]) -> Option<String> {
    args.iter()
        .position(|a| a == "--metrics-out")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// JSON-lines sink for the fig binaries' `--metrics-out` flag: one
/// [`nova_exec::MetricsSnapshot`] per `--real` re-run, tagged with the
/// approach label so a single file holds the whole side-by-side sweep.
/// The bench smoke binary has its own richer capture (it also streams
/// intermediate snapshots); this writer records only each run's final
/// registry state, which is what the figures' per-approach comparisons
/// need.
pub struct MetricsWriter {
    file: std::fs::File,
}

impl MetricsWriter {
    /// Create (truncate) the output file, exiting with status 2 on I/O
    /// errors — same contract as the flag parser: a misspelt path
    /// should stop the run, not silently drop the artifact.
    pub fn create(path: &str) -> MetricsWriter {
        let file = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("--metrics-out: cannot create {path}: {e}");
            std::process::exit(2)
        });
        MetricsWriter { file }
    }

    /// Append one snapshot, spliced with an `"approach"` tag: the
    /// snapshot's own serialization starts with `{`, so the tag is
    /// injected by replacing that brace.
    pub fn record(&mut self, approach: &str, snap: &nova_exec::MetricsSnapshot) {
        use std::io::Write;
        let line = snap.to_json_line();
        let _ = writeln!(self.file, "{{\"approach\": \"{approach}\", {}", &line[1..]);
    }
}

/// Apply the figure binaries' `--key-space N` flag to a simulator
/// config. The sub-key cardinality is a *workload* property, so it must
/// patch the `SimConfig` both the simulator columns and the `--real`
/// executor re-runs ([`real_exec_cfg`] via `ExecConfig::from_sim`) are
/// derived from — overriding only the executor side would silently
/// break their side-by-side comparability. Absent or malformed flag
/// keeps the config's own `key_space`.
pub fn with_key_space(args: &[String], sim: SimConfig) -> SimConfig {
    let key_space = args
        .iter()
        .position(|a| a == "--key-space")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(sim.key_space);
    SimConfig { key_space, ..sim }
}

/// Human-readable description of the engine a config selects, for the
/// fig binaries' headers — e.g. `threaded`, `sharded, 4 shard(s)`, or
/// `async, 32 shard task(s)/instance, workers auto`. The async worker
/// count is reported as requested (`auto` = one per core), not as
/// resolved: the effective count is additionally capped at the task
/// count, which depends on each placement's instance count and is not
/// known here.
pub fn exec_label(cfg: &ExecConfig) -> String {
    match backend_for(cfg).name() {
        "threaded" => "threaded".to_string(),
        "sharded" => format!("sharded, {} shard(s)", cfg.shards.max(1)),
        "async" => {
            let workers = if cfg.workers == 0 {
                "auto (one per core)".to_string()
            } else {
                format!("≤ {}", cfg.workers)
            };
            format!(
                "async, {} shard task(s)/instance, workers {workers}",
                cfg.shards.max(1)
            )
        }
        other => other.to_string(),
    }
}

/// Deploy `placement` for `query` and execute it on the backend the
/// config selects (`cfg.shards > 1` ⇒ the sharded backend, else the
/// thread-per-operator one).
///
/// `sigma` must be the σ the placement was computed with (1.0 for the
/// unpartitioned baselines), exactly as for the simulator path.
pub fn run_placement_real(
    topology: &Topology,
    provider: &impl LatencyProvider,
    query: &JoinQuery,
    placement: &Placement,
    sigma: f64,
    cfg: &ExecConfig,
) -> ExecResult {
    let df = Dataflow::build(query, placement, |_| sigma);
    let mut dist = |a, b| provider.rtt(a, b);
    backend_for(cfg).run(topology, &mut dist, &df, cfg)
}

/// Deploy `placement` for `query` and *launch* it reconfigurable —
/// the live counterpart of [`run_placement_real`]: the returned
/// [`nova_exec::ExecHandle`] absorbs `PlanSwitch`es mid-stream
/// (`handle.apply(..)`) and yields the final counts on
/// `handle.join()`. Used by the `churn` smoke scenario and any
/// experiment that reconfigures a running placement.
pub fn launch_placement_real(
    topology: &Topology,
    provider: &impl LatencyProvider,
    query: &JoinQuery,
    placement: &Placement,
    sigma: f64,
    cfg: &ExecConfig,
) -> Result<nova_exec::ExecHandle, nova_exec::ExecConfigError> {
    let df = Dataflow::build(query, placement, |_| sigma);
    nova_exec::launch(topology, |a, b| provider.rtt(a, b), &df, cfg)
}

/// Execute an already-deployed dataflow on a caller-chosen backend —
/// the seam the cross-validation tests and future backends
/// (sharded / async / pinned) go through.
pub fn run_dataflow_real(
    backend: &dyn Backend,
    topology: &Topology,
    provider: &impl LatencyProvider,
    dataflow: &Dataflow,
    cfg: &ExecConfig,
) -> ExecResult {
    let mut dist = |a, b| provider.rtt(a, b);
    backend.run(topology, &mut dist, dataflow, cfg)
}

/// The executor-throughput benchmark world: `n_pairs` keyed joins,
/// `rate` tuples/s per stream, uncapped nodes (capacity 0 ⇒ pure relay:
/// no service pacing in the hot path), sink-based placement. Shared by
/// `benches/exec_throughput.rs` and the `bench_exec_smoke` binary so
/// the CI smoke numbers measure exactly the benchmark workload.
pub fn throughput_world(n_pairs: u32, rate: f64) -> (Topology, Dataflow) {
    throughput_world_rates(&vec![rate; n_pairs as usize])
}

/// [`throughput_world`] with one join pair per entry of `rates` —
/// the skewed-workload generator: pair `k`'s two streams each emit
/// `rates[k]` tuples/s. Uniform vectors reproduce `throughput_world`;
/// [`zipf_pair_rates`] vectors concentrate the traffic on the first
/// (hot) pairs.
pub fn throughput_world_rates(rates: &[f64]) -> (Topology, Dataflow) {
    use nova_core::baselines::sink_based;
    use nova_core::StreamSpec;
    use nova_topology::NodeRole;

    let mut t = Topology::new();
    let sink = t.add_node(NodeRole::Sink, 0.0, "sink");
    let mut left = Vec::new();
    let mut right = Vec::new();
    for (k, &rate) in rates.iter().enumerate() {
        let l = t.add_node(NodeRole::Source, 0.0, format!("l{k}"));
        let r = t.add_node(NodeRole::Source, 0.0, format!("r{k}"));
        left.push(StreamSpec::keyed(l, rate, k as u32));
        right.push(StreamSpec::keyed(r, rate, k as u32));
    }
    let query = JoinQuery::by_key(left, right, sink);
    let placement = sink_based(&query, &query.resolve());
    let dataflow = Dataflow::from_baseline(&query, &placement);
    (t, dataflow)
}

/// Zipfian per-pair stream rates: pair `k` emits
/// `top_rate / (k + 1)^exponent` tuples/s per side — the classic
/// skewed-popularity workload where the first pair dominates the
/// traffic (exponent 1.25 gives the head pair ~54 % of a 4-pair
/// aggregate).
pub fn zipf_pair_rates(n_pairs: u32, top_rate: f64, exponent: f64) -> Vec<f64> {
    (0..n_pairs)
        .map(|k| top_rate / ((k + 1) as f64).powf(exponent))
        .collect()
}

/// Flat-out executor settings for [`throughput_world`]: virtual time
/// runs far ahead of the wall clock so sources never sleep and the
/// join/channel machinery is the only bottleneck.
pub fn throughput_cfg(
    duration_ms: f64,
    window_ms: f64,
    selectivity: f64,
    shards: usize,
) -> ExecConfig {
    ExecConfig {
        duration_ms,
        window_ms,
        selectivity,
        gc_interval_ms: 5.0,
        seed: 0x51,
        max_queue_ms: f64::INFINITY,
        time_scale: 1000.0,
        batch_size: 1024,
        channel_capacity: 64,
        max_tuples_per_source: u64::MAX,
        shards,
        key_space: 1,
        key_buckets: 1,
        ..ExecConfig::default()
    }
}

/// The **single-hot-pair saturation** configuration: one giant tumbling
/// window spanning the whole run, a keyed workload (`key_space`
/// sub-keys), and `key_buckets` routing buckets. Under `(window, pair)`
/// routing (`key_buckets = 1`) every tuple of the run lands on one
/// shard — the skew failure mode where PR 2's sharding shows no
/// speedup; with `key_buckets > 1` the window's state hash-splits by
/// sub-key across all shards. Selectivity keeps the output volume of
/// the giant window's keyed cross-product bounded.
pub fn hot_pair_cfg(
    duration_ms: f64,
    key_space: u32,
    key_buckets: usize,
    shards: usize,
) -> ExecConfig {
    ExecConfig {
        key_space,
        key_buckets,
        // One window covering the entire horizon (+1 ms so boundary
        // tuples at t == duration stay inside it); selectivity 1 %.
        ..throughput_cfg(duration_ms, duration_ms + 1.0, 0.01, shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_core::baselines::sink_based;
    use nova_core::StreamSpec;
    use nova_topology::{DenseRtt, NodeRole};

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parser_accepts_async_only_flags_with_the_async_backend_only() {
        let sim = SimConfig::default();
        // Without --real: no config, flags irrelevant.
        assert!(matches!(
            parse_real_exec_cfg(&args(&["--workers", "4"]), &sim, 8.0),
            Ok(None)
        ));
        // Async backend: both flags apply.
        let cfg = parse_real_exec_cfg(
            &args(&[
                "--real",
                "--backend",
                "async",
                "--workers",
                "4",
                "--run-budget",
                "64",
            ]),
            &sim,
            8.0,
        )
        .expect("valid combination")
        .expect("--real present");
        assert_eq!(cfg.backend, BackendKind::Async);
        assert_eq!(cfg.workers, 4);
        assert_eq!(cfg.run_budget, 64);

        // Regression: thread-per-shard backends used to silently
        // ignore --workers / --run-budget; the combination is now an
        // explicit error naming the flag.
        for backend in [&["--backend", "sharded"][..], &[][..]] {
            for flag in [&["--workers", "4"][..], &["--run-budget", "64"][..]] {
                let mut a = args(&["--real", "--shards", "4"]);
                a.extend(args(backend));
                a.extend(args(flag));
                let err = parse_real_exec_cfg(&a, &sim, 8.0).unwrap_err();
                assert!(err.contains(flag[0]), "error must name the flag: {err}");
                assert!(err.contains("async"), "error must point at the fix: {err}");
            }
        }

        // Unknown backend is an error, not a silent fallback.
        let err =
            parse_real_exec_cfg(&args(&["--real", "--backend", "turbo"]), &sim, 8.0).unwrap_err();
        assert!(err.contains("turbo"));

        // Zero-knob values flow into ExecConfig::validate.
        let err = parse_real_exec_cfg(&args(&["--real", "--shards", "0"]), &sim, 8.0).unwrap_err();
        assert!(err.contains("shards"), "{err}");
    }

    #[test]
    fn parser_applies_batching_and_pinning_flags() {
        let sim = SimConfig::default();
        // Defaults: inherited batch size, pinning off.
        let cfg = parse_real_exec_cfg(&args(&["--real"]), &sim, 8.0)
            .expect("valid")
            .expect("--real present");
        assert_eq!(cfg.batch_size, ExecConfig::default().batch_size);
        assert!(!cfg.pin_workers);

        // Both flags work on every backend (batching is the hot-path
        // framing of all three engines, pinning a per-thread hint).
        let cfg = parse_real_exec_cfg(
            &args(&["--real", "--batch-size", "7", "--pin-workers"]),
            &sim,
            8.0,
        )
        .expect("valid")
        .expect("--real present");
        assert_eq!(cfg.batch_size, 7);
        assert!(cfg.pin_workers);

        // batch_size = 0 flows into ExecConfig::validate and is an
        // error, not a silent fallback to the default.
        let err =
            parse_real_exec_cfg(&args(&["--real", "--batch-size", "0"]), &sim, 8.0).unwrap_err();
        assert!(err.contains("batch"), "{err}");
    }

    #[test]
    fn run_placement_real_executes_end_to_end() {
        let mut t = Topology::new();
        let sink = t.add_node(NodeRole::Sink, 500.0, "sink");
        let l = t.add_node(NodeRole::Source, 500.0, "l");
        let r = t.add_node(NodeRole::Source, 500.0, "r");
        let rtt = DenseRtt::from_fn(3, |_, _| 5.0);
        let q = JoinQuery::by_key(
            vec![StreamSpec::keyed(l, 10.0, 1)],
            vec![StreamSpec::keyed(r, 10.0, 1)],
            sink,
        );
        let plan = q.resolve();
        let p = sink_based(&q, &plan);
        let cfg = ExecConfig {
            duration_ms: 3000.0,
            window_ms: 200.0,
            time_scale: 8.0,
            // Unbounded queues make the run structurally drop-free, so
            // the exact-count assertions below hold under any OS
            // schedule (count identity is only guaranteed without
            // shedding; a stalled thread on a loaded 1-core host could
            // otherwise trip the queue bound and shed a tuple).
            max_queue_ms: f64::INFINITY,
            ..ExecConfig::default()
        };
        let res = run_placement_real(&t, &rtt, &q, &p, 1.0, &cfg);
        assert!(res.delivered > 0);
        assert_eq!(res.dropped, 0);
        assert_eq!(res.threads, 4);

        // The shards knob selects the sharded backend and keeps counts.
        let sharded_cfg = ExecConfig { shards: 2, ..cfg };
        let sharded = run_placement_real(&t, &rtt, &q, &p, 1.0, &sharded_cfg);
        assert_eq!(sharded.threads, 5, "2 sources + 2 shards + sink");
        assert_eq!(sharded.matched, res.matched);
        assert_eq!(sharded.delivered, res.delivered);
    }
}
