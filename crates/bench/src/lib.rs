//! # nova-bench — the experiment harness
//!
//! One runnable binary per figure of the paper's evaluation (run with
//! `cargo run --release -p nova-bench --bin figNN`) plus Criterion
//! microbenchmarks (`cargo bench`). This library carries the shared
//! machinery: running every approach on a workload, result tables and
//! CSV output.
//!
//! | Binary | Paper figure | Claim it regenerates |
//! |--------|--------------|----------------------|
//! | `fig05_embeddings` | Fig. 5 | NCS embeddings of the four testbeds + MAE-vs-m study |
//! | `fig06_overload` | Fig. 6 | % overloaded nodes vs capacity heterogeneity (CV) |
//! | `fig07_quality` | Fig. 7 | 90P latency deltas vs the sink-based lower bound |
//! | `fig08_estimation_error` | Fig. 8 | estimated vs measured latencies under TIVs |
//! | `fig09_latency_drift` | Fig. 9 | placement stability over 24 h of latency drift |
//! | `fig10_scalability` | Fig. 10 | optimization + re-optimization time vs topology size |
//! | `fig11_throughput` | Fig. 11 | end-to-end processed tuples vs latency |
//! | `fig12_latency_percentiles` | Fig. 12 | end-to-end latency percentiles, normal + stressed |

#![forbid(unsafe_code)]

pub mod approaches;
pub mod endtoend;
pub mod realexec;
pub mod report;

pub use approaches::{run_all_approaches, ApproachResult, ApproachSet, BenchConfig};
pub use endtoend::{
    default_sim, end_to_end_runs, end_to_end_runs_real, E2ERun, E2ERunReal, STRESS_FACTOR,
};
pub use realexec::{
    exec_label, hot_pair_cfg, launch_placement_real, metrics_out_path, parse_real_exec_cfg,
    real_exec_cfg, run_dataflow_real, run_placement_real, throughput_cfg, throughput_world,
    throughput_world_rates, with_key_space, zipf_pair_rates, MetricsWriter, REAL_FLAGS_USAGE,
};
pub use report::{results_dir, write_csv, Table};
