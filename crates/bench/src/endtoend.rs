//! Shared driver for the end-to-end experiments (Figs. 11–12).
//!
//! Places the environmental-monitoring query with every approach,
//! deploys each placement on the simulated Raspberry-Pi cluster, and
//! runs the discrete-event engine — or, for the `--real` figure
//! variants, the threaded/sharded executor — under identical
//! conditions.

use nova_core::baselines::{cl_sf, sink_based, source_based, tree_based, ClusterParams};
use nova_core::{Nova, NovaConfig, PlacedReplica, Placement};
use nova_exec::{ExecConfig, ExecResult};
use nova_netcoord::{classical_mds, CostSpace};
use nova_runtime::{run_placement, with_stress, SimConfig, SimResult};
use nova_topology::{NodeId, Topology};
use nova_workloads::EnvironmentalScenario;

use crate::realexec::{launch_placement_real, run_placement_real, MetricsWriter};

/// One approach's end-to-end run.
#[derive(Debug)]
pub struct E2ERun {
    /// Approach label. The paper groups identically-placed approaches
    /// (cluster-based ≡ top-c, source-based ≡ tree on this topology).
    pub name: &'static str,
    /// The placement that was deployed.
    pub placement: Placement,
    /// Engine results.
    pub result: SimResult,
}

/// One approach's end-to-end run on the real executor.
#[derive(Debug)]
pub struct E2ERunReal {
    /// Approach label (same set and order as [`end_to_end_runs`]).
    pub name: &'static str,
    /// The placement that was deployed.
    pub placement: Placement,
    /// Executor results.
    pub result: ExecResult,
}

/// Every approach's placement on the scenario, plus the topology the
/// engines should run it on — the shared setup behind both the
/// simulated and the executor-backed end-to-end runs.
struct E2ESetup {
    run_topology: Topology,
    /// `(name, placement, sigma)` in the canonical approach order.
    placements: Vec<(&'static str, Placement, f64)>,
}

fn build_setup(scenario: &EnvironmentalScenario, stress: f64) -> E2ESetup {
    let query = &scenario.query;
    let plan = query.resolve();
    // Heterogeneous fog tier: the first worker is the "cluster head"
    // class node — clearly the most capable single machine, yet still
    // unable to absorb the whole join load (the paper's cluster/top-c
    // group bottlenecks on exactly such a head, §4.7).
    let mut topology = scenario.cluster.topology.clone();
    if let Some(head) = scenario.cluster.workers.first() {
        let cap = topology.node(*head).capacity;
        topology.node_mut(*head).capacity = cap * 1.6;
    }
    let topology = &topology;

    // Cost space: classical MDS on the full measured matrix — exact for
    // a 14-node cluster, isolating placement quality from embedding
    // noise (the paper's testbed also has full latency knowledge from
    // the tc-injected delays).
    let coords = classical_mds(scenario.cluster.rtt.dense(), 2, 0xE2E);
    let space = CostSpace::new(coords);

    let nova_cfg = NovaConfig {
        sigma: 0.4,
        c_min: 0.0,
        ..NovaConfig::default()
    };
    let mut nova = Nova::with_cost_space(topology.clone(), space.clone(), nova_cfg);
    nova.optimize(query.clone());

    let cluster_params = ClusterParams {
        clusters: 3,
        ..ClusterParams::for_size(topology.len())
    };
    let placements: Vec<(&'static str, Placement, f64)> = vec![
        ("nova", nova.placement().clone(), nova_cfg.sigma),
        ("sink", sink_based(query, &plan), 1.0),
        ("source/tree", source_based(query, &plan), 1.0),
        (
            "cluster/top-c",
            cluster_head_placement(query, topology),
            1.0,
        ),
        (
            "tree-overlay",
            tree_based(query, &plan, topology, &space),
            1.0,
        ),
        (
            "cl-sf",
            cl_sf(query, &plan, topology, &space, &cluster_params),
            1.0,
        ),
    ];

    // Stress: saturate the source nodes' CPUs.
    let run_topology = if (stress - 1.0).abs() > 1e-9 {
        let sources: Vec<NodeId> = scenario
            .cluster
            .sources_by_region
            .iter()
            .flatten()
            .copied()
            .collect();
        with_stress(topology, &sources, stress)
    } else {
        topology.clone()
    };

    E2ESetup {
        run_topology,
        placements,
    }
}

/// Execute all approaches on the scenario's simulated cluster. `stress`
/// scales the capacity of all *source* nodes by the given factor (the
/// paper's `stress` tool saturates source CPUs; 1.0 = unstressed).
pub fn end_to_end_runs(
    scenario: &EnvironmentalScenario,
    sim: &SimConfig,
    stress: f64,
) -> Vec<E2ERun> {
    let setup = build_setup(scenario, stress);
    let provider = &scenario.cluster.rtt;
    setup
        .placements
        .into_iter()
        .map(|(name, placement, sigma)| {
            let result = run_placement(
                &setup.run_topology,
                provider,
                &scenario.query,
                &placement,
                sigma,
                sim,
            );
            E2ERun {
                name,
                placement,
                result,
            }
        })
        .collect()
}

/// Execute all approaches on the *real executor* — identical
/// placements, topology and stress handling as [`end_to_end_runs`],
/// but every tuple physically flows through worker threads
/// (`cfg.shards > 1` selects the sharded backend). The figure binaries'
/// `--real` flag goes through here.
///
/// With a `metrics` writer (the binaries' `--metrics-out PATH` flag)
/// each approach additionally runs through the *launch* path and its
/// final [`nova_exec::MetricsSnapshot`] — the per-shard/per-source
/// registry state at join time, count-identical to the `ExecResult` —
/// is appended as one tagged JSON line. The blocking and the launched
/// run share one bootstrap (`Backend::run` delegates to the same
/// `launch_*` functions), so the two modes measure the same engine.
pub fn end_to_end_runs_real(
    scenario: &EnvironmentalScenario,
    cfg: &ExecConfig,
    stress: f64,
    mut metrics: Option<&mut MetricsWriter>,
) -> Vec<E2ERunReal> {
    let setup = build_setup(scenario, stress);
    let provider = &scenario.cluster.rtt;
    setup
        .placements
        .into_iter()
        .map(|(name, placement, sigma)| {
            let result = match metrics.as_deref_mut() {
                None => run_placement_real(
                    &setup.run_topology,
                    provider,
                    &scenario.query,
                    &placement,
                    sigma,
                    cfg,
                ),
                Some(writer) => {
                    let handle = launch_placement_real(
                        &setup.run_topology,
                        provider,
                        &scenario.query,
                        &placement,
                        sigma,
                        cfg,
                    )
                    .unwrap_or_else(|e| {
                        eprintln!("{e}");
                        std::process::exit(2)
                    });
                    // The subscription's final snapshot is sent after
                    // every worker has joined, so the last drained
                    // element equals the run's end state.
                    let rx = handle
                        .subscribe(std::time::Duration::from_millis(50))
                        .expect("non-zero interval");
                    let result = handle.join();
                    let mut last = None;
                    while let Ok(snap) = rx.recv() {
                        last = Some(snap);
                    }
                    if let Some(snap) = last {
                        writer.record(name, &snap);
                    }
                    result
                }
            };
            E2ERunReal {
                name,
                placement,
                result,
            }
        })
        .collect()
}

/// The paper's cluster-based/top-c group on the Pi testbed: all joins on
/// the single most capable node ("computing joins on a single cluster
/// head, which has more resources than the sink but remains a
/// bottleneck", §4.7). On this near-homogeneous cluster the generic
/// available-capacity-decrementing top-c would spread pairs — the paper
/// explicitly reports that the cluster approaches and top-c produce
/// identical single-head placements here.
fn cluster_head_placement(query: &nova_core::JoinQuery, topology: &Topology) -> Placement {
    let head = topology
        .nodes()
        .iter()
        .filter(|n| n.role == nova_topology::NodeRole::Worker)
        .max_by(|a, b| a.capacity.total_cmp(&b.capacity))
        .map(|n| n.id)
        .unwrap_or(query.sink);
    let plan = query.resolve();
    let mut placement = Placement::new("cluster-head");
    for pair in &plan.pairs {
        let left = query.left_stream(pair);
        let right = query.right_stream(pair);
        placement.replicas.push(PlacedReplica {
            pair: pair.id,
            node: head,
            left_rate: left.rate,
            right_rate: right.rate,
            left_partitions: vec![0],
            right_partitions: vec![0],
            merged_replicas: 1,
            left_path: nova_core::placement::direct_path(left.node, head),
            right_path: nova_core::placement::direct_path(right.node, head),
            out_path: nova_core::placement::direct_path(head, query.sink),
            output_rate: query.output_rate(pair),
            overflowed: false,
        });
    }
    placement
}

/// The default simulated engine settings used by Figs. 11–12: 100 ms
/// tumbling windows and a join selectivity that keeps result volume
/// bounded (cross-products within 100 ms windows at 1 kHz would emit
/// ~10⁵ results/s/region — the real DEBS pipeline also filters).
pub fn default_sim(duration_ms: f64, seed: u64) -> SimConfig {
    SimConfig {
        duration_ms,
        window_ms: 100.0,
        selectivity: 0.002,
        gc_interval_ms: 500.0,
        seed,
        max_events: 400_000_000,
        max_queue_ms: 250.0,
        key_space: 1,
    }
}

/// Stress factor applied to source nodes in the stressed configuration.
pub const STRESS_FACTOR: f64 = 0.3;

/// Convenience: the scenario's topology for external reporting.
pub fn cluster_topology(scenario: &EnvironmentalScenario) -> &Topology {
    &scenario.cluster.topology
}
