//! Figure 7: placement quality — 90th-percentile latency deltas relative
//! to the sink-based direct-transmission lower bound.
//!
//! For each evaluation topology (FIT IoT Lab, PlanetLab, RIPE Atlas,
//! King, 1K synthetic) every approach's placement is evaluated under the
//! topology's real latencies and reported as `90P(approach) − 90P(sink)`.
//! `nova(p)` is Nova under the most heterogeneous capacity distribution,
//! which forces the highest replication degree (the paper's hardest
//! setting for Nova).
//!
//! Expected shape (§4.3): Nova and Cl-SF close to the lower bound;
//! source-based and top-c moderately above; tree-based methods far above
//! (multi-hop routing); nova(p) pays a bounded premium for load balance.

use nova_bench::{run_all_approaches, write_csv, BenchConfig, Table};
use nova_core::NovaConfig;
use nova_topology::{
    CapacityDistribution, DenseRtt, LatencyProvider, SyntheticParams, SyntheticTopology, Testbed,
    Topology,
};
use nova_workloads::{synthetic_opp, OppParams};

/// Evaluate all approaches on one topology; returns (label, delta-90P)
/// rows plus nova(p).
fn run_topology(
    name: &str,
    topology: &Topology,
    provider: &impl LatencyProvider,
    table: &mut Table,
    seed: u64,
) {
    let w = synthetic_opp(
        topology,
        &OppParams {
            seed,
            ..OppParams::default()
        },
    );
    let cfg = BenchConfig {
        vivaldi_neighbors: if topology.len() > 500 { 32 } else { 20 },
        ..BenchConfig::default()
    };
    let set = run_all_approaches(&w.topology, provider, &w.query, &cfg);
    let bound = set
        .get("sink")
        .expect("sink present")
        .real
        .latency_percentile(0.9);

    // nova(p): the most heterogeneous capacity distribution (highest
    // replication to balance load).
    let heavy = CapacityDistribution::Exponential {
        scale: 120.0,
        min: 1.0,
        max: 1000.0,
    };
    let wp = synthetic_opp(
        topology,
        &OppParams {
            capacity: heavy,
            seed,
            ..OppParams::default()
        },
    );
    let cfg_p = BenchConfig {
        nova: NovaConfig {
            sigma: 0.25,
            ..NovaConfig::default()
        },
        include_tree_family: false,
        ..cfg
    };
    let set_p = run_all_approaches(&wp.topology, provider, &wp.query, &cfg_p);
    let bound_p = set_p
        .get("sink")
        .expect("sink present")
        .real
        .latency_percentile(0.9);
    let novap = set_p
        .get("nova")
        .expect("nova present")
        .real
        .latency_percentile(0.9)
        - bound_p;

    let delta = |n: &str| -> String {
        set.get(n)
            .map(|r| format!("{:.1}", r.real.latency_percentile(0.9) - bound))
            .unwrap_or_else(|| "-".into())
    };
    table.row(vec![
        name.to_string(),
        format!("{:.1}", bound),
        delta("nova"),
        format!("{novap:.1}"),
        delta("source"),
        delta("top-c"),
        delta("cl-sf"),
        delta("tree"),
        delta("cl-tree-sf"),
    ]);
}

fn main() {
    let seed = 21;
    println!("== Fig. 7: 90P latency delta (ms) vs sink-based lower bound ==\n");
    let mut table = Table::new(&[
        "topology",
        "bound(90P)",
        "nova",
        "nova(p)",
        "source",
        "top-c",
        "cl-sf",
        "tree",
        "cl-tree-sf",
    ]);

    for testbed in [
        Testbed::PlanetLab,
        Testbed::FitIotLab,
        Testbed::RipeAtlas,
        Testbed::King,
    ] {
        let data = testbed.generate(seed);
        run_topology(testbed.name(), &data.topology, &data.rtt, &mut table, seed);
    }
    // 1K-node synthetic simulation topology.
    let syn = SyntheticTopology::generate(&SyntheticParams {
        n: 1000,
        seed,
        ..Default::default()
    });
    let dense = DenseRtt::from_provider(&syn.rtt);
    run_topology("1K synthetic", &syn.topology, &dense, &mut table, seed);

    table.print();
    write_csv("fig07_quality.csv", table.headers(), table.rows());
    println!(
        "(deltas in ms above the sink-based direct-transmission bound; the bound itself\n\
         ignores overload — Fig. 6/11 show why it is unusable in practice)"
    );
}
