//! Figure 12: end-to-end latency percentiles (mean, 90P–99.99P) for the
//! DEBS workload, under normal and stressed conditions.
//!
//! The stressed configuration saturates the source nodes' CPUs (the
//! paper uses `stress`; the simulator scales source capacity to 30 %).
//! Expected shape (§4.7): Nova's mean stays in the low tens of ms with a
//! tightly bounded 99.99P; sink-based is ~14× slower on the mean;
//! cluster/top-c ~10×; source/tree ~4.6× — and under stress the
//! baselines' tails explode (paper: 39× at the 99.99P for cluster/top-c)
//! while Nova degrades only mildly.
//!
//! Run with `--full` for the paper's 120 s duration (default 30 s).

use nova_bench::{default_sim, end_to_end_runs, write_csv, Table, STRESS_FACTOR};
use nova_workloads::{environmental_scenario, EnvironmentalParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let duration_ms = if full { 120_000.0 } else { 30_000.0 };
    let seed = 12;

    let scenario = environmental_scenario(&EnvironmentalParams::default());
    let sim = default_sim(duration_ms, seed);

    for (label, stress) in [("non-stressed", 1.0), ("stressed", STRESS_FACTOR)] {
        println!(
            "== Fig. 12: end-to-end latency percentiles ({label}, {}s run) ==\n",
            duration_ms / 1000.0
        );
        let runs = end_to_end_runs(&scenario, &sim, stress);
        let mut table = Table::new(&[
            "approach",
            "delivered",
            "mean",
            "90P",
            "99P",
            "99.9P",
            "99.99P",
        ]);
        for run in &runs {
            let r = &run.result;
            table.row(vec![
                run.name.to_string(),
                r.delivered.to_string(),
                format!("{:.1}", r.mean_latency()),
                format!("{:.1}", r.latency_percentile(0.90)),
                format!("{:.1}", r.latency_percentile(0.99)),
                format!("{:.1}", r.latency_percentile(0.999)),
                format!("{:.1}", r.latency_percentile(0.9999)),
            ]);
        }
        table.print();
        write_csv(&format!("fig12_{label}.csv"), table.headers(), table.rows());

        let find = |name: &str| runs.iter().find(|r| r.name == name);
        if let (Some(nova), Some(sink), Some(st)) =
            (find("nova"), find("sink"), find("source/tree"))
        {
            println!(
                "mean-latency factors vs nova — sink: {:.1}×, source/tree: {:.1}× \
                 (paper, non-stressed: 14.4× and 4.6×)\n",
                sink.result.mean_latency() / nova.result.mean_latency().max(1e-9),
                st.result.mean_latency() / nova.result.mean_latency().max(1e-9),
            );
        }
    }
}
