//! Figure 12: end-to-end latency percentiles (mean, 90P–99.99P) for the
//! DEBS workload, under normal and stressed conditions.
//!
//! The stressed configuration saturates the source nodes' CPUs (the
//! paper uses `stress`; the simulator scales source capacity to 30 %).
//! Expected shape (§4.7): Nova's mean stays in the low tens of ms with a
//! tightly bounded 99.99P; sink-based is ~14× slower on the mean;
//! cluster/top-c ~10×; source/tree ~4.6× — and under stress the
//! baselines' tails explode (paper: 39× at the 99.99P for cluster/top-c)
//! while Nova degrades only mildly.
//!
//! Run with `--full` for the paper's 120 s duration (default 30 s).
//! Run with `--real` to additionally re-run every placement on the
//! `nova-exec` executor and emit side-by-side simulator/executor
//! columns; `--help` lists the executor knobs (backend selection,
//! shards, workers, key space/buckets — parsed by
//! [`nova_bench::real_exec_cfg`], documented by
//! [`nova_bench::REAL_FLAGS_USAGE`]).

use nova_bench::{
    default_sim, end_to_end_runs, end_to_end_runs_real, metrics_out_path, real_exec_cfg,
    with_key_space, write_csv, MetricsWriter, Table, REAL_FLAGS_USAGE, STRESS_FACTOR,
};
use nova_workloads::{environmental_scenario, EnvironmentalParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "fig12_latency_percentiles: latency percentiles (normal + stressed), \
             DEBS workload\n\nOptions:\n  --full                the paper's 120 s \
             horizon (default 30 s)\n{REAL_FLAGS_USAGE}"
        );
        return;
    }
    let full = args.iter().any(|a| a == "--full");
    let duration_ms = if full { 120_000.0 } else { 30_000.0 };
    let seed = 12;

    let scenario = environmental_scenario(&EnvironmentalParams::default());
    let sim = with_key_space(&args, default_sim(duration_ms, seed));
    let real_cfg = real_exec_cfg(&args, &sim, 20.0);
    let real = real_cfg.is_some();
    let mut metrics = metrics_out_path(&args)
        .filter(|_| real)
        .map(|p| MetricsWriter::create(&p));

    for (label, stress) in [("non-stressed", 1.0), ("stressed", STRESS_FACTOR)] {
        println!(
            "== Fig. 12: end-to-end latency percentiles ({label}, {}s run{}) ==\n",
            duration_ms / 1000.0,
            real_cfg
                .as_ref()
                .map(|cfg| format!(", + executor: {}", nova_bench::exec_label(cfg)))
                .unwrap_or_default()
        );
        let runs = end_to_end_runs(&scenario, &sim, stress);
        let real_runs = real_cfg
            .as_ref()
            .map(|cfg| end_to_end_runs_real(&scenario, cfg, stress, metrics.as_mut()));
        let mut headers = vec![
            "approach",
            "delivered",
            "mean",
            "90P",
            "99P",
            "99.9P",
            "99.99P",
        ];
        if real {
            headers.extend(["delivered real", "mean real", "99P real"]);
        }
        let mut table = Table::new(&headers);
        for (i, run) in runs.iter().enumerate() {
            let r = &run.result;
            let mut row = vec![
                run.name.to_string(),
                r.delivered.to_string(),
                format!("{:.1}", r.mean_latency()),
                format!("{:.1}", r.latency_percentile(0.90)),
                format!("{:.1}", r.latency_percentile(0.99)),
                format!("{:.1}", r.latency_percentile(0.999)),
                format!("{:.1}", r.latency_percentile(0.9999)),
            ];
            if let Some(real_runs) = &real_runs {
                let e = &real_runs[i].result;
                assert_eq!(real_runs[i].name, run.name, "approach order must match");
                row.extend([
                    e.delivered_by(duration_ms).to_string(),
                    format!("{:.1}", e.mean_latency()),
                    format!("{:.1}", e.latency_percentile(0.99)),
                ]);
            }
            table.row(row);
        }
        table.print();
        write_csv(&format!("fig12_{label}.csv"), table.headers(), table.rows());

        let find = |name: &str| runs.iter().find(|r| r.name == name);
        if let (Some(nova), Some(sink), Some(st)) =
            (find("nova"), find("sink"), find("source/tree"))
        {
            println!(
                "mean-latency factors vs nova — sink: {:.1}×, source/tree: {:.1}× \
                 (paper, non-stressed: 14.4× and 4.6×)\n",
                sink.result.mean_latency() / nova.result.mean_latency().max(1e-9),
                st.result.mean_latency() / nova.result.mean_latency().max(1e-9),
            );
        }
    }
}
