//! CI smoke check for executor-backend performance and correctness.
//!
//! Runs the `exec_throughput` workload (see
//! [`nova_bench::throughput_world`]) with short iterations — the
//! thread-per-operator baseline plus the sharded backend at 1/2/4/8
//! shards — and:
//!
//! * asserts `matched` counts are **identical** across every backend
//!   and shard count (a sharding bug fails the job loudly on any host),
//! * on hosts with ≥ 4 cores, asserts the 4-shard backend beats the
//!   threaded baseline on aggregate tuples/s (perf regressions fail
//!   loudly where the parallelism exists to measure them),
//! * writes `BENCH_exec.json` with tuples/s per shard count, so the
//!   scaling trajectory is tracked run over run.
//!
//! Run with: `cargo run --release -p nova-bench --bin bench_exec_smoke`
//! (`--full` for the benchmark-length 1 s horizon; default 300 ms keeps
//! the CI job in seconds).

use nova_bench::{throughput_cfg, throughput_world};
use nova_exec::{Backend, ExecConfig, ExecResult, ShardedBackend, ThreadedBackend};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let duration_ms = if full { 1000.0 } else { 300.0 };

    // The exec_throughput benchmark workload: 2 keyed pairs at
    // 300 k tuples/s per stream, one emission interval per window,
    // selectivity 1.0 — aggregate demand 1.2 M tuples/s.
    let rate = 300_000.0;
    let (topology, dataflow) = throughput_world(2, rate);
    let base = throughput_cfg(duration_ms, 1000.0 / rate, 1.0, 1);

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "bench_exec_smoke: {cores}-core host, {duration_ms} ms virtual horizon, \
         1.2 M tuples/s aggregate demand\n"
    );

    // Discarded warmup pass: page in the binary, warm the allocator and
    // let the scheduler settle, so the first measured run — the threaded
    // baseline the perf gate divides by — is not systematically cold
    // (a cold baseline biases the speedup gate toward passing).
    {
        let mut dist = |_a, _b| 0.0;
        let _ = ThreadedBackend.run(&topology, &mut dist, &dataflow, &base);
    }

    let mut runs: Vec<(String, usize, ExecResult)> = Vec::new();
    {
        let mut dist = |_a, _b| 0.0;
        let res = ThreadedBackend.run(&topology, &mut dist, &dataflow, &base);
        runs.push(("threaded".into(), 1, res));
    }
    // Both backends share one bootstrap, so the sharded(1) row is the
    // same machinery as the baseline — a sanity anchor whose delta vs
    // threaded is pure measurement noise.
    for shards in [1usize, 2, 4, 8] {
        let cfg = ExecConfig { shards, ..base };
        let mut dist = |_a, _b| 0.0;
        let res = ShardedBackend.run(&topology, &mut dist, &dataflow, &cfg);
        runs.push(("sharded".into(), shards, res));
    }

    println!(
        "{:<10} {:>7} {:>10} {:>10} {:>9} {:>12} {:>8}",
        "backend", "shards", "emitted", "matched", "wall ms", "tuples/s", "threads"
    );
    for (name, shards, r) in &runs {
        println!(
            "{:<10} {:>7} {:>10} {:>10} {:>9.0} {:>12.0} {:>8}",
            name,
            shards,
            r.emitted,
            r.matched,
            r.wall_ms,
            r.input_tuples_per_wall_s(),
            r.threads,
        );
    }

    // Correctness: sharding must never change what joins.
    let reference = &runs[0].2;
    assert!(reference.delivered > 0, "workload delivered nothing");
    for (name, shards, r) in &runs[1..] {
        assert_eq!(
            r.matched, reference.matched,
            "{name}({shards}) changed the match set: {} vs {}",
            r.matched, reference.matched
        );
        assert_eq!(
            r.emitted, reference.emitted,
            "{name}({shards}) changed the emission count"
        );
    }
    println!("\nmatched counts identical across all backends/shard counts ✓");

    // Performance: where the cores exist, sharding must pay off. The
    // enforced bound is 1.5× at 4 shards — deliberately below the 2.5×
    // dedicated-4-core acceptance target, because shared/noisy CI
    // runners can't sustain that bar reliably; 1-to-3-core hosts only
    // report. The full tuples/s trajectory lands in BENCH_exec.json
    // for offline comparison against the real target.
    let tput = |backend: &str, shards: usize| {
        runs.iter()
            .find(|(n, s, _)| n == backend && *s == shards)
            .map(|(_, _, r)| r.input_tuples_per_wall_s())
            .unwrap_or(0.0)
    };
    let threaded = tput("threaded", 1);
    let sharded4 = tput("sharded", 4);
    if cores >= 4 {
        let speedup = sharded4 / threaded.max(1.0);
        println!("sharded(4)/threaded speedup: {speedup:.2}× on {cores} cores");
        assert!(
            speedup >= 1.5,
            "backend perf regression: 4-shard backend only {speedup:.2}× \
             the threaded baseline on a {cores}-core host"
        );
    } else {
        println!(
            "host has {cores} core(s) < 4: reporting only, skipping the scaling assertion \
             (sharded(4)/threaded = {:.2}×)",
            sharded4 / threaded.max(1.0)
        );
    }

    // BENCH_exec.json: tuples/s per shard count, for the trajectory.
    let mut entries = String::new();
    for (i, (name, shards, r)) in runs.iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"backend\": \"{name}\", \"shards\": {shards}, \
             \"tuples_per_s\": {:.0}, \"wall_ms\": {:.1}, \"emitted\": {}, \
             \"matched\": {}, \"delivered\": {}, \"threads\": {}}}",
            r.input_tuples_per_wall_s(),
            r.wall_ms,
            r.emitted,
            r.matched,
            r.delivered,
            r.threads,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"exec_throughput_smoke\",\n  \"host_cores\": {cores},\n  \
         \"duration_ms\": {duration_ms},\n  \"aggregate_demand_tuples_per_s\": {:.0},\n  \
         \"runs\": [\n{entries}\n  ]\n}}\n",
        2.0 * 2.0 * rate,
    );
    let path = std::path::Path::new("BENCH_exec.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
