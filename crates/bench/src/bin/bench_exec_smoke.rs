//! CI smoke check for executor-backend performance and correctness.
//!
//! Runs the `exec_throughput` workloads (see
//! [`nova_bench::throughput_world`]) with short iterations across a
//! (backend × workers × shards × key-buckets) matrix next to the
//! thread-per-operator baseline, over four scenarios:
//!
//! * **uniform** — 2 equal-rate pairs, one emission interval per
//!   window: PR 2's workload, unchanged, so the tuples/s trajectory in
//!   `BENCH_exec.json` stays comparable run over run;
//! * **hot-pair** — a *single* pair with one giant window spanning the
//!   whole run ([`nova_bench::hot_pair_cfg`]): the skew failure mode
//!   where `(window, pair)` routing serializes on one shard and only
//!   key-bucket routing parallelizes;
//! * **zipf** — 4 pairs with Zipfian rates
//!   ([`nova_bench::zipf_pair_rates`]): skewed pair popularity with a
//!   keyed workload, count-identity under realistic imbalance;
//! * **oversubscribed** — the uniform workload with shard counts far
//!   beyond the core count (e.g. 32 shards on 4 cores): the regime
//!   where one-OS-thread-per-shard stops scaling and the M:N
//!   event-loop backend (`AsyncBackend`: S shard tasks on W ≤ cores
//!   worker threads) is supposed to win;
//! * **churn** — live reconfiguration (DESIGN.md §7): three mid-window
//!   epoch barriers per run (join-host failover + rate shifts) applied
//!   through `ExecHandle::apply` on every backend, gated
//!   count-identical to the simulator replaying the same pre/post
//!   plans (`simulate_reconfigured`) on any host, plus a
//!   stop-the-world handoff-pause gate on ≥ 4 cores;
//! * **autoscale** — closed-loop elasticity (DESIGN.md §9): every run
//!   is owned by an `Autoscaler`, the workload generator injects a
//!   flash-crowd (and, in a second profile, a diurnal swell-and-ebb)
//!   of rate steps plus one mid-run `add_source` admission, and the
//!   controller must detect saturation from live telemetry, scale up /
//!   re-place onto the strong host before delivered-latency p99
//!   doubles, and scale back down within one cooldown after the load
//!   passes — gated count-identical to the simulator replaying the
//!   controller's own recorded switch sequence on every backend.
//!   Writes `BENCH_exec_autoscale.json` plus the decision log
//!   `BENCH_exec_autoscale_decisions.jsonl` (one JSON line per
//!   snapshot: predicted utilization → chosen action → outcome).
//!
//! Gates (a failure fails the CI job loudly):
//!
//! * `emitted` / `matched` counts are **identical** across every
//!   backend, worker, shard and key-bucket count of a scenario, on any
//!   host — neither sharding nor cooperative scheduling may change
//!   what joins;
//! * on hosts with ≥ 4 cores, uniform: `sharded(4)` ≥ 1.5× threaded
//!   (PR 2's regression wall, byte-identical workload);
//! * on hosts with ≥ 4 cores, hot-pair: `sharded(4, buckets=16)` ≥
//!   1.2× threaded — the speedup `(window, pair)` routing cannot
//!   produce on this workload (its own ratio is printed for contrast);
//! * on hosts with ≥ 4 cores, zipf (keyed workload, `key_space` 64):
//!   bucket routing keeps ≥ 85 % of the buckets=1 4-shard throughput —
//!   both rows exercise the keyed probe path, so this is the
//!   keyed-routing-must-not-regress gate;
//! * on hosts with ≥ 4 cores, oversubscribed: `async(W=cores,
//!   S=cores)` ≥ 0.9× `sharded(shards=cores)` — the event loop's
//!   bookkeeping must be nearly free when nothing is oversubscribed —
//!   and `async(W=cores, S=32)` ≥ 0.95× `sharded(shards=32)` (target
//!   above 1.0; 5 % runner-noise slack) — where shards ≫ cores, W
//!   threads must beat 32;
//! * on any host, churn: `emitted`/`matched`/`delivered` identical to
//!   the simulator replay, clean epoch splits, live state migrated;
//!   on ≥ 4 cores additionally handoff p99 ≤ 250 ms;
//! * on hosts with ≥ 4 cores, uniform: the telemetry plane's hot-path
//!   instruments cost ≤ 3 % — the instrumented threaded run holds
//!   ≥ 0.97× the `threaded-notm` (telemetry-off) row's throughput.
//!
//! Every scenario writes its tuples/s table to
//! `BENCH_exec[_<scenario>].json`, uploaded as a workflow artifact on
//! every run (pass or fail).
//!
//! Run with: `cargo run --release -p nova-bench --bin bench_exec_smoke`
//! (`--full` for the benchmark-length 1 s horizon; default 300 ms keeps
//! the CI job in seconds.
//! `--scenario uniform|hot-pair|zipf|oversubscribed|churn|autoscale`
//! selects one scenario — the CI matrix fans them out — default runs
//! all.
//! `--metrics-out <path>` streams every row's live telemetry snapshots
//! to `<path>` as JSON lines (one `MetricsSnapshot` per line, tagged
//! with its scenario and row) — the CI matrix uploads these as
//! artifacts. `--prom-out <path>` renders the last row's final
//! snapshot as a Prometheus text exposition.)

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use nova_bench::{
    hot_pair_cfg, throughput_cfg, throughput_world, throughput_world_rates, zipf_pair_rates,
};
use nova_core::baselines::host_based;
use nova_core::{JoinQuery, StreamSpec};
use nova_exec::{
    launch, AutoscaleConfig, AutoscaleReport, Autoscaler, Backend, BackendKind, DecisionRecord,
    ExecConfig, ExecResult, MetricsSnapshot, Relocator, ThreadedBackend,
};
use nova_runtime::{percentile, simulate_reconfigured, Dataflow, PlanSwitch};
use nova_topology::{NodeId, NodeRole, Topology};

/// Telemetry artifact sinks (`--metrics-out` / `--prom-out`). When
/// either is set, every measured row runs with a live
/// [`nova_exec::ExecHandle::subscribe`] stream; each snapshot becomes
/// one JSON line tagged with its scenario/row, and the last row's final
/// snapshot is rendered as a Prometheus text exposition.
struct Capture {
    metrics: Option<std::fs::File>,
    prom: Option<String>,
}

impl Capture {
    fn open(metrics_out: Option<&str>, prom_out: Option<&str>) -> Capture {
        let metrics = metrics_out.map(|p| {
            std::fs::File::create(p)
                .unwrap_or_else(|e| panic!("--metrics-out: cannot create {p}: {e}"))
        });
        Capture {
            metrics,
            prom: prom_out.map(str::to_string),
        }
    }

    fn wants(&self) -> bool {
        self.metrics.is_some() || self.prom.is_some()
    }

    fn record(&mut self, scenario: &str, row: &str, snap: &MetricsSnapshot) {
        if let Some(file) = &mut self.metrics {
            // Splice the tags into the snapshot's own JSON object.
            let line = snap.to_json_line();
            let _ = writeln!(
                file,
                "{{\"scenario\": \"{scenario}\", \"row\": \"{row}\", {}",
                &line[1..]
            );
        }
    }

    fn finish_row(&mut self, snap: Option<&MetricsSnapshot>) {
        if let (Some(path), Some(snap)) = (&self.prom, snap) {
            if let Err(e) = std::fs::write(path, snap.to_prometheus()) {
                eprintln!("warning: could not write {path}: {e}");
            }
        }
    }
}

/// One measured run: launch, optionally stream snapshots into the
/// capture sinks, join. All matrix rows go through here so the
/// telemetry capture and the plain run measure the same code path.
fn measure(
    topology: &Topology,
    dataflow: &Dataflow,
    cfg: &ExecConfig,
    scenario: &str,
    row: &str,
    cap: &mut Capture,
) -> ExecResult {
    let handle = launch(topology, |_, _| 0.0, dataflow, cfg).expect("bench config is valid");
    let rx = cap.wants().then(|| {
        handle
            .subscribe(Duration::from_millis(25))
            .expect("non-zero interval")
    });
    let res = handle.join();
    if let Some(rx) = rx {
        let mut last = None;
        for snap in rx.iter() {
            cap.record(scenario, row, &snap);
            last = Some(snap);
        }
        cap.finish_row(last.as_ref());
    }
    res
}

/// One measured run of the matrix. `workers` is 0 for the
/// thread-per-shard backends (they spawn one thread per shard).
struct Run {
    backend: &'static str,
    workers: usize,
    shards: usize,
    key_buckets: usize,
    batch: usize,
    res: ExecResult,
}

/// A named workload + config + the sweeps to run: `(shards,
/// key_buckets)` rows on the sharded backend, `(workers, shards)` rows
/// on the async event loop.
struct Scenario {
    name: &'static str,
    topology: Topology,
    dataflow: Dataflow,
    base: ExecConfig,
    sweep: Vec<(usize, usize)>,
    async_sweep: Vec<(usize, usize)>,
    /// `batch_size` values to sweep on the threaded backend (the
    /// single-worker row isolates the framing cost from parallelism) —
    /// the rows behind the batch-speedup gate.
    batch_sweep: Vec<usize>,
    aggregate_demand: f64,
    /// The core-count-sized row pair the oversubscription gates
    /// compare (recorded so the gates and the sweep cannot drift).
    cores_sized: usize,
    /// Add a `threaded-notm` row (telemetry disabled) next to the
    /// threaded baseline — the pair the metrics-overhead gate divides.
    telemetry_baseline: bool,
}

fn scenario(name: &str, duration_ms: f64, cores: usize) -> Scenario {
    match name {
        // PR 2's workload, byte-identical: 2 keyed pairs at
        // 300 k tuples/s per stream, one emission interval per window,
        // selectivity 1.0 — aggregate demand 1.2 M tuples/s.
        "uniform" => {
            let rate = 300_000.0;
            let (topology, dataflow) = throughput_world(2, rate);
            Scenario {
                name: "uniform",
                topology,
                dataflow,
                base: throughput_cfg(duration_ms, 1000.0 / rate, 1.0, 1),
                sweep: vec![(1, 1), (2, 1), (4, 1), (4, 4), (8, 1), (8, 8)],
                async_sweep: vec![],
                batch_sweep: vec![1, 2, 7, 64],
                aggregate_demand: 4.0 * rate,
                cores_sized: 0,
                telemetry_baseline: true,
            }
        }
        // One pair, one giant window, 128 sub-keys: under (window, pair)
        // routing every tuple of the run hashes to a single shard.
        "hot-pair" => {
            let rate = 100_000.0;
            let (topology, dataflow) = throughput_world(1, rate);
            Scenario {
                name: "hot-pair",
                topology,
                dataflow,
                base: hot_pair_cfg(duration_ms, 128, 1, 1),
                sweep: vec![(4, 1), (2, 16), (4, 16), (8, 16)],
                async_sweep: vec![],
                batch_sweep: vec![],
                aggregate_demand: 2.0 * rate,
                cores_sized: 0,
                telemetry_baseline: false,
            }
        }
        // 4 pairs, Zipfian rates (head pair ~54 % of traffic), keyed
        // workload, 2 windows per run.
        "zipf" => {
            let rates = zipf_pair_rates(4, 100_000.0, 1.25);
            let aggregate_demand = 2.0 * rates.iter().sum::<f64>();
            let (topology, dataflow) = throughput_world_rates(&rates);
            let base = ExecConfig {
                key_space: 64,
                ..throughput_cfg(duration_ms, duration_ms / 2.0, 0.02, 1)
            };
            Scenario {
                name: "zipf",
                topology,
                dataflow,
                base,
                sweep: vec![(4, 1), (4, 16), (8, 16)],
                async_sweep: vec![],
                batch_sweep: vec![],
                aggregate_demand,
                cores_sized: 0,
                telemetry_baseline: false,
            }
        }
        // The uniform workload pushed past the core count: sharded at
        // shards = cores (its sweet spot) and shards = 32 (one OS
        // thread per shard, oversubscribed) vs the async event loop at
        // W = cores with S = cores and S = 32 tasks.
        "oversubscribed" => {
            let rate = 300_000.0;
            let (topology, dataflow) = throughput_world(2, rate);
            let w = cores.clamp(1, 8);
            Scenario {
                name: "oversubscribed",
                topology,
                dataflow,
                base: throughput_cfg(duration_ms, 1000.0 / rate, 1.0, 1),
                sweep: vec![(w, 1), (32, 1)],
                async_sweep: vec![(w, w), (w, 32)],
                batch_sweep: vec![],
                aggregate_demand: 4.0 * rate,
                cores_sized: w,
                telemetry_baseline: false,
            }
        }
        other => {
            eprintln!(
                "unknown scenario {other:?}: expected uniform | hot-pair | zipf | \
                 oversubscribed | churn"
            );
            std::process::exit(2);
        }
    }
}

fn run_matrix(sc: &Scenario, cap: &mut Capture) -> Vec<Run> {
    // Discarded warmup pass: page in the binary, warm the allocator and
    // let the scheduler settle, so the first measured run — the threaded
    // baseline the perf gates divide by — is not systematically cold
    // (a cold baseline biases the speedup gates toward passing).
    {
        let mut dist = |_a, _b| 0.0;
        let _ = ThreadedBackend.run(&sc.topology, &mut dist, &sc.dataflow, &sc.base);
    }
    let mut runs = Vec::new();
    let row = |runs: &mut Vec<Run>, cap: &mut Capture, backend, workers, cfg: ExecConfig| {
        let label = format!(
            "{backend}-w{workers}-s{}-b{}-f{}",
            cfg.shards.max(1),
            cfg.key_buckets,
            cfg.batch_size
        );
        let res = measure(&sc.topology, &sc.dataflow, &cfg, sc.name, &label, cap);
        runs.push(Run {
            backend,
            workers,
            shards: cfg.shards.max(1),
            key_buckets: cfg.key_buckets,
            batch: cfg.batch_size,
            res,
        });
    };
    row(
        &mut runs,
        cap,
        "threaded",
        0,
        ExecConfig {
            backend: BackendKind::Threaded,
            ..sc.base
        },
    );
    if sc.telemetry_baseline {
        // Same workload, instruments left unwired: the denominator of
        // the metrics-overhead gate (and a telemetry-off sanity row —
        // counts must not move either way). The pair is interleaved
        // 3× and the gate compares best-vs-best: noise only ever
        // slows a run down, so each side's max throughput estimates
        // its intrinsic speed and the ratio isolates the instrument
        // cost from scheduler jitter.
        for rep in 0..3 {
            row(
                &mut runs,
                cap,
                "threaded-notm",
                0,
                ExecConfig {
                    backend: BackendKind::Threaded,
                    telemetry: false,
                    ..sc.base
                },
            );
            if rep < 2 {
                row(
                    &mut runs,
                    cap,
                    "threaded",
                    0,
                    ExecConfig {
                        backend: BackendKind::Threaded,
                        ..sc.base
                    },
                );
            }
        }
    }
    for &(shards, key_buckets) in &sc.sweep {
        row(
            &mut runs,
            cap,
            "sharded",
            0,
            ExecConfig {
                backend: BackendKind::Sharded,
                shards,
                key_buckets,
                ..sc.base
            },
        );
    }
    for &(workers, shards) in &sc.async_sweep {
        row(
            &mut runs,
            cap,
            "async",
            workers,
            ExecConfig {
                backend: BackendKind::Async,
                workers,
                shards,
                ..sc.base
            },
        );
    }
    // Batch-size sweep on the threaded backend: one worker, no
    // sharding, so the rows isolate what the frame size buys on the
    // channel + accounting hot path. Count identity across the rows is
    // checked with the rest of the matrix; the batch-speedup gate
    // compares the extremes.
    for &batch_size in &sc.batch_sweep {
        row(
            &mut runs,
            cap,
            "threaded",
            0,
            ExecConfig {
                backend: BackendKind::Threaded,
                batch_size,
                ..sc.base
            },
        );
    }
    runs
}

/// tuples/s of the (backend, shards, buckets) row of a thread-per-shard
/// backend. Panics when the row is missing — a gate comparing against
/// an absent row is a bug in the scenario's sweep, not a
/// 0.0-throughput measurement.
fn tput(runs: &[Run], backend: &str, shards: usize, key_buckets: usize) -> f64 {
    runs.iter()
        .find(|r| r.backend == backend && r.shards == shards && r.key_buckets == key_buckets)
        .map(|r| r.res.input_tuples_per_wall_s())
        .unwrap_or_else(|| panic!("no {backend}({shards}, buckets={key_buckets}) row in the sweep"))
}

/// tuples/s of the threaded batch-sweep row with the given frame size;
/// panics like [`tput`].
fn tput_batch(runs: &[Run], batch: usize) -> f64 {
    runs.iter()
        .find(|r| r.backend == "threaded" && r.batch == batch)
        .map(|r| r.res.input_tuples_per_wall_s())
        .unwrap_or_else(|| panic!("no threaded(batch={batch}) row in the sweep"))
}

/// tuples/s of the async (workers, shards) row; panics like [`tput`].
fn tput_async(runs: &[Run], workers: usize, shards: usize) -> f64 {
    runs.iter()
        .find(|r| r.backend == "async" && r.workers == workers && r.shards == shards)
        .map(|r| r.res.input_tuples_per_wall_s())
        .unwrap_or_else(|| panic!("no async(W={workers}, S={shards}) row in the sweep"))
}

fn check_scenario(sc: &Scenario, runs: &[Run], cores: usize) {
    println!(
        "\n=== scenario {} ({:.1} M tuples/s aggregate demand) ===",
        sc.name,
        sc.aggregate_demand / 1e6
    );
    println!(
        "{:<10} {:>7} {:>7} {:>8} {:>6} {:>10} {:>10} {:>9} {:>12} {:>8}",
        "backend",
        "workers",
        "shards",
        "buckets",
        "batch",
        "emitted",
        "matched",
        "wall ms",
        "tuples/s",
        "threads"
    );
    for r in runs {
        println!(
            "{:<10} {:>7} {:>7} {:>8} {:>6} {:>10} {:>10} {:>9.0} {:>12.0} {:>8}",
            r.backend,
            if r.workers == 0 {
                "-".to_string()
            } else {
                r.workers.to_string()
            },
            r.shards,
            r.key_buckets,
            r.batch,
            r.res.emitted,
            r.res.matched,
            r.res.wall_ms,
            r.res.input_tuples_per_wall_s(),
            r.res.threads,
        );
    }

    // Correctness: sharding — at any worker, shard AND bucket count —
    // must never change what joins.
    let reference = &runs[0].res;
    assert!(
        reference.delivered > 0,
        "{}: workload delivered nothing",
        sc.name
    );
    for r in &runs[1..] {
        let tag = format!(
            "{}: {}(workers={}, shards={}, buckets={}, batch={})",
            sc.name, r.backend, r.workers, r.shards, r.key_buckets, r.batch
        );
        assert_eq!(
            r.res.matched, reference.matched,
            "{tag} changed the match set: {} vs {}",
            r.res.matched, reference.matched
        );
        assert_eq!(
            r.res.emitted, reference.emitted,
            "{tag} changed the emission count"
        );
        assert_eq!(
            r.res.delivered, reference.delivered,
            "{tag} changed the delivery count"
        );
    }
    println!("matched/delivered counts identical across the whole matrix ✓");

    // Performance gates: where the cores exist, sharding must pay off.
    // Uniform keeps PR 2's 1.5× regression wall (deliberately below the
    // dedicated-4-core target; shared CI runners are noisy). Hot-pair
    // is the new claim: key buckets must yield ≥ 1.2× where
    // (window, pair) routing structurally cannot. Zipf — the scenario
    // whose rows all run the keyed probe path — pins bucket routing to
    // ≥ 85 % of the buckets=1 4-shard throughput. 1-to-3-core hosts
    // only report.
    let threaded = tput(runs, "threaded", 1, 1);
    match sc.name {
        "uniform" => {
            let sharded4 = tput(runs, "sharded", 4, 1);
            let layout4 = tput(runs, "sharded", 4, 4);
            let speedup = sharded4 / threaded.max(1.0);
            // key_space is 1 here, so the buckets=4 rows carry sub-key 0
            // throughout: one constant (non-zero) bucket that permutes
            // the (window, pair) shard layout without splitting any
            // slice. Count identity above is the check; the ratio is
            // informational (the keyed-probe perf gate lives in the
            // zipf scenario, where sub-key diversity is real).
            println!(
                "uniform: sharded(4)/threaded = {speedup:.2}×, \
                 bucket-permuted layout(4,4)/sharded(4,1) = {:.2} on {cores} cores",
                layout4 / sharded4.max(1.0)
            );
            // Metrics-overhead gate: the telemetry plane's hot-path
            // cost is one relaxed atomic bump per event, so the
            // instrumented threaded run must hold ≥ 97 % of the
            // telemetry-off throughput. Best-of-3 on each side (the
            // rows are interleaved in the sweep): max throughput is
            // robust to scheduler noise, which only slows runs down.
            let best = |name: &str| {
                // Default-frame rows only: the batch sweep re-uses the
                // "threaded" backend name with other frame sizes, and a
                // faster frame must not inflate the instrumented side.
                runs.iter()
                    .filter(|r| r.backend == name && r.batch == sc.base.batch_size)
                    .map(|r| r.res.input_tuples_per_wall_s())
                    .fold(0.0f64, f64::max)
            };
            let tm_ratio = best("threaded") / best("threaded-notm").max(1.0);
            println!(
                "uniform: telemetry-on/telemetry-off = {tm_ratio:.3} \
                 (gate ≥ 0.97 on ≥ 4 cores)"
            );
            // Batch-framing gate: 64-tuple frames amortize the channel
            // hop and the accounting over 64× fewer messages, so the
            // frame-64 row must clearly beat frame-1 (tuple-at-a-time).
            // Measured ≥ 2× even on a 1-core container; the CI bound
            // leaves shared-runner slack, same philosophy as the 1.5×
            // shard wall (target 2×).
            let batch_speedup = tput_batch(runs, 64) / tput_batch(runs, 1).max(1.0);
            println!(
                "uniform: threaded batch=64/batch=1 = {batch_speedup:.2}× \
                 (gate ≥ 1.5 on ≥ 4 cores)"
            );
            if cores >= 4 {
                assert!(
                    speedup >= 1.5,
                    "backend perf regression: 4-shard backend only {speedup:.2}× \
                     the threaded baseline on a {cores}-core host"
                );
                assert!(
                    tm_ratio >= 0.97,
                    "telemetry overhead too high: instrumented threaded run at \
                     {tm_ratio:.3}× the telemetry-off baseline on a {cores}-core host"
                );
                assert!(
                    batch_speedup >= 1.5,
                    "batching stopped paying: threaded batch=64 only \
                     {batch_speedup:.2}× the batch=1 row on a {cores}-core host"
                );
            } else {
                println!("host has {cores} core(s) < 4: reporting only");
            }
        }
        "hot-pair" => {
            let pr2 = tput(runs, "sharded", 4, 1);
            let keyed = tput(runs, "sharded", 4, 16);
            println!(
                "hot-pair: sharded(4, buckets=1)/threaded = {:.2}× (PR 2 routing, \
                 expected ~1×), sharded(4, buckets=16)/threaded = {:.2}× on {cores} cores",
                pr2 / threaded.max(1.0),
                keyed / threaded.max(1.0),
            );
            if cores >= 4 {
                let speedup = keyed / threaded.max(1.0);
                assert!(
                    speedup >= 1.2,
                    "keyed sharding failed to parallelize the hot pair: \
                     sharded(4, buckets=16) only {speedup:.2}× the threaded baseline \
                     on a {cores}-core host"
                );
            } else {
                println!("host has {cores} core(s) < 4: reporting only");
            }
        }
        "zipf" => {
            // Both 4-shard rows run the keyed probe path (key_space
            // 64), differing only in bucket routing — the real "keyed
            // routing must not regress throughput" gate.
            let unkeyed_routing = tput(runs, "sharded", 4, 1);
            let keyed_routing = tput(runs, "sharded", 4, 16);
            let ratio = keyed_routing / unkeyed_routing.max(1.0);
            println!(
                "{}: sharded(4, buckets=16)/threaded = {:.2}×, \
                 keyed(4,16)/unkeyed-routing(4,1) = {ratio:.2} on {cores} cores",
                sc.name,
                keyed_routing / threaded.max(1.0),
            );
            if cores >= 4 {
                assert!(
                    ratio >= 0.85,
                    "key-bucket routing regressed the keyed workload: \
                     buckets=16 at {ratio:.2} of the buckets=1 4-shard throughput"
                );
            } else {
                println!("host has {cores} core(s) < 4: reporting only");
            }
        }
        "oversubscribed" => {
            let w = sc.cores_sized;
            let sharded_at_cores = tput(runs, "sharded", w, 1);
            let sharded_oversub = tput(runs, "sharded", 32, 1);
            let async_at_cores = tput_async(runs, w, w);
            let async_oversub = tput_async(runs, w, 32);
            let parity = async_at_cores / sharded_at_cores.max(1.0);
            let oversub = async_oversub / sharded_oversub.max(1.0);
            println!(
                "oversubscribed: async(W={w}, S={w})/sharded({w}) = {parity:.2}, \
                 async(W={w}, S=32)/sharded(32) = {oversub:.2} on {cores} cores \
                 (sharded(32)/sharded({w}) = {:.2})",
                sharded_oversub / sharded_at_cores.max(1.0),
            );
            if cores >= 4 {
                // Parity gate: with nothing oversubscribed (S = W =
                // cores) the event loop's scheduler bookkeeping must
                // cost at most ~10 % vs dedicated threads.
                assert!(
                    parity >= 0.9,
                    "event-loop overhead too high: async(W={w}, S={w}) only \
                     {parity:.2}x the {w}-shard thread-per-shard backend \
                     on a {cores}-core host"
                );
                // Oversubscription gate: at 32 shards on w ≤ 8 workers,
                // W worker threads must beat 32 OS threads — the
                // regime the backend exists for. Target > 1.0; the CI
                // bound leaves 5 % for shared-runner jitter on a
                // 300 ms wall-clock ratio, same philosophy as the
                // uniform scenario's 1.5× wall (target 2.5×). Only
                // enforced where the host makes sharded(32) genuinely
                // oversubscribed: w is clamped to 8, so on > 8-core
                // machines sharded's 32 threads get more real cores
                // than async's 8 workers and could legitimately win —
                // report, don't gate.
                if cores <= 8 {
                    assert!(
                        oversub >= 0.95,
                        "async failed to win under oversubscription: async(W={w}, S=32) \
                         only {oversub:.2}x sharded(32) on a {cores}-core host \
                         (target > 1.0, gate 0.95)"
                    );
                } else {
                    println!(
                        "host has {cores} cores > 8: sharded(32) is not truly \
                         oversubscribed vs {w} workers — reporting only"
                    );
                }
            } else {
                println!("host has {cores} core(s) < 4: reporting only");
            }
        }
        // scenario() rejects unknown names before any run starts; a new
        // scenario must declare its own gates here rather than silently
        // inheriting another's against rows its sweep never produced.
        other => unreachable!("no perf gates defined for scenario {other:?}"),
    }
}

fn write_json(sc: &Scenario, runs: &[Run], cores: usize, duration_ms: f64) {
    let mut entries = String::new();
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"backend\": \"{}\", \"workers\": {}, \"shards\": {}, \"key_buckets\": {}, \
             \"batch\": {}, \"tuples_per_s\": {:.0}, \"wall_ms\": {:.1}, \"emitted\": {}, \
             \"matched\": {}, \"delivered\": {}, \"threads\": {}}}",
            r.backend,
            r.workers,
            r.shards,
            r.key_buckets,
            r.batch,
            r.res.input_tuples_per_wall_s(),
            r.res.wall_ms,
            r.res.emitted,
            r.res.matched,
            r.res.delivered,
            r.res.threads,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"exec_throughput_smoke\",\n  \"scenario\": \"{}\",\n  \
         \"host_cores\": {cores},\n  \"duration_ms\": {duration_ms},\n  \
         \"aggregate_demand_tuples_per_s\": {:.0},\n  \"runs\": [\n{entries}\n  ]\n}}\n",
        sc.name, sc.aggregate_demand,
    );
    // The uniform scenario keeps the historical BENCH_exec.json name so
    // the tuples/s trajectory stays comparable across PRs; the others
    // get a scenario suffix (oversubscribed abbreviated to match the
    // CI artifact name).
    let file = match sc.name {
        "uniform" => "BENCH_exec.json".to_string(),
        "oversubscribed" => "BENCH_exec_oversub.json".to_string(),
        other => format!("BENCH_exec_{}.json", other.replace('-', "_")),
    };
    let path = std::path::Path::new(&file);
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

// ---------------------------------------------------------------------
// churn: live reconfiguration under load (exec-side §3.5)
// ---------------------------------------------------------------------

/// The churn world: sink + two join-host workers + `rates.len()` source
/// pairs, every node a pure relay (capacity 0) so runs are structurally
/// drop-free at any execution speed — the precondition for the
/// count-identity gates.
fn churn_world(rates: &[f64]) -> (Topology, JoinQuery, NodeId, NodeId) {
    let mut t = Topology::new();
    let sink = t.add_node(NodeRole::Sink, 0.0, "sink");
    let w1 = t.add_node(NodeRole::Worker, 0.0, "w1");
    let w2 = t.add_node(NodeRole::Worker, 0.0, "w2");
    let mut left = Vec::new();
    let mut right = Vec::new();
    for (k, &rate) in rates.iter().enumerate() {
        let l = t.add_node(NodeRole::Source, 0.0, format!("l{k}"));
        let r = t.add_node(NodeRole::Source, 0.0, format!("r{k}"));
        left.push(StreamSpec::keyed(l, rate, k as u32));
        right.push(StreamSpec::keyed(r, rate, k as u32));
    }
    let query = JoinQuery::by_key(left, right, sink);
    (t, query, w1, w2)
}

struct ChurnRun {
    backend: &'static str,
    workers: usize,
    shards: usize,
    batch: usize,
    res: ExecResult,
    pause_p99_ms: f64,
    handoff_p99_ms: f64,
    migrated_tuples: usize,
    /// Every epoch barriered ahead of the emission frontier — the
    /// precondition for the replay-identity gate below.
    clean_split: bool,
}

/// Run the live-reconfiguration scenario: mid-run, the join hosts
/// "fail" (w1 leaves, everything re-places onto w2 and back) while the
/// source rates double and revert — three epoch barriers per run, none
/// window-aligned, so every reconfiguration hands off live mid-window
/// state. Gated on all hosts: every backend's
/// `emitted`/`matched`/`delivered` must equal the simulator replaying
/// the *same* pre/post plans (`nova_runtime::simulate_reconfigured`).
/// On ≥ 4-core hosts additionally gates the stop-the-world handoff p99.
fn run_churn(duration_ms: f64, cores: usize, cap: &mut Capture) {
    let rate = 50_000.0;
    let rates_pre = vec![rate; 2];
    let rates_hot = [2.0 * rate; 2];
    let (topology, q_pre, w1, w2) = churn_world(&rates_pre);
    // Same nodes, shifted rates: rebuild the query with the hot rates.
    let q_hot = {
        let mut q = q_pre.clone();
        for s in q.left.iter_mut().chain(q.right.iter_mut()) {
            s.rate = 2.0 * rate;
        }
        q
    };
    // Peak demand = the hot phases: 2 sides x the doubled rates.
    let aggregate_demand = 2.0 * rates_hot.iter().sum::<f64>();

    let base = ExecConfig {
        key_space: 64,
        // Real-time pacing (unlike the throughput scenarios' flat-out
        // time_scale 1000): reconfiguration is armed by wall-clock
        // control messages racing the virtual emission frontier, so the
        // epochs need real headroom ahead of the sources. The scenario
        // gates correctness and the stop-the-world pause, not tuples/s.
        time_scale: 1.0,
        ..throughput_cfg(duration_ms, duration_ms / 2.0, 0.02, 1)
    };
    // Epochs at 27 % / 55 % / 78 % of the horizon: none aligned to the
    // two tumbling windows, so each barrier migrates a live window.
    let epochs = [0.27, 0.55, 0.78].map(|f| f * duration_ms);
    let p_pre_w1 = host_based(&q_pre, &q_pre.resolve(), w1);
    let p_hot_w2 = host_based(&q_hot, &q_hot.resolve(), w2);
    let p_pre_w1_back = host_based(&q_pre, &q_pre.resolve(), w1);
    let switches = vec![
        // w1 leaves + rates double: pairs re-place onto w2.
        PlanSwitch::between(epochs[0], &q_hot, &p_pre_w1, &p_hot_w2, 1.0)
            .with_capacities(vec![(w1, 0.0)]),
        // w1 returns, rates revert.
        PlanSwitch::between(epochs[1], &q_pre, &p_hot_w2, &p_pre_w1_back, 1.0),
        // And churn once more: w2 takes over again at hot rates.
        PlanSwitch::between(epochs[2], &q_hot, &p_pre_w1_back, &p_hot_w2, 1.0),
    ];
    let df0 = Dataflow::from_baseline(&q_pre, &p_pre_w1);

    // The reference: the simulator replaying the same pre/post plans.
    let sim_cfg = nova_runtime::SimConfig {
        duration_ms: base.duration_ms,
        window_ms: base.window_ms,
        selectivity: base.selectivity,
        gc_interval_ms: base.gc_interval_ms,
        seed: base.seed,
        max_queue_ms: base.max_queue_ms,
        key_space: base.key_space,
        ..nova_runtime::SimConfig::default()
    };
    let sim = simulate_reconfigured(&topology, |_, _| 0.0, &df0, &switches, &sim_cfg);
    assert_eq!(sim.dropped, 0, "churn: the replay must stay drop-free");
    assert!(sim.delivered > 0, "churn: the replay must deliver");

    let sweep: [(&'static str, BackendKind, usize, usize); 3] = [
        ("threaded", BackendKind::Threaded, 1, 0),
        ("sharded", BackendKind::Sharded, 4, 0),
        ("async", BackendKind::Async, 4, cores.clamp(1, 8)),
    ];
    let mut runs = Vec::new();
    for (name, backend, shards, workers) in sweep {
        let cfg = ExecConfig {
            backend,
            shards,
            workers,
            ..base
        };
        let mut handle = launch(&topology, |_, _| 0.0, &df0, &cfg).expect("churn config is valid");
        let rx = cap.wants().then(|| {
            handle
                .subscribe(Duration::from_millis(25))
                .expect("non-zero interval")
        });
        for sw in &switches {
            handle
                .apply(sw, |_, _| 0.0)
                .unwrap_or_else(|e| panic!("churn: {name} reconfiguration failed: {e}"));
        }
        let res = handle.join();
        if let Some(rx) = rx {
            let row = format!("{name}-w{workers}-s{shards}");
            let mut last = None;
            for snap in rx.iter() {
                cap.record("churn", &row, &snap);
                last = Some(snap);
            }
            cap.finish_row(last.as_ref());
        }
        // Epoch stats are read off the ExecResult — they must survive
        // the join, which is exactly what the JSON rows rely on.
        let pauses: Vec<f64> = res.epochs.iter().map(|s| s.pause_wall_ms).collect();
        let handoffs: Vec<f64> = res.epochs.iter().map(|s| s.handoff_wall_ms).collect();
        let migrated_tuples = res.epochs.iter().map(|s| s.migrated_tuples).sum();
        let clean = res.epochs.iter().all(|s| s.clean_split);
        assert_eq!(
            res.epochs.len(),
            switches.len(),
            "churn: {name} lost epoch stats across join"
        );
        runs.push(ChurnRun {
            backend: name,
            workers,
            shards,
            batch: cfg.batch_size,
            res,
            pause_p99_ms: percentile(&pauses, 0.99),
            handoff_p99_ms: percentile(&handoffs, 0.99),
            migrated_tuples,
            clean_split: clean,
        });
    }

    println!(
        "\n=== scenario churn ({:.1} M tuples/s peak aggregate demand, 3 epochs/run) ===",
        aggregate_demand / 1e6
    );
    println!(
        "{:<10} {:>7} {:>7} {:>10} {:>10} {:>10} {:>10} {:>11} {:>12}",
        "backend",
        "workers",
        "shards",
        "emitted",
        "matched",
        "delivered",
        "migrated",
        "pause p99",
        "handoff p99"
    );
    println!(
        "{:<10} {:>7} {:>7} {:>10} {:>10} {:>10} {:>10} {:>11} {:>12}",
        "sim-replay", "-", "-", sim.emitted, sim.matched, sim.delivered, "-", "-", "-"
    );
    for r in &runs {
        println!(
            "{:<10} {:>7} {:>7} {:>10} {:>10} {:>10} {:>10} {:>9.1}ms {:>10.2}ms",
            r.backend,
            if r.workers == 0 {
                "-".to_string()
            } else {
                r.workers.to_string()
            },
            r.shards,
            r.res.emitted,
            r.res.matched,
            r.res.delivered,
            r.migrated_tuples,
            r.pause_p99_ms,
            r.handoff_p99_ms,
        );
    }

    // JSON first (the always-uploaded artifact), gates after.
    write_churn_json(&runs, &sim, cores, duration_ms);

    for r in &runs {
        let tag = format!("churn: {}(shards={})", r.backend, r.shards);
        assert_eq!(r.res.dropped, 0, "{tag} must stay drop-free");
        assert!(
            r.migrated_tuples > 0,
            "{tag} must migrate live window state at the epochs"
        );
        assert!(
            r.clean_split,
            "{tag}: an epoch barrier lost the race against the emission \
             frontier — the replay-identity gate below would be comparing \
             different splits"
        );
        assert_eq!(
            r.res.emitted, sim.emitted,
            "{tag} diverged from the simulator replay on emitted"
        );
        assert_eq!(
            r.res.matched, sim.matched,
            "{tag} lost or duplicated matches across a reconfiguration"
        );
        assert_eq!(
            r.res.delivered, sim.delivered,
            "{tag} diverged from the simulator replay on delivered"
        );
    }
    println!("counts identical to the simulator replay across every backend ✓");

    if cores >= 4 {
        let worst = runs.iter().map(|r| r.handoff_p99_ms).fold(0.0f64, f64::max);
        assert!(
            worst <= 250.0,
            "churn: stop-the-world handoff p99 too high: {worst:.1} ms \
             (state re-hash + generation spawn should be far below 250 ms)"
        );
        println!("handoff p99 {worst:.2} ms ≤ 250 ms ✓");
    } else {
        println!("host has {cores} core(s) < 4: pause gates reporting only");
    }
}

fn write_churn_json(
    runs: &[ChurnRun],
    sim: &nova_runtime::SimResult,
    cores: usize,
    duration_ms: f64,
) {
    let mut entries = String::new();
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        // Per-epoch rows (satellite: EpochStats survive the join and
        // land in the artifact, one entry per applied switch).
        let epochs: Vec<String> = r
            .res
            .epochs
            .iter()
            .map(|e| {
                format!(
                    "{{\"epoch_ms\": {:.1}, \"pause_wall_ms\": {:.3}, \
                     \"handoff_wall_ms\": {:.3}, \"migrated_groups\": {}, \
                     \"migrated_tuples\": {}, \"shard_workers\": {}, \"clean_split\": {}}}",
                    e.epoch_ms,
                    e.pause_wall_ms,
                    e.handoff_wall_ms,
                    e.migrated_groups,
                    e.migrated_tuples,
                    e.shard_workers,
                    e.clean_split,
                )
            })
            .collect();
        entries.push_str(&format!(
            "    {{\"backend\": \"{}\", \"workers\": {}, \"shards\": {}, \"batch\": {}, \
             \"emitted\": {}, \"matched\": {}, \"delivered\": {}, \"wall_ms\": {:.1}, \
             \"tuples_per_s\": {:.0}, \"reconfigs\": 3, \"migrated_tuples\": {}, \"clean_split\": {}, \
             \"pause_p99_ms\": {:.3}, \"handoff_p99_ms\": {:.3}, \"epochs\": [{}]}}",
            r.backend,
            r.workers,
            r.shards,
            r.batch,
            r.res.emitted,
            r.res.matched,
            r.res.delivered,
            r.res.wall_ms,
            r.res.input_tuples_per_wall_s(),
            r.migrated_tuples,
            r.clean_split,
            r.pause_p99_ms,
            r.handoff_p99_ms,
            epochs.join(", "),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"exec_churn_smoke\",\n  \"scenario\": \"churn\",\n  \
         \"host_cores\": {cores},\n  \"duration_ms\": {duration_ms},\n  \
         \"sim_replay\": {{\"emitted\": {}, \"matched\": {}, \"delivered\": {}}},\n  \
         \"runs\": [\n{entries}\n  ]\n}}\n",
        sim.emitted, sim.matched, sim.delivered,
    );
    let path = std::path::Path::new("BENCH_exec_churn.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

// ---------------------------------------------------------------------
// autoscale: closed-loop elasticity (DESIGN.md §9)
// ---------------------------------------------------------------------

/// Steady per-stream rate of the autoscale world (tuples/s): ρ = 0.5
/// on the weak join host.
const AS_RATE: f64 = 500.0;
/// Flash-crowd / diurnal-peak rate multiplier: pushes the weak host to
/// ρ = 1.25, past saturation, while the strong spare would sit at
/// ρ ≈ 0.31 — overloaded enough to detect, bounded enough that the
/// pre-scale-up backlog stays far below the window (which keeps the
/// simulator replay's GC behaviour identical to the executor's).
const AS_CROWD: f64 = 2.5;

/// The autoscale world: a weak join host (2 000 t/s service capacity),
/// a strong spare (8 000 t/s), one source pair at [`AS_RATE`] each,
/// plus a dormant `late-r` source for the mid-run admission (the
/// topology is fixed at launch, so the admitted stream's node must
/// exist up front). Metro links at 25 ms give delivered latency a real
/// baseline, so the "p99 must not double" gate measures controller
/// lag rather than scheduler noise.
fn autoscale_world() -> (Topology, JoinQuery, NodeId, NodeId, NodeId) {
    let mut t = Topology::new();
    let sink = t.add_node(NodeRole::Sink, 0.0, "sink");
    let w_small = t.add_node(NodeRole::Worker, 2_000.0, "w-small");
    let w_big = t.add_node(NodeRole::Worker, 8_000.0, "w-big");
    let l = t.add_node(NodeRole::Source, 0.0, "l0");
    let r = t.add_node(NodeRole::Source, 0.0, "r0");
    let late = t.add_node(NodeRole::Source, 0.0, "late-r");
    let q = JoinQuery::by_key(
        vec![StreamSpec::keyed(l, AS_RATE, 0)],
        vec![StreamSpec::keyed(r, AS_RATE, 0)],
        sink,
    );
    (t, q, w_small, w_big, late)
}

fn metro_dist(a: NodeId, b: NodeId) -> f64 {
    if a == b {
        0.0
    } else {
        25.0
    }
}

/// `q` with every stream at `AS_RATE * mult`. Rates stay equal across
/// the pair: the plan compiler then keeps every feed single-partition,
/// the regime where executor and simulator draw no partition
/// randomness and the replay gate can demand exact counts.
fn scaled_q(q: &JoinQuery, mult: f64) -> JoinQuery {
    let mut q = q.clone();
    for s in q.left.iter_mut().chain(q.right.iter_mut()) {
        s.rate = AS_RATE * mult;
    }
    q
}

/// Controller tuning for the scenario. The low-water mark must stay
/// below the crowd's ρ ≈ 0.31 on the strong host, or the controller
/// would scale down mid-crowd and oscillate; the backlog trigger sits
/// below even the weak host's steady-state burst backlog (~27 ms of
/// batched service charges), so a saturation scale-up always carries
/// the re-placement — utilization, not backlog, gates the decision.
fn autoscale_policy() -> AutoscaleConfig {
    AutoscaleConfig {
        interval: Duration::from_millis(25),
        high_utilization: 0.85,
        low_utilization: 0.2,
        backlog_high_ms: 8.0,
        high_samples: 2,
        slack_samples: 3,
        cooldown_ms: 400.0,
        epoch_lead_ms: 60.0,
        min_shards: 1,
        max_shards: 8,
        scale_factor: 2,
    }
}

/// One mid-run injection from the workload generator.
enum Inject {
    /// Rate step: every stream jumps to `AS_RATE *` the multiplier.
    Step(f64),
    /// `add_source` admission of the dormant `late-r` stream.
    Admit,
}

struct AutoRun {
    profile: &'static str,
    row: String,
    workers: usize,
    shards0: usize,
    batch: usize,
    report: AutoscaleReport,
    /// The simulator replaying this run's recorded switch sequence.
    sim: nova_runtime::SimResult,
}

/// Launch one run, hand the handle to an [`Autoscaler`] whose
/// relocator evacuates onto the strong host, replay the injected
/// schedule against it wall-clock (time_scale is 1.0), join, and
/// replay the controller's recorded switch sequence through the
/// simulator.
fn drive_autoscale(
    profile: &'static str,
    row: String,
    cfg: &ExecConfig,
    sim_cfg: &nova_runtime::SimConfig,
    events: &[(f64, Inject)],
    cap: &mut Capture,
) -> AutoRun {
    let (topology, q0, w_small, w_big, late) = autoscale_world();
    let p0 = host_based(&q0, &q0.resolve(), w_small);
    let df0 = Dataflow::from_baseline(&q0, &p0);

    let handle = launch(&topology, metro_dist, &df0, cfg).expect("autoscale config is valid");
    let cap_rx = cap.wants().then(|| {
        handle
            .subscribe(Duration::from_millis(25))
            .expect("non-zero interval")
    });

    // The relocator and the workload driver share two facts: the rates
    // right now (relocation must rebuild the plan at the *current*
    // crowd rates, or evacuating the weak host would silently revert
    // the workload step) and whether relocation has happened (later
    // injected steps must be placement-preserving, not drag the
    // instances back to the weak host).
    let live_q = Arc::new(Mutex::new(q0.clone()));
    let relocated = Arc::new(AtomicBool::new(false));
    let relocator: Relocator = {
        let live_q = Arc::clone(&live_q);
        let relocated = Arc::clone(&relocated);
        Box::new(move |_from: NodeId| {
            // ORDERING: lone flag with no dependent data — the rates
            // travel inside the mutex-guarded `live_q`, so Relaxed is
            // enough (nova-lint flagged the original SeqCst here).
            relocated.store(true, Ordering::Relaxed);
            let q = live_q.lock().unwrap().clone();
            let p = host_based(&q, &q.resolve(), w_big);
            let df = Dataflow::from_baseline(&q, &p);
            let succ = (0..df.instances.len() as u32).map(Some).collect();
            (df, succ)
        })
    };
    let ctl = Autoscaler::spawn(
        handle,
        df0.clone(),
        autoscale_policy(),
        Box::new(metro_dist),
        Some(relocator),
    );

    let t0 = Instant::now();
    let sleep_until = |at_ms: f64| {
        let elapsed = t0.elapsed().as_secs_f64() * 1000.0;
        if elapsed < at_ms {
            std::thread::sleep(Duration::from_secs_f64((at_ms - elapsed) / 1000.0));
        }
    };
    let host_now = |relocated: &AtomicBool| {
        // ORDERING: see the store above — an injector reading the flag
        // one event late only delays the placement-preserving rebuild.
        if relocated.load(Ordering::Relaxed) {
            w_big
        } else {
            w_small
        }
    };

    for (at_ms, ev) in events {
        sleep_until(*at_ms);
        let host = host_now(&relocated);
        let q_now = live_q.lock().unwrap().clone();
        let p_from = host_based(&q_now, &q_now.resolve(), host);
        let q_to = match ev {
            Inject::Step(mult) => scaled_q(&q0, *mult),
            Inject::Admit => {
                // Keyed to the (only) left stream at that stream's own
                // rate: equal partner rates keep the admitted pair
                // single-partition, and appending to `right` appends
                // the new pair id, leaving existing pair ids stable.
                let mut right = q_now.right.clone();
                right.push(StreamSpec::keyed(late, q_now.left[0].rate, 0));
                JoinQuery::by_key(q_now.left.clone(), right, q_now.sink)
            }
        };
        let p_to = host_based(&q_to, &q_to.resolve(), host);
        // Epoch NaN: the controller stamps `now + epoch_lead_ms`, which
        // keeps the recorded sequence monotone against its own
        // decisions regardless of wall-clock skew.
        let sw = PlanSwitch::between(f64::NAN, &q_to, &p_from, &p_to, 1.0);
        let stats = match ev {
            Inject::Step(mult) => ctl.apply(sw).unwrap_or_else(|e| {
                panic!("autoscale: {profile}/{row}: rate step x{mult} failed: {e}")
            }),
            Inject::Admit => ctl
                .add_source(sw)
                .unwrap_or_else(|e| panic!("autoscale: {profile}/{row}: admission failed: {e}")),
        };
        assert!(
            stats.clean_split,
            "autoscale: {profile}/{row}: injected epoch armed late"
        );
        *live_q.lock().unwrap() = q_to;
    }

    let report = ctl.join();
    if let Some(rx) = cap_rx {
        let mut last = None;
        for snap in rx.iter() {
            cap.record("autoscale", &row, &snap);
            last = Some(snap);
        }
        cap.finish_row(last.as_ref());
    }
    let switches: Vec<PlanSwitch> = report.switches.iter().map(|r| r.switch.clone()).collect();
    let sim = simulate_reconfigured(&topology, metro_dist, &df0, &switches, sim_cfg);
    AutoRun {
        profile,
        row,
        workers: cfg.workers,
        shards0: cfg.shards,
        batch: cfg.batch_size,
        report,
        sim,
    }
}

/// p99 of delivered latency over outputs arriving in `[from, to)` ms.
fn p99_between(res: &ExecResult, from: f64, to: f64) -> f64 {
    let lat: Vec<f64> = res
        .outputs
        .iter()
        .filter(|o| o.arrival_ms >= from && o.arrival_ms < to)
        .map(|o| o.latency_ms)
        .collect();
    if lat.is_empty() {
        0.0
    } else {
        percentile(&lat, 0.99)
    }
}

/// Everything the gates and the artifact need from one controller run,
/// derived from the decision log and the delivered-latency stream.
struct AutoSummary {
    /// Epoch of the injected surge step (crowd onset / diurnal peak).
    surge_epoch: f64,
    /// Epoch of the injected step that ends the surge.
    ebb_epoch: f64,
    /// Epochs of applied scale-up decisions, in order.
    ups: Vec<f64>,
    /// How many of those carried a re-placement.
    relocated_ups: usize,
    /// Epochs of applied scale-down decisions, in order.
    downs: Vec<f64>,
    admitted: usize,
    clean_split: bool,
    baseline_p99_ms: f64,
    /// Worst 100 ms-bucket p99 inside the surge.
    peak_p99_ms: f64,
    /// p99 after the first scale-up settled, up to the surge's end.
    settled_p99_ms: f64,
    /// End of the first 100 ms bucket whose p99 crossed 2× baseline.
    exceeded_at_ms: Option<f64>,
    final_shards: usize,
}

/// Derive the summary. `surge_idx`/`ebb_idx` index into the run's
/// applied `injected-apply` decisions (flash-crowd: steps 0 and 1;
/// diurnal: the peak and the return to baseline, steps 1 and 3).
fn summarize(run: &AutoRun, surge_idx: usize, ebb_idx: usize, duration_ms: f64) -> AutoSummary {
    let dec = &run.report.decisions;
    let applied = |action: &str| -> Vec<&DecisionRecord> {
        dec.iter()
            .filter(|d| d.action == action && d.outcome == "applied")
            .collect()
    };
    let injected = applied("injected-apply");
    assert!(
        injected.len() > ebb_idx,
        "autoscale: {}/{}: expected injected steps up to index {ebb_idx}, got {}",
        run.profile,
        run.row,
        injected.len()
    );
    let surge_epoch = injected[surge_idx].epoch_ms;
    let ebb_epoch = injected[ebb_idx].epoch_ms;
    let mut ups: Vec<(f64, bool)> = dec
        .iter()
        .filter(|d| {
            (d.action == "scale-up" || d.action == "scale-up+relocate") && d.outcome == "applied"
        })
        .map(|d| (d.epoch_ms, d.action == "scale-up+relocate"))
        .collect();
    ups.sort_by(|a, b| a.0.total_cmp(&b.0));
    let downs: Vec<f64> = applied("scale-down").iter().map(|d| d.epoch_ms).collect();

    let res = &run.report.result;
    let baseline_p99_ms = p99_between(res, 300.0, surge_epoch);
    let mut peak_p99_ms = 0.0f64;
    let mut settled_from = ups.first().map(|&(e, _)| e + 150.0);
    let mut exceeded_at_ms = None;
    let mut t = 300.0;
    while t + 100.0 <= duration_ms {
        let p = p99_between(res, t, t + 100.0);
        if t >= surge_epoch && t + 100.0 <= ebb_epoch {
            peak_p99_ms = peak_p99_ms.max(p);
        }
        if exceeded_at_ms.is_none() && p > 2.0 * baseline_p99_ms {
            exceeded_at_ms = Some(t + 100.0);
        }
        t += 100.0;
    }
    let settled_p99_ms = match settled_from.take() {
        Some(from) if from < ebb_epoch => p99_between(res, from, ebb_epoch),
        _ => 0.0,
    };
    AutoSummary {
        surge_epoch,
        ebb_epoch,
        ups: ups.iter().map(|&(e, _)| e).collect(),
        relocated_ups: ups.iter().filter(|&&(_, r)| r).count(),
        downs,
        admitted: run.report.switches.iter().filter(|s| s.admitted).count(),
        clean_split: run.report.switches.iter().all(|s| s.stats.clean_split),
        baseline_p99_ms,
        peak_p99_ms,
        settled_p99_ms,
        exceeded_at_ms,
        final_shards: dec.last().map(|d| d.shards).unwrap_or(0),
    }
}

fn write_autoscale_json(runs: &[(AutoRun, AutoSummary)], cores: usize, duration_ms: f64) {
    let num = |v: f64| {
        if v.is_finite() {
            format!("{v:.3}")
        } else {
            "null".to_string()
        }
    };
    let mut entries = String::new();
    for (i, (r, s)) in runs.iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"profile\": \"{}\", \"row\": \"{}\", \"workers\": {}, \"shards0\": {}, \
             \"batch\": {}, \
             \"final_shards\": {}, \"emitted\": {}, \"matched\": {}, \"delivered\": {}, \
             \"dropped\": {}, \"switches\": {}, \"scale_ups\": {}, \"relocations\": {}, \
             \"scale_downs\": {}, \"admissions\": {}, \"clean_split\": {}, \
             \"surge_epoch_ms\": {}, \"ebb_epoch_ms\": {}, \"scale_up_lag_ms\": {}, \
             \"scale_down_lag_ms\": {}, \"baseline_p99_ms\": {}, \"peak_p99_ms\": {}, \
             \"settled_p99_ms\": {}, \
             \"sim_replay\": {{\"emitted\": {}, \"matched\": {}, \"delivered\": {}}}}}",
            r.profile,
            r.row,
            r.workers,
            r.shards0,
            r.batch,
            s.final_shards,
            r.report.result.emitted,
            r.report.result.matched,
            r.report.result.delivered,
            r.report.result.dropped,
            r.report.switches.len(),
            s.ups.len(),
            s.relocated_ups,
            s.downs.len(),
            s.admitted,
            s.clean_split,
            num(s.surge_epoch),
            num(s.ebb_epoch),
            num(s.ups.first().map(|u| u - s.surge_epoch).unwrap_or(f64::NAN)),
            num(s
                .downs
                .iter()
                .find(|&&d| d > s.ebb_epoch)
                .map(|d| d - s.ebb_epoch)
                .unwrap_or(f64::NAN)),
            num(s.baseline_p99_ms),
            num(s.peak_p99_ms),
            num(s.settled_p99_ms),
            r.sim.emitted,
            r.sim.matched,
            r.sim.delivered,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"exec_autoscale_smoke\",\n  \"scenario\": \"autoscale\",\n  \
         \"host_cores\": {cores},\n  \"duration_ms\": {duration_ms},\n  \
         \"decision_log\": \"BENCH_exec_autoscale_decisions.jsonl\",\n  \
         \"runs\": [\n{entries}\n  ]\n}}\n"
    );
    let path = std::path::Path::new("BENCH_exec_autoscale.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// The decision log: every snapshot the controllers evaluated across
/// all runs, one JSON object per line tagged with its profile and row —
/// predicted utilization, backlog, chosen action and outcome.
fn write_autoscale_decisions(runs: &[(AutoRun, AutoSummary)]) {
    let mut out = String::new();
    for (r, _) in runs {
        for d in &r.report.decisions {
            let line = d.to_json_line();
            out.push_str(&format!(
                "{{\"profile\": \"{}\", \"row\": \"{}\", {}\n",
                r.profile,
                r.row,
                &line[1..]
            ));
        }
    }
    let path = std::path::Path::new("BENCH_exec_autoscale_decisions.jsonl");
    match std::fs::write(path, &out) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Run the closed-loop elasticity scenario (DESIGN.md §9): the
/// flash-crowd profile across all three backends, plus one diurnal
/// swell-and-ebb run, each owned by an [`Autoscaler`]. Count identity
/// against the simulator replaying each controller's recorded switch
/// sequence gates on any host; the latency and convergence-timing
/// gates need ≥ 4 cores.
fn run_autoscale(full: bool, cores: usize, cap: &mut Capture) {
    // Real-time horizon, independent of the throughput scenarios'
    // virtual horizon: the control loop needs real milliseconds for
    // sampling (25 ms), hysteresis (2–3 samples) and cooldown (400 ms)
    // to play out twice (up and down) with headroom.
    let d = if full { 3600.0 } else { 2600.0 };
    let base = ExecConfig {
        key_space: 8,
        time_scale: 1.0,
        ..throughput_cfg(d, 500.0, 0.05, 1)
    };
    let sim_cfg = nova_runtime::SimConfig {
        duration_ms: base.duration_ms,
        window_ms: base.window_ms,
        selectivity: base.selectivity,
        gc_interval_ms: base.gc_interval_ms,
        seed: base.seed,
        max_queue_ms: base.max_queue_ms,
        key_space: base.key_space,
        ..nova_runtime::SimConfig::default()
    };
    let policy = autoscale_policy();

    let sweep: [(&'static str, BackendKind, usize, usize); 3] = [
        ("threaded", BackendKind::Threaded, 1, 0),
        ("sharded", BackendKind::Sharded, 4, 0),
        ("async", BackendKind::Async, 4, cores.clamp(1, 8)),
    ];
    let mut runs: Vec<(AutoRun, AutoSummary)> = Vec::new();
    for (name, backend, shards, workers) in sweep {
        let cfg = ExecConfig {
            backend,
            shards,
            workers,
            ..base
        };
        let events = [
            (0.35 * d, Inject::Step(AS_CROWD)),
            (0.62 * d, Inject::Step(1.0)),
            (0.80 * d, Inject::Admit),
        ];
        let run = drive_autoscale(
            "flash-crowd",
            format!("{name}-s{shards}"),
            &cfg,
            &sim_cfg,
            &events,
            cap,
        );
        let summary = summarize(&run, 0, 1, d);
        runs.push((run, summary));
    }
    // Diurnal: a swell through a non-saturating shoulder (ρ = 0.7 on
    // the weak host — the controller must hold) to the saturating peak
    // and back down. One backend suffices; the gate is convergence
    // (bounded decision count, no post-ebb scale-up), not latency.
    {
        let cfg = ExecConfig {
            backend: BackendKind::Async,
            shards: 4,
            workers: cores.clamp(1, 8),
            ..base
        };
        // Asymmetric shoulders, because the swell is served by the weak
        // host and the ebb by the strong one (4× the capacity): the
        // swell shoulder must stay clearly below the high-water mark on
        // the weak host (×1.4 → ρ = 0.7 < 0.85) while the ebb shoulder
        // must stay clearly above the low-water mark on the strong host
        // (×1.8 → ρ = 0.225 > 0.2) — a shoulder sitting *on* a
        // threshold would make the hysteresis streak a coin flip.
        let events = [
            (0.20 * d, Inject::Step(1.4)),
            (0.40 * d, Inject::Step(AS_CROWD)),
            (0.60 * d, Inject::Step(1.8)),
            (0.80 * d, Inject::Step(1.0)),
        ];
        // The ebb is the *return to baseline* (last step): shoulders
        // are load the controller is meant to hold through.
        let run = drive_autoscale(
            "diurnal",
            "async-s4".to_string(),
            &cfg,
            &sim_cfg,
            &events,
            cap,
        );
        let summary = summarize(&run, 1, 3, d);
        runs.push((run, summary));
    }

    println!("\n=== scenario autoscale (closed-loop controller, flash-crowd + diurnal) ===");
    println!(
        "{:<12} {:<12} {:>9} {:>9} {:>9} {:>4} {:>6} {:>6} {:>8} {:>9} {:>9} {:>10}",
        "profile",
        "row",
        "emitted",
        "matched",
        "delivered",
        "ups",
        "downs",
        "shards",
        "up-lag",
        "base-p99",
        "peak-p99",
        "settle-p99"
    );
    for (r, s) in &runs {
        println!(
            "{:<12} {:<12} {:>9} {:>9} {:>9} {:>4} {:>6} {:>6} {:>6.0}ms {:>7.1}ms {:>7.1}ms {:>8.1}ms",
            r.profile,
            r.row,
            r.report.result.emitted,
            r.report.result.matched,
            r.report.result.delivered,
            s.ups.len(),
            s.downs.len(),
            s.final_shards,
            s.ups.first().map(|u| u - s.surge_epoch).unwrap_or(f64::NAN),
            s.baseline_p99_ms,
            s.peak_p99_ms,
            s.settled_p99_ms,
        );
    }

    // JSON first (the always-uploaded artifacts), gates after.
    write_autoscale_json(&runs, cores, d);
    write_autoscale_decisions(&runs);

    for (r, s) in &runs {
        let tag = format!("autoscale: {}/{}", r.profile, r.row);
        let res = &r.report.result;

        // Replay identity: the controller's whole recorded sequence —
        // injected steps, its own scale/re-place switches, and (flash)
        // the admission — replayed by the simulator, exact counts.
        assert!(s.clean_split, "{tag}: an epoch barrier armed late");
        assert_eq!(res.dropped, 0, "{tag} must stay drop-free");
        assert_eq!(r.sim.dropped, 0, "{tag}: replay must stay drop-free");
        assert_eq!(
            res.emitted, r.sim.emitted,
            "{tag} diverged from the replay on emitted"
        );
        assert_eq!(
            res.matched, r.sim.matched,
            "{tag} lost or duplicated matches across the switch sequence"
        );
        assert_eq!(
            res.delivered, r.sim.delivered,
            "{tag} diverged from the replay on delivered"
        );
        if r.profile == "flash-crowd" {
            assert_eq!(s.admitted, 1, "{tag}: exactly one admission per run");
        }

        // Closed-loop behaviour: the surge must be answered by a
        // re-placing scale-up inside the surge window, slack by a
        // scale-down after it — and never a scale-up after the ebb
        // (that would be oscillation).
        let up = *s
            .ups
            .first()
            .unwrap_or_else(|| panic!("{tag}: controller never scaled up"));
        assert!(
            up > s.surge_epoch && up < s.ebb_epoch,
            "{tag}: scale-up at {up:.0} ms outside the surge \
             [{:.0}, {:.0}] ms",
            s.surge_epoch,
            s.ebb_epoch
        );
        assert!(
            s.relocated_ups >= 1,
            "{tag}: saturation never triggered a re-placement off the weak host"
        );
        assert!(
            s.ups.iter().all(|&u| u < s.ebb_epoch),
            "{tag}: scale-up after the ebb — the loop is oscillating"
        );
        let down_after = s.downs.iter().find(|&&dn| dn > s.ebb_epoch);
        assert!(
            down_after.is_some() || s.downs.iter().any(|&dn| dn > up),
            "{tag}: controller never scaled back down"
        );
        let controller_switches = s.ups.len() + s.downs.len();
        assert!(
            controller_switches <= 5,
            "{tag}: {controller_switches} controller switches — not converging"
        );

        if cores >= 4 {
            // The headline gate: scale up *before* delivered-latency
            // p99 crosses 2× the steady-state baseline...
            assert!(
                s.baseline_p99_ms > 0.0,
                "{tag}: no steady-state latency baseline"
            );
            if let Some(bad) = s.exceeded_at_ms {
                assert!(
                    up < bad,
                    "{tag}: p99 doubled at {bad:.0} ms before the scale-up at {up:.0} ms"
                );
            }
            // ...converge under the sustained surge...
            assert!(
                s.settled_p99_ms <= 2.0 * s.baseline_p99_ms,
                "{tag}: settled p99 {:.1} ms > 2x baseline {:.1} ms after the scale-up",
                s.settled_p99_ms,
                s.baseline_p99_ms
            );
            // ...and, once the crowd passes, scale back down within one
            // cooldown of the ebb. Flash-crowd only: a diurnal ebb is
            // preceded by a shoulder where a legitimate partial
            // scale-down may start a cooldown that straddles the ebb,
            // so its gate is convergence (above), not timing.
            if r.profile == "flash-crowd" {
                if let Some(&dn) = down_after {
                    assert!(
                        dn - s.ebb_epoch <= policy.cooldown_ms,
                        "{tag}: scale-down {:.0} ms after the ebb (> cooldown {:.0} ms)",
                        dn - s.ebb_epoch,
                        policy.cooldown_ms
                    );
                }
            }
        }
    }
    println!("counts identical to the replayed controller sequence on every backend ✓");
    if cores >= 4 {
        println!("scale-up beat the 2x-p99 deadline; scale-down within one cooldown ✓");
    } else {
        println!("host has {cores} core(s) < 4: latency/timing gates reporting only");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let duration_ms = if full { 1000.0 } else { 300.0 };
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let which = flag("--scenario");
    let metrics_out = flag("--metrics-out");
    let prom_out = flag("--prom-out");
    let mut cap = Capture::open(metrics_out.as_deref(), prom_out.as_deref());

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("bench_exec_smoke: {cores}-core host, {duration_ms} ms virtual horizon");
    if let Some(p) = &metrics_out {
        println!("streaming per-row telemetry snapshots to {p} (JSON lines)");
    }

    let names: Vec<&str> = match which.as_deref() {
        Some(one) => vec![one],
        None => vec![
            "uniform",
            "hot-pair",
            "zipf",
            "oversubscribed",
            "churn",
            "autoscale",
        ],
    };
    for name in names {
        if name == "churn" {
            // Live reconfiguration has its own harness: it applies
            // epoch barriers mid-run through ExecHandle, which the
            // generic backend matrix cannot express.
            run_churn(duration_ms, cores, &mut cap);
            continue;
        }
        if name == "autoscale" {
            // Closed-loop elasticity has its own harness too: every
            // run is owned by an Autoscaler and driven wall-clock.
            run_autoscale(full, cores, &mut cap);
            continue;
        }
        let sc = scenario(name, duration_ms, cores);
        let runs = run_matrix(&sc, &mut cap);
        // JSON first: a failed gate must still leave fresh numbers on
        // disk for the always-uploaded CI artifact.
        write_json(&sc, &runs, cores, duration_ms);
        check_scenario(&sc, &runs, cores);
    }
}
