//! Figure 10: optimization and re-optimization scalability.
//!
//! Sweeps synthetic topologies from 10² to 10⁶ nodes with query
//! complexity growing proportionally (the 60/40 source split makes the
//! number of join pairs scale with the node count) and measures:
//!
//! * Nova's full optimization time (Phase I embedding + Phases II/III),
//! * the time of five single-node re-optimization events (add source,
//!   remove source, remove worker, coordinate update, rate change),
//! * the baselines' full placement times — the fast heuristics stay
//!   cheap but resource-oblivious, while the tree/cluster family blows
//!   past the paper's 10-minute timeout at scale (they are gated here
//!   beyond a size limit for exactly that reason and reported as
//!   timeouts).
//!
//! Run with `--full` to include the 10⁶-node configuration.
//!
//! Expected shape (§4.6): near-linear Nova scaling (paper: ~135 s at 1M
//! nodes on their hardware), sub-second re-optimizations at every size.

use std::time::Instant;

use nova_bench::{write_csv, Table};
use nova_core::baselines::{
    cl_sf, cl_tree_sf, sink_based, source_based, top_c, tree_based, ClusterParams,
};
use nova_core::{JoinQuery, Nova, NovaConfig, Side};
use nova_netcoord::{Vivaldi, VivaldiConfig};
use nova_topology::{LatencyProvider, NodeId, SyntheticParams, SyntheticTopology};
use nova_workloads::{synthetic_opp, OppParams};

/// Paper timeout for a single optimization (10 minutes).
const TIMEOUT_S: f64 = 600.0;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let mut sizes: Vec<usize> = vec![100, 1_000, 10_000, 100_000];
    if full {
        sizes.push(1_000_000);
    }
    // The tree/cluster baselines are Θ(n²) and worse; beyond this size
    // they exceed the paper's timeout on any realistic budget.
    let tree_gate = if full { 20_000 } else { 2_000 };
    let seed = 77;

    println!("== Fig. 10: optimization & re-optimization time vs topology size ==");
    println!("(times in seconds; 'timeout' = exceeds the paper's 600 s budget)\n");
    let mut table = Table::new(&[
        "nodes",
        "pairs",
        "nova total",
        "nova phase I",
        "reopt max",
        "sink",
        "source",
        "top-c",
        "tree",
        "cl-sf",
        "cl-tree-sf",
    ]);

    for &n in &sizes {
        let syn = SyntheticTopology::generate(&SyntheticParams {
            n,
            seed,
            ..Default::default()
        });
        let w = synthetic_opp(
            &syn.topology,
            &OppParams {
                seed,
                ..OppParams::default()
            },
        );
        let plan = w.query.resolve();
        let pairs = plan.len();

        // Fewer relaxation rounds at scale — accuracy converges quickly
        // and the paper's Vivaldi usage is incremental/ambient anyway.
        let rounds = if n > 100_000 {
            12
        } else if n > 10_000 {
            24
        } else {
            48
        };
        let vivaldi_cfg = VivaldiConfig {
            neighbors: 20,
            rounds,
            seed,
            ..VivaldiConfig::default()
        };

        // Nova: Phase I timed separately, then full optimize.
        let t0 = Instant::now();
        let vivaldi = Vivaldi::embed(&syn.rtt, vivaldi_cfg);
        let phase1_s = t0.elapsed().as_secs_f64();
        let space = vivaldi.into_cost_space();
        // Pristine copy for the baselines — re-optimization events below
        // mutate Nova's own view of the space (node removals tombstone
        // coordinates).
        let baseline_space = space.clone();
        let mut nova = Nova::with_cost_space(
            w.topology.clone(),
            space,
            NovaConfig {
                vivaldi: vivaldi_cfg,
                seed,
                ..NovaConfig::default()
            },
        );
        let t1 = Instant::now();
        nova.optimize(w.query.clone());
        let nova_total_s = phase1_s + t1.elapsed().as_secs_f64();

        // Baselines (timed against the pristine embedding).
        let time = |f: &mut dyn FnMut()| -> f64 {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        };
        let sink_s = time(&mut || {
            let _ = sink_based(&w.query, &plan);
        });
        let source_s = time(&mut || {
            let _ = source_based(&w.query, &plan);
        });
        let topc_s = time(&mut || {
            let _ = top_c(&w.query, &plan, &w.topology);
        });
        let (tree_s, clsf_s, cltree_s) = if n <= tree_gate {
            let params = ClusterParams::for_size(n);
            let a = time(&mut || {
                let _ = tree_based(&w.query, &plan, &w.topology, &baseline_space);
            });
            let b = time(&mut || {
                let _ = cl_sf(&w.query, &plan, &w.topology, &baseline_space, &params);
            });
            let c = time(&mut || {
                let _ = cl_tree_sf(
                    &w.query,
                    &plan,
                    &w.topology,
                    &baseline_space,
                    &baseline_space,
                    &params,
                );
            });
            (Some(a), Some(b), Some(c))
        } else {
            (None, None, None)
        };

        // Five re-optimization events (each on a random single node).
        let reopt_max_s = run_reopt_events(&mut nova, &syn.rtt, &w.query, n, seed);

        let fmt = |v: Option<f64>| -> String {
            match v {
                Some(s) if s > TIMEOUT_S => "timeout".into(),
                Some(s) => format!("{s:.3}"),
                None => "timeout*".into(),
            }
        };
        table.row(vec![
            n.to_string(),
            pairs.to_string(),
            format!("{nova_total_s:.3}"),
            format!("{phase1_s:.3}"),
            format!("{reopt_max_s:.4}"),
            fmt(Some(sink_s)),
            fmt(Some(source_s)),
            fmt(Some(topc_s)),
            fmt(tree_s),
            fmt(clsf_s),
            fmt(cltree_s),
        ]);
        eprintln!(
            "n={n}: nova {nova_total_s:.2}s (phase I {phase1_s:.2}s), reopt max {reopt_max_s:.4}s"
        );
    }
    table.print();
    println!(
        "timeout* = Θ(n²)+ baseline gated (exceeds the 600 s budget; measured up to the gate)"
    );
    write_csv("fig10_scalability.csv", table.headers(), table.rows());
}

/// Apply the paper's five re-optimization events and return the slowest
/// single event time in seconds.
fn run_reopt_events(
    nova: &mut Nova,
    provider: &impl LatencyProvider,
    query: &JoinQuery,
    n: usize,
    seed: u64,
) -> f64 {
    // A provider view that covers one extra node (the added source): the
    // new node reuses the latency profile of an existing anchor node.
    struct Grown<'a, P> {
        inner: &'a P,
        anchor: NodeId,
        n: usize,
    }
    impl<P: LatencyProvider> LatencyProvider for Grown<'_, P> {
        fn len(&self) -> usize {
            self.n + 1
        }
        fn rtt(&self, a: NodeId, b: NodeId) -> f64 {
            let map = |x: NodeId| if x.idx() >= self.n { self.anchor } else { x };
            let (a, b) = (map(a), map(b));
            if a == b {
                0.5
            } else {
                self.inner.rtt(a, b)
            }
        }
    }
    let mut worst = 0.0f64;
    let mut track = |label: &str, s: f64| {
        let _ = label;
        worst = worst.max(s);
    };

    let anchor = NodeId((seed as usize % n) as u32);
    let grown = Grown {
        inner: provider,
        anchor,
        n: nova.topology().len(),
    };

    // 1. Add a source.
    let t = Instant::now();
    let _ = nova.add_source(&grown, Side::Left, 50.0, 0, 100.0, "reopt-src");
    track("add source", t.elapsed().as_secs_f64());

    // 2. Remove a source (the first left stream's node).
    let victim = query.left[0].node;
    let t = Instant::now();
    let _ = nova.remove_node(victim);
    track("remove source", t.elapsed().as_secs_f64());

    // 3. Remove a worker currently hosting replicas.
    if let Some(host) = nova.placement().nodes_used().first().copied() {
        let t = Instant::now();
        let _ = nova.remove_node(host);
        track("remove worker", t.elapsed().as_secs_f64());
    }

    // 4. Coordinate update on a join host.
    if let Some(host) = nova.placement().nodes_used().first().copied() {
        let t = Instant::now();
        let _ = nova.update_coordinates(provider, host);
        track("coordinate update", t.elapsed().as_secs_f64());
    }

    // 5. Data-rate change on stream 1 (stream 0's pairs died with its
    // source).
    if query.left.len() > 1 {
        let t = Instant::now();
        let _ = nova.change_rate(Side::Left, 1, 120.0);
        track("rate change", t.elapsed().as_secs_f64());
    }
    worst
}
