//! Figure 6: percentage of overloaded nodes versus node heterogeneity.
//!
//! Runs Nova and all six baselines on a 1000-node synthetic topology
//! while sweeping the node-capacity distribution from homogeneous to
//! strongly skewed (rising coefficient of variation) and reports the
//! share of participating nodes whose load exceeds their capacity.
//!
//! Expected shape (paper §4.2): Nova 0 % everywhere; sink-based 100 %;
//! Cl-Tree-SF 94–99 %; Cl-SF 86–95 %; Tree ≈ 85 %; source-based 46–54 %;
//! top-c 6–14 %.
//!
//! `--sigma-sweep` additionally reproduces the σ trade-off ablation
//! (partitioning degree vs network traffic vs overload).

use nova_bench::{run_all_approaches, write_csv, BenchConfig, Table};
use nova_core::NovaConfig;
use nova_topology::{
    coefficient_of_variation, CapacityDistribution, SyntheticParams, SyntheticTopology,
};
use nova_workloads::{synthetic_opp, OppParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sigma_sweep = args.iter().any(|a| a == "--sigma-sweep");
    let n: usize = args
        .iter()
        .position(|a| a == "--nodes")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let seed = 7;

    println!("== Fig. 6: overloaded nodes vs capacity heterogeneity ({n} nodes) ==\n");
    let base = SyntheticTopology::generate(&SyntheticParams {
        n,
        seed,
        ..Default::default()
    });

    let approaches = [
        "nova",
        "sink",
        "source",
        "top-c",
        "tree",
        "cl-sf",
        "cl-tree-sf",
    ];
    let mut headers = vec!["capacity dist", "CV"];
    headers.extend(approaches.iter().copied());
    let mut table = Table::new(&headers);

    for (label, dist) in CapacityDistribution::paper_sweep() {
        let w = synthetic_opp(
            &base.topology,
            &OppParams {
                capacity: dist,
                seed,
                ..OppParams::default()
            },
        );
        let caps: Vec<f64> = w.topology.nodes().iter().map(|nd| nd.capacity).collect();
        let cv = coefficient_of_variation(&caps);
        let set = run_all_approaches(&w.topology, &base.rtt, &w.query, &BenchConfig::default());
        let mut row = vec![label.to_string(), format!("{cv:.2}")];
        for name in approaches {
            let r = set.get(name).expect("approach present");
            row.push(format!("{:.1}%", r.real.overload_percent()));
        }
        table.row(row);
    }
    table.print();
    write_csv("fig06_overload.csv", table.headers(), table.rows());

    if sigma_sweep {
        println!(
            "\n== σ ablation: partitioning degree vs traffic vs overload (uniform capacities) ==\n"
        );
        let mut ab = Table::new(&[
            "sigma",
            "overload %",
            "instances",
            "sub-replicas",
            "traffic (tuple-hops/s)",
        ]);
        for sigma in [0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0] {
            let w = synthetic_opp(
                &base.topology,
                &OppParams {
                    seed,
                    ..OppParams::default()
                },
            );
            let cfg = BenchConfig {
                nova: NovaConfig {
                    sigma,
                    ..NovaConfig::default()
                },
                include_tree_family: false,
                ..BenchConfig::default()
            };
            let set = run_all_approaches(&w.topology, &base.rtt, &w.query, &cfg);
            let nova = set.get("nova").expect("nova present");
            ab.row(vec![
                format!("{sigma:.1}"),
                format!("{:.1}%", nova.real.overload_percent()),
                nova.placement.instance_count().to_string(),
                nova.placement.sub_replica_count().to_string(),
                format!("{:.0}", nova.real.network_traffic),
            ]);
        }
        ab.print();
        write_csv("fig06_sigma_ablation.csv", ab.headers(), ab.rows());
    }
}
