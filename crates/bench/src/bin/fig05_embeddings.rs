//! Figure 5: network coordinate systems of the four evaluation topologies
//! plus the neighbor-set-size (m) selection study of §4.1.
//!
//! Embeds each testbed stand-in (FIT IoT Lab, PlanetLab, RIPE Atlas,
//! King) with Vivaldi at the paper's neighbor counts, reports embedding
//! quality (MAE, relative errors) and the measured TIV rate, sweeps m to
//! show the MAE convergence the paper used to pick m, and writes the 2-D
//! coordinates to CSV for plotting.

use nova_bench::{write_csv, Table};
use nova_netcoord::{classical_mds, EmbeddingError, Vivaldi, VivaldiConfig};
use nova_topology::Testbed;

fn main() {
    let seed = 42;
    println!("== Fig. 5: cost-space embeddings of the evaluation topologies ==\n");

    let mut summary = Table::new(&[
        "topology",
        "nodes",
        "m",
        "MAE (ms)",
        "median rel err",
        "p90 rel err",
        "TIV rate",
    ]);
    for testbed in Testbed::all() {
        let data = testbed.generate(seed);
        let m = testbed.vivaldi_neighbors();
        let vivaldi = Vivaldi::embed(
            &data.rtt,
            VivaldiConfig {
                neighbors: m,
                rounds: 60,
                seed,
                ..VivaldiConfig::default()
            },
        );
        let err = EmbeddingError::evaluate(vivaldi.coords(), &data.rtt, 100_000, seed);
        let tiv = data.rtt.tiv_rate(100_000, seed);
        summary.row(vec![
            testbed.name().to_string(),
            data.rtt.len().to_string(),
            m.to_string(),
            format!("{:.2}", err.mae),
            format!("{:.3}", err.median_relative),
            format!("{:.3}", err.p90_relative),
            format!("{:.3}", tiv),
        ]);

        // Coordinates for the scatter plots of Fig. 5.
        let rows: Vec<Vec<String>> = vivaldi
            .coords()
            .iter()
            .enumerate()
            .map(|(i, c)| {
                vec![
                    i.to_string(),
                    format!("{:.4}", c[0]),
                    format!("{:.4}", c[1]),
                ]
            })
            .collect();
        let path = write_csv(
            &format!("fig05_{}.csv", testbed.name().replace([' ', '(', ')'], "_")),
            &["node".into(), "x".into(), "y".into()],
            &rows,
        );
        eprintln!("wrote {}", path.display());
    }
    summary.print();

    // The m-selection study: MAE converges quickly in m (§4.1), which is
    // why the paper settles on m = 20 / 32.
    println!("\n== neighbor-set size study (MAE in ms vs m) ==\n");
    let ms = [4usize, 8, 12, 16, 20, 24, 32, 48];
    let labels: Vec<String> = ms.iter().map(|m| format!("m={m}")).collect();
    let mut headers: Vec<&str> = vec!["topology"];
    headers.extend(labels.iter().map(|s| s.as_str()));
    let mut sweep = Table::new(&headers);
    for testbed in Testbed::all() {
        let data = testbed.generate(seed);
        let mut row = vec![testbed.name().to_string()];
        for &m in &ms {
            let vivaldi = Vivaldi::embed(
                &data.rtt,
                VivaldiConfig {
                    neighbors: m,
                    rounds: 60,
                    seed,
                    ..VivaldiConfig::default()
                },
            );
            let err = EmbeddingError::evaluate(vivaldi.coords(), &data.rtt, 50_000, seed);
            row.push(format!("{:.1}", err.mae));
        }
        sweep.row(row);
    }
    sweep.print();

    // Cross-check: classical MDS (the dense Eq. 5 solver) on the smallest
    // testbed — Vivaldi should be in the same quality range.
    let fit = Testbed::FitIotLab.generate(seed);
    let mds_coords = classical_mds(&fit.rtt, 2, seed);
    let mds_err = EmbeddingError::evaluate(&mds_coords, &fit.rtt, 50_000, seed);
    println!(
        "classical MDS on {}: MAE {:.2} ms (dense Eq. 5 reference)\n",
        Testbed::FitIotLab.name(),
        mds_err.mae
    );
}
