//! Figure 11: end-to-end throughput on the DEBS-style workload —
//! processed tuples versus their latency over a 2-minute run
//! (non-stressed).
//!
//! Deploys every approach's placement of the 4-region pressure ⋈ humidity
//! query on the simulated 14-node Raspberry-Pi cluster and counts the
//! join results delivered to the sink. Expected shape (§4.7): the
//! sink-based approach delivers the least (central overload), the
//! cluster/top-c group slightly more (one bigger node, still a single
//! bottleneck), source/tree roughly doubles that (several small nodes),
//! and Nova delivers several times the best baseline by parallelizing
//! across the workers — the paper reports 14 159 vs 3 176 vs 1 503 vs
//! 1 057 tuples and 4.5× over the best baseline.
//!
//! Run with `--full` for the paper's 120 s duration (default 30 s).
//! Run with `--real` to additionally re-run every placement on the
//! `nova-exec` executor and emit side-by-side simulator/executor
//! columns; `--help` lists the executor knobs (backend selection,
//! shards, workers, key space/buckets — parsed by
//! [`nova_bench::real_exec_cfg`], documented by
//! [`nova_bench::REAL_FLAGS_USAGE`]).

use nova_bench::{
    default_sim, end_to_end_runs, end_to_end_runs_real, metrics_out_path, real_exec_cfg,
    with_key_space, write_csv, MetricsWriter, Table, REAL_FLAGS_USAGE,
};
use nova_workloads::{environmental_scenario, EnvironmentalParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "fig11_throughput: end-to-end throughput, DEBS workload\n\nOptions:\n  \
             --full                the paper's 120 s horizon (default 30 s)\n{REAL_FLAGS_USAGE}"
        );
        return;
    }
    let full = args.iter().any(|a| a == "--full");
    let duration_ms = if full { 120_000.0 } else { 30_000.0 };
    let seed = 11;

    let sim = with_key_space(&args, default_sim(duration_ms, seed));
    // The executor replays the simulator settings, dilated 20× so the
    // 30 s virtual horizon takes ~1.5 s wall per approach.
    let real_cfg = real_exec_cfg(&args, &sim, 20.0);
    let real = real_cfg.is_some();
    let mut metrics = metrics_out_path(&args)
        .filter(|_| real)
        .map(|p| MetricsWriter::create(&p));

    println!(
        "== Fig. 11: end-to-end throughput, DEBS workload, {}s run (non-stressed{}) ==\n",
        duration_ms / 1000.0,
        real_cfg
            .as_ref()
            .map(|cfg| format!(", + executor: {}", nova_bench::exec_label(cfg)))
            .unwrap_or_default()
    );
    let scenario = environmental_scenario(&EnvironmentalParams::default());
    let runs = end_to_end_runs(&scenario, &sim, 1.0);
    let real_runs = real_cfg
        .as_ref()
        .map(|cfg| end_to_end_runs_real(&scenario, cfg, 1.0, metrics.as_mut()));

    let mut headers = vec![
        "approach",
        "delivered",
        "emitted",
        "mean lat (ms)",
        "90P (ms)",
        "final lat (ms)",
    ];
    if real {
        headers.extend(["delivered real", "mean real (ms)", "90P real (ms)"]);
    }
    let mut table = Table::new(&headers);
    let mut series_rows: Vec<Vec<String>> = Vec::new();
    for (i, run) in runs.iter().enumerate() {
        let r = &run.result;
        let final_latency = r.outputs.last().map(|o| o.latency_ms).unwrap_or(0.0);
        let mut row = vec![
            run.name.to_string(),
            r.delivered.to_string(),
            r.emitted.to_string(),
            format!("{:.1}", r.mean_latency()),
            format!("{:.1}", r.latency_percentile(0.9)),
            format!("{final_latency:.1}"),
        ];
        if let Some(real_runs) = &real_runs {
            let e = &real_runs[i].result;
            assert_eq!(real_runs[i].name, run.name, "approach order must match");
            row.extend([
                e.delivered_by(duration_ms).to_string(),
                format!("{:.1}", e.mean_latency()),
                format!("{:.1}", e.latency_percentile(0.9)),
            ]);
        }
        table.row(row);
        // Latency-vs-processed-count series (downsampled to ≤300 points)
        // — the x/y of the paper's Fig. 11.
        let step = (r.outputs.len() / 300).max(1);
        for (i, o) in r.outputs.iter().enumerate().step_by(step) {
            series_rows.push(vec![
                run.name.to_string(),
                (i + 1).to_string(),
                format!("{:.2}", o.latency_ms),
            ]);
        }
    }
    table.print();
    write_csv(
        "fig11_series.csv",
        &["approach".into(), "processed".into(), "latency_ms".into()],
        &series_rows,
    );
    write_csv("fig11_throughput.csv", table.headers(), table.rows());

    let get = |name: &str| {
        runs.iter()
            .find(|r| r.name == name)
            .map(|r| r.result.delivered)
    };
    if let (Some(nova), Some(sink), Some(st)) = (get("nova"), get("sink"), get("source/tree")) {
        println!(
            "nova/sink throughput: {:.1}× (paper: 13.4×); nova/source-tree: {:.1}× (paper: 4.5×)",
            nova as f64 / sink.max(1) as f64,
            nova as f64 / st.max(1) as f64
        );
    }
    if let Some(real_runs) = &real_runs {
        let rget = |name: &str| {
            real_runs
                .iter()
                .find(|r| r.name == name)
                .map(|r| r.result.delivered_by(duration_ms))
        };
        if let (Some(nova), Some(sink)) = (rget("nova"), rget("sink")) {
            println!(
                "executor confirms: nova/sink throughput {:.1}× on real threads",
                nova as f64 / sink.max(1) as f64
            );
        }
    }
}
