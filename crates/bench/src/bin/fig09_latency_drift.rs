//! Figure 9: resilience of a fixed Nova placement to 24 hours of latency
//! drift on the 418-node RIPE Atlas subset.
//!
//! Nova optimizes once at hour 0; the placement is then re-measured
//! against hourly latency matrices produced by the calibrated drift
//! model (diurnal congestion + transient per-pair perturbations — the
//! paper observed 7k–14k changed entries > 10 ms per hour with a median
//! change of 24 ms). Expected shape (§4.5): mean and 90P latencies stay
//! within a band of a few tens of milliseconds — no re-optimization
//! needed despite continuous drift.

use nova_bench::{run_all_approaches, write_csv, BenchConfig, Table};
use nova_core::{evaluate, EvalOptions};
use nova_topology::{DriftModel, LatencyProvider, Testbed};
use nova_workloads::{synthetic_opp, OppParams};

fn main() {
    let seed = 55;
    println!("== Fig. 9: Nova placement under 24h latency drift (RIPE Atlas 418) ==\n");
    let data = Testbed::RipeAtlas418.generate(seed);
    // Most heterogeneous + fully parallelized setting, like the paper.
    let w = synthetic_opp(
        &data.topology,
        &OppParams {
            capacity: nova_topology::CapacityDistribution::Exponential {
                scale: 120.0,
                min: 1.0,
                max: 1000.0,
            },
            seed,
            ..OppParams::default()
        },
    );
    let cfg = BenchConfig {
        include_tree_family: false,
        ..BenchConfig::default()
    };
    let set = run_all_approaches(&w.topology, &data.rtt, &w.query, &cfg);
    let nova = set.get("nova").expect("nova present");

    let drift = DriftModel::new(data.rtt.clone(), seed);
    let mut table = Table::new(&[
        "hour",
        "mean (ms)",
        "90P (ms)",
        "changed>10ms",
        "median Δ (ms)",
    ]);
    let mut means = Vec::new();
    let mut p90s = Vec::new();
    let mut prev = drift.at_hour(0.0);
    for hour in 0..24u32 {
        let m = drift.at_hour(hour as f64);
        let eval = evaluate(
            &nova.placement,
            &w.topology,
            |a, b| m.rtt(a, b),
            EvalOptions::default(),
        );
        let (changed, median) = m.diff_stats(&prev, 10.0);
        prev = m;
        means.push(eval.mean_latency());
        p90s.push(eval.latency_percentile(0.9));
        table.row(vec![
            hour.to_string(),
            format!("{:.1}", eval.mean_latency()),
            format!("{:.1}", eval.latency_percentile(0.9)),
            if hour == 0 {
                "-".into()
            } else {
                changed.to_string()
            },
            if hour == 0 {
                "-".into()
            } else {
                format!("{median:.1}")
            },
        ]);
    }
    table.print();
    write_csv("fig09_latency_drift.csv", table.headers(), table.rows());

    let stats = |v: &[f64]| -> (f64, f64, f64) {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let min = v.iter().copied().fold(f64::INFINITY, f64::min);
        let max = v.iter().copied().fold(0.0f64, f64::max);
        (mean, min, max)
    };
    let (mm, mn, mx) = stats(&means);
    let (pm, pn, px) = stats(&p90s);
    println!(
        "mean latency over 24h: avg {mm:.1} ms, range [{mn:.1}, {mx:.1}] (spread {:.1} ms)\n\
         90P  latency over 24h: avg {pm:.1} ms, range [{pn:.1}, {px:.1}] (spread {:.1} ms)\n\
         (paper: spreads within tens of ms ⇒ placements survive drift without re-optimization)",
        mx - mn,
        px - pn
    );
}
