//! Figure 8: impact of NCS estimation errors — estimated (cost-space)
//! versus real (measured) latencies on the 418-node RIPE Atlas subset.
//!
//! Every optimizer decides using the embedding; this experiment compares
//! what each approach *believed* its mean/90P latency would be against
//! what the measured matrix (with its triangle-inequality violations)
//! actually delivers.
//!
//! Expected shape (§4.4): Nova, source-based and top-c show small
//! mean-latency discrepancies; the sink-based estimate is biased high;
//! the tree overlays underestimate catastrophically because embedding
//! errors accumulate over their many hops (the paper reports Tree
//! exploding from 512 ms estimated to 11.7 s measured).

use nova_bench::{run_all_approaches, write_csv, BenchConfig, Table};
use nova_topology::Testbed;
use nova_workloads::{synthetic_opp, OppParams};

fn main() {
    let seed = 33;
    println!("== Fig. 8: estimated vs measured latencies (RIPE Atlas, 418 nodes) ==\n");
    let data = Testbed::RipeAtlas418.generate(seed);
    let w = synthetic_opp(
        &data.topology,
        &OppParams {
            seed,
            ..OppParams::default()
        },
    );
    let set = run_all_approaches(&w.topology, &data.rtt, &w.query, &BenchConfig::default());

    let mut table = Table::new(&[
        "approach",
        "est mean",
        "real mean",
        "mean ratio",
        "est 90P",
        "real 90P",
        "90P ratio",
    ]);
    for r in &set.results {
        let em = r.estimated.mean_latency();
        let rm = r.real.mean_latency();
        let e9 = r.estimated.latency_percentile(0.9);
        let r9 = r.real.latency_percentile(0.9);
        table.row(vec![
            r.name.to_string(),
            format!("{em:.0}"),
            format!("{rm:.0}"),
            format!("{:.2}", rm / em.max(1e-9)),
            format!("{e9:.0}"),
            format!("{r9:.0}"),
            format!("{:.2}", r9 / e9.max(1e-9)),
        ]);
    }
    table.print();
    write_csv("fig08_estimation_error.csv", table.headers(), table.rows());

    let tree_ratio = set
        .get("tree")
        .map(|r| r.real.mean_latency() / r.estimated.mean_latency().max(1e-9))
        .unwrap_or(0.0);
    let nova_ratio = set
        .get("nova")
        .map(|r| r.real.mean_latency() / r.estimated.mean_latency().max(1e-9))
        .unwrap_or(0.0);
    println!(
        "tree-based real/estimated mean ratio: {tree_ratio:.2}× (multi-hop error accumulation)\n\
         nova real/estimated mean ratio:       {nova_ratio:.2}× (cost-space-optimized, robust)\n"
    );
}
