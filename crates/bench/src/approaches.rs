//! Running Nova and all six baselines uniformly on one workload.

use nova_core::baselines::{
    cl_sf, cl_tree_sf, sink_based, source_based, top_c, tree_based, ClusterParams,
};
use nova_core::{evaluate, EvalOptions, JoinQuery, Nova, NovaConfig, Placement, PlacementEval};
use nova_netcoord::{CostSpace, Vivaldi, VivaldiConfig};
use nova_topology::{LatencyProvider, Topology};

/// Harness-level settings shared by the comparison experiments.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Nova configuration (σ, C_min, overflow policy, ...).
    pub nova: NovaConfig,
    /// Vivaldi neighbor-set size for the shared cost space.
    pub vivaldi_neighbors: usize,
    /// Vivaldi relaxation rounds.
    pub vivaldi_rounds: usize,
    /// Include the (expensive) tree-family baselines. They exceed the
    /// paper's 10-minute timeout beyond ~20 k nodes, so scalability runs
    /// disable them at scale (Fig. 10).
    pub include_tree_family: bool,
    /// Seed for the embedding.
    pub seed: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            nova: NovaConfig::default(),
            vivaldi_neighbors: 20,
            vivaldi_rounds: 48,
            include_tree_family: true,
            seed: 0xBE7C,
        }
    }
}

/// A named placement plus its evaluation.
#[derive(Debug, Clone)]
pub struct ApproachResult {
    /// Approach label matching the paper's legend.
    pub name: &'static str,
    /// The operator-to-node mapping.
    pub placement: Placement,
    /// Evaluation under the *real* measured latencies.
    pub real: PlacementEval,
    /// Evaluation under the *estimated* (cost space) latencies.
    pub estimated: PlacementEval,
}

/// All approaches on one workload, evaluated under estimated and real
/// latencies.
#[derive(Debug)]
pub struct ApproachSet {
    /// The shared cost space all approaches optimized against.
    pub space: CostSpace,
    /// Results in the paper's legend order: nova, sink, source, top-c,
    /// tree, cl-sf, cl-tree-sf.
    pub results: Vec<ApproachResult>,
}

impl ApproachSet {
    /// Look up an approach by name.
    pub fn get(&self, name: &str) -> Option<&ApproachResult> {
        self.results.iter().find(|r| r.name == name)
    }
}

/// Embed the topology once, then run Nova and every baseline on the same
/// cost space and query; evaluate each placement under both the cost
/// space (estimates) and the provider (real measurements).
///
/// All optimizers see only *estimated* latencies — like the paper, where
/// the NCS is the optimizers' world view and real measurements judge the
/// outcome (§4.3–4.4).
pub fn run_all_approaches(
    topology: &Topology,
    provider: &impl LatencyProvider,
    query: &JoinQuery,
    cfg: &BenchConfig,
) -> ApproachSet {
    let vivaldi = Vivaldi::embed(
        provider,
        VivaldiConfig {
            neighbors: cfg.vivaldi_neighbors,
            rounds: cfg.vivaldi_rounds,
            seed: cfg.seed,
            ..VivaldiConfig::default()
        },
    );
    let space = vivaldi.into_cost_space();
    run_with_space(topology, provider, query, space, cfg)
}

/// Same as [`run_all_approaches`] but with a caller-provided cost space.
pub fn run_with_space(
    topology: &Topology,
    provider: &impl LatencyProvider,
    query: &JoinQuery,
    space: CostSpace,
    cfg: &BenchConfig,
) -> ApproachSet {
    let plan = query.resolve();
    let mut placements: Vec<(&'static str, Placement)> = Vec::new();

    let mut nova = Nova::with_cost_space(topology.clone(), space.clone(), cfg.nova);
    nova.optimize(query.clone());
    placements.push(("nova", nova.placement().clone()));
    placements.push(("sink", sink_based(query, &plan)));
    placements.push(("source", source_based(query, &plan)));
    placements.push(("top-c", top_c(query, &plan, topology)));
    if cfg.include_tree_family {
        let params = ClusterParams::for_size(topology.len());
        placements.push(("tree", tree_based(query, &plan, topology, &space)));
        placements.push(("cl-sf", cl_sf(query, &plan, topology, &space, &params)));
        placements.push((
            "cl-tree-sf",
            cl_tree_sf(query, &plan, topology, &space, &space, &params),
        ));
    }

    let results = placements
        .into_iter()
        .map(|(name, placement)| {
            let real = evaluate(
                &placement,
                topology,
                |a, b| provider.rtt(a, b),
                EvalOptions::default(),
            );
            let estimated = evaluate(
                &placement,
                topology,
                |a, b| space.distance(a, b).unwrap_or(f64::INFINITY),
                EvalOptions::default(),
            );
            ApproachResult {
                name,
                placement,
                real,
                estimated,
            }
        })
        .collect();
    ApproachSet { space, results }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_topology::{SyntheticParams, SyntheticTopology};
    use nova_workloads::{synthetic_opp, OppParams};

    #[test]
    fn all_seven_approaches_produce_placements() {
        let base = SyntheticTopology::generate(&SyntheticParams {
            n: 120,
            seed: 3,
            ..Default::default()
        });
        let w = synthetic_opp(&base.topology, &OppParams::default());
        let set = run_all_approaches(&w.topology, &base.rtt, &w.query, &BenchConfig::default());
        assert_eq!(set.results.len(), 7);
        for r in &set.results {
            assert!(
                !r.placement.replicas.is_empty(),
                "{} produced an empty placement",
                r.name
            );
            assert!(r.real.mean_latency() >= 0.0);
        }
        // Sink-based is the latency lower bound (it skips the detour).
        let sink = set.get("sink").unwrap();
        let tree = set.get("tree").unwrap();
        assert!(tree.real.latency_percentile(0.9) >= sink.real.latency_percentile(0.9) * 0.9);
    }

    #[test]
    fn nova_overloads_least() {
        let base = SyntheticTopology::generate(&SyntheticParams {
            n: 150,
            seed: 4,
            ..Default::default()
        });
        let w = synthetic_opp(
            &base.topology,
            &OppParams {
                seed: 4,
                ..Default::default()
            },
        );
        let set = run_all_approaches(&w.topology, &base.rtt, &w.query, &BenchConfig::default());
        let nova = set.get("nova").unwrap().real.overload_percent();
        let sink = set.get("sink").unwrap().real.overload_percent();
        assert!(nova <= sink, "nova {nova}% vs sink {sink}%");
        assert_eq!(sink, 100.0, "the sink always drowns");
    }
}
