//! Result presentation: aligned console tables and CSV files.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// A simple aligned console table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}", width = widths[c]);
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// The collected rows (for CSV reuse).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }
}

/// Directory where experiment binaries drop their CSV outputs
/// (`<workspace>/results`, created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("NOVA_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Write rows as a CSV file under [`results_dir`]. Returns the path.
pub fn write_csv(name: &str, headers: &[String], rows: &[Vec<String>]) -> PathBuf {
    let path = results_dir().join(name);
    let mut content = String::new();
    content.push_str(&headers.join(","));
    content.push('\n');
    for row in rows {
        content.push_str(&row.join(","));
        content.push('\n');
    }
    if let Err(e) = fs::write(&path, content) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with('1'));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
